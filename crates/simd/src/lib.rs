//! # local-simd — flat-buffer scan kernels with runtime feature dispatch
//!
//! The runtime's steady state is pure scanning over flat buffers: tick-stamped message
//! arenas, live masks over the CSR overlay, frontier worklists, and the Linial/Horner colour
//! digests (see `local-runtime::session`, `local-runtime::view`, `local-algos::coloring`).
//! This crate vectorizes those scans behind a tiny dispatch layer:
//!
//! * [`scalar`] is the **semantic reference** — portable, branch-simple Rust. Every other
//!   implementation must produce bit-identical results (asserted by the proptest equivalence
//!   suite in `tests/kernels_equivalence.rs` and by the runtime's `view_vs_rebuild` oracle).
//! * `sse2` is the x86_64 baseline (always available on that architecture).
//! * `avx2` is used when the CPU supports it (detected once at startup).
//!
//! The active level is detected once, cached in an atomic, and overridable through the
//! `LOCAL_SIMD` environment variable (`scalar`, `sse2`, or `avx2`) so CI can pin paths; a
//! requested level the CPU cannot execute is clamped down to the best supported one.
//!
//! ## Adding a kernel
//!
//! 1. Write the scalar reference in [`scalar`] — simplest possible code, this is the spec.
//! 2. Add the `sse2`/`avx2` variants (gated `cfg(target_arch = "x86_64")`).
//! 3. Add the dispatching wrapper here, following the existing `match level()` pattern.
//! 4. Extend `tests/kernels_equivalence.rs` with a proptest driving all levels against the
//!    scalar reference over adversarial shapes (empty, all-dead, single element, max degree).
//!
//! ## Exactness of the float Horner kernel
//!
//! [`eval_poly_block8`] evaluates polynomials over `F_q` in `f64` lanes. For `q < 2^25` every
//! intermediate (`acc·a + c` with `acc, c < q` and `a < q + 8`) stays below `2^53`, so all
//! products, sums, and the final remainder are **exact** integers in `f64` — the quotient
//! estimate may be off by one, which two masked fix-up steps correct. The result is therefore
//! bit-identical to the integer reference, not merely close; callers must keep the
//! [`eval_poly_block8`] preconditions (checked by `debug_assert!` and the equivalence suite).

#![warn(missing_docs)]

pub mod scalar;

#[cfg(target_arch = "x86_64")]
pub mod avx2;
#[cfg(target_arch = "x86_64")]
pub mod sse2;

use std::sync::atomic::{AtomicU8, Ordering};

/// The instruction-set level a kernel call dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Portable Rust — the semantic reference implementation.
    Scalar = 0,
    /// SSE2, the x86_64 baseline.
    Sse2 = 1,
    /// AVX2 (implies SSE2).
    Avx2 = 2,
}

impl Level {
    fn from_u8(v: u8) -> Level {
        match v {
            2 => Level::Avx2,
            1 => Level::Sse2,
            _ => Level::Scalar,
        }
    }

    /// Lower-case name, as accepted by the `LOCAL_SIMD` override.
    pub fn name(self) -> &'static str {
        match self {
            Level::Scalar => "scalar",
            Level::Sse2 => "sse2",
            Level::Avx2 => "avx2",
        }
    }
}

/// `u8::MAX` = not yet detected.
static LEVEL: AtomicU8 = AtomicU8::new(u8::MAX);

/// The highest level the running CPU can execute.
fn hardware_level() -> Level {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            Level::Avx2
        } else {
            Level::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Level::Scalar
    }
}

fn detect() -> Level {
    let hw = hardware_level();
    match std::env::var("LOCAL_SIMD") {
        Ok(v) => {
            let requested = match v.to_ascii_lowercase().as_str() {
                "scalar" => Level::Scalar,
                "sse2" => Level::Sse2,
                "avx2" => Level::Avx2,
                other => {
                    eprintln!("LOCAL_SIMD={other:?} not recognized (use scalar|sse2|avx2); auto-detecting");
                    hw
                }
            };
            // Clamp to what the CPU can actually execute.
            requested.min(hw)
        }
        Err(_) => hw,
    }
}

/// Detects (or re-reads the cached) dispatch level. Called implicitly by every kernel; call
/// it explicitly at startup to pay the detection (and the `LOCAL_SIMD` read) outside any
/// timed or allocation-counted region.
#[inline]
pub fn level() -> Level {
    let cached = LEVEL.load(Ordering::Relaxed);
    if cached != u8::MAX {
        return Level::from_u8(cached);
    }
    init()
}

/// Forces detection now and caches the result. Returns the active level.
pub fn init() -> Level {
    let lvl = detect();
    LEVEL.store(lvl as u8, Ordering::Relaxed);
    lvl
}

/// Name of the active dispatch level (`"scalar"`, `"sse2"`, or `"avx2"`).
pub fn level_name() -> &'static str {
    level().name()
}

/// One-line dispatch report for CLI headers: active level, CPU capability, and whether the
/// `LOCAL_SIMD` override forced it.
pub fn dispatch_report() -> String {
    let active = level();
    let hw = hardware_level();
    match std::env::var("LOCAL_SIMD") {
        Ok(v) => format!("simd: {} (cpu supports {}, LOCAL_SIMD={})", active.name(), hw.name(), v),
        Err(_) => format!("simd: {} (cpu supports {}, auto)", active.name(), hw.name()),
    }
}

// ------------------------------------------------------------------ stamped-arena scans ----

/// Bit `i` of the result is set iff `stamps[i] == tick`. `stamps.len()` must be at most 64.
///
/// This is the inbox-staging primitive: a node's dense-arc segment is scanned in chunks of
/// up to 64 stamps, and the caller walks the set bits to gather the matching payloads.
#[inline]
pub fn stamp_match_mask64(stamps: &[u64], tick: u64) -> u64 {
    debug_assert!(stamps.len() <= 64, "mask kernel covers at most 64 stamps per call");
    match level() {
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => unsafe { avx2::stamp_match_mask64(stamps, tick) },
        #[cfg(target_arch = "x86_64")]
        Level::Sse2 => unsafe { sse2::stamp_match_mask64(stamps, tick) },
        _ => scalar::stamp_match_mask64(stamps, tick),
    }
}

/// Number of stamps equal to `tick` (per-node arrival count), any slice length.
#[inline]
pub fn stamp_match_count(stamps: &[u64], tick: u64) -> usize {
    match level() {
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => unsafe { avx2::stamp_match_count(stamps, tick) },
        #[cfg(target_arch = "x86_64")]
        Level::Sse2 => unsafe { sse2::stamp_match_count(stamps, tick) },
        _ => scalar::stamp_match_count(stamps, tick),
    }
}

// ------------------------------------------------------------------ live-mask folds --------

/// `true` iff every element of `mask` is `true` (e.g. "is this retain a no-op?").
#[inline]
pub fn mask_all_true(mask: &[bool]) -> bool {
    match level() {
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => unsafe { avx2::mask_all_true(mask) },
        #[cfg(target_arch = "x86_64")]
        Level::Sse2 => unsafe { sse2::mask_all_true(mask) },
        _ => scalar::mask_all_true(mask),
    }
}

/// Number of `true` elements (popcount-style fold over a live mask).
#[inline]
pub fn mask_count_true(mask: &[bool]) -> usize {
    match level() {
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => unsafe { avx2::mask_count_true(mask) },
        #[cfg(target_arch = "x86_64")]
        Level::Sse2 => unsafe { sse2::mask_count_true(mask) },
        _ => scalar::mask_count_true(mask),
    }
}

// ------------------------------------------------------------------ worklist compaction ----

/// In-place keeps exactly the `nodes[i]` with `mask[nodes[i]] == true`, preserving order
/// (live-node list rebuild after a pruning wave).
///
/// The dispatched variants use a branchless write-then-advance compaction; the scalar
/// reference is `Vec::retain`. Identical results, different branch behaviour.
#[inline]
pub fn compact_marked(nodes: &mut Vec<usize>, mask: &[bool]) {
    match level() {
        Level::Scalar => scalar::compact_marked(nodes, mask),
        _ => {
            let len = branchless_compact::<false>(nodes, mask);
            nodes.truncate(len);
        }
    }
}

/// In-place keeps exactly the `nodes[i]` with `mask[nodes[i]] == false`, preserving order
/// (frontier compaction: drop freshly halted nodes from the active worklist).
#[inline]
pub fn compact_unmarked(nodes: &mut Vec<usize>, mask: &[bool]) {
    match level() {
        Level::Scalar => scalar::compact_unmarked(nodes, mask),
        _ => {
            let len = branchless_compact::<true>(nodes, mask);
            nodes.truncate(len);
        }
    }
}

/// Branchless stream compaction: write every candidate, advance the cursor only for
/// survivors (`k <= i` keeps the in-place write sound). Shared by the sse2/avx2 levels —
/// the mask lookup is a data-dependent gather, so the win over `retain` is the removal of
/// the per-element branch, not wider lanes.
fn branchless_compact<const INVERT: bool>(nodes: &mut [usize], mask: &[bool]) -> usize {
    let mut k = 0usize;
    for i in 0..nodes.len() {
        let v = nodes[i];
        nodes[k] = v;
        let keep = if INVERT { !mask[v] } else { mask[v] };
        k += keep as usize;
    }
    k
}

// ------------------------------------------------------------------ Horner digit loops -----

/// Upper bound (exclusive) on `q` for the exact-`f64` Horner kernels.
pub const EVAL_POLY_MAX_Q: u64 = 1 << 25;

/// Evaluates the polynomial with base-`q` digits `coeffs` (little-endian: `coeffs[i]` is the
/// coefficient of `x^i`) at the eight consecutive points `a, a+1, ..., a+7`, all mod `q`.
///
/// Leading zero digits are skipped (the zero-digit trim of `local-algos`' digit layout).
/// Out-of-field points (`a + i >= q`) are still evaluated exactly — callers scanning
/// `0..q` in blocks simply ignore the tail lanes.
///
/// # Preconditions
///
/// `q >= 2` prime (any `q >= 2` evaluates fine; primality is the caller's concern),
/// `q < EVAL_POLY_MAX_Q`, `a + 7 < EVAL_POLY_MAX_Q`, and every digit `< q`. Checked by
/// `debug_assert!`; violating them in release silently loses exactness.
#[inline]
pub fn eval_poly_block8(coeffs: &[u64], a: u64, q: u64) -> [u64; 8] {
    debug_assert!((2..EVAL_POLY_MAX_Q).contains(&q));
    debug_assert!(a + 7 < EVAL_POLY_MAX_Q);
    debug_assert!(coeffs.iter().all(|&c| c < q));
    let coeffs = trim_leading_zeros(coeffs);
    match level() {
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => unsafe { avx2::eval_poly_block8(coeffs, a, q) },
        #[cfg(target_arch = "x86_64")]
        Level::Sse2 => unsafe { sse2::eval_poly_block8(coeffs, a, q) },
        _ => scalar::eval_poly_block8(coeffs, a, q),
    }
}

/// The slice with its trailing (highest-power) zero digits removed: leading zero
/// coefficients leave a Horner accumulator at zero, so skipping them is free and exact.
#[inline]
pub fn trim_leading_zeros(coeffs: &[u64]) -> &[u64] {
    let n = match level() {
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => unsafe { avx2::nonzero_prefix_len(coeffs) },
        #[cfg(target_arch = "x86_64")]
        Level::Sse2 => unsafe { sse2::nonzero_prefix_len(coeffs) },
        _ => scalar::nonzero_prefix_len(coeffs),
    };
    &coeffs[..n]
}

/// Precomputed reciprocal for **exact** scalar arithmetic mod a small `q` — the
/// single-point companion of [`eval_poly_block8`], replacing each hardware division
/// (~20–40 cycles) with a multiply and two masked fix-ups.
///
/// Shared by every dispatch level (it is plain scalar math): for `q < 2^25` and operands
/// below `2^51`, the `f64` quotient estimate is within ±1 of the true quotient, and the
/// fix-ups make the result identical to the `%`/`/` operators — see the crate docs for the
/// exactness argument.
#[derive(Debug, Clone, Copy)]
pub struct ModQ {
    q: u64,
    inv: f64,
}

impl ModQ {
    /// Operand bound (exclusive) under which [`ModQ::div_rem`] is exact.
    pub const MAX_OPERAND: u64 = 1 << 51;

    /// Precomputes the reciprocal of `q` (`2 <= q < EVAL_POLY_MAX_Q`).
    #[inline]
    pub fn new(q: u64) -> ModQ {
        debug_assert!((2..EVAL_POLY_MAX_Q).contains(&q));
        ModQ { q, inv: 1.0 / q as f64 }
    }

    /// The modulus this context reduces by.
    #[inline]
    pub fn q(self) -> u64 {
        self.q
    }

    /// Exact `(c / q, c % q)` for `c <` [`ModQ::MAX_OPERAND`].
    #[inline]
    pub fn div_rem(self, c: u64) -> (u64, u64) {
        debug_assert!(c < ModQ::MAX_OPERAND);
        // Quotient estimate within ±1 of floor(c / q); a wrapped-negative remainder marks
        // an overshoot, a remainder >= q an undershoot.
        let mut k = (c as f64 * self.inv) as u64;
        let mut r = c.wrapping_sub(k * self.q);
        if (r as i64) < 0 {
            k -= 1;
            r = r.wrapping_add(self.q);
        } else if r >= self.q {
            k += 1;
            r -= self.q;
        }
        (k, r)
    }

    /// One exact Horner step `(acc·x + c) mod q`, for `acc, c < q` and `x < q + 8`.
    #[inline]
    pub fn horner_step(self, acc: u64, x: u64, c: u64) -> u64 {
        self.div_rem(acc * x + c).1
    }

    /// Modulus bound (exclusive) under which two *unpaired* Horner steps can share one
    /// reciprocal reduction: `q·(q+8)² + (q+8)·q + q < 2^51` holds for every `q < 2^16`.
    pub const PAIR_MAX_Q: u64 = 1 << 16;

    /// Exact Horner evaluation of the digit polynomial at one point `a < q + 8`
    /// (little-endian digits, all `< q`), with the zero-digit trim applied first.
    ///
    /// For `q <` [`ModQ::PAIR_MAX_Q`] two digits are folded per reduction — the unreduced
    /// double step stays below [`ModQ::MAX_OPERAND`], so exactness is preserved while the
    /// reciprocal work is halved.
    #[inline]
    pub fn eval_poly(self, coeffs: &[u64], a: u64) -> u64 {
        let n = scalar::nonzero_prefix_len(coeffs);
        let coeffs = &coeffs[..n];
        let mut acc = 0u64;
        if self.q < ModQ::PAIR_MAX_Q {
            let mut pairs = coeffs.rchunks_exact(2);
            for pair in &mut pairs {
                acc = self.div_rem((acc * a + pair[1]) * a + pair[0]).1;
            }
            if let [c] = pairs.remainder() {
                acc = self.horner_step(acc, a, *c);
            }
            return acc;
        }
        for &c in coeffs.iter().rev() {
            acc = self.horner_step(acc, a, c);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_is_cached_and_named() {
        let first = level();
        assert_eq!(first, level());
        assert_eq!(level_name(), first.name());
        assert!(["scalar", "sse2", "avx2"].contains(&level_name()));
        assert!(dispatch_report().starts_with("simd: "));
    }

    #[test]
    fn mask64_matches_scalar_on_all_levels() {
        let stamps: Vec<u64> = (0..64).map(|i| if i % 3 == 0 { 7 } else { i }).collect();
        let reference = scalar::stamp_match_mask64(&stamps, 7);
        assert_eq!(stamp_match_mask64(&stamps, 7), reference);
        assert_eq!(stamp_match_count(&stamps, 7), reference.count_ones() as usize);
    }

    #[test]
    fn compaction_keeps_order() {
        let mask = [true, false, true, true, false, true];
        let mut a: Vec<usize> = (0..6).collect();
        compact_marked(&mut a, &mask);
        assert_eq!(a, vec![0, 2, 3, 5]);
        let mut b: Vec<usize> = (0..6).collect();
        compact_unmarked(&mut b, &mask);
        assert_eq!(b, vec![1, 4]);
    }

    #[test]
    fn eval_poly_block_is_exact() {
        // p(x) = 3 + 2x + x² over F_7; p(4) = 27 ≡ 6.
        let out = eval_poly_block8(&[3, 2, 1], 4, 7);
        assert_eq!(out[0], 6);
        for (i, &v) in out.iter().enumerate() {
            let a = 4 + i as u64;
            assert_eq!(v, (3 + 2 * a + a * a) % 7);
        }
    }

    #[test]
    fn trim_drops_only_leading_zeros() {
        assert_eq!(trim_leading_zeros(&[1, 0, 2, 0, 0]), &[1, 0, 2]);
        assert_eq!(trim_leading_zeros(&[0, 0]), &[] as &[u64]);
        assert_eq!(trim_leading_zeros(&[]), &[] as &[u64]);
    }
}

//! AVX2 kernels: 4×u64 / 32×u8 / 4×f64 lanes, selected at runtime when the CPU supports
//! AVX2 (see [`crate::level`]).

#![allow(clippy::missing_safety_doc)]

use core::arch::x86_64::*;

/// See [`crate::scalar::stamp_match_mask64`].
#[target_feature(enable = "avx2")]
pub unsafe fn stamp_match_mask64(stamps: &[u64], tick: u64) -> u64 {
    let t = _mm256_set1_epi64x(tick as i64);
    let mut mask = 0u64;
    let mut i = 0usize;
    while i + 4 <= stamps.len() {
        let x = _mm256_loadu_si256(stamps.as_ptr().add(i) as *const __m256i);
        let eq = _mm256_cmpeq_epi64(x, t);
        let bits = _mm256_movemask_pd(_mm256_castsi256_pd(eq)) as u64;
        mask |= bits << i;
        i += 4;
    }
    while i < stamps.len() {
        mask |= u64::from(stamps[i] == tick) << i;
        i += 1;
    }
    mask
}

/// See [`crate::scalar::stamp_match_count`].
#[target_feature(enable = "avx2")]
pub unsafe fn stamp_match_count(stamps: &[u64], tick: u64) -> usize {
    let mut total = 0usize;
    for chunk in stamps.chunks(64) {
        total += stamp_match_mask64(chunk, tick).count_ones() as usize;
    }
    total
}

/// See [`crate::scalar::mask_all_true`]. `bool` slices are read as bytes (guaranteed 0/1).
#[target_feature(enable = "avx2")]
pub unsafe fn mask_all_true(mask: &[bool]) -> bool {
    let zero = _mm256_setzero_si256();
    let mut chunks = mask.chunks_exact(32);
    for chunk in &mut chunks {
        let x = _mm256_loadu_si256(chunk.as_ptr() as *const __m256i);
        if _mm256_movemask_epi8(_mm256_cmpeq_epi8(x, zero)) != 0 {
            return false;
        }
    }
    chunks.remainder().iter().all(|&b| b)
}

/// See [`crate::scalar::mask_count_true`].
#[target_feature(enable = "avx2")]
pub unsafe fn mask_count_true(mask: &[bool]) -> usize {
    let zero = _mm256_setzero_si256();
    let mut total = 0usize;
    let mut chunks = mask.chunks_exact(32);
    for chunk in &mut chunks {
        let x = _mm256_loadu_si256(chunk.as_ptr() as *const __m256i);
        let zeros = _mm256_movemask_epi8(_mm256_cmpeq_epi8(x, zero)) as u32;
        total += 32 - zeros.count_ones() as usize;
    }
    total + chunks.remainder().iter().filter(|&&b| b).count()
}

/// See [`crate::scalar::nonzero_prefix_len`]: peel zero digits from the top, four lanes at
/// a time.
#[target_feature(enable = "avx2")]
pub unsafe fn nonzero_prefix_len(coeffs: &[u64]) -> usize {
    let zero = _mm256_setzero_si256();
    let mut n = coeffs.len();
    while n >= 4 {
        let x = _mm256_loadu_si256(coeffs.as_ptr().add(n - 4) as *const __m256i);
        let eq = _mm256_cmpeq_epi64(x, zero);
        let zeros = _mm256_movemask_pd(_mm256_castsi256_pd(eq)) as u32;
        // Consecutive zero lanes from the top of the chunk (bit 3 = highest digit).
        let suffix = (zeros << 28).leading_ones() as usize;
        n -= suffix;
        if suffix < 4 {
            return n;
        }
    }
    while n > 0 && coeffs[n - 1] == 0 {
        n -= 1;
    }
    n
}

/// See [`crate::scalar::eval_poly_block8`] and the crate docs for the exactness argument.
#[target_feature(enable = "avx2")]
pub unsafe fn eval_poly_block8(coeffs: &[u64], a: u64, q: u64) -> [u64; 8] {
    let qf = q as f64;
    let qv = _mm256_set1_pd(qf);
    let inv_q = _mm256_set1_pd(1.0 / qf);
    let zero = _mm256_setzero_pd();
    let af = a as f64;
    let xs = [
        _mm256_set_pd(af + 3.0, af + 2.0, af + 1.0, af),
        _mm256_set_pd(af + 7.0, af + 6.0, af + 5.0, af + 4.0),
    ];
    let mut accs = [zero; 2];
    for &c in coeffs.iter().rev() {
        let cf = _mm256_set1_pd(c as f64);
        for (acc, &x) in accs.iter_mut().zip(&xs) {
            // t = acc·x + c, exact (< 2^53). No FMA on purpose: plain mul + add keeps
            // every intermediate exactly representable with AVX2-only requirements.
            let t = _mm256_add_pd(_mm256_mul_pd(*acc, x), cf);
            // Quotient estimate within ±1 of floor(t / q).
            let k = _mm256_floor_pd(_mm256_mul_pd(t, inv_q));
            let mut r = _mm256_sub_pd(t, _mm256_mul_pd(k, qv));
            // r ∈ [-q, 2q): two masked fix-ups bring it into [0, q).
            let ge = _mm256_cmp_pd(r, qv, _CMP_GE_OQ);
            r = _mm256_sub_pd(r, _mm256_and_pd(ge, qv));
            let lt = _mm256_cmp_pd(r, zero, _CMP_LT_OQ);
            r = _mm256_add_pd(r, _mm256_and_pd(lt, qv));
            *acc = r;
        }
    }
    let mut lanes = [0.0f64; 8];
    for (i, acc) in accs.iter().enumerate() {
        _mm256_storeu_pd(lanes.as_mut_ptr().add(4 * i), *acc);
    }
    let mut out = [0u64; 8];
    for (o, &f) in out.iter_mut().zip(&lanes) {
        *o = f as u64;
    }
    out
}

//! SSE2 kernels — the x86_64 baseline (always available on that architecture).
//!
//! 64-bit lane equality is emulated with `cmpeq_epi32` + pair-AND (true 64-bit compares
//! arrived with SSE4.1), and the Horner quotient uses truncating `cvttpd` (SSE2 has no
//! `roundpd`); the masked fix-ups absorb the ±1 quotient slack either way.

#![allow(clippy::missing_safety_doc)]

use core::arch::x86_64::*;

/// 2-lane u64 equality: both 32-bit halves must match.
#[inline]
unsafe fn cmpeq_u64(x: __m128i, t: __m128i) -> __m128i {
    let eq32 = _mm_cmpeq_epi32(x, t);
    let swapped = _mm_shuffle_epi32(eq32, 0b1011_0001);
    _mm_and_si128(eq32, swapped)
}

/// See [`crate::scalar::stamp_match_mask64`].
#[target_feature(enable = "sse2")]
pub unsafe fn stamp_match_mask64(stamps: &[u64], tick: u64) -> u64 {
    let t = _mm_set1_epi64x(tick as i64);
    let mut mask = 0u64;
    let mut i = 0usize;
    while i + 2 <= stamps.len() {
        let x = _mm_loadu_si128(stamps.as_ptr().add(i) as *const __m128i);
        let bits = _mm_movemask_pd(_mm_castsi128_pd(cmpeq_u64(x, t))) as u64;
        mask |= bits << i;
        i += 2;
    }
    if i < stamps.len() {
        mask |= u64::from(stamps[i] == tick) << i;
    }
    mask
}

/// See [`crate::scalar::stamp_match_count`].
#[target_feature(enable = "sse2")]
pub unsafe fn stamp_match_count(stamps: &[u64], tick: u64) -> usize {
    let mut total = 0usize;
    for chunk in stamps.chunks(64) {
        total += stamp_match_mask64(chunk, tick).count_ones() as usize;
    }
    total
}

/// See [`crate::scalar::mask_all_true`]. `bool` slices are read as bytes (guaranteed 0/1).
#[target_feature(enable = "sse2")]
pub unsafe fn mask_all_true(mask: &[bool]) -> bool {
    let zero = _mm_setzero_si128();
    let mut chunks = mask.chunks_exact(16);
    for chunk in &mut chunks {
        let x = _mm_loadu_si128(chunk.as_ptr() as *const __m128i);
        if _mm_movemask_epi8(_mm_cmpeq_epi8(x, zero)) != 0 {
            return false;
        }
    }
    chunks.remainder().iter().all(|&b| b)
}

/// See [`crate::scalar::mask_count_true`].
#[target_feature(enable = "sse2")]
pub unsafe fn mask_count_true(mask: &[bool]) -> usize {
    let zero = _mm_setzero_si128();
    let mut total = 0usize;
    let mut chunks = mask.chunks_exact(16);
    for chunk in &mut chunks {
        let x = _mm_loadu_si128(chunk.as_ptr() as *const __m128i);
        let zeros = _mm_movemask_epi8(_mm_cmpeq_epi8(x, zero)) as u32;
        total += 16 - zeros.count_ones() as usize;
    }
    total + chunks.remainder().iter().filter(|&&b| b).count()
}

/// See [`crate::scalar::nonzero_prefix_len`]: peel zero digits from the top, two lanes at
/// a time.
#[target_feature(enable = "sse2")]
pub unsafe fn nonzero_prefix_len(coeffs: &[u64]) -> usize {
    let zero = _mm_setzero_si128();
    let mut n = coeffs.len();
    while n >= 2 {
        let x = _mm_loadu_si128(coeffs.as_ptr().add(n - 2) as *const __m128i);
        let zeros = _mm_movemask_pd(_mm_castsi128_pd(cmpeq_u64(x, zero))) as u32;
        // Consecutive zero lanes from the top of the chunk (bit 1 = highest digit).
        let suffix = (zeros << 30).leading_ones() as usize;
        n -= suffix;
        if suffix < 2 {
            return n;
        }
    }
    while n > 0 && coeffs[n - 1] == 0 {
        n -= 1;
    }
    n
}

/// See [`crate::scalar::eval_poly_block8`] and the crate docs for the exactness argument:
/// all intermediates are exact integers in `f64` for `q < 2^25`, and the truncated quotient
/// estimate is corrected by two masked fix-ups, so the result is bit-identical to the
/// integer reference.
#[target_feature(enable = "sse2")]
pub unsafe fn eval_poly_block8(coeffs: &[u64], a: u64, q: u64) -> [u64; 8] {
    let qf = q as f64;
    let qv = _mm_set1_pd(qf);
    let inv_q = _mm_set1_pd(1.0 / qf);
    let zero = _mm_setzero_pd();
    let af = a as f64;
    let xs = [
        _mm_set_pd(af + 1.0, af),
        _mm_set_pd(af + 3.0, af + 2.0),
        _mm_set_pd(af + 5.0, af + 4.0),
        _mm_set_pd(af + 7.0, af + 6.0),
    ];
    let mut accs = [zero; 4];
    for &c in coeffs.iter().rev() {
        let cf = _mm_set1_pd(c as f64);
        for (acc, &x) in accs.iter_mut().zip(&xs) {
            // t = acc·x + c, exact (< 2^53). No FMA: plain mul + add keeps every
            // intermediate exactly representable and the ISA floor at SSE2.
            let t = _mm_add_pd(_mm_mul_pd(*acc, x), cf);
            // Quotient estimate within ±1 of floor(t / q): truncate is floor for t >= 0.
            let k = _mm_cvtepi32_pd(_mm_cvttpd_epi32(_mm_mul_pd(t, inv_q)));
            let mut r = _mm_sub_pd(t, _mm_mul_pd(k, qv));
            // r ∈ [-q, 2q): two masked fix-ups bring it into [0, q).
            let ge = _mm_cmpge_pd(r, qv);
            r = _mm_sub_pd(r, _mm_and_pd(ge, qv));
            let lt = _mm_cmplt_pd(r, zero);
            r = _mm_add_pd(r, _mm_and_pd(lt, qv));
            *acc = r;
        }
    }
    let mut lanes = [0.0f64; 8];
    for (i, acc) in accs.iter().enumerate() {
        _mm_storeu_pd(lanes.as_mut_ptr().add(2 * i), *acc);
    }
    let mut out = [0u64; 8];
    for (o, &f) in out.iter_mut().zip(&lanes) {
        *o = f as u64;
    }
    out
}

//! Portable reference implementations — the semantic specification of every kernel.
//!
//! Keep these as simple as possible: the dispatched variants are validated against them
//! bit-for-bit, so clarity here is worth more than speed.

/// Bit `i` set iff `stamps[i] == tick` (`stamps.len() <= 64`).
pub fn stamp_match_mask64(stamps: &[u64], tick: u64) -> u64 {
    let mut mask = 0u64;
    for (i, &s) in stamps.iter().enumerate() {
        mask |= u64::from(s == tick) << i;
    }
    mask
}

/// Number of stamps equal to `tick`.
pub fn stamp_match_count(stamps: &[u64], tick: u64) -> usize {
    stamps.iter().filter(|&&s| s == tick).count()
}

/// `true` iff every element is `true`.
pub fn mask_all_true(mask: &[bool]) -> bool {
    mask.iter().all(|&b| b)
}

/// Number of `true` elements.
pub fn mask_count_true(mask: &[bool]) -> usize {
    mask.iter().filter(|&&b| b).count()
}

/// Keeps the `nodes[i]` with `mask[nodes[i]] == true`, preserving order.
pub fn compact_marked(nodes: &mut Vec<usize>, mask: &[bool]) {
    nodes.retain(|&v| mask[v]);
}

/// Keeps the `nodes[i]` with `mask[nodes[i]] == false`, preserving order.
pub fn compact_unmarked(nodes: &mut Vec<usize>, mask: &[bool]) {
    nodes.retain(|&v| !mask[v]);
}

/// Length of `coeffs` with trailing zeros removed.
pub fn nonzero_prefix_len(coeffs: &[u64]) -> usize {
    let mut n = coeffs.len();
    while n > 0 && coeffs[n - 1] == 0 {
        n -= 1;
    }
    n
}

/// Horner evaluation of the digit polynomial at `a..a + 8`, each mod `q`.
///
/// One reduction per digit, in plain integer arithmetic — the exactness reference for the
/// `f64`-lane variants (see the crate docs for the `q < 2^25` bound).
pub fn eval_poly_block8(coeffs: &[u64], a: u64, q: u64) -> [u64; 8] {
    let mut out = [0u64; 8];
    for (i, slot) in out.iter_mut().enumerate() {
        let x = a + i as u64;
        let mut acc = 0u64;
        for &c in coeffs.iter().rev() {
            acc = (acc * x + c) % q;
        }
        *slot = acc;
    }
    out
}

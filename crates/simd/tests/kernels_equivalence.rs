//! Cross-level equivalence suite: every kernel must agree **bit-for-bit** with the portable
//! scalar reference on every instruction-set level the host supports — not merely with
//! whatever level the process dispatched to. The byte-identity contract of the whole
//! runtime (deterministic sweeps, the view-vs-rebuild oracle) rests on these kernels being
//! drop-in interchangeable, so each check runs the scalar implementation, the dispatched
//! public entry point, and the `sse2`/`avx2` modules directly (gated on CPU detection).
//!
//! Shapes covered: empty inputs, all-dead and all-true masks, single elements, the 64-arc
//! chunk boundary the inbox scanner walks (63/64/65), max-degree rows where every lane
//! matches, and proptest-generated arbitrary inputs. The Horner kernels are additionally
//! compared against an independent `u128` evaluation, so a bug shared by all three
//! implementations would still be caught.

use local_simd::scalar;
use proptest::prelude::*;

// --------------------------------------------------------------- per-kernel check fns ------

/// Checks `stamp_match_count` (any length) and, for rows of at most 64 arcs,
/// `stamp_match_mask64`, across scalar, dispatched, and all hardware levels.
fn check_stamps(stamps: &[u64], tick: u64) {
    let count = scalar::stamp_match_count(stamps, tick);
    assert_eq!(local_simd::stamp_match_count(stamps, tick), count, "dispatched count");
    if stamps.len() <= 64 {
        let mask = scalar::stamp_match_mask64(stamps, tick);
        assert_eq!(mask.count_ones() as usize, count, "mask popcount vs count");
        assert_eq!(local_simd::stamp_match_mask64(stamps, tick), mask, "dispatched mask");
        #[cfg(target_arch = "x86_64")]
        {
            // SAFETY: each call is guarded by runtime detection of the feature it requires.
            if std::arch::is_x86_feature_detected!("sse2") {
                assert_eq!(unsafe { local_simd::sse2::stamp_match_mask64(stamps, tick) }, mask);
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                assert_eq!(unsafe { local_simd::avx2::stamp_match_mask64(stamps, tick) }, mask);
            }
        }
    }
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: guarded by runtime feature detection.
        if std::arch::is_x86_feature_detected!("sse2") {
            assert_eq!(unsafe { local_simd::sse2::stamp_match_count(stamps, tick) }, count);
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            assert_eq!(unsafe { local_simd::avx2::stamp_match_count(stamps, tick) }, count);
        }
    }
}

/// Checks `mask_all_true` and `mask_count_true` across all levels.
fn check_mask(mask: &[bool]) {
    let all = scalar::mask_all_true(mask);
    let count = scalar::mask_count_true(mask);
    assert_eq!(all, count == mask.len(), "all-true vs count");
    assert_eq!(local_simd::mask_all_true(mask), all, "dispatched all-true");
    assert_eq!(local_simd::mask_count_true(mask), count, "dispatched count-true");
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: guarded by runtime feature detection.
        if std::arch::is_x86_feature_detected!("sse2") {
            assert_eq!(unsafe { local_simd::sse2::mask_all_true(mask) }, all);
            assert_eq!(unsafe { local_simd::sse2::mask_count_true(mask) }, count);
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            assert_eq!(unsafe { local_simd::avx2::mask_all_true(mask) }, all);
            assert_eq!(unsafe { local_simd::avx2::mask_count_true(mask) }, count);
        }
    }
}

/// Checks both compaction kernels: dispatched output must equal the scalar `retain`.
fn check_compact(nodes: &[usize], mask: &[bool]) {
    let mut kept = nodes.to_vec();
    scalar::compact_marked(&mut kept, mask);
    let mut dispatched = nodes.to_vec();
    local_simd::compact_marked(&mut dispatched, mask);
    assert_eq!(dispatched, kept, "compact_marked");
    let mut dropped = nodes.to_vec();
    scalar::compact_unmarked(&mut dropped, mask);
    let mut dispatched = nodes.to_vec();
    local_simd::compact_unmarked(&mut dispatched, mask);
    assert_eq!(dispatched, dropped, "compact_unmarked");
    assert_eq!(kept.len() + dropped.len(), nodes.len(), "kept + dropped partition the input");
}

/// Independent reference: naive Horner over `u128`, immune to any bug the `f64`
/// reciprocal implementations might share.
fn naive_eval(coeffs: &[u64], x: u64, q: u64) -> u64 {
    let mut acc: u128 = 0;
    for &c in coeffs.iter().rev() {
        acc = (acc * x as u128 + c as u128) % q as u128;
    }
    acc as u64
}

/// Checks `eval_poly_block8` (all levels + dispatched + `ModQ::eval_poly` + the naive
/// `u128` reference) at the eight points `a..a+8`. Requires `a + 7 < EVAL_POLY_MAX_Q` and
/// digits `< q`.
fn check_poly_block(coeffs: &[u64], a: u64, q: u64) {
    let expect: Vec<u64> = (0..8).map(|i| naive_eval(coeffs, a + i, q)).collect();
    assert_eq!(scalar::eval_poly_block8(coeffs, a, q).to_vec(), expect, "scalar block");
    assert_eq!(local_simd::eval_poly_block8(coeffs, a, q).to_vec(), expect, "dispatched block");
    let modq = local_simd::ModQ::new(q);
    for (i, &want) in expect.iter().enumerate() {
        if a + (i as u64) < q + 8 {
            assert_eq!(modq.eval_poly(coeffs, a + i as u64), want, "ModQ::eval_poly point {i}");
        }
    }
    #[cfg(target_arch = "x86_64")]
    {
        let trimmed = local_simd::trim_leading_zeros(coeffs);
        // SAFETY: guarded by runtime feature detection.
        if std::arch::is_x86_feature_detected!("sse2") {
            assert_eq!(
                unsafe { local_simd::sse2::eval_poly_block8(trimmed, a, q) }.to_vec(),
                expect
            );
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            assert_eq!(
                unsafe { local_simd::avx2::eval_poly_block8(trimmed, a, q) }.to_vec(),
                expect
            );
        }
    }
}

/// Checks the zero-digit trim across levels.
fn check_trim(coeffs: &[u64]) {
    let n = scalar::nonzero_prefix_len(coeffs);
    assert!(coeffs[n..].iter().all(|&c| c == 0), "trimmed tail must be zero");
    assert!(n == 0 || coeffs[n - 1] != 0, "trim must be maximal");
    assert_eq!(local_simd::trim_leading_zeros(coeffs), &coeffs[..n], "dispatched trim");
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: guarded by runtime feature detection.
        if std::arch::is_x86_feature_detected!("sse2") {
            assert_eq!(unsafe { local_simd::sse2::nonzero_prefix_len(coeffs) }, n);
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            assert_eq!(unsafe { local_simd::avx2::nonzero_prefix_len(coeffs) }, n);
        }
    }
}

// --------------------------------------------------------------- deterministic edges -------

#[test]
fn empty_inputs() {
    check_stamps(&[], 7);
    check_mask(&[]);
    check_compact(&[], &[]);
    check_trim(&[]);
    check_poly_block(&[], 0, 2); // zero polynomial: identically 0
}

#[test]
fn single_elements() {
    check_stamps(&[7], 7);
    check_stamps(&[8], 7);
    check_mask(&[true]);
    check_mask(&[false]);
    check_compact(&[0], &[true]);
    check_compact(&[0], &[false]);
    check_trim(&[0]);
    check_trim(&[3]);
    check_poly_block(&[1], 0, 2);
}

#[test]
fn all_dead_and_all_live_masks() {
    for len in [1usize, 63, 64, 65, 200] {
        check_mask(&vec![false; len]);
        check_mask(&vec![true; len]);
        let nodes: Vec<usize> = (0..len).collect();
        check_compact(&nodes, &vec![false; len]);
        check_compact(&nodes, &vec![true; len]);
    }
}

#[test]
fn chunk_boundaries_and_max_degree_rows() {
    // The inbox scanner walks 64-arc chunks: exercise rows just below, at, and above the
    // boundary, plus the max-degree row where every arc matches (mask = all ones).
    for len in [63usize, 64, 65, 127, 128, 129] {
        let stamps: Vec<u64> =
            (0..len as u64).map(|i| if i % 3 == 0 { 42 } else { i + 100 }).collect();
        check_stamps(&stamps, 42);
        check_stamps(&stamps, 9999); // no matches
    }
    let full_row = vec![42u64; 64];
    assert_eq!(scalar::stamp_match_mask64(&full_row, 42), u64::MAX);
    check_stamps(&full_row, 42);
}

#[test]
fn poly_block_edges() {
    let q_max = local_simd::EVAL_POLY_MAX_Q - 1;
    // All-zero digits trim to the empty polynomial.
    check_poly_block(&[0, 0, 0], 5, 11);
    // Leading (high-power) zeros with a nonzero low digit.
    check_poly_block(&[3, 0, 0], 5, 11);
    // Smallest modulus, largest modulus, and a scan block at the top of the field.
    check_poly_block(&[1, 1], 0, 2);
    check_poly_block(&[123_456, 7, q_max - 1], 0, q_max);
    check_poly_block(&[123_456, 7, q_max - 1], q_max - 8, q_max);
    // Degree above the paired-Horner fold (odd/even digit counts).
    check_poly_block(&[1, 2, 3, 4, 5], 9, 65_521);
    check_poly_block(&[1, 2, 3, 4, 5, 6], 9, 65_521);
}

#[test]
fn modq_div_rem_boundaries() {
    for q in [2u64, 3, 65_535, 65_537, local_simd::EVAL_POLY_MAX_Q - 1] {
        let m = local_simd::ModQ::new(q);
        assert_eq!(m.q(), q);
        for c in [0u64, 1, q - 1, q, q + 1, local_simd::ModQ::MAX_OPERAND - 1] {
            assert_eq!(m.div_rem(c), (c / q, c % q), "q={q} c={c}");
        }
    }
}

// --------------------------------------------------------------- property tests ------------

proptest! {
    #[test]
    fn stamps_match_scalar(
        stamps in prop::collection::vec(prop_oneof![Just(42u64), 0u64..1000], 0..300),
        tick in prop_oneof![Just(42u64), 0u64..1000],
    ) {
        check_stamps(&stamps, tick);
    }

    #[test]
    fn masks_match_scalar(mask in prop::collection::vec(any::<bool>(), 0..300)) {
        check_mask(&mask);
    }

    #[test]
    fn compaction_matches_scalar(
        (mask, nodes) in (1usize..200).prop_flat_map(|len| (
            prop::collection::vec(any::<bool>(), len),
            prop::collection::vec(0..len, 0..len),
        )),
    ) {
        check_compact(&nodes, &mask);
    }

    #[test]
    fn trim_matches_scalar(
        coeffs in prop::collection::vec(prop_oneof![Just(0u64), 1u64..100], 0..40),
    ) {
        check_trim(&coeffs);
    }

    #[test]
    fn poly_blocks_match_u128_reference(
        (q, coeffs, a) in (2u64..local_simd::EVAL_POLY_MAX_Q).prop_flat_map(|q| (
            Just(q),
            prop::collection::vec(0..q, 0..8),
            0..q,
        )),
    ) {
        // a < q and q < 2^25 keep every point a..a+7 inside the exactness precondition.
        check_poly_block(&coeffs, a, q);
    }

    #[test]
    fn modq_div_rem_is_exact(
        q in 2u64..local_simd::EVAL_POLY_MAX_Q,
        c in 0..local_simd::ModQ::MAX_OPERAND,
    ) {
        let m = local_simd::ModQ::new(q);
        prop_assert_eq!(m.div_rem(c), (c / q, c % q));
    }

    #[test]
    fn modq_eval_poly_matches_u128_reference(
        (q, coeffs, a) in (2u64..local_simd::EVAL_POLY_MAX_Q).prop_flat_map(|q| (
            Just(q),
            prop::collection::vec(0..q, 0..12),
            0..q + 8, // out-of-field scan points up to q+7 are part of the contract
        )),
    ) {
        let m = local_simd::ModQ::new(q);
        prop_assert_eq!(m.eval_poly(&coeffs, a), naive_eval(&coeffs, a, q));
    }
}

//! Crash-recovery and wire-stability properties for the segment store.
//!
//! The central claim: whatever prefix of bytes a crashed writer leaves behind,
//! reopening recovers exactly the fully-written records — no more, no fewer —
//! and the store accepts appends again afterwards.

use std::fs::{self, OpenOptions};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use local_store::format::{
    crc32, decode_record, decode_segment_header, encode_record, encode_segment_header, RecordError,
    FORMAT_VERSION, SEGMENT_HEADER_LEN,
};
use local_store::{SegmentStore, StoreConfig};
use proptest::prelude::*;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("local-store-prop-{tag}-{}-{seq}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Deterministic per-index key/value pair with varied lengths.
fn pair(i: usize, value_salt: u64) -> (Vec<u8>, Vec<u8>) {
    let key = format!("cell-{i:04}-{}", "k".repeat(i % 7)).into_bytes();
    let value = format!("value-{value_salt:016x}-{}", "v".repeat((i * 3) % 23)).into_bytes();
    (key, value)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode→decode→re-encode is the identity on record bytes, for arbitrary
    /// key/value payloads (the PR 4 wire-stability discipline).
    #[test]
    fn record_encoding_is_byte_stable(key in prop::collection::vec(any::<u8>(), 0..40),
                                      value in prop::collection::vec(any::<u8>(), 0..200)) {
        let encoded = encode_record(&key, &value);
        let decoded = decode_record(&encoded).unwrap();
        prop_assert_eq!(decoded.key, key.as_slice());
        prop_assert_eq!(decoded.value, value.as_slice());
        prop_assert_eq!(decoded.consumed, encoded.len());
        let reencoded = encode_record(decoded.key, decoded.value);
        prop_assert_eq!(reencoded, encoded);
    }

    /// The segment header is a fixed constant; any single-byte change is rejected.
    #[test]
    fn segment_header_is_byte_stable(position in 0usize..SEGMENT_HEADER_LEN, flip in 1u8..255) {
        let header = encode_segment_header();
        prop_assert_eq!(decode_segment_header(&header), Ok(FORMAT_VERSION));
        let mut bent = header;
        bent[position] ^= flip;
        prop_assert_eq!(decode_segment_header(&bent), Err(RecordError::Corrupt));
    }

    /// Truncating the segment at any byte keeps exactly the fully-written
    /// record prefix: every record that ends at or before the cut survives,
    /// everything after it is gone, and the torn tail is removed from disk.
    #[test]
    fn reopen_after_any_truncation_keeps_the_whole_record_prefix(
        record_count in 1usize..24,
        value_salt in any::<u64>(),
        cut_fraction in 0.0f64..1.0,
    ) {
        let dir = temp_dir("truncate");
        let mut offsets = vec![SEGMENT_HEADER_LEN]; // record start offsets + final end
        {
            let store = SegmentStore::open(&dir).unwrap();
            for i in 0..record_count {
                let (key, value) = pair(i, value_salt);
                let written = store.append(&key, &value).unwrap();
                offsets.push(offsets.last().unwrap() + written as usize);
            }
        }
        let path = dir.join("seg-00000.bin");
        let full = fs::metadata(&path).unwrap().len() as usize;
        assert_eq!(full, *offsets.last().unwrap());
        // Cut anywhere in the record region (at or after the header).
        let cut = SEGMENT_HEADER_LEN
            + ((full - SEGMENT_HEADER_LEN) as f64 * cut_fraction) as usize;
        OpenOptions::new().write(true).open(&path).unwrap().set_len(cut as u64).unwrap();

        let store = SegmentStore::open(&dir).unwrap();
        let survivors = offsets[1..].iter().filter(|&&end| end <= cut).count();
        prop_assert_eq!(store.stats().records_indexed, survivors as u64);
        for i in 0..record_count {
            let (key, value) = pair(i, value_salt);
            if i < survivors {
                prop_assert_eq!(store.get(&key), Some(value));
            } else {
                prop_assert_eq!(store.get(&key), None);
            }
        }
        // The torn tail is physically gone: the file ends at the last whole record.
        prop_assert_eq!(fs::metadata(&path).unwrap().len() as usize, offsets[survivors]);

        // And the store takes appends again.
        store.append(b"post-recovery", b"fresh").unwrap();
        drop(store);
        let reopened = SegmentStore::open(&dir).unwrap();
        prop_assert_eq!(reopened.get(b"post-recovery"), Some(b"fresh".to_vec()));
        let _ = fs::remove_dir_all(&dir);
    }

    /// Flipping any single byte inside the record region never serves wrong
    /// data: each record either survives with its original value or is gone.
    #[test]
    fn reopen_after_any_corruption_never_serves_wrong_bytes(
        record_count in 1usize..16,
        value_salt in any::<u64>(),
        position_fraction in 0.0f64..1.0,
        flip in 1u8..255,
    ) {
        let dir = temp_dir("corrupt");
        {
            let store = SegmentStore::open(&dir).unwrap();
            for i in 0..record_count {
                let (key, value) = pair(i, value_salt);
                store.append(&key, &value).unwrap();
            }
        }
        let path = dir.join("seg-00000.bin");
        let mut bytes = fs::read(&path).unwrap();
        let position = SEGMENT_HEADER_LEN
            + ((bytes.len() - 1 - SEGMENT_HEADER_LEN) as f64 * position_fraction) as usize;
        bytes[position] ^= flip;
        fs::write(&path, &bytes).unwrap();

        let store = SegmentStore::open(&dir).unwrap();
        for i in 0..record_count {
            let (key, value) = pair(i, value_salt);
            if let Some(got) = store.get(&key) {
                prop_assert_eq!(got, value);
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// Rotation never loses records: with an aggressive threshold the same
    /// key set survives a reopen spread over many segments.
    #[test]
    fn rotation_preserves_every_record_across_reopen(
        record_count in 1usize..40,
        value_salt in any::<u64>(),
        max_segment_bytes in 64u64..512,
    ) {
        let dir = temp_dir("rotate");
        let config = StoreConfig { max_segment_bytes };
        {
            let store = SegmentStore::open_with(&dir, config).unwrap();
            for i in 0..record_count {
                let (key, value) = pair(i, value_salt);
                store.append(&key, &value).unwrap();
            }
        }
        let store = SegmentStore::open_with(&dir, config).unwrap();
        prop_assert_eq!(store.stats().records_indexed, record_count as u64);
        for i in 0..record_count {
            let (key, value) = pair(i, value_salt);
            prop_assert_eq!(store.get(&key), Some(value));
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn crc_reference_vector_holds() {
    // Locks the CRC polynomial/reflection choice: if this changes, every
    // existing store on disk becomes unreadable.
    assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
}

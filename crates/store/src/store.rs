//! The segmented append-only store: open/recover, append with rotation, keyed reads.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

use crate::format::{
    decode_record, decode_segment_header, encode_record, encode_segment_header, RecordError,
    MAX_PAYLOAD, RECORD_PRELUDE_LEN, SEGMENT_HEADER_LEN,
};

/// Default rotation threshold: segments grow to ~16 MiB before a new one opens.
pub const DEFAULT_MAX_SEGMENT_BYTES: u64 = 16 * 1024 * 1024;

/// Tuning knobs for a [`SegmentStore`].
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Rotate to a fresh segment once the current one would exceed this size.
    /// Clamped to `u32::MAX` so record offsets stay 32-bit.
    pub max_segment_bytes: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig { max_segment_bytes: DEFAULT_MAX_SEGMENT_BYTES }
    }
}

/// Counters describing a store's on-disk shape and this handle's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of segment files currently in the store.
    pub segments: u64,
    /// Records recovered into the index by the opening scan.
    pub records_indexed: u64,
    /// Records appended through this handle since open.
    pub records_appended: u64,
    /// Bytes appended through this handle since open (preludes included).
    pub bytes_appended: u64,
    /// Torn-tail bytes discarded during the opening scan.
    pub truncated_bytes: u64,
    /// Wall time the opening scan spent rebuilding the index.
    pub index_rebuild_micros: u64,
}

/// (segment id, byte offset of the record prelude within the segment).
type Loc = (u32, u32);

/// Index slot: the common case is a single record per key hash, so avoid a Vec
/// allocation until a hash actually repeats (same key overwritten, or collision).
#[derive(Debug)]
enum Slot {
    One(Loc),
    Many(Vec<Loc>),
}

impl Slot {
    fn push(&mut self, loc: Loc) {
        match self {
            Slot::One(first) => *self = Slot::Many(vec![*first, loc]),
            Slot::Many(locs) => locs.push(loc),
        }
    }

    /// Locations newest-first: later appends shadow earlier ones.
    fn newest_first(&self) -> impl Iterator<Item = Loc> + '_ {
        let locs: &[Loc] = match self {
            Slot::One(loc) => std::slice::from_ref(loc),
            Slot::Many(locs) => locs,
        };
        locs.iter().rev().copied()
    }
}

#[derive(Debug)]
struct Writer {
    id: u32,
    file: File,
    len: u64,
}

#[derive(Debug)]
struct State {
    index: HashMap<u64, Slot>,
    segment_ids: Vec<u32>,
    writer: Writer,
    readers: HashMap<u32, File>,
    stats: StoreStats,
}

/// An append-only segmented binary key/value store.
///
/// All methods take `&self`; a single internal mutex serializes index updates,
/// appends, and reads so the handle can be shared across sweep worker threads.
#[derive(Debug)]
pub struct SegmentStore {
    dir: PathBuf,
    config: StoreConfig,
    state: Mutex<State>,
}

fn segment_path(dir: &Path, id: u32) -> PathBuf {
    dir.join(format!("seg-{id:05}.bin"))
}

fn parse_segment_name(name: &str) -> Option<u32> {
    let digits = name.strip_prefix("seg-")?.strip_suffix(".bin")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1_0000_0000_01b3);
    }
    hash
}

/// Create a fresh segment file containing only the header.
fn create_segment(dir: &Path, id: u32) -> io::Result<Writer> {
    let mut file =
        OpenOptions::new().create(true).write(true).truncate(true).open(segment_path(dir, id))?;
    file.write_all(&encode_segment_header())?;
    Ok(Writer { id, file, len: SEGMENT_HEADER_LEN as u64 })
}

impl SegmentStore {
    /// Open (or create) the store at `dir` with default configuration.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<SegmentStore> {
        SegmentStore::open_with(dir, StoreConfig::default())
    }

    /// Open (or create) the store at `dir`.
    ///
    /// Opening performs recovery: every segment is scanned sequentially to
    /// rebuild the in-memory index, and a torn tail — an interrupted append or
    /// a flipped byte at the end of a segment — is truncated away so the store
    /// reopens cleanly after a crash. A damaged header is tolerated only on
    /// the newest segment (the one a crashed writer could have been creating);
    /// anywhere else it is a hard error.
    pub fn open_with(dir: impl AsRef<Path>, config: StoreConfig) -> io::Result<SegmentStore> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let config =
            StoreConfig { max_segment_bytes: config.max_segment_bytes.clamp(1, u32::MAX as u64) };

        let started = Instant::now();
        let mut ids: Vec<u32> = fs::read_dir(&dir)?
            .filter_map(|entry| entry.ok())
            .filter_map(|entry| parse_segment_name(&entry.file_name().to_string_lossy()))
            .collect();
        ids.sort_unstable();
        ids.dedup();

        let mut index: HashMap<u64, Slot> = HashMap::new();
        let mut stats = StoreStats::default();
        let last = ids.last().copied();
        for &id in &ids {
            let path = segment_path(&dir, id);
            let bytes = fs::read(&path)?;
            match decode_segment_header(&bytes) {
                Ok(_) => {}
                Err(_) if Some(id) == last => {
                    // A crash between file creation and header write leaves a
                    // short or garbled newest segment; reset it in place.
                    stats.truncated_bytes += bytes.len() as u64;
                    create_segment(&dir, id)?;
                    continue;
                }
                Err(err) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("segment {} has an invalid header ({err:?})", path.display()),
                    ));
                }
            }
            let mut offset = SEGMENT_HEADER_LEN;
            loop {
                if offset == bytes.len() {
                    break;
                }
                match decode_record(&bytes[offset..]) {
                    Ok(record) => {
                        index
                            .entry(fnv1a(record.key))
                            .and_modify(|slot| slot.push((id, offset as u32)))
                            .or_insert(Slot::One((id, offset as u32)));
                        stats.records_indexed += 1;
                        offset += record.consumed;
                    }
                    Err(_) => {
                        // Torn or corrupt tail: cut the segment back to its
                        // last whole record and carry on.
                        stats.truncated_bytes += (bytes.len() - offset) as u64;
                        OpenOptions::new().write(true).open(&path)?.set_len(offset as u64)?;
                        break;
                    }
                }
            }
        }

        let writer = match ids.last() {
            None => {
                ids.push(0);
                create_segment(&dir, 0)?
            }
            Some(&id) => {
                let mut file =
                    OpenOptions::new().read(true).write(true).open(segment_path(&dir, id))?;
                let len = file.seek(SeekFrom::End(0))?;
                Writer { id, file, len }
            }
        };

        stats.segments = ids.len() as u64;
        stats.index_rebuild_micros = started.elapsed().as_micros() as u64;
        Ok(SegmentStore {
            dir,
            config,
            state: Mutex::new(State {
                index,
                segment_ids: ids,
                writer,
                readers: HashMap::new(),
                stats,
            }),
        })
    }

    /// Directory holding the segment files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Snapshot of the store's counters.
    pub fn stats(&self) -> StoreStats {
        self.state.lock().unwrap().stats
    }

    /// Append a record, rotating to a new segment at the size threshold.
    /// Returns the encoded record length in bytes.
    pub fn append(&self, key: &[u8], value: &[u8]) -> io::Result<u64> {
        let encoded = encode_record(key, value);
        let mut state = self.state.lock().unwrap();
        let state = &mut *state;
        if state.writer.len > SEGMENT_HEADER_LEN as u64
            && state.writer.len + encoded.len() as u64 > self.config.max_segment_bytes
        {
            let next = state.writer.id + 1;
            state.writer = create_segment(&self.dir, next)?;
            state.segment_ids.push(next);
            state.stats.segments = state.segment_ids.len() as u64;
            // Drop any cached read handle for the id in case of reuse.
            state.readers.remove(&next);
        }
        let offset = state.writer.len as u32;
        state.writer.file.write_all(&encoded)?;
        state.writer.len += encoded.len() as u64;
        state
            .index
            .entry(fnv1a(key))
            .and_modify(|slot| slot.push((state.writer.id, offset)))
            .or_insert(Slot::One((state.writer.id, offset)));
        state.stats.records_appended += 1;
        state.stats.bytes_appended += encoded.len() as u64;
        Ok(encoded.len() as u64)
    }

    /// Fetch the newest value stored under `key`, if any.
    ///
    /// The index keys on a 64-bit hash; this reads the record back and compares
    /// the full key bytes, so hash collisions can never serve a foreign value.
    /// I/O errors degrade to misses, matching cache semantics.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let mut state = self.state.lock().unwrap();
        let state = &mut *state;
        let slot = state.index.get(&fnv1a(key))?;
        let candidates: Vec<Loc> = slot.newest_first().collect();
        for (segment, offset) in candidates {
            match read_record_at(&self.dir, &mut state.readers, segment, offset) {
                Ok((stored_key, value)) if stored_key == key => return Some(value),
                _ => {}
            }
        }
        None
    }

    /// Whether `key` has a stored value.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.get(key).is_some()
    }
}

/// Seek-read the record at `(segment, offset)`, verifying its CRC.
fn read_record_at(
    dir: &Path,
    readers: &mut HashMap<u32, File>,
    segment: u32,
    offset: u32,
) -> io::Result<(Vec<u8>, Vec<u8>)> {
    let file = match readers.entry(segment) {
        std::collections::hash_map::Entry::Occupied(entry) => entry.into_mut(),
        std::collections::hash_map::Entry::Vacant(entry) => {
            entry.insert(File::open(segment_path(dir, segment))?)
        }
    };
    file.seek(SeekFrom::Start(offset as u64))?;
    let mut prelude = [0u8; RECORD_PRELUDE_LEN];
    file.read_exact(&mut prelude)?;
    let payload_len = u32::from_le_bytes([prelude[0], prelude[1], prelude[2], prelude[3]]) as usize;
    if !(2..=MAX_PAYLOAD).contains(&payload_len) {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad record length"));
    }
    let mut buf = vec![0u8; RECORD_PRELUDE_LEN + payload_len];
    buf[..RECORD_PRELUDE_LEN].copy_from_slice(&prelude);
    file.read_exact(&mut buf[RECORD_PRELUDE_LEN..])?;
    let record = decode_record(&buf).map_err(|err: RecordError| {
        io::Error::new(io::ErrorKind::InvalidData, format!("record at {segment}:{offset}: {err:?}"))
    })?;
    Ok((record.key.to_vec(), record.value.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("local-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_then_get_round_trips() {
        let dir = temp_dir("round-trip");
        let store = SegmentStore::open(&dir).unwrap();
        store.append(b"alpha", b"first").unwrap();
        store.append(b"beta", b"second").unwrap();
        assert_eq!(store.get(b"alpha").as_deref(), Some(b"first".as_slice()));
        assert_eq!(store.get(b"beta").as_deref(), Some(b"second".as_slice()));
        assert_eq!(store.get(b"gamma"), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn newest_append_shadows_older_values_across_reopen() {
        let dir = temp_dir("shadow");
        {
            let store = SegmentStore::open(&dir).unwrap();
            store.append(b"key", b"v1").unwrap();
            store.append(b"key", b"v2").unwrap();
            assert_eq!(store.get(b"key").as_deref(), Some(b"v2".as_slice()));
        }
        let reopened = SegmentStore::open(&dir).unwrap();
        assert_eq!(reopened.get(b"key").as_deref(), Some(b"v2".as_slice()));
        assert_eq!(reopened.stats().records_indexed, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_splits_records_across_segments_and_reopen_sees_all() {
        let dir = temp_dir("rotation");
        let config = StoreConfig { max_segment_bytes: 128 };
        let keys: Vec<String> = (0..40).map(|i| format!("cell-{i:03}")).collect();
        {
            let store = SegmentStore::open_with(&dir, config).unwrap();
            for key in &keys {
                store.append(key.as_bytes(), format!("value-of-{key}").as_bytes()).unwrap();
            }
            assert!(store.stats().segments > 1, "tiny threshold must rotate");
        }
        let reopened = SegmentStore::open_with(&dir, config).unwrap();
        assert_eq!(reopened.stats().records_indexed, keys.len() as u64);
        for key in &keys {
            assert_eq!(reopened.get(key.as_bytes()), Some(format!("value-of-{key}").into_bytes()));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn an_oversized_record_never_rotates_forever() {
        // A record larger than max_segment_bytes must still land (in its own
        // segment) rather than rotate endlessly.
        let dir = temp_dir("oversized");
        let store = SegmentStore::open_with(&dir, StoreConfig { max_segment_bytes: 64 }).unwrap();
        let big = vec![7u8; 256];
        store.append(b"big", &big).unwrap();
        store.append(b"big2", &big).unwrap();
        assert_eq!(store.get(b"big").as_deref(), Some(big.as_slice()));
        assert_eq!(store.get(b"big2").as_deref(), Some(big.as_slice()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_store_accepts_new_appends() {
        let dir = temp_dir("torn-tail");
        {
            let store = SegmentStore::open(&dir).unwrap();
            store.append(b"whole", b"kept").unwrap();
            store.append(b"torn", b"lost").unwrap();
        }
        // Tear the last record: chop 3 bytes off the tail.
        let path = segment_path(&dir, 0);
        let len = fs::metadata(&path).unwrap().len();
        OpenOptions::new().write(true).open(&path).unwrap().set_len(len - 3).unwrap();

        let store = SegmentStore::open(&dir).unwrap();
        assert_eq!(store.get(b"whole").as_deref(), Some(b"kept".as_slice()));
        assert_eq!(store.get(b"torn"), None);
        assert!(store.stats().truncated_bytes > 0);
        store.append(b"torn", b"rewritten").unwrap();
        assert_eq!(store.get(b"torn").as_deref(), Some(b"rewritten".as_slice()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn headerless_newest_segment_is_reset_in_place() {
        let dir = temp_dir("headerless");
        {
            let store = SegmentStore::open(&dir).unwrap();
            store.append(b"key", b"value").unwrap();
        }
        // Simulate a crash during rotation: the next segment file exists but
        // holds only half a header.
        fs::write(segment_path(&dir, 1), b"LSTO").unwrap();
        let store = SegmentStore::open(&dir).unwrap();
        assert_eq!(store.get(b"key").as_deref(), Some(b"value".as_slice()));
        assert_eq!(store.stats().segments, 2);
        store.append(b"key2", b"value2").unwrap();
        drop(store);
        let reopened = SegmentStore::open(&dir).unwrap();
        assert_eq!(reopened.get(b"key2").as_deref(), Some(b"value2".as_slice()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_header_on_an_interior_segment_is_a_hard_error() {
        let dir = temp_dir("bad-interior");
        let config = StoreConfig { max_segment_bytes: 64 };
        {
            let store = SegmentStore::open_with(&dir, config).unwrap();
            for i in 0..8 {
                store.append(format!("k{i}").as_bytes(), b"0123456789abcdef").unwrap();
            }
            assert!(store.stats().segments >= 3);
        }
        let mut bytes = fs::read(segment_path(&dir, 0)).unwrap();
        bytes[0] ^= 0xFF;
        fs::write(segment_path(&dir, 0), &bytes).unwrap();
        let err = SegmentStore::open_with(&dir, config).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn colliding_hashes_cannot_serve_a_foreign_value() {
        // Force every key into one slot by storing distinct keys, then verify
        // each lookup compares full key bytes (Many-slot path).
        let dir = temp_dir("collision");
        let store = SegmentStore::open(&dir).unwrap();
        store.append(b"same", b"v1").unwrap();
        store.append(b"same", b"v2").unwrap();
        store.append(b"same", b"v3").unwrap();
        assert_eq!(store.get(b"same").as_deref(), Some(b"v3".as_slice()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_track_appends_and_bytes() {
        let dir = temp_dir("stats");
        let store = SegmentStore::open(&dir).unwrap();
        let written = store.append(b"key", b"value").unwrap();
        let stats = store.stats();
        assert_eq!(stats.records_appended, 1);
        assert_eq!(stats.bytes_appended, written);
        assert_eq!(stats.segments, 1);
        let _ = fs::remove_dir_all(&dir);
    }
}

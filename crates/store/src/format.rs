//! On-disk format for store segments: header and record encoding.
//!
//! Everything in this module is pure — byte slices in, byte vectors out — so the
//! wire format can be locked down by byte-identity proptests without touching a
//! filesystem. The layout is fixed little-endian:
//!
//! ```text
//! segment  := header record*
//! header   := magic[8] version:u32 reserved:u32          (16 bytes)
//! record   := payload_len:u32 crc:u32 payload            (8-byte prelude)
//! payload  := key_len:u16 key[key_len] value[..]
//! ```
//!
//! `crc` is CRC-32 (IEEE, reflected, polynomial 0xEDB88320) over the payload
//! bytes only. A record is valid iff the prelude is complete, `payload_len`
//! bytes follow, the CRC matches, and the embedded `key_len` fits the payload.

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: [u8; 8] = *b"LSTORE01";

/// Current on-disk format version, written into every segment header.
pub const FORMAT_VERSION: u32 = 1;

/// Size in bytes of the fixed segment header.
pub const SEGMENT_HEADER_LEN: usize = 16;

/// Size in bytes of the fixed per-record prelude (length + CRC).
pub const RECORD_PRELUDE_LEN: usize = 8;

/// Upper bound on a single record payload; anything larger is treated as
/// corruption rather than an allocation request.
pub const MAX_PAYLOAD: usize = 1 << 28;

/// Why a record failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordError {
    /// The buffer ends before the record does: a torn tail from an interrupted
    /// append. Recovery truncates here and the store stays usable.
    Truncated,
    /// The bytes are complete but wrong (CRC mismatch, oversized length,
    /// key length overflowing the payload). Recovery also truncates here, but
    /// the distinction is kept for diagnostics.
    Corrupt,
}

/// CRC-32 (IEEE) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE, reflected) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Encode the fixed segment header.
pub fn encode_segment_header() -> [u8; SEGMENT_HEADER_LEN] {
    let mut out = [0u8; SEGMENT_HEADER_LEN];
    out[..8].copy_from_slice(&SEGMENT_MAGIC);
    out[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    // bytes 12..16 reserved, zero
    out
}

/// Validate a segment header. Returns the format version on success.
pub fn decode_segment_header(bytes: &[u8]) -> Result<u32, RecordError> {
    if bytes.len() < SEGMENT_HEADER_LEN {
        return Err(RecordError::Truncated);
    }
    if bytes[..8] != SEGMENT_MAGIC {
        return Err(RecordError::Corrupt);
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version != FORMAT_VERSION {
        return Err(RecordError::Corrupt);
    }
    if bytes[12..16] != [0, 0, 0, 0] {
        return Err(RecordError::Corrupt);
    }
    Ok(version)
}

/// Encode one record (`prelude + payload`) for `key` / `value`.
///
/// # Panics
/// Panics if the key exceeds `u16::MAX` bytes or the payload exceeds
/// [`MAX_PAYLOAD`]; both are programming errors, not data errors.
pub fn encode_record(key: &[u8], value: &[u8]) -> Vec<u8> {
    assert!(key.len() <= u16::MAX as usize, "store key too long: {} bytes", key.len());
    let payload_len = 2 + key.len() + value.len();
    assert!(payload_len <= MAX_PAYLOAD, "store payload too long: {payload_len} bytes");
    let mut out = Vec::with_capacity(RECORD_PRELUDE_LEN + payload_len);
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    out.extend_from_slice(&[0, 0, 0, 0]); // CRC backfilled below
    out.extend_from_slice(&(key.len() as u16).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(value);
    let crc = crc32(&out[RECORD_PRELUDE_LEN..]);
    out[4..8].copy_from_slice(&crc.to_le_bytes());
    out
}

/// A record decoded in place from a segment buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordRef<'a> {
    /// Key bytes, borrowed from the segment buffer.
    pub key: &'a [u8],
    /// Value bytes, borrowed from the segment buffer.
    pub value: &'a [u8],
    /// Total encoded length (prelude + payload) — the cursor advance.
    pub consumed: usize,
}

/// Decode the record starting at `bytes[0]`.
pub fn decode_record(bytes: &[u8]) -> Result<RecordRef<'_>, RecordError> {
    if bytes.len() < RECORD_PRELUDE_LEN {
        return Err(RecordError::Truncated);
    }
    let payload_len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
    if !(2..=MAX_PAYLOAD).contains(&payload_len) {
        return Err(RecordError::Corrupt);
    }
    let stored_crc = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    let end = RECORD_PRELUDE_LEN + payload_len;
    if bytes.len() < end {
        return Err(RecordError::Truncated);
    }
    let payload = &bytes[RECORD_PRELUDE_LEN..end];
    if crc32(payload) != stored_crc {
        return Err(RecordError::Corrupt);
    }
    let key_len = u16::from_le_bytes([payload[0], payload[1]]) as usize;
    if 2 + key_len > payload.len() {
        return Err(RecordError::Corrupt);
    }
    Ok(RecordRef { key: &payload[2..2 + key_len], value: &payload[2 + key_len..], consumed: end })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn header_round_trips_and_is_fixed_width() {
        let header = encode_segment_header();
        assert_eq!(header.len(), SEGMENT_HEADER_LEN);
        assert_eq!(decode_segment_header(&header), Ok(FORMAT_VERSION));
    }

    #[test]
    fn header_rejects_bad_magic_version_and_reserved_bytes() {
        let good = encode_segment_header();
        assert_eq!(decode_segment_header(&good[..15]), Err(RecordError::Truncated));
        let mut bad = good;
        bad[0] ^= 1;
        assert_eq!(decode_segment_header(&bad), Err(RecordError::Corrupt));
        let mut bad = good;
        bad[8] = 2;
        assert_eq!(decode_segment_header(&bad), Err(RecordError::Corrupt));
        let mut bad = good;
        bad[15] = 1;
        assert_eq!(decode_segment_header(&bad), Err(RecordError::Corrupt));
    }

    #[test]
    fn record_round_trips_keys_and_values() {
        let encoded = encode_record(b"cell-123", b"some value bytes");
        let record = decode_record(&encoded).unwrap();
        assert_eq!(record.key, b"cell-123");
        assert_eq!(record.value, b"some value bytes");
        assert_eq!(record.consumed, encoded.len());
    }

    #[test]
    fn empty_key_and_value_still_encode_a_valid_record() {
        let encoded = encode_record(b"", b"");
        let record = decode_record(&encoded).unwrap();
        assert_eq!(record.key, b"");
        assert_eq!(record.value, b"");
    }

    #[test]
    fn truncated_records_report_truncation_not_corruption() {
        let encoded = encode_record(b"key", b"value");
        for cut in 0..encoded.len() {
            assert_eq!(decode_record(&encoded[..cut]), Err(RecordError::Truncated), "cut at {cut}");
        }
    }

    #[test]
    fn any_flipped_byte_is_detected() {
        let encoded = encode_record(b"key", b"value bytes under test");
        for i in 0..encoded.len() {
            let mut bent = encoded.clone();
            bent[i] ^= 0x40;
            if let Ok(record) = decode_record(&bent) {
                panic!("flip at {i} went undetected: {record:?}");
            }
        }
    }
}

//! `local-store`: an append-only segmented binary result store.
//!
//! Sweeps over million-cell grids (workload × family × size × seed ×
//! knowledge-regime) outgrow the one-JSON-file-per-cell cache long before they
//! outgrow the disk: filesystem metadata becomes the bottleneck. This crate
//! replaces that layout with a handful of append-only segment files:
//!
//! ```text
//! store-dir/
//!   seg-00000.bin      header | record | record | ...
//!   seg-00001.bin      header | record | ...        (rotated at ~16 MiB)
//! ```
//!
//! Each segment opens with a fixed `LSTORE01` magic + version header; each
//! record is a length-prefixed, CRC-32-checked key/value payload. The in-memory
//! index (64-bit key hash → record locations) is rebuilt by one sequential scan
//! per segment on open, and a torn tail — the half-written record a crashed
//! writer leaves behind — is truncated away so the store always reopens to its
//! last complete record. Reads verify full key bytes, so hash collisions can
//! never serve a foreign value.
//!
//! The crate is deliberately std-only and knows nothing about cells or sweeps;
//! `local-engine` layers its result encoding and the `ResultStore` trait on top.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod format;
mod store;

pub use store::{SegmentStore, StoreConfig, StoreStats, DEFAULT_MAX_SEGMENT_BYTES};

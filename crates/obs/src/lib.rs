//! # local-obs — dependency-free structured observability
//!
//! A small tracing/metrics substrate shared by the simulator runtime, the sweep engine,
//! and its backends. Design constraints, in order:
//!
//! 1. **No-op when disabled.** A single relaxed atomic load ([`is_enabled`]) guards every
//!    recording call; instrumented hot paths pay nothing else when tracing is off, and the
//!    deterministic sweep outputs are byte-identical either way.
//! 2. **Zero allocations in steady state when enabled.** Metric identities are static
//!    ([`MetricId`] indexes a compile-time name table), labels are interned once up front
//!    ([`label`]), and events land in fixed-capacity per-thread buffers that are
//!    preallocated at [`enable`] time. When a buffer fills, further events are counted as
//!    dropped rather than grown — the counting-allocator assertion over the alternation
//!    hot path holds with tracing enabled.
//! 3. **Mergeable across processes.** Worker subprocesses ship their span buffers home as
//!    plain data; the coordinator stitches them into its own collector with
//!    [`import_track`], one track per worker thread, so one Chrome trace shows the whole
//!    fleet.
//!
//! Recording API: [`span`] (RAII), [`complete`] (explicit start/duration),
//! [`record`] (timestamped value), [`counter_add`] / [`gauge_max`] (process-global
//! aggregates). Export API: [`snapshot`] → [`Snapshot`] with Chrome-trace / NDJSON /
//! folded-stack renderers in [`export`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ------------------------------------------------------------------ metric registry ---------

/// Identity of a pre-registered metric: an index into the static [`metrics::NAMES`] table.
///
/// Using a `u16` index instead of a string keeps events `Copy` and recording allocation-free.
/// All metrics are declared up front in [`metrics`]; there is no dynamic registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MetricId(pub u16);

impl MetricId {
    /// The registered name of this metric.
    pub fn name(self) -> &'static str {
        metrics::NAMES[self.0 as usize]
    }
}

/// The static metric registry. Span metrics time phases; counter metrics aggregate
/// process-wide totals; value metrics attach a number to a point in time.
pub mod metrics {
    use super::MetricId;

    /// Whole-cell span (instance lookup + attempt + prune + verify). Container for the
    /// phase spans below; folded output skips it to avoid double counting.
    pub const CELL: MetricId = MetricId(0);
    /// Graph-instance generation span, labeled by family.
    pub const INSTANCE_GEN: MetricId = MetricId(1);
    /// Uniform-algorithm attempt span within a cell.
    pub const ATTEMPT: MetricId = MetricId(2);
    /// Pruning span within a cell.
    pub const PRUNE: MetricId = MetricId(3);
    /// Output-verification span within a cell (cell wall time not in attempt/prune).
    pub const VERIFY: MetricId = MetricId(4);
    /// Counter: messages delivered by the round engine.
    pub const MESSAGES_SENT: MetricId = MetricId(5);
    /// Counter: synchronous rounds executed.
    pub const ROUNDS: MetricId = MetricId(6);
    /// Value: nodes still active at the end of a round.
    pub const ACTIVE_NODES: MetricId = MetricId(7);
    /// Gauge (max): high-water mark of live message arcs in the session arena.
    pub const ARENA_ARCS: MetricId = MetricId(8);
    /// Counter: sweep cells completed.
    pub const CELLS_DONE: MetricId = MetricId(9);
    /// Counter: sweep cells served from the result cache.
    pub const CACHE_HITS: MetricId = MetricId(10);
    /// Value: observed wall micros for one cell, labeled by the cell label.
    pub const CELL_MICROS: MetricId = MetricId(11);
    /// Value: CostModel-predicted micros for one cell, labeled by the cell label.
    /// Shares the registry with [`CELL_MICROS`] so predicted vs. observed joins on label.
    pub const PREDICTED_MICROS: MetricId = MetricId(12);
    /// Gauge (max): peak resident set size of the process in KiB, sampled from the OS via
    /// [`super::sample_peak_rss_kb`].
    pub const PEAK_RSS_KB: MetricId = MetricId(13);
    /// Counter: successful backend connections to remote workers (network backend).
    pub const NET_CONNECTS: MetricId = MetricId(14);
    /// Counter: connect/reconnect attempts that had to be retried (backoff iterations,
    /// scripted refusals, re-sent sub-shards after a mid-stream failure).
    pub const NET_RETRIES: MetricId = MetricId(15);
    /// Counter: cells re-executed by the in-process rescue path after a worker failure.
    pub const RESCUED_CELLS: MetricId = MetricId(16);
    /// Counter: cells a failed worker left behind that were re-dispatched to (and completed
    /// by) a healthy remote peer instead of falling back in-process.
    pub const REDISPATCHED_CELLS: MetricId = MetricId(17);
    /// Counter: faults fired by the deterministic fault-injection layer (`LOCAL_FAULTS`),
    /// counted where the fault actually executes (worker side for stream faults, parent
    /// side for scripted connect refusals).
    pub const FAULTS_INJECTED: MetricId = MetricId(18);
    /// Value: per-worker connection state transition, labeled by the worker
    /// (`1` = connected/healthy, `0` = declared dead).
    pub const WORKER_STATE: MetricId = MetricId(19);
    /// Counter: sweep jobs accepted by the multi-client coordinator.
    pub const COORD_JOBS: MetricId = MetricId(20);
    /// Gauge (max): peak number of jobs simultaneously admitted (queued or running)
    /// by the coordinator.
    pub const COORD_JOBS_ACTIVE: MetricId = MetricId(21);
    /// Counter: cells the coordinator dispatched to fleet daemons (re-dispatches of a
    /// failed peer's remainder count again — this is assignments, not cells).
    pub const COORD_CELLS_ASSIGNED: MetricId = MetricId(22);
    /// Counter: cells verified off a fleet stream and forwarded to the submitting client.
    pub const COORD_CELLS_VERIFIED: MetricId = MetricId(23);
    /// Counter: summed microseconds stripes spent queued before dispatch; also recorded
    /// per dispatch as a value event labeled by the client.
    pub const COORD_QUEUE_WAIT_MICROS: MetricId = MetricId(24);
    /// Gauge (max): peak number of fleet peers simultaneously serving a stripe
    /// (fleet utilization high-water mark).
    pub const COORD_FLEET_BUSY: MetricId = MetricId(25);
    /// Gauge (max): segment files in the binary result store.
    pub const STORE_SEGMENTS: MetricId = MetricId(26);
    /// Counter: records appended to the binary result store.
    pub const STORE_RECORDS: MetricId = MetricId(27);
    /// Counter: bytes appended to the binary result store (record preludes included).
    pub const STORE_BYTES: MetricId = MetricId(28);
    /// Counter: microseconds the opening scan spent rebuilding the store index.
    pub const STORE_INDEX_REBUILD_MICROS: MetricId = MetricId(29);
    /// Counter: result-store lookups that found a stored cell.
    pub const STORE_HITS: MetricId = MetricId(30);
    /// Counter: result-store lookups that missed.
    pub const STORE_MISSES: MetricId = MetricId(31);

    /// Names, indexed by [`MetricId`]. Order is append-only: these names are wire- and
    /// trace-visible, so existing entries must never be renamed or reordered.
    pub const NAMES: &[&str] = &[
        "cell",
        "instance-gen",
        "attempt",
        "prune",
        "verify",
        "messages-sent",
        "rounds",
        "active-nodes",
        "arena-arcs",
        "cells-done",
        "cache-hits",
        "cell-micros",
        "predicted-micros",
        "peak-rss-kb",
        "net-connects",
        "net-retries",
        "rescued-cells",
        "redispatched-cells",
        "faults-injected",
        "worker-state",
        "coord-jobs",
        "coord-jobs-active",
        "coord-cells-assigned",
        "coord-cells-verified",
        "coord-queue-wait-micros",
        "coord-fleet-busy-peers",
        "store-segments",
        "store-records-appended",
        "store-bytes-written",
        "store-index-rebuild-micros",
        "store-hits",
        "store-misses",
    ];
}

/// Number of registered metrics.
pub const METRIC_COUNT: usize = metrics::NAMES.len();

/// Looks a metric up by its registered name (used when merging worker telemetry, where
/// metrics cross the process boundary as strings). Unknown names — e.g. from a newer
/// worker — return `None` and are skipped by the merge.
pub fn metric_by_name(name: &str) -> Option<MetricId> {
    metrics::NAMES.iter().position(|&n| n == name).map(|i| MetricId(i as u16))
}

// ------------------------------------------------------------------ events -----------------

/// An interned label. `LabelId::NONE` means "no label"; anything else indexes the
/// collector's intern table. Intern once (at setup or per cell), reuse in hot loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelId(u32);

impl LabelId {
    /// The empty label.
    pub const NONE: LabelId = LabelId(0);
}

/// What an [`Event`] means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A time range: `start_micros .. start_micros + dur_micros`.
    Span,
    /// A number observed at `start_micros`; `dur_micros` is 0.
    Value,
}

/// One recorded event. `Copy` and fixed-size so buffers never allocate per event.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Which metric.
    pub metric: MetricId,
    /// Interned label (or [`LabelId::NONE`]).
    pub label: LabelId,
    /// Microseconds since the collector epoch.
    pub start_micros: u64,
    /// Span duration in microseconds (0 for values).
    pub dur_micros: u64,
    /// Attached value (0 for plain spans).
    pub value: u64,
    /// Span or value.
    pub kind: EventKind,
}

/// Default per-thread event-buffer capacity (events, not bytes).
pub const DEFAULT_EVENT_CAPACITY: usize = 64 * 1024;

// ------------------------------------------------------------------ collector ---------------

/// Per-thread event buffer, registered with the global collector on first use.
struct TrackBuf {
    name: Mutex<String>,
    events: Mutex<Vec<Event>>,
    dropped: AtomicU64,
}

impl TrackBuf {
    fn push(&self, event: Event) {
        let mut events = self.events.lock().expect("track buffer poisoned");
        if events.len() < events.capacity() {
            events.push(event);
        } else {
            drop(events);
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// An event imported from another process (a worker's span dump) or resolved out of a
/// snapshot: same shape as [`Event`] but with owned strings instead of table indices.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Metric name.
    pub metric: String,
    /// Label text ("" for none).
    pub label: String,
    /// Microseconds since the *exporting* collector's epoch (import applies an offset).
    pub start_micros: u64,
    /// Span duration in microseconds.
    pub dur_micros: u64,
    /// Attached value.
    pub value: u64,
    /// True for spans, false for values.
    pub is_span: bool,
}

/// A fully-resolved track: a named event stream (one per thread, plus imported ones).
#[derive(Debug, Clone)]
pub struct TrackSnapshot {
    /// Track name ("coordinator", "thread-2", "worker 1 thread-0", ...).
    pub name: String,
    /// Events in recording order.
    pub events: Vec<EventRecord>,
}

/// Everything the collector holds, with ids resolved to strings. Feed to the renderers in
/// [`export`].
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// All tracks with at least one event.
    pub tracks: Vec<TrackSnapshot>,
    /// Non-zero counters/gauges, in registry order.
    pub counters: Vec<(String, u64)>,
    /// Events lost to full buffers.
    pub dropped: u64,
}

impl Snapshot {
    /// True when nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.tracks.is_empty() && self.counters.is_empty()
    }

    /// Total events across all tracks.
    pub fn event_count(&self) -> usize {
        self.tracks.iter().map(|t| t.events.len()).sum()
    }
}

struct LabelTable {
    names: Vec<Arc<str>>,
    index: HashMap<Arc<str>, u32>,
}

struct Collector {
    epoch: Instant,
    capacity: Mutex<usize>,
    counters: Vec<AtomicU64>,
    tracks: Mutex<Vec<Arc<TrackBuf>>>,
    labels: Mutex<LabelTable>,
    imported: Mutex<Vec<TrackSnapshot>>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static COLLECTOR: OnceLock<Collector> = OnceLock::new();

fn collector() -> &'static Collector {
    COLLECTOR.get_or_init(|| Collector {
        epoch: Instant::now(),
        capacity: Mutex::new(DEFAULT_EVENT_CAPACITY),
        counters: (0..METRIC_COUNT).map(|_| AtomicU64::new(0)).collect(),
        tracks: Mutex::new(Vec::new()),
        labels: Mutex::new(LabelTable { names: Vec::new(), index: HashMap::new() }),
        imported: Mutex::new(Vec::new()),
    })
}

thread_local! {
    static TRACK: OnceLock<Arc<TrackBuf>> = const { OnceLock::new() };
}

fn with_track<R>(f: impl FnOnce(&TrackBuf) -> R) -> R {
    TRACK.with(|cell| {
        let track = cell.get_or_init(|| {
            let c = collector();
            let capacity = *c.capacity.lock().expect("capacity poisoned");
            let mut tracks = c.tracks.lock().expect("tracks poisoned");
            let buf = Arc::new(TrackBuf {
                name: Mutex::new(format!("thread-{}", tracks.len())),
                events: Mutex::new(Vec::with_capacity(capacity)),
                dropped: AtomicU64::new(0),
            });
            tracks.push(Arc::clone(&buf));
            buf
        });
        f(track)
    })
}

// ------------------------------------------------------------------ lifecycle ---------------

/// Is the observability layer recording? One relaxed load; the entire cost of the layer
/// when disabled.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on with the default per-thread buffer capacity.
pub fn enable() {
    enable_with_capacity(DEFAULT_EVENT_CAPACITY);
}

/// Turns recording on. Threads that first record after this call get buffers of
/// `capacity` events; when a buffer fills, events are dropped (and counted), never grown.
pub fn enable_with_capacity(capacity: usize) {
    let c = collector();
    *c.capacity.lock().expect("capacity poisoned") = capacity.max(16);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns recording off. Buffers keep their contents for [`snapshot`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Clears all recorded events, counters, labels, and imported tracks (buffers and their
/// registrations survive). Primarily for tests.
pub fn reset() {
    let c = collector();
    for counter in &c.counters {
        counter.store(0, Ordering::Relaxed);
    }
    for track in c.tracks.lock().expect("tracks poisoned").iter() {
        track.events.lock().expect("track buffer poisoned").clear();
        track.dropped.store(0, Ordering::Relaxed);
    }
    let mut labels = c.labels.lock().expect("labels poisoned");
    labels.names.clear();
    labels.index.clear();
    c.imported.lock().expect("imported poisoned").clear();
}

/// Microseconds since the collector epoch (process start, effectively). Monotonic.
pub fn now_micros() -> u64 {
    collector().epoch.elapsed().as_micros() as u64
}

/// Names the current thread's track in exported traces ("coordinator", "worker 2", ...).
pub fn set_track_name(name: &str) {
    if !is_enabled() {
        return;
    }
    with_track(|t| {
        let mut n = t.name.lock().expect("track name poisoned");
        n.clear();
        n.push_str(name);
    });
}

// ------------------------------------------------------------------ recording ---------------

/// Interns `text` and returns its id. Allocates on first sight of a string — call at
/// setup or per cell, not per round, and reuse the id. Returns [`LabelId::NONE`] when
/// disabled.
pub fn label(text: &str) -> LabelId {
    if !is_enabled() {
        return LabelId::NONE;
    }
    let mut labels = collector().labels.lock().expect("labels poisoned");
    if let Some(&id) = labels.index.get(text) {
        return LabelId(id);
    }
    let arc: Arc<str> = Arc::from(text);
    labels.names.push(Arc::clone(&arc));
    let id = labels.names.len() as u32; // ids are 1-based; 0 is NONE
    labels.index.insert(arc, id);
    LabelId(id)
}

/// Adds `delta` to a process-global counter. Allocation-free.
#[inline]
pub fn counter_add(metric: MetricId, delta: u64) {
    if !is_enabled() {
        return;
    }
    collector().counters[metric.0 as usize].fetch_add(delta, Ordering::Relaxed);
}

/// Raises a process-global gauge to at least `value` (high-water mark). Allocation-free.
#[inline]
pub fn gauge_max(metric: MetricId, value: u64) {
    if !is_enabled() {
        return;
    }
    collector().counters[metric.0 as usize].fetch_max(value, Ordering::Relaxed);
}

/// Samples the process's peak resident set size in KiB (Linux `VmHWM` from
/// `/proc/self/status`; 0 on platforms without procfs) and raises the
/// [`metrics::PEAK_RSS_KB`] gauge to it when tracing is enabled. Returns the sampled value
/// either way, so callers can report memory without arming the recorder. Call it at the
/// points whose footprint matters (after a sweep, after graph generation): `VmHWM` is a
/// high-water mark, so the gauge ends up at the true process-lifetime peak regardless.
pub fn sample_peak_rss_kb() -> u64 {
    let status = match std::fs::read_to_string("/proc/self/status") {
        Ok(status) => status,
        Err(_) => return 0,
    };
    let kb = status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse::<u64>().ok())
        .unwrap_or(0);
    gauge_max(metrics::PEAK_RSS_KB, kb);
    kb
}

/// Current value of a counter/gauge (0 when disabled or never touched).
pub fn counter_value(metric: MetricId) -> u64 {
    match COLLECTOR.get() {
        Some(c) => c.counters[metric.0 as usize].load(Ordering::Relaxed),
        None => 0,
    }
}

/// Records a timestamped value event on the current thread's track. Allocation-free in
/// steady state (buffer preallocated, events dropped when full).
#[inline]
pub fn record(metric: MetricId, label: LabelId, value: u64) {
    if !is_enabled() {
        return;
    }
    let event = Event {
        metric,
        label,
        start_micros: now_micros(),
        dur_micros: 0,
        value,
        kind: EventKind::Value,
    };
    with_track(|t| t.push(event));
}

/// Records a completed span with an explicit start and duration — for phases whose
/// boundaries were measured independently (e.g. rebuilt from per-cell micros fields).
#[inline]
pub fn complete(metric: MetricId, label: LabelId, start_micros: u64, dur_micros: u64) {
    complete_with_value(metric, label, start_micros, dur_micros, 0);
}

/// [`complete`] with an attached value.
#[inline]
pub fn complete_with_value(
    metric: MetricId,
    label: LabelId,
    start_micros: u64,
    dur_micros: u64,
    value: u64,
) {
    if !is_enabled() {
        return;
    }
    let event = Event { metric, label, start_micros, dur_micros, value, kind: EventKind::Span };
    with_track(|t| t.push(event));
}

/// Opens a span that records itself when dropped. When disabled this is free (the guard
/// is disarmed and drop does nothing).
#[inline]
pub fn span(metric: MetricId, label: LabelId) -> SpanGuard {
    let armed = is_enabled();
    SpanGuard { metric, label, start_micros: if armed { now_micros() } else { 0 }, armed }
}

/// RAII guard returned by [`span`]; records a complete span event on drop.
#[must_use = "a span guard records its span when dropped"]
pub struct SpanGuard {
    metric: MetricId,
    label: LabelId,
    start_micros: u64,
    armed: bool,
}

impl SpanGuard {
    /// Discards the span without recording it.
    pub fn cancel(mut self) {
        self.armed = false;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed && is_enabled() {
            let dur = now_micros().saturating_sub(self.start_micros);
            complete(self.metric, self.label, self.start_micros, dur);
        }
    }
}

// ------------------------------------------------------------------ merge & snapshot --------

/// Adds a foreign track (a worker thread's event stream) to the collector, shifting its
/// timestamps by `offset_micros` so worker-local time lands on this process's timeline.
/// No-op when disabled.
pub fn import_track(name: String, events: Vec<EventRecord>, offset_micros: u64) {
    if !is_enabled() {
        return;
    }
    let shifted = events
        .into_iter()
        .map(|mut e| {
            e.start_micros = e.start_micros.saturating_add(offset_micros);
            e
        })
        .collect();
    collector()
        .imported
        .lock()
        .expect("imported poisoned")
        .push(TrackSnapshot { name, events: shifted });
}

/// Folds a counter that arrived by name from another process into the matching local
/// counter. Returns false (and does nothing) for unknown names. No-op when disabled.
pub fn merge_counter_by_name(name: &str, value: u64) -> bool {
    match metric_by_name(name) {
        Some(id) => {
            counter_add(id, value);
            true
        }
        None => false,
    }
}

/// Current non-zero counter/gauge totals by name — a light snapshot for periodic
/// heartbeats (no event buffers are touched or cloned).
pub fn counter_totals() -> Vec<(String, u64)> {
    match COLLECTOR.get() {
        None => Vec::new(),
        Some(c) => metrics::NAMES
            .iter()
            .enumerate()
            .filter_map(|(i, &name)| {
                let v = c.counters[i].load(Ordering::Relaxed);
                (v != 0).then(|| (name.to_string(), v))
            })
            .collect(),
    }
}

/// Resolves every buffer into an owned [`Snapshot`]: per-thread tracks (with label ids
/// resolved), imported worker tracks, non-zero counters, and the dropped-event total.
/// Does not clear anything; call [`reset`] for that.
pub fn snapshot() -> Snapshot {
    let c = collector();
    let labels = c.labels.lock().expect("labels poisoned");
    let resolve = |id: LabelId| -> String {
        if id.0 == 0 {
            String::new()
        } else {
            labels.names.get(id.0 as usize - 1).map(|s| s.to_string()).unwrap_or_default()
        }
    };
    let mut tracks = Vec::new();
    let mut dropped = 0;
    for buf in c.tracks.lock().expect("tracks poisoned").iter() {
        dropped += buf.dropped.load(Ordering::Relaxed);
        let events = buf.events.lock().expect("track buffer poisoned");
        if events.is_empty() {
            continue;
        }
        tracks.push(TrackSnapshot {
            name: buf.name.lock().expect("track name poisoned").clone(),
            events: events
                .iter()
                .map(|e| EventRecord {
                    metric: e.metric.name().to_string(),
                    label: resolve(e.label),
                    start_micros: e.start_micros,
                    dur_micros: e.dur_micros,
                    value: e.value,
                    is_span: e.kind == EventKind::Span,
                })
                .collect(),
        });
    }
    drop(labels);
    tracks.extend(c.imported.lock().expect("imported poisoned").iter().cloned());
    let counters = metrics::NAMES
        .iter()
        .enumerate()
        .filter_map(|(i, &name)| {
            let v = c.counters[i].load(Ordering::Relaxed);
            (v != 0).then(|| (name.to_string(), v))
        })
        .collect();
    Snapshot { tracks, counters, dropped }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Obs state is process-global; tests that enable/reset it must not interleave.
    pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|poison| poison.into_inner())
    }

    #[test]
    fn disabled_layer_records_nothing() {
        let _g = locked();
        disable();
        reset();
        counter_add(metrics::MESSAGES_SENT, 5);
        record(metrics::ACTIVE_NODES, LabelId::NONE, 7);
        let _span = span(metrics::ATTEMPT, LabelId::NONE);
        drop(_span);
        assert_eq!(label("anything"), LabelId::NONE);
        assert_eq!(counter_value(metrics::MESSAGES_SENT), 0);
        assert!(snapshot().is_empty());
    }

    #[test]
    fn counters_gauges_and_events_survive_snapshot() {
        let _g = locked();
        reset();
        enable();
        counter_add(metrics::MESSAGES_SENT, 3);
        counter_add(metrics::MESSAGES_SENT, 4);
        gauge_max(metrics::ARENA_ARCS, 10);
        gauge_max(metrics::ARENA_ARCS, 6); // lower: must not regress the high-water mark
        let l = label("mis;sparse-gnp");
        assert_eq!(label("mis;sparse-gnp"), l, "labels intern to a stable id");
        complete(metrics::ATTEMPT, l, 100, 50);
        record(metrics::ACTIVE_NODES, LabelId::NONE, 12);
        let snap = snapshot();
        disable();
        assert_eq!(counter_value(metrics::MESSAGES_SENT), 7);
        assert_eq!(counter_value(metrics::ARENA_ARCS), 10);
        assert!(snap.counters.contains(&("messages-sent".to_string(), 7)));
        let events: Vec<_> = snap.tracks.iter().flat_map(|t| &t.events).collect();
        let attempt = events.iter().find(|e| e.metric == "attempt").expect("attempt span");
        assert_eq!(attempt.label, "mis;sparse-gnp");
        assert_eq!((attempt.start_micros, attempt.dur_micros), (100, 50));
        assert!(attempt.is_span);
        let active = events.iter().find(|e| e.metric == "active-nodes").expect("value event");
        assert_eq!(active.value, 12);
        assert!(!active.is_span);
        reset();
    }

    #[test]
    fn span_guard_records_a_span_and_cancel_suppresses_it() {
        let _g = locked();
        reset();
        enable();
        {
            let _s = span(metrics::PRUNE, LabelId::NONE);
        }
        span(metrics::VERIFY, LabelId::NONE).cancel();
        let snap = snapshot();
        disable();
        let metrics_seen: Vec<_> =
            snap.tracks.iter().flat_map(|t| &t.events).map(|e| e.metric.as_str()).collect();
        assert!(metrics_seen.contains(&"prune"));
        assert!(!metrics_seen.contains(&"verify"), "cancelled span must not record");
        reset();
    }

    #[test]
    fn full_buffers_drop_events_instead_of_growing() {
        let _g = locked();
        reset();
        enable_with_capacity(16);
        // The current thread's buffer may have been created earlier (capacity applies to
        // *new* buffers), so spill far past any plausible capacity and just check that
        // the drop accounting engages rather than the buffer growing unboundedly.
        for i in 0..DEFAULT_EVENT_CAPACITY + 64 {
            record(metrics::ACTIVE_NODES, LabelId::NONE, i as u64);
        }
        let snap = snapshot();
        disable();
        assert!(snap.dropped > 0, "overflow must be counted as dropped");
        assert!(snap.event_count() <= DEFAULT_EVENT_CAPACITY + 64 - snap.dropped as usize);
        reset();
    }

    #[test]
    fn imported_tracks_are_offset_and_merged() {
        let _g = locked();
        reset();
        enable();
        import_track(
            "worker 1 thread-0".to_string(),
            vec![EventRecord {
                metric: "attempt".to_string(),
                label: "mis;tree".to_string(),
                start_micros: 10,
                dur_micros: 5,
                value: 0,
                is_span: true,
            }],
            1000,
        );
        assert!(merge_counter_by_name("messages-sent", 41));
        assert!(!merge_counter_by_name("not-a-metric", 1));
        let snap = snapshot();
        disable();
        let track = snap
            .tracks
            .iter()
            .find(|t| t.name == "worker 1 thread-0")
            .expect("imported track present");
        assert_eq!(track.events[0].start_micros, 1010, "offset applied");
        assert_eq!(counter_value(metrics::MESSAGES_SENT), 41);
        reset();
    }

    #[test]
    fn metric_lookup_round_trips_every_registered_name() {
        for (i, &name) in metrics::NAMES.iter().enumerate() {
            assert_eq!(metric_by_name(name), Some(MetricId(i as u16)));
            assert_eq!(MetricId(i as u16).name(), name);
        }
        assert_eq!(metric_by_name("definitely-unregistered"), None);
    }
}

//! Renderers from a resolved [`Snapshot`] to the three export formats:
//!
//! * **Chrome trace-event JSON** ([`Snapshot::to_chrome_trace`]) — loadable in Perfetto or
//!   `chrome://tracing`; one track (tid + `thread_name` metadata) per recorded thread,
//!   including imported worker tracks.
//! * **NDJSON event log** ([`Snapshot::to_ndjson`]) — one self-describing JSON object per
//!   line, suitable for appending across runs and for `jq`-style joins (e.g.
//!   `predicted-micros` vs `cell-micros` on `label`).
//! * **Folded stacks** ([`Snapshot::to_folded`]) — `frame;frame;frame count` lines for
//!   flamegraph tools, rebased onto span data.
//!
//! All JSON is built by hand; this crate takes no dependencies.

use crate::Snapshot;

/// Escapes a string for embedding inside a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Snapshot {
    /// Renders the snapshot as a Chrome trace-event file (the `{"traceEvents":[...]}`
    /// object form). Spans become `"X"` complete events, values become `"C"` counter
    /// events on their track, and process-global counters are appended as `"C"` events on
    /// a synthetic tid 0 at the end of the timeline.
    pub fn to_chrome_trace(&self) -> String {
        let mut events: Vec<String> = Vec::new();
        let mut end_ts = 0u64;
        for (idx, track) in self.tracks.iter().enumerate() {
            let tid = idx + 1;
            events.push(format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                json_escape(&track.name)
            ));
            for e in &track.events {
                end_ts = end_ts.max(e.start_micros + e.dur_micros);
                let label = json_escape(&e.label);
                if e.is_span {
                    events.push(format!(
                        "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"sweep\",\"ts\":{},\
                         \"dur\":{},\"pid\":0,\"tid\":{tid},\"args\":{{\"label\":\"{label}\",\
                         \"value\":{}}}}}",
                        json_escape(&e.metric),
                        e.start_micros,
                        e.dur_micros,
                        e.value
                    ));
                } else {
                    events.push(format!(
                        "{{\"ph\":\"C\",\"name\":\"{}\",\"ts\":{},\"pid\":0,\"tid\":{tid},\
                         \"args\":{{\"{label2}\":{}}}}}",
                        json_escape(&e.metric),
                        e.start_micros,
                        e.value,
                        label2 = if e.label.is_empty() { "value".to_string() } else { label }
                    ));
                }
            }
        }
        events.push(
            "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":0,\
             \"args\":{\"name\":\"totals\"}}"
                .to_string(),
        );
        for (name, value) in &self.counters {
            events.push(format!(
                "{{\"ph\":\"C\",\"name\":\"{}\",\"ts\":{end_ts},\"pid\":0,\"tid\":0,\
                 \"args\":{{\"value\":{value}}}}}",
                json_escape(name)
            ));
        }
        let mut out = String::from("{\"traceEvents\":[\n");
        out.push_str(&events.join(",\n"));
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    /// Renders the snapshot as newline-delimited JSON: one `track` / `span` / `value` /
    /// `counter` object per line (plus a `dropped` line when events were lost). Safe to
    /// append to an existing log file.
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        for track in &self.tracks {
            let tname = json_escape(&track.name);
            out.push_str(&format!("{{\"type\":\"track\",\"name\":\"{tname}\"}}\n"));
            for e in &track.events {
                if e.is_span {
                    out.push_str(&format!(
                        "{{\"type\":\"span\",\"track\":\"{tname}\",\"metric\":\"{}\",\
                         \"label\":\"{}\",\"start_us\":{},\"dur_us\":{},\"value\":{}}}\n",
                        json_escape(&e.metric),
                        json_escape(&e.label),
                        e.start_micros,
                        e.dur_micros,
                        e.value
                    ));
                } else {
                    out.push_str(&format!(
                        "{{\"type\":\"value\",\"track\":\"{tname}\",\"metric\":\"{}\",\
                         \"label\":\"{}\",\"ts_us\":{},\"value\":{}}}\n",
                        json_escape(&e.metric),
                        json_escape(&e.label),
                        e.start_micros,
                        e.value
                    ));
                }
            }
        }
        for (name, value) in &self.counters {
            out.push_str(&format!(
                "{{\"type\":\"counter\",\"metric\":\"{}\",\"value\":{value}}}\n",
                json_escape(name)
            ));
        }
        if self.dropped > 0 {
            out.push_str(&format!("{{\"type\":\"dropped\",\"events\":{}}}\n", self.dropped));
        }
        out
    }

    /// Renders span data as folded stacks (`sweep;label;metric count`, micros as counts).
    /// Labels may themselves contain `;`-separated frames (e.g. `problem;family`), which
    /// flamegraph tools display as nested frames. The whole-cell container span is
    /// skipped so phase frames are not double counted.
    pub fn to_folded(&self) -> String {
        use std::collections::BTreeMap;
        let mut folded: BTreeMap<String, u64> = BTreeMap::new();
        for track in &self.tracks {
            for e in &track.events {
                if !e.is_span || e.metric == "cell" || e.dur_micros == 0 {
                    continue;
                }
                let frame = if e.label.is_empty() {
                    format!("sweep;{}", e.metric)
                } else if e.metric == "instance-gen" {
                    // Matches the historical report-derived frame order.
                    format!("sweep;instance-gen;{}", e.label)
                } else {
                    format!("sweep;{};{}", e.label, e.metric)
                };
                *folded.entry(frame).or_insert(0) += e.dur_micros;
            }
        }
        let mut out = String::new();
        for (frame, micros) in folded {
            out.push_str(&format!("{frame} {micros}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{EventRecord, Snapshot, TrackSnapshot};

    fn sample() -> Snapshot {
        Snapshot {
            tracks: vec![
                TrackSnapshot {
                    name: "coordinator".to_string(),
                    events: vec![
                        EventRecord {
                            metric: "cell".to_string(),
                            label: "mis/sparse-gnp/n64/r0".to_string(),
                            start_micros: 0,
                            dur_micros: 100,
                            value: 0,
                            is_span: true,
                        },
                        EventRecord {
                            metric: "attempt".to_string(),
                            label: "mis;sparse-gnp".to_string(),
                            start_micros: 0,
                            dur_micros: 70,
                            value: 0,
                            is_span: true,
                        },
                        EventRecord {
                            metric: "active-nodes".to_string(),
                            label: String::new(),
                            start_micros: 5,
                            dur_micros: 0,
                            value: 42,
                            is_span: false,
                        },
                    ],
                },
                TrackSnapshot {
                    name: "worker 1 thread-0".to_string(),
                    events: vec![EventRecord {
                        metric: "instance-gen".to_string(),
                        label: "tree \"quoted\"".to_string(),
                        start_micros: 10,
                        dur_micros: 20,
                        value: 0,
                        is_span: true,
                    }],
                },
            ],
            counters: vec![("messages-sent".to_string(), 123)],
            dropped: 1,
        }
    }

    #[test]
    fn chrome_trace_has_thread_names_spans_and_counters() {
        let trace = sample().to_chrome_trace();
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("\"thread_name\""));
        assert!(trace.contains("\"coordinator\""));
        assert!(trace.contains("\"worker 1 thread-0\""));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"ph\":\"C\""));
        assert!(trace.contains("\"messages-sent\""));
        assert!(trace.contains("tree \\\"quoted\\\""), "labels are JSON-escaped");
    }

    #[test]
    fn ndjson_is_one_object_per_line() {
        let log = sample().to_ndjson();
        let lines: Vec<&str> = log.lines().collect();
        assert!(lines.len() >= 7, "tracks + events + counter + dropped: {lines:?}");
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "bad line: {line}");
        }
        assert!(log.contains("\"type\":\"span\""));
        assert!(log.contains("\"type\":\"value\""));
        assert!(log.contains("\"type\":\"counter\""));
        assert!(log.contains("\"type\":\"dropped\""));
    }

    #[test]
    fn folded_skips_cell_and_orders_instance_gen_frames() {
        let folded = sample().to_folded();
        assert!(folded.contains("sweep;mis;sparse-gnp;attempt 70"));
        assert!(folded.contains("sweep;instance-gen;tree \"quoted\" 20"));
        assert!(!folded.contains(";cell"), "container span must be skipped: {folded}");
    }

    #[test]
    fn exports_of_an_empty_snapshot_are_wellformed() {
        let empty = Snapshot { tracks: vec![], counters: vec![], dropped: 0 };
        assert!(empty.to_chrome_trace().contains("\"traceEvents\""));
        assert_eq!(empty.to_folded(), "");
        assert_eq!(empty.to_ndjson(), "", "nothing recorded appends nothing to an event log");
    }
}

//! Property test: the zero-rebuild alternation path (live `GraphView` + reusable `Session`)
//! produces byte-identical `UniformRun`s — outputs, rounds, messages, iteration counts, and
//! full sub-iteration traces — to the rebuild-per-prune reference path, across a scenario
//! grid of problems, graph families, sizes, and seeds. Also re-checks that session reuse
//! across consecutive solves does not leak state between runs.

use local_uniform::catalog;
use local_uniform::problem::{MatchingProblem, MisProblem, Problem, RulingSetProblem};
use local_uniform::UniformRun;
use proptest::prelude::*;

fn units(n: usize) -> Vec<()> {
    vec![(); n]
}

/// Field-by-field equality of two runs, ignoring only the wall-clock profiling micros.
fn assert_identical<O: PartialEq + std::fmt::Debug>(
    fast: &UniformRun<O>,
    reference: &UniformRun<O>,
    label: &str,
) {
    assert_eq!(fast.outputs, reference.outputs, "{label}: outputs diverge");
    assert_eq!(fast.rounds, reference.rounds, "{label}: rounds diverge");
    assert_eq!(fast.messages, reference.messages, "{label}: messages diverge");
    assert_eq!(fast.iterations, reference.iterations, "{label}: iterations diverge");
    assert_eq!(fast.subiterations, reference.subiterations, "{label}: subiterations diverge");
    assert_eq!(fast.solved, reference.solved, "{label}: solved flags diverge");
    assert_eq!(fast.trace, reference.trace, "{label}: traces diverge");
}

/// The small scenario grid the equivalence is checked over.
const FAMILIES: [local_graphs::Family; 4] = [
    local_graphs::Family::Path,
    local_graphs::Family::Grid,
    local_graphs::Family::SparseGnp,
    local_graphs::Family::Forest3,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn mis_alternation_is_byte_identical_across_paths(
        family in 0usize..FAMILIES.len(),
        n in 24usize..80,
        seed in 0u64..1000,
    ) {
        let g = FAMILIES[family].generate(n, seed);
        let n = g.node_count();
        let transformer = catalog::uniform_coloring_mis();
        let mut session = local_runtime::Session::new();
        let fast = transformer.solve_in(&g, &units(n), seed, &mut session);
        let reference = transformer.solve_rebuild(&g, &units(n), seed);
        assert_identical(&fast, &reference, "mis");
        prop_assert!(fast.solved);
        prop_assert!(MisProblem.validate(&g, &units(n), &fast.outputs).is_ok());
        // Session reuse: a second solve through the same session stays identical.
        let again = transformer.solve_in(&g, &units(n), seed, &mut session);
        assert_identical(&again, &reference, "mis (reused session)");
    }

    #[test]
    fn matching_alternation_is_byte_identical_across_paths(
        family in 0usize..FAMILIES.len(),
        n in 24usize..64,
        seed in 0u64..1000,
    ) {
        let g = FAMILIES[family].generate(n, seed);
        let n = g.node_count();
        let transformer = catalog::uniform_matching();
        let fast = transformer.solve(&g, &units(n), seed);
        let reference = transformer.solve_rebuild(&g, &units(n), seed);
        assert_identical(&fast, &reference, "matching");
        prop_assert!(MatchingProblem.validate(&g, &units(n), &fast.outputs).is_ok());
    }

    #[test]
    fn las_vegas_ruling_set_is_byte_identical_across_paths(
        n in 24usize..64,
        seed in 0u64..1000,
    ) {
        let g = local_graphs::Family::SparseGnp.generate(n, seed);
        let n = g.node_count();
        let transformer = catalog::uniform_ruling_set(2);
        let fast = transformer.solve(&g, &units(n), seed);
        let reference = transformer.solve_rebuild(&g, &units(n), seed);
        assert_identical(&fast, &reference, "ruling-set");
        prop_assert!(RulingSetProblem::two(2).validate(&g, &units(n), &fast.outputs).is_ok());
    }

    #[test]
    fn synthetic_black_box_alternation_is_byte_identical_across_paths(
        n in 24usize..96,
        seed in 0u64..1000,
    ) {
        // The synthetic black box evaluates graph parameters on the live configuration and
        // computes its reference solution centrally — exercises the view-native parameter
        // evaluation (`Parameter::eval_view`) and `central_greedy_mis_view`.
        let g = local_graphs::Family::UnitDisk.generate(n, seed);
        let n = g.node_count();
        let transformer = catalog::uniform_ps_mis();
        let fast = transformer.solve(&g, &units(n), seed);
        let reference = transformer.solve_rebuild(&g, &units(n), seed);
        assert_identical(&fast, &reference, "synthetic");
        prop_assert!(MisProblem.validate(&g, &units(n), &fast.outputs).is_ok());
    }
}

//! Property test: the zero-rebuild alternation path (live `GraphView` + reusable `Session`)
//! produces byte-identical `UniformRun`s — outputs, rounds, messages, iteration counts, and
//! full sub-iteration traces — to the rebuild-per-prune reference path, across a scenario
//! grid of problems, graph families, sizes, and seeds. Also re-checks that session reuse
//! across consecutive solves does not leak state between runs.

use local_uniform::catalog;
use local_uniform::problem::{MatchingProblem, MisProblem, Problem, RulingSetProblem};
use local_uniform::UniformRun;
use proptest::prelude::*;

fn units(n: usize) -> Vec<()> {
    vec![(); n]
}

/// Field-by-field equality of two runs, ignoring only the wall-clock profiling micros.
fn assert_identical<O: PartialEq + std::fmt::Debug>(
    fast: &UniformRun<O>,
    reference: &UniformRun<O>,
    label: &str,
) {
    assert_eq!(fast.outputs, reference.outputs, "{label}: outputs diverge");
    assert_eq!(fast.rounds, reference.rounds, "{label}: rounds diverge");
    assert_eq!(fast.messages, reference.messages, "{label}: messages diverge");
    assert_eq!(fast.iterations, reference.iterations, "{label}: iterations diverge");
    assert_eq!(fast.subiterations, reference.subiterations, "{label}: subiterations diverge");
    assert_eq!(fast.solved, reference.solved, "{label}: solved flags diverge");
    assert_eq!(fast.trace, reference.trace, "{label}: traces diverge");
}

/// The small scenario grid the equivalence is checked over.
const FAMILIES: [local_graphs::Family; 4] = [
    local_graphs::Family::Path,
    local_graphs::Family::Grid,
    local_graphs::Family::SparseGnp,
    local_graphs::Family::Forest3,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn mis_alternation_is_byte_identical_across_paths(
        family in 0usize..FAMILIES.len(),
        n in 24usize..80,
        seed in 0u64..1000,
    ) {
        let g = FAMILIES[family].generate(n, seed);
        let n = g.node_count();
        let transformer = catalog::uniform_coloring_mis();
        let mut session = local_runtime::Session::new();
        let fast = transformer.solve_in(&g, &units(n), seed, &mut session);
        let reference = transformer.solve_rebuild(&g, &units(n), seed);
        assert_identical(&fast, &reference, "mis");
        prop_assert!(fast.solved);
        prop_assert!(MisProblem.validate(&g, &units(n), &fast.outputs).is_ok());
        // Session reuse: a second solve through the same session stays identical.
        let again = transformer.solve_in(&g, &units(n), seed, &mut session);
        assert_identical(&again, &reference, "mis (reused session)");
    }

    #[test]
    fn matching_alternation_is_byte_identical_across_paths(
        family in 0usize..FAMILIES.len(),
        n in 24usize..64,
        seed in 0u64..1000,
    ) {
        let g = FAMILIES[family].generate(n, seed);
        let n = g.node_count();
        let transformer = catalog::uniform_matching();
        let fast = transformer.solve(&g, &units(n), seed);
        let reference = transformer.solve_rebuild(&g, &units(n), seed);
        assert_identical(&fast, &reference, "matching");
        prop_assert!(MatchingProblem.validate(&g, &units(n), &fast.outputs).is_ok());
    }

    #[test]
    fn las_vegas_ruling_set_is_byte_identical_across_paths(
        n in 24usize..64,
        seed in 0u64..1000,
    ) {
        let g = local_graphs::Family::SparseGnp.generate(n, seed);
        let n = g.node_count();
        let transformer = catalog::uniform_ruling_set(2);
        let fast = transformer.solve(&g, &units(n), seed);
        let reference = transformer.solve_rebuild(&g, &units(n), seed);
        assert_identical(&fast, &reference, "ruling-set");
        prop_assert!(RulingSetProblem::two(2).validate(&g, &units(n), &fast.outputs).is_ok());
    }

    #[test]
    fn retain_refreshes_cached_inits_and_outputs_stay_byte_identical(
        n in 24usize..96,
        seed in 0u64..1000,
        drop_stride in 2usize..5,
    ) {
        // The session caches frozen NodeInit slabs per view epoch. Mutating the view through
        // retain() must refresh the cache (stale ids/ports would silently corrupt runs), and
        // every run on the live view must stay byte-identical to executing on the
        // materialized subgraph — the rebuild path.
        use local_algos::mis::GreedyMis;
        use local_runtime::{GraphAlgorithm, GraphView, Session};

        let g = local_graphs::Family::SparseGnp.generate(n, seed);
        let n = g.node_count();
        let mut view = GraphView::full(&g);
        let mut session = Session::new();

        let first = GreedyMis.execute_view(&view, &units(n), None, seed, &mut session);
        let cached = session.cached_init_epoch();
        prop_assert_eq!(cached, Some(view.epoch()), "slab must be keyed by the view epoch");

        // A second run on the unchanged view reuses the cached slab (same epoch) and agrees.
        let again = GreedyMis.execute_view(&view, &units(n), None, seed, &mut session);
        prop_assert_eq!(session.cached_init_epoch(), cached);
        prop_assert_eq!(&first.outputs, &again.outputs);

        // Mutate the configuration: drop every `drop_stride`-th live node.
        let keep: Vec<bool> = (0..n).map(|v| !v.is_multiple_of(drop_stride)).collect();
        view.retain(&keep);
        let live = view.node_count();
        let shrunk = GreedyMis.execute_view(&view, &units(live), None, seed, &mut session);
        prop_assert_ne!(session.cached_init_epoch(), cached, "retain() must refresh the slab");
        prop_assert_eq!(session.cached_init_epoch(), Some(view.epoch()));

        // Byte-identical to the rebuild path: materialize the view and execute on the copy.
        let (sub, _back) = view.materialize();
        let reference = GreedyMis.execute(&sub, &units(live), None, seed);
        prop_assert_eq!(shrunk.outputs, reference.outputs, "outputs diverge from rebuild");
        prop_assert_eq!(shrunk.rounds, reference.rounds, "rounds diverge from rebuild");
        prop_assert_eq!(shrunk.messages, reference.messages, "messages diverge from rebuild");
    }

    #[test]
    fn synthetic_black_box_alternation_is_byte_identical_across_paths(
        n in 24usize..96,
        seed in 0u64..1000,
    ) {
        // The synthetic black box evaluates graph parameters on the live configuration and
        // computes its reference solution centrally — exercises the view-native parameter
        // evaluation (`Parameter::eval_view`) and `central_greedy_mis_view`.
        let g = local_graphs::Family::UnitDisk.generate(n, seed);
        let n = g.node_count();
        let transformer = catalog::uniform_ps_mis();
        let fast = transformer.solve(&g, &units(n), seed);
        let reference = transformer.solve_rebuild(&g, &units(n), seed);
        assert_identical(&fast, &reference, "synthetic");
        prop_assert!(MisProblem.validate(&g, &units(n), &fast.outputs).is_ok());
    }
}

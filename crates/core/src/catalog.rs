//! A catalog of ready-made black boxes and transformed uniform algorithms.
//!
//! Each entry wires one baseline algorithm of [`local_algos`] (or a synthetic stand-in, see
//! DESIGN.md) to its declared time bound and parameter set, reproducing the rows of the
//! paper's Table 1. The benchmark harness and the examples consume these entries instead of
//! re-deriving the bounds.

use crate::funcs::{largest_arg_at_most, monotone, ARGUMENT_CAP};
use crate::nonuniform::NonUniformAlgorithm;
use crate::problem::{MatchingProblem, MisProblem, RulingSetProblem};
use crate::pruning::{MatchingPruning, RulingSetPruning};
use crate::seqnum::TimeBound;
use crate::theorem5::{ColoringTransformer, NonUniformColoringBox};
use crate::transform::{FastestOfTransformer, UniformComponent, UniformTransformer};
use local_algos::arboricity::ArboricityMis;
use local_algos::coloring::{ColoringTarget, ReducedColoring};
use local_algos::matching::MatchingFromEdgeColoring;
use local_algos::mis::{ColoringMis, GreedyMis, LubyMis};
use local_algos::ruling::MisRulingSet;
use local_algos::synthetic::{SyntheticMatching, SyntheticMis};
use local_graphs::{log_star, Parameter};
use local_runtime::{AlgoRun, DynAlgorithm, Graph, GraphAlgorithm, GraphView, NodeId, Session};
use std::sync::Arc;

// --------------------------------------------------------------------------- MIS rows -------

/// Table 1 row 1 — the colouring-based deterministic MIS, non-uniform in `{Δ, m}`, with an
/// additive time bound (our stand-in for the `O(Δ + log* n)` algorithms; see DESIGN.md).
pub fn coloring_mis_black_box() -> NonUniformAlgorithm<MisProblem> {
    NonUniformAlgorithm::deterministic(
        "det-MIS (Δ, m)",
        vec![Parameter::MaxDegree, Parameter::MaxId],
        TimeBound::Additive(vec![
            monotone(|d| {
                let d = d as f64;
                // Bertrand: the Linial palette is at most (2(Δ̃+2))²; elimination + the
                // colour-class MIS pass add O(Δ̃) more.
                4.0 * (d + 2.0) * (d + 2.0) + d + 8.0
            }),
            monotone(|m| log_star(m as f64) as f64 + 8.0),
        ]),
        Arc::new(|g: &[u64]| {
            Box::new(ColoringMis { delta_guess: g[0], id_bound_guess: g[1] })
                as DynAlgorithm<(), bool>
        }),
    )
}

/// Table 1 row 2 — the `2^{O(√log n)}` deterministic MIS (Panconesi–Srinivasan shape),
/// non-uniform in `{n}`; a synthetic black box (see DESIGN.md).
pub fn panconesi_srinivasan_mis_black_box() -> NonUniformAlgorithm<MisProblem> {
    NonUniformAlgorithm::deterministic(
        "det-MIS 2^O(√log n) (synthetic)",
        vec![Parameter::N],
        TimeBound::single(monotone(|n| (2f64).powf(1.5 * (n.max(2) as f64).log2().sqrt()).ceil())),
        Arc::new(|g: &[u64]| {
            Box::new(SyntheticMis::panconesi_srinivasan(g[0], 1.5)) as DynAlgorithm<(), bool>
        }),
    )
}

/// The running-time bound declared for [`arboricity_mis_black_box`]:
/// `ℓ(ñ) · (50·(ã+1)² + log* m̃ + 10)` with `ℓ(ñ)` the number of peeling layers.
pub fn arboricity_mis_bound(a: u64, n: u64, m: u64) -> f64 {
    let layers = local_algos::arboricity::h_partition_layers(n) as f64;
    layers * (50.0 * ((a + 1) as f64).powi(2) + log_star(m as f64) as f64 + 10.0)
}

/// Table 1 rows 3–4 — the arboricity-parameterised deterministic MIS (H-partition +
/// per-layer colouring), non-uniform in `{a, n, m}` with a product-shaped bound.
///
/// The set-sequence is the product construction of Observation 4.1 applied to
/// `f₁(a, m) = 50(a+1)² + log* m + 10` (additive, single inverse per budget) and
/// `f₂(n) = ℓ(n)`; the bounding constant is 8.
pub fn arboricity_mis_black_box() -> NonUniformAlgorithm<MisProblem> {
    let f_a = monotone(|a: u64| 50.0 * ((a + 1) as f64).powi(2) + 10.0);
    let f_m = monotone(|m: u64| log_star(m as f64) as f64);
    let f_n = monotone(|n: u64| local_algos::arboricity::h_partition_layers(n) as f64);
    let (fa, fm, fn_) = (f_a.clone(), f_m.clone(), f_n.clone());
    let sets = move |i: u64| -> Vec<Vec<u64>> {
        let log_i = (i.max(2) as f64).log2().ceil() as i64;
        let mut out = Vec::new();
        for j in 0..=log_i {
            let inner_budget = 2f64.powi(j as i32);
            let outer_budget = 2f64.powi((log_i - j + 1) as i32);
            let a = largest_arg_at_most(&fa, inner_budget, ARGUMENT_CAP);
            let m = largest_arg_at_most(&fm, inner_budget, ARGUMENT_CAP);
            let n = largest_arg_at_most(&fn_, outer_budget, ARGUMENT_CAP);
            if let (Some(a), Some(n), Some(m)) = (a, n, m) {
                out.push(vec![a, n, m]);
            }
        }
        out
    };
    let (ea, em, en) = (f_a, f_m, f_n);
    NonUniformAlgorithm::deterministic(
        "det-MIS arboricity (a, n, m)",
        vec![Parameter::Degeneracy, Parameter::N, Parameter::MaxId],
        TimeBound::Custom {
            eval: Arc::new(move |g: &[u64]| (ea(g[0]) + em(g[2])) * en(g[1])),
            sets: Arc::new(sets),
            bounding_constant: 8,
        },
        Arc::new(|g: &[u64]| {
            Box::new(ArboricityMis { arboricity_guess: g[0], n_guess: g[1], id_bound_guess: g[2] })
                as DynAlgorithm<(), bool>
        }),
    )
}

/// A uniform deterministic MIS algorithm (Theorem 1 applied to [`coloring_mis_black_box`]).
pub fn uniform_coloring_mis() -> UniformTransformer<MisProblem, RulingSetPruning> {
    UniformTransformer::new(coloring_mis_black_box(), RulingSetPruning::mis(), false)
}

/// A uniform deterministic MIS algorithm from the synthetic Panconesi–Srinivasan bound.
pub fn uniform_ps_mis() -> UniformTransformer<MisProblem, RulingSetPruning> {
    UniformTransformer::new(panconesi_srinivasan_mis_black_box(), RulingSetPruning::mis(), false)
}

/// A uniform deterministic MIS algorithm from the arboricity black box (Theorem 1 + the
/// product set-sequence; the Theorem 3 route `Γ = {a, n}` weakly dominated by `Λ = {n}` is
/// exercised separately in the benches).
pub fn uniform_arboricity_mis() -> UniformTransformer<MisProblem, RulingSetPruning> {
    UniformTransformer::new(arboricity_mis_black_box(), RulingSetPruning::mis(), false)
}

/// Wraps a transformed uniform algorithm as a plain [`GraphAlgorithm`] so it can serve as a
/// component of the Theorem 4 combinator (Corollary 1(i)).
pub struct TransformedMis {
    inner: Arc<UniformTransformer<MisProblem, RulingSetPruning>>,
}

impl GraphAlgorithm for TransformedMis {
    type Input = ();
    type Output = bool;

    fn execute(
        &self,
        graph: &Graph,
        _inputs: &[()],
        budget: Option<u64>,
        seed: u64,
    ) -> AlgoRun<bool> {
        let run = self.inner.solve(graph, &vec![(); graph.node_count()], seed);
        Self::budgeted(run, budget, graph.node_count())
    }

    fn execute_view(
        &self,
        view: &GraphView<'_>,
        _inputs: &[()],
        budget: Option<u64>,
        seed: u64,
        session: &mut Session,
    ) -> AlgoRun<bool> {
        let n = view.node_count();
        let run = self.inner.solve_view(view.clone(), &vec![(); n], seed, session);
        Self::budgeted(run, budget, n)
    }
}

impl TransformedMis {
    fn budgeted(
        run: crate::transform::UniformRun<bool>,
        budget: Option<u64>,
        n: usize,
    ) -> AlgoRun<bool> {
        match budget {
            Some(b) if run.rounds > b => AlgoRun {
                // Cut off before completion: no correctness promise, emit placeholders.
                outputs: vec![false; n],
                rounds: b,
                messages: run.messages,
                completed: false,
            },
            _ => AlgoRun {
                outputs: run.outputs,
                rounds: run.rounds,
                messages: run.messages,
                completed: run.solved,
            },
        }
    }
}

/// Corollary 1(i): a uniform deterministic MIS running as fast as the fastest of the three
/// regimes (general graphs via the Δ-based algorithm, dense graphs via the `2^{O(√log n)}`
/// bound, sparse graphs via the arboricity algorithm), combined by Theorem 4. Luby's uniform
/// randomized MIS (Table 1 last row) is *not* included — the corollary is deterministic.
pub fn corollary1_mis() -> FastestOfTransformer<MisProblem, RulingSetPruning> {
    let components = vec![
        UniformComponent::<MisProblem> {
            name: "uniform Δ-based MIS".into(),
            algorithm: Arc::new(TransformedMis { inner: Arc::new(uniform_coloring_mis()) }),
        },
        UniformComponent::<MisProblem> {
            name: "uniform 2^O(√log n) MIS".into(),
            algorithm: Arc::new(TransformedMis { inner: Arc::new(uniform_ps_mis()) }),
        },
        UniformComponent::<MisProblem> {
            name: "uniform arboricity MIS".into(),
            algorithm: Arc::new(TransformedMis { inner: Arc::new(uniform_arboricity_mis()) }),
        },
        UniformComponent::<MisProblem> {
            name: "greedy-by-identity MIS".into(),
            algorithm: Arc::new(GreedyMis),
        },
    ];
    FastestOfTransformer::new(components, RulingSetPruning::mis(), false)
}

/// The uniform randomized MIS of Table 1's last row (already uniform, no transformation).
pub fn uniform_randomized_mis() -> LubyMis {
    LubyMis
}

// --------------------------------------------------------------------- matching rows --------

/// Table 1 row 8 — deterministic maximal matching from edge colouring, non-uniform in
/// `{Δ, m}` (our stand-in for Hańćkowiak et al.; see DESIGN.md).
pub fn matching_black_box() -> NonUniformAlgorithm<MatchingProblem> {
    NonUniformAlgorithm::deterministic(
        "det-MM (Δ, m)",
        vec![Parameter::MaxDegree, Parameter::MaxId],
        TimeBound::Additive(vec![
            monotone(|d| {
                let d = d as f64;
                4.0 * (2.0 * d + 4.0) * (2.0 * d + 4.0) + 2.0 * d + 10.0
            }),
            monotone(|m| log_star((m as f64) * 1_000_004.0) as f64 + 8.0),
        ]),
        Arc::new(|g: &[u64]| {
            Box::new(MatchingFromEdgeColoring { delta_guess: g[0], id_bound_guess: g[1] })
                as DynAlgorithm<(), Option<NodeId>>
        }),
    )
}

/// Table 1 row 8, exact time shape — a synthetic `O(log⁴ ñ)` maximal-matching black box.
pub fn synthetic_log4_matching_black_box() -> NonUniformAlgorithm<MatchingProblem> {
    NonUniformAlgorithm::deterministic(
        "det-MM O(log⁴ n) (synthetic)",
        vec![Parameter::N],
        TimeBound::single(monotone(|n| {
            let l = (n.max(2) as f64).log2();
            0.5 * l.powi(4) + 1.0
        })),
        Arc::new(|g: &[u64]| {
            Box::new(SyntheticMatching { n_guess: g[0], scale: 0.5 })
                as DynAlgorithm<(), Option<NodeId>>
        }),
    )
}

/// A uniform deterministic maximal matching (Theorem 1 + `P_MM`), Corollary 1(vi).
pub fn uniform_matching() -> UniformTransformer<MatchingProblem, MatchingPruning> {
    UniformTransformer::new(matching_black_box(), MatchingPruning, None)
}

/// A uniform maximal matching with the paper's exact `O(log⁴ n)` time shape (synthetic box).
pub fn uniform_log4_matching() -> UniformTransformer<MatchingProblem, MatchingPruning> {
    UniformTransformer::new(synthetic_log4_matching_black_box(), MatchingPruning, None)
}

// --------------------------------------------------------------------- ruling set row -------

/// Table 1 row 9 — the weak Monte-Carlo (2, β)-ruling set black box (budgeted Luby,
/// non-uniform in `{n}`); the Schneider–Wattenhofer `O(2^c log^{1/c} n)` time shape is covered
/// by [`synthetic_ruling_set_black_box`].
pub fn ruling_set_black_box() -> NonUniformAlgorithm<RulingSetProblem> {
    NonUniformAlgorithm::monte_carlo(
        "rand (2,β)-ruling set (n)",
        vec![Parameter::N],
        TimeBound::single(monotone(|n| MisRulingSet::with_default_budget(n).round_bound() as f64)),
        Arc::new(|g: &[u64]| {
            Box::new(MisRulingSet::with_default_budget(g[0])) as DynAlgorithm<(), bool>
        }),
    )
}

/// The Schneider–Wattenhofer time shape `O(2^c · log^{1/c} ñ)` as a synthetic weak Monte-Carlo
/// MIS black box (any MIS is a (2, β)-ruling set).
pub fn synthetic_ruling_set_black_box(c: u32) -> NonUniformAlgorithm<MisProblem> {
    let c = c.max(1);
    NonUniformAlgorithm::monte_carlo(
        "rand ruling set 2^c·log^(1/c) n (synthetic)",
        vec![Parameter::N],
        TimeBound::single(monotone(move |n| {
            (2f64).powi(c as i32) * (n.max(2) as f64).log2().powf(1.0 / c as f64) + 1.0
        })),
        Arc::new(move |g: &[u64]| {
            Box::new(SyntheticMis {
                parameters: vec![Parameter::N],
                guesses: vec![g[0]],
                time: Arc::new(move |guess: &[u64]| {
                    ((2f64).powi(c as i32) * (guess[0].max(2) as f64).log2().powf(1.0 / c as f64))
                        .ceil() as u64
                        + 1
                }),
                success_probability: 0.75,
            }) as DynAlgorithm<(), bool>
        }),
    )
}

/// A uniform Las Vegas (2, β)-ruling set algorithm (Theorem 2 + `P_(2,β)`), Corollary 1(vii).
pub fn uniform_ruling_set(beta: usize) -> UniformTransformer<RulingSetProblem, RulingSetPruning> {
    UniformTransformer::new(ruling_set_black_box(), RulingSetPruning { beta }, false)
}

// --------------------------------------------------------------------- colouring rows -------

/// The non-uniform λ(Δ̃+1)-colouring black box (λ = 1 is the (Δ+1)-colouring of Table 1 row 1;
/// larger λ is row 5).
pub fn lambda_coloring_box(lambda: u64) -> NonUniformColoringBox {
    let lambda = lambda.max(1);
    NonUniformColoringBox {
        name: format!("{lambda}(Δ+1)-coloring"),
        build: Arc::new(move |delta, m| {
            Box::new(ReducedColoring {
                delta_guess: delta,
                id_bound_guess: m,
                target: ColoringTarget::LambdaDeltaPlusOne(lambda),
            }) as DynAlgorithm<(), u64>
        }),
        palette: Arc::new(move |delta| lambda * (delta + 1)),
        time: Arc::new(move |delta, m| {
            ReducedColoring {
                delta_guess: delta,
                id_bound_guess: m,
                target: ColoringTarget::LambdaDeltaPlusOne(lambda),
            }
            .round_bound() as f64
        }),
    }
}

/// A uniform `O(λ(Δ+1))`-colouring algorithm (Theorem 5), Corollary 1(iii).
pub fn uniform_lambda_coloring(lambda: u64) -> ColoringTransformer {
    ColoringTransformer::new(lambda_coloring_box(lambda))
}

/// The non-uniform `O(Δ̃)`-edge-colouring black box run on the line graph; Theorem 5 applied to
/// it gives the uniform edge colouring of Corollary 1(v). Palette `2Δ̃ − 1`, viewed as a
/// vertex-colouring box for line graphs (degree parameter = the line graph's degree).
pub fn line_graph_coloring_box() -> NonUniformColoringBox {
    lambda_coloring_box(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Problem;
    use local_graphs::{forest_union, gnp, Family, GraphParams};

    fn units(n: usize) -> Vec<()> {
        vec![(); n]
    }

    #[test]
    fn catalog_black_box_bounds_really_upper_bound_measured_rounds() {
        // The transformers' correctness rests on f being a genuine upper bound of the black
        // box's running time at good guesses; verify it empirically for the concrete boxes.
        for seed in 0..3u64 {
            let g = Family::SparseGnp.generate(100, seed);
            let p = GraphParams::of(&g);

            let mis_box = coloring_mis_black_box();
            let algo = (mis_box.build)(&[p.max_degree, p.max_id]);
            let run = algo.execute(&g, &units(g.node_count()), None, seed);
            assert!(run.completed);
            assert!(
                (run.rounds as f64) <= mis_box.time_bound.eval(&[p.max_degree, p.max_id]),
                "MIS box exceeded its declared bound"
            );

            let mm_box = matching_black_box();
            let algo = (mm_box.build)(&[p.max_degree, p.max_id]);
            let run = algo.execute(&g, &units(g.node_count()), None, seed);
            assert!(run.completed);
            assert!(
                (run.rounds as f64) <= mm_box.time_bound.eval(&[p.max_degree, p.max_id]),
                "MM box exceeded its declared bound"
            );
        }
    }

    #[test]
    fn arboricity_box_bound_holds_on_sparse_graphs() {
        let g = forest_union(120, 3, 7);
        let p = GraphParams::of(&g);
        let abox = arboricity_mis_black_box();
        let guesses = [p.degeneracy.max(1), p.n, p.max_id];
        let algo = (abox.build)(&guesses);
        let run = algo.execute(&g, &units(g.node_count()), None, 0);
        assert!(run.completed);
        assert!(
            (run.rounds as f64) <= abox.time_bound.eval(&guesses),
            "arboricity box exceeded its declared bound: {} > {}",
            run.rounds,
            abox.time_bound.eval(&guesses)
        );
        assert!(
            (abox.time_bound.eval(&guesses) - arboricity_mis_bound(guesses[0], p.n, p.max_id))
                .abs()
                < 1e-6
        );
    }

    #[test]
    fn uniform_catalog_entries_solve_their_problems() {
        let g = gnp(60, 0.1, 2);
        let run = uniform_coloring_mis().solve(&g, &units(60), 0);
        assert!(run.solved);
        MisProblem.validate(&g, &units(60), &run.outputs).unwrap();

        let run = uniform_matching().solve(&g, &units(60), 0);
        assert!(run.solved);
        MatchingProblem.validate(&g, &units(60), &run.outputs).unwrap();

        let run = uniform_ruling_set(2).solve(&g, &units(60), 0);
        assert!(run.solved);
        RulingSetProblem::two(2).validate(&g, &units(60), &run.outputs).unwrap();
    }

    #[test]
    fn uniform_arboricity_mis_solves_sparse_graphs() {
        let g = forest_union(80, 2, 3);
        let run = uniform_arboricity_mis().solve(&g, &units(g.node_count()), 1);
        assert!(run.solved);
        MisProblem.validate(&g, &units(g.node_count()), &run.outputs).unwrap();
    }

    #[test]
    fn uniform_log4_matching_and_ps_mis_solve() {
        let g = gnp(50, 0.1, 4);
        let run = uniform_log4_matching().solve(&g, &units(50), 0);
        assert!(run.solved);
        MatchingProblem.validate(&g, &units(50), &run.outputs).unwrap();

        let run = uniform_ps_mis().solve(&g, &units(50), 0);
        assert!(run.solved);
        MisProblem.validate(&g, &units(50), &run.outputs).unwrap();
    }

    #[test]
    fn corollary1_combination_solves_everything_it_sees() {
        let combiner = corollary1_mis();
        for (i, g) in
            [Family::Forest3.generate(80, 1), Family::Regular6.generate(80, 2), gnp(80, 0.2, 3)]
                .iter()
                .enumerate()
        {
            let run = combiner.solve(g, &units(g.node_count()), i as u64);
            assert!(run.solved, "graph {i} unsolved");
            MisProblem.validate(g, &units(g.node_count()), &run.outputs).unwrap();
        }
    }

    #[test]
    fn synthetic_ruling_set_box_time_shape() {
        let bx = synthetic_ruling_set_black_box(2);
        let t_small = bx.time_bound.eval(&[1 << 8]);
        let t_large = bx.time_bound.eval(&[1 << 32]);
        // log^(1/2): quadrupling the exponent doubles the bound.
        assert!(t_large <= 2.5 * t_small);
    }

    #[test]
    fn lambda_boxes_have_growing_palettes() {
        assert_eq!((lambda_coloring_box(1).palette)(10), 11);
        assert_eq!((lambda_coloring_box(4).palette)(10), 44);
        assert_eq!((line_graph_coloring_box().palette)(10), 11);
    }
}

//! Set-sequences and sequence-number functions (Section 4.2).
//!
//! Given a non-decreasing running-time bound `f : Nℓ → R+`, a *set-sequence* `(S_f(i))_i`
//! provides, for every time budget `i`, a small set of guess vectors such that every guess
//! vector with `f(y) ≤ i` is dominated by some vector in `S_f(i)` and every vector in `S_f(i)`
//! satisfies `f(x) ≤ c·i` (a *bounded* set-sequence with bounding constant `c`). A
//! *sequence-number function* `s_f` bounds `|S_f(i)|` and must be moderately slow.
//!
//! The two constructions of Observation 4.1 are implemented:
//!
//! * **additive** bounds `f(x) = Σ f_k(x_k)` — one guess vector per budget (`s_f = ℓ… ≡ 1` up
//!   to the constant), bounding constant `ℓ`;
//! * **product** bounds `f(x₁, x₂) = f₁(x₁)·f₂(x₂)` — `⌈log i⌉ + 1` guess vectors, bounding
//!   constant 4 (the paper states 2 with a slightly different indexing; the constant is
//!   absorbed by the `O`).
//!
//! Arbitrary bounds can be supplied through [`TimeBound::Custom`].

use crate::funcs::{largest_arg_at_most, MonotoneFn, ARGUMENT_CAP};
use std::sync::Arc;

/// Evaluation function of a custom bound: `f` on a guess vector.
pub type BoundEval = Arc<dyn Fn(&[u64]) -> f64 + Send + Sync>;

/// Set-sequence generator of a custom bound: budget ↦ `S_f(i)`.
pub type SetSequenceFn = Arc<dyn Fn(u64) -> Vec<Vec<u64>> + Send + Sync>;

/// A declared running-time bound together with its set-sequence construction.
#[derive(Clone)]
pub enum TimeBound {
    /// `f(x) = Σ_k f_k(x_k)`, each `f_k` non-decreasing and non-negative.
    Additive(Vec<MonotoneFn>),
    /// `f(x₁, x₂) = f₁(x₁) · f₂(x₂)`, both factors ascending and at least 1.
    Product(MonotoneFn, MonotoneFn),
    /// A custom bound: evaluation function, set-sequence generator and bounding constant.
    Custom {
        /// Evaluates `f` on a guess vector.
        eval: BoundEval,
        /// Produces `S_f(i)`.
        sets: SetSequenceFn,
        /// The bounding constant `c` with `f(x) ≤ c·i` for every `x ∈ S_f(i)`.
        bounding_constant: u64,
    },
}

impl std::fmt::Debug for TimeBound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimeBound::Additive(fs) => write!(f, "TimeBound::Additive(ℓ={})", fs.len()),
            TimeBound::Product(_, _) => write!(f, "TimeBound::Product"),
            TimeBound::Custom { bounding_constant, .. } => {
                write!(f, "TimeBound::Custom(c={bounding_constant})")
            }
        }
    }
}

impl TimeBound {
    /// A single-parameter bound (a special case of the additive form).
    pub fn single(f: MonotoneFn) -> Self {
        TimeBound::Additive(vec![f])
    }

    /// The number of parameters (arity of the guess vectors).
    pub fn arity(&self) -> usize {
        match self {
            TimeBound::Additive(fs) => fs.len(),
            TimeBound::Product(_, _) => 2,
            TimeBound::Custom { sets, .. } => sets(1).first().map_or(1, |v| v.len()),
        }
    }

    /// Evaluates `f` on a guess vector.
    ///
    /// # Panics
    ///
    /// Panics if the vector length does not match [`TimeBound::arity`] for the additive and
    /// product forms.
    pub fn eval(&self, guesses: &[u64]) -> f64 {
        match self {
            TimeBound::Additive(fs) => {
                assert_eq!(guesses.len(), fs.len());
                fs.iter().zip(guesses).map(|(f, &x)| f(x)).sum()
            }
            TimeBound::Product(f1, f2) => {
                assert_eq!(guesses.len(), 2);
                f1(guesses[0]) * f2(guesses[1])
            }
            TimeBound::Custom { eval, .. } => eval(guesses),
        }
    }

    /// The bounding constant `c` of the set-sequence.
    pub fn bounding_constant(&self) -> u64 {
        match self {
            TimeBound::Additive(fs) => fs.len().max(1) as u64,
            TimeBound::Product(_, _) => 4,
            TimeBound::Custom { bounding_constant, .. } => (*bounding_constant).max(1),
        }
    }

    /// The set `S_f(i)`: every guess vector `y` with `f(y) ≤ i` is dominated by some member,
    /// and every member `x` has `f(x) ≤ c·i`.
    pub fn set_sequence(&self, i: u64) -> Vec<Vec<u64>> {
        let budget = i.max(1) as f64;
        match self {
            TimeBound::Additive(fs) => {
                let mut vector = Vec::with_capacity(fs.len());
                for f in fs {
                    match largest_arg_at_most(f, budget, ARGUMENT_CAP) {
                        Some(x) => vector.push(x),
                        None => return Vec::new(),
                    }
                }
                vec![vector]
            }
            TimeBound::Product(f1, f2) => {
                let log_i = (i.max(1) as f64).log2().ceil() as i64;
                let mut sets = Vec::new();
                for j in 0..=log_i.max(0) {
                    let b1 = 2f64.powi(j as i32);
                    let b2 = 2f64.powi((log_i - j + 1) as i32);
                    let x1 = largest_arg_at_most(f1, b1, ARGUMENT_CAP);
                    let x2 = largest_arg_at_most(f2, b2, ARGUMENT_CAP);
                    if let (Some(x1), Some(x2)) = (x1, x2) {
                        sets.push(vec![x1, x2]);
                    }
                }
                sets
            }
            TimeBound::Custom { sets, .. } => sets(i),
        }
    }

    /// An upper bound on `|S_f(i)|` (the sequence-number function `s_f(i)`).
    pub fn sequence_number(&self, i: u64) -> u64 {
        match self {
            TimeBound::Additive(_) => 1,
            TimeBound::Product(_, _) => (i.max(2) as f64).log2().ceil() as u64 + 1,
            TimeBound::Custom { sets, .. } => sets(i).len().max(1) as u64,
        }
    }
}

/// Verifies the two defining properties of a bounded set-sequence on a specific budget `i` for
/// a specific "true" parameter vector `y`: (1) if `f(y) ≤ i` then `y` is dominated by some
/// member of `S_f(i)`, and (2) every member `x` satisfies `f(x) ≤ c·i`. Used by property tests.
pub fn check_set_sequence_properties(bound: &TimeBound, i: u64, y: &[u64]) -> Result<(), String> {
    let sets = bound.set_sequence(i);
    let c = bound.bounding_constant();
    for x in &sets {
        let fx = bound.eval(x);
        if fx > (c * i) as f64 + 1e-6 {
            return Err(format!("member {x:?} has f = {fx} > c·i = {}", c * i));
        }
    }
    if bound.eval(y) <= i as f64 {
        let dominated = sets.iter().any(|x| x.iter().zip(y).all(|(&xi, &yi)| xi >= yi));
        if !dominated {
            return Err(format!("vector {y:?} with f ≤ {i} is not dominated by any of {sets:?}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::funcs::monotone;

    fn additive_example() -> TimeBound {
        // f(Δ, m) = Δ + 3·log* m  (shape of the Table 1 row 1 bound).
        TimeBound::Additive(vec![
            monotone(|d| d as f64),
            monotone(|m| 3.0 * local_graphs::log_star(m as f64) as f64),
        ])
    }

    fn product_example() -> TimeBound {
        // f(a, n) = a · log₂ n  (shape of the Barenboim–Elkin arboricity bounds).
        TimeBound::Product(
            monotone(|a| a.max(1) as f64),
            monotone(|n| (n.max(2) as f64).log2().max(1.0)),
        )
    }

    #[test]
    fn additive_set_sequence_is_single_vector() {
        let bound = additive_example();
        let sets = bound.set_sequence(64);
        assert_eq!(sets.len(), 1);
        assert_eq!(bound.sequence_number(64), 1);
        // The vector's entries are the largest values whose component cost is ≤ 64.
        assert_eq!(sets[0][0], 64);
        // Components are within the budget individually, so f(x) ≤ 2·64.
        assert!(bound.eval(&sets[0]) <= 128.0);
    }

    #[test]
    fn additive_set_sequence_respects_properties() {
        let bound = additive_example();
        for i in [1u64, 2, 8, 64, 1024] {
            for y in [[1u64, 1], [5, 100], [40, 1 << 20], [1000, 2]] {
                check_set_sequence_properties(&bound, i, &y).unwrap();
            }
        }
    }

    #[test]
    fn additive_empty_when_budget_too_small() {
        // f(x) = x + 10: no argument has cost ≤ 5.
        let bound = TimeBound::Additive(vec![monotone(|x| x as f64 + 10.0)]);
        assert!(bound.set_sequence(5).is_empty());
        assert!(!bound.set_sequence(11).is_empty());
    }

    #[test]
    fn product_set_sequence_has_log_many_members() {
        let bound = product_example();
        let sets = bound.set_sequence(1024);
        assert!(!sets.is_empty());
        assert!(sets.len() as u64 <= bound.sequence_number(1024));
        assert!(bound.sequence_number(1024) <= 12);
    }

    #[test]
    fn product_set_sequence_respects_properties() {
        let bound = product_example();
        for i in [2u64, 16, 256, 4096] {
            for y in [[1u64, 2], [3, 1 << 10], [30, 64], [2, 1 << 30]] {
                check_set_sequence_properties(&bound, i, &y).unwrap();
            }
        }
    }

    #[test]
    fn custom_bound_round_trips() {
        let bound = TimeBound::Custom {
            eval: Arc::new(|g: &[u64]| g[0] as f64),
            sets: Arc::new(|i: u64| vec![vec![i]]),
            bounding_constant: 1,
        };
        assert_eq!(bound.set_sequence(7), vec![vec![7]]);
        assert_eq!(bound.eval(&[7]), 7.0);
        assert_eq!(bound.arity(), 1);
        check_set_sequence_properties(&bound, 7, &[3]).unwrap();
    }

    #[test]
    fn single_constructor_is_additive() {
        let bound = TimeBound::single(monotone(|n| (n.max(2) as f64).log2()));
        assert_eq!(bound.arity(), 1);
        assert_eq!(bound.sequence_number(1 << 20), 1);
        let sets = bound.set_sequence(10);
        // log₂ y ≤ 10 → y ≤ 1024.
        assert_eq!(sets[0][0], 1024);
    }

    #[test]
    fn debug_formatting() {
        assert!(format!("{:?}", additive_example()).contains("Additive"));
        assert!(format!("{:?}", product_example()).contains("Product"));
    }
}

//! The function classes of Section 2: moderately-slow, moderately-increasing and
//! moderately-fast functions, plus the monotone inverses the transformers need.
//!
//! The paper's conditions are universally quantified over all integers; the checkers here
//! verify them over a finite sample range (doubling points up to a cap), which is what the
//! property-based tests exercise. The *inverse* helpers — "the largest `y` with `f(y) ≤ x`" —
//! are the workhorse used to build set-sequences (Section 4.2) and the Theorem 3 parameter
//! translation.

use std::sync::Arc;

/// A non-decreasing function `N → R+`, shared by the transformer machinery.
pub type MonotoneFn = Arc<dyn Fn(u64) -> f64 + Send + Sync>;

/// Builds a [`MonotoneFn`] from a closure.
pub fn monotone<F: Fn(u64) -> f64 + Send + Sync + 'static>(f: F) -> MonotoneFn {
    Arc::new(f)
}

/// Upper cap on arguments explored by inverses and property checks (2^48 is far beyond any
/// guess a transformer will ever need for simulated graphs).
pub const ARGUMENT_CAP: u64 = 1 << 48;

/// Returns the largest `y ∈ [1, cap]` with `f(y) ≤ x`, or `None` if even `f(1) > x`.
///
/// `f` must be non-decreasing; the search is exponential followed by binary.
pub fn largest_arg_at_most(f: &MonotoneFn, x: f64, cap: u64) -> Option<u64> {
    if f(1) > x {
        return None;
    }
    // Exponential search maintaining the invariant f(lo) <= x.
    let mut lo = 1u64;
    let mut hi = 2u64.min(cap);
    while hi < cap && f(hi) <= x {
        lo = hi;
        hi = hi.saturating_mul(2).min(cap);
    }
    if f(hi) <= x {
        // Only possible when hi reached the cap.
        return Some(hi);
    }
    // Invariant: f(lo) <= x < f(hi); binary search.
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if f(mid) <= x {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

/// Is `f` non-decreasing on a doubling sample of `[1, cap]`?
pub fn is_non_decreasing(f: &MonotoneFn, cap: u64) -> bool {
    let mut prev = f(1);
    let mut x = 1u64;
    while x < cap {
        let next_x = (x * 2).min(cap);
        let val = f(next_x);
        if val < prev {
            return false;
        }
        prev = val;
        x = next_x;
    }
    true
}

/// Is `f` *moderately slow*: non-decreasing and `f(2i) ≤ α·f(i)` for some constant `α`
/// (checked with the supplied `alpha` over a doubling sample)?
///
/// Examples: constants, `log`, `log*`, polynomials of bounded degree... anything satisfying
/// `f(c·i) = O(f(i))`.
pub fn is_moderately_slow(f: &MonotoneFn, alpha: f64, cap: u64) -> bool {
    if !is_non_decreasing(f, cap) {
        return false;
    }
    let mut i = 2u64;
    while i <= cap / 2 {
        if f(2 * i) > alpha * f(i) + 1e-9 {
            return false;
        }
        i *= 2;
    }
    true
}

/// Is `f` *moderately increasing*: moderately slow and `f(α·i) ≥ 2·f(i)` (growth lower bound)?
pub fn is_moderately_increasing(f: &MonotoneFn, alpha: u64, cap: u64) -> bool {
    if !is_moderately_slow(f, alpha as f64, cap) {
        return false;
    }
    let mut i = 2u64;
    while i.saturating_mul(alpha) <= cap {
        if f(alpha * i) < 2.0 * f(i) - 1e-9 {
            return false;
        }
        i *= 2;
    }
    true
}

/// Is `f` *moderately fast*: moderately increasing and `x < f(x) < P(x)` for the polynomial
/// `P(x) = poly_coeff · x^poly_degree` (the paper only requires *some* polynomial)?
pub fn is_moderately_fast(
    f: &MonotoneFn,
    alpha: u64,
    poly_coeff: f64,
    poly_degree: u32,
    cap: u64,
) -> bool {
    if !is_moderately_increasing(f, alpha, cap) {
        return false;
    }
    let mut x = 2u64;
    while x <= cap {
        let val = f(x);
        if val <= x as f64 || val >= poly_coeff * (x as f64).powi(poly_degree as i32) {
            return false;
        }
        if x == cap {
            break;
        }
        x = (x * 2).min(cap);
    }
    true
}

/// Does `f` tend to infinity (ascending) on the sample range?
pub fn is_ascending(f: &MonotoneFn, cap: u64) -> bool {
    is_non_decreasing(f, cap) && f(cap) > f(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: u64 = 1 << 30;

    #[test]
    fn inverse_of_identity() {
        let f = monotone(|x| x as f64);
        assert_eq!(largest_arg_at_most(&f, 10.0, CAP), Some(10));
        assert_eq!(largest_arg_at_most(&f, 0.5, CAP), None);
        assert_eq!(largest_arg_at_most(&f, 1.0, CAP), Some(1));
    }

    #[test]
    fn inverse_of_exponential() {
        let f = monotone(|x| (x as f64).exp2());
        // 2^y <= 1000 → y <= 9.
        assert_eq!(largest_arg_at_most(&f, 1000.0, CAP), Some(9));
    }

    #[test]
    fn inverse_of_constant_hits_cap() {
        let f = monotone(|_| 3.0);
        assert_eq!(largest_arg_at_most(&f, 5.0, 1 << 20), Some(1 << 20));
        assert_eq!(largest_arg_at_most(&f, 2.0, 1 << 20), None);
    }

    #[test]
    fn inverse_respects_monotone_boundary() {
        let f = monotone(|x| (x as f64).sqrt());
        let y = largest_arg_at_most(&f, 7.0, CAP).unwrap();
        assert!(f(y) <= 7.0);
        assert!(f(y + 1) > 7.0 || y == CAP);
    }

    #[test]
    fn log_is_moderately_slow_but_not_increasing() {
        let f = monotone(|x| (x.max(2) as f64).log2());
        assert!(is_moderately_slow(&f, 2.0, CAP));
        assert!(!is_moderately_increasing(&f, 2, CAP));
    }

    #[test]
    fn constant_is_moderately_slow() {
        let f = monotone(|_| 7.0);
        assert!(is_moderately_slow(&f, 1.0, CAP));
        assert!(!is_ascending(&f, CAP));
    }

    #[test]
    fn polynomials_are_moderately_increasing_and_fast() {
        // f(x) = x^1.5 is moderately fast: x < x^1.5 < x^2 for x ≥ 2.
        let f = monotone(|x| (x as f64).powf(1.5));
        assert!(is_moderately_increasing(&f, 4, CAP));
        assert!(is_moderately_fast(&f, 4, 1.0, 2, 1 << 20));
    }

    #[test]
    fn exponential_is_not_moderately_slow() {
        let f = monotone(|x| (x.min(1000) as f64).exp2());
        assert!(!is_moderately_slow(&f, 4.0, 1 << 12));
    }

    #[test]
    fn decreasing_function_fails_all_checks() {
        let f = monotone(|x| 1.0 / (x as f64 + 1.0));
        assert!(!is_non_decreasing(&f, CAP));
        assert!(!is_moderately_slow(&f, 2.0, CAP));
    }

    #[test]
    fn linear_is_ascending() {
        let f = monotone(|x| 3.0 * x as f64);
        assert!(is_ascending(&f, CAP));
    }
}

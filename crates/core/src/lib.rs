//! # local-uniform — pruning algorithms and uniform-transformer framework
//!
//! This crate implements the contribution of *"Toward more localized local algorithms:
//! removing assumptions concerning global knowledge"* (Korman, Sereni, Viennot; PODC 2011 /
//! Distributed Computing 2013):
//!
//! * **pruning algorithms** (Section 3) for (2, β)-ruling sets / MIS, maximal matching, and
//!   strong list colouring — [`pruning`];
//! * **set-sequences and sequence-number functions** (Section 4.2) — [`seqnum`], [`funcs`];
//! * **transformers from non-uniform to uniform algorithms**: Theorem 1 (deterministic),
//!   Theorem 2 (weak Monte-Carlo → Las Vegas), Theorem 3 (weak domination of parameter sets),
//!   Theorem 4 (run as fast as the fastest), Theorem 5 (colouring) — [`transform`],
//!   [`nonuniform`], [`theorem5`];
//! * a **catalog** of ready-made black boxes wiring the baseline algorithms of
//!   [`local_algos`] to their declared time bounds, reproducing the rows of Table 1 —
//!   [`catalog`].
//!
//! ```
//! use local_uniform::catalog;
//! use local_uniform::problem::{MisProblem, Problem};
//!
//! // A uniform MIS algorithm (no global knowledge at any node), Corollary 1(i)-style.
//! let uniform = catalog::uniform_coloring_mis();
//! let g = local_graphs::gnp(60, 0.1, 1);
//! let run = uniform.solve(&g, &vec![(); 60], 0);
//! assert!(run.solved);
//! MisProblem.validate(&g, &vec![(); 60], &run.outputs).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod funcs;
pub mod nonuniform;
pub mod problem;
pub mod pruning;
pub mod rebuild;
pub mod seqnum;
pub mod theorem5;
pub mod transform;

pub use funcs::{monotone, MonotoneFn};
pub use nonuniform::{Determinism, Domination, NonUniformAlgorithm};
pub use problem::{
    ColoringProblem, MatchingProblem, MisProblem, Problem, RulingSetProblem, SlcColor, SlcInput,
    SlcProblem,
};
pub use pruning::{MatchingPruning, Pruned, PruningAlgorithm, RulingSetPruning, SlcPruning};
pub use seqnum::TimeBound;
pub use transform::{
    FastestOfTransformer, SubIterationTrace, UniformComponent, UniformRun, UniformTransformer,
};

//! The transformers of Section 4: from non-uniform to uniform algorithms.
//!
//! * [`UniformTransformer`] — Algorithm π of Theorem 1 (deterministic black boxes) and
//!   Algorithm τ of Theorem 2 (weak Monte-Carlo black boxes, producing a Las Vegas uniform
//!   algorithm). Which of the two drivers runs is selected by the black box's
//!   [`Determinism`] tag.
//! * [`FastestOfTransformer`] — Theorem 4: combine `k` uniform algorithms with unknown
//!   running times into one uniform algorithm whose running time matches the fastest.
//!
//! Both drivers are *alternating algorithms* (Section 3.3): they repeatedly run a budgeted
//! attempt followed by the pruning algorithm, freeze the outputs of pruned nodes, and recurse
//! on the induced subgraph of surviving nodes. Observation 3.4 guarantees that on termination
//! the combined output solves the original instance; the budget-doubling guess schedule
//! guarantees termination within `O(f*·s_f(f*))` rounds once the budget and guesses reach the
//! instance's true parameters.
//!
//! Round accounting is intentionally conservative: every executed sub-iteration is charged its
//! full allocated budget `c·2^i` plus the pruning time `T₀`, exactly as in the paper's
//! analysis (nodes cannot detect globally that an attempt finished early).

use crate::nonuniform::{Determinism, NonUniformAlgorithm};
use crate::problem::Problem;
use crate::pruning::PruningAlgorithm;
use local_runtime::{Graph, GraphAlgorithm, GraphView, Session};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// A record of one executed sub-iteration, for the Figure 1 style traces.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SubIterationTrace {
    /// Outer iteration index `i` (budgets are `c·2^i`).
    pub iteration: u64,
    /// The guess vector used.
    pub guesses: Vec<u64>,
    /// The allocated budget for the attempt (excluding the pruning rounds).
    pub budget: u64,
    /// Number of nodes alive before the attempt.
    pub alive_before: usize,
    /// Number of nodes pruned by the pruning algorithm after the attempt.
    pub pruned: usize,
}

/// The outcome of running a uniform (transformed) algorithm.
#[derive(Debug, Clone)]
pub struct UniformRun<O> {
    /// Final outputs, one per node of the original graph.
    pub outputs: Vec<O>,
    /// Total rounds charged (attempt budgets + pruning invocations).
    pub rounds: u64,
    /// Total messages delivered by the black-box attempts (pruning messages are not
    /// simulated; its cost is charged in rounds).
    pub messages: u64,
    /// Number of outer iterations executed.
    pub iterations: u64,
    /// Number of sub-iterations (black-box attempts) executed.
    pub subiterations: u64,
    /// `true` when every node was pruned before the safety cap.
    pub solved: bool,
    /// Per-sub-iteration trace.
    pub trace: Vec<SubIterationTrace>,
    /// Wall-clock time spent inside black-box attempts, in microseconds (profiling aid;
    /// non-deterministic, excluded from reproducibility comparisons).
    pub attempt_micros: u64,
    /// Wall-clock time spent in pruning and configuration shrinking, in microseconds
    /// (profiling aid; non-deterministic).
    pub prune_micros: u64,
}

/// Shared bookkeeping of the alternating drivers: the current configuration (a live
/// [`GraphView`] that pruning shrinks in place — nothing is rebuilt between attempts), the
/// frozen outputs, the reusable execution [`Session`], and the round/trace accounting.
struct AlternationState<'g, 's, P: Problem> {
    view: GraphView<'g>,
    inputs: Vec<P::Input>,
    /// Mapping from the current live indices to the *initial* view's indices (the caller's
    /// output indexing).
    back: Vec<usize>,
    outputs: Vec<Option<P::Output>>,
    session: &'s mut Session,
    rounds: u64,
    messages: u64,
    subiterations: u64,
    record_trace: bool,
    trace: Vec<SubIterationTrace>,
    /// Reused survivor mask (allocated once, refilled per effective pruning).
    keep: Vec<bool>,
    attempt_micros: u64,
    prune_micros: u64,
}

impl<'g, 's, P: Problem> AlternationState<'g, 's, P> {
    fn new(
        view: GraphView<'g>,
        inputs: &[P::Input],
        session: &'s mut Session,
        record_trace: bool,
    ) -> Self {
        let n = view.node_count();
        assert_eq!(inputs.len(), n, "one input per (live) node is required");
        AlternationState {
            view,
            inputs: inputs.to_vec(),
            back: (0..n).collect(),
            outputs: vec![None; n],
            session,
            rounds: 0,
            messages: 0,
            subiterations: 0,
            record_trace,
            trace: Vec::new(),
            keep: Vec::new(),
            attempt_micros: 0,
            prune_micros: 0,
        }
    }

    fn alive(&self) -> usize {
        self.view.node_count()
    }

    /// Runs one sub-iteration: the black-box attempt followed by the pruning algorithm.
    ///
    /// On an unsuccessful attempt (nothing pruned) the configuration is untouched, the
    /// attempt's output vector goes back to the session pool, and — because the view's epoch
    /// is unchanged — the next attempt reuses every cached buffer: the steady state of the
    /// doubling cascade executes without allocating in the runtime.
    fn attempt<Pr: PruningAlgorithm<P> + ?Sized>(
        &mut self,
        iteration: u64,
        algorithm: &dyn GraphAlgorithm<Input = P::Input, Output = P::Output>,
        guesses: &[u64],
        budget: u64,
        pruning: &Pr,
        seed: u64,
    ) {
        let alive_before = self.alive();
        let attempt_started = Instant::now();
        let run = if self.view.is_empty() {
            local_runtime::AlgoRun::empty()
        } else {
            algorithm.execute_view(&self.view, &self.inputs, Some(budget), seed, self.session)
        };
        self.attempt_micros += attempt_started.elapsed().as_micros() as u64;
        // Charge the full allocated budget plus the pruning time, as in the paper's analysis.
        self.rounds += budget + pruning.rounds();
        self.messages += run.messages;
        self.subiterations += 1;

        let prune_started = Instant::now();
        let mut tentative = run.outputs;
        pruning.normalize(&self.view, &mut tentative);
        let pruned = pruning.prune(&self.view, &self.inputs, &tentative);
        let pruned_count = pruned.pruned_count();
        if self.record_trace {
            self.trace.push(SubIterationTrace {
                iteration,
                guesses: guesses.to_vec(),
                budget,
                alive_before,
                pruned: pruned_count,
            });
        }
        if pruned_count == 0 {
            self.session.recycle_outputs(tentative);
            self.prune_micros += prune_started.elapsed().as_micros() as u64;
            return;
        }
        // Freeze the outputs of pruned nodes.
        for (v, output) in tentative.iter().enumerate() {
            if pruned.pruned[v] {
                self.outputs[self.back[v]] = Some(output.clone());
            }
        }
        self.session.recycle_outputs(tentative);
        // Shrink the configuration to the survivors, rewriting inputs as the pruning dictates:
        // the view is filtered in place (cost proportional to the pruned nodes' adjacency, not
        // to the graph), no CSR copy happens.
        self.keep.clear();
        self.keep.extend(pruned.pruned.iter().map(|&p| !p));
        let keep = &self.keep;
        self.inputs =
            (0..alive_before).filter(|&v| keep[v]).map(|v| pruned.new_inputs[v].clone()).collect();
        self.back = (0..alive_before).filter(|&v| keep[v]).map(|v| self.back[v]).collect();
        self.view.retain(keep);
        self.prune_micros += prune_started.elapsed().as_micros() as u64;
    }

    fn finish<O: Clone>(self, fallback: &O) -> UniformRun<O>
    where
        P: Problem<Output = O>,
    {
        let solved = self.view.is_empty();
        let outputs =
            self.outputs.into_iter().map(|o| o.unwrap_or_else(|| fallback.clone())).collect();
        UniformRun {
            outputs,
            rounds: self.rounds,
            messages: self.messages,
            iterations: 0, // filled by the caller
            subiterations: self.subiterations,
            solved,
            trace: self.trace,
            attempt_micros: self.attempt_micros,
            prune_micros: self.prune_micros,
        }
    }
}

/// The uniform algorithm produced by Theorem 1 (deterministic) / Theorem 2 (Las Vegas).
pub struct UniformTransformer<P: Problem, Pr: PruningAlgorithm<P>> {
    /// The non-uniform black box being transformed.
    pub algorithm: NonUniformAlgorithm<P>,
    /// The Γ-monotone pruning algorithm.
    pub pruning: Arc<Pr>,
    /// Output used for nodes never pruned when the safety cap is reached (never used on
    /// successful runs).
    pub fallback_output: P::Output,
    /// Safety cap on the number of outer iterations (the uniform algorithm itself has no such
    /// cap; this only guards the simulation against mis-specified time bounds).
    pub max_iterations: u64,
    /// Whether to record the per-sub-iteration [`SubIterationTrace`]s (on by default).
    /// Recording allocates per attempt; throughput-sensitive callers (benchmarks, large
    /// sweeps that never read traces) can switch it off with
    /// [`UniformTransformer::without_trace`].
    pub record_trace: bool,
}

impl<P: Problem, Pr: PruningAlgorithm<P>> UniformTransformer<P, Pr> {
    /// Creates the transformer with a default iteration cap of 40 (budgets up to `c·2^40`).
    pub fn new(algorithm: NonUniformAlgorithm<P>, pruning: Pr, fallback_output: P::Output) -> Self {
        UniformTransformer {
            algorithm,
            pruning: Arc::new(pruning),
            fallback_output,
            max_iterations: 40,
            record_trace: true,
        }
    }

    /// Disables sub-iteration trace recording (the returned runs carry an empty trace).
    pub fn without_trace(mut self) -> Self {
        self.record_trace = false;
        self
    }

    /// Runs the uniform algorithm on `(G, x)` with a throwaway [`Session`].
    ///
    /// Dispatches on the black box's [`Determinism`]: Algorithm π (Theorem 1) for
    /// deterministic black boxes, Algorithm τ (Theorem 2) for weak Monte-Carlo ones.
    pub fn solve(&self, graph: &Graph, inputs: &[P::Input], seed: u64) -> UniformRun<P::Output> {
        self.solve_in(graph, inputs, seed, &mut Session::new())
    }

    /// Like [`UniformTransformer::solve`], but reuses the caller's [`Session`] buffers —
    /// the entry point for schedulers that run many solves back to back.
    pub fn solve_in(
        &self,
        graph: &Graph,
        inputs: &[P::Input],
        seed: u64,
        session: &mut Session,
    ) -> UniformRun<P::Output> {
        self.solve_view(GraphView::full(graph), inputs, seed, session)
    }

    /// Runs the uniform algorithm on an arbitrary live view (used by the Theorem 5 layering,
    /// which hands each degree layer over as a view of the base graph). Outputs are indexed by
    /// the view's initial live indices. The session's buffers carry across every attempt.
    pub fn solve_view(
        &self,
        view: GraphView<'_>,
        inputs: &[P::Input],
        seed: u64,
        session: &mut Session,
    ) -> UniformRun<P::Output> {
        match self.algorithm.determinism {
            Determinism::Deterministic => self.solve_deterministic(view, inputs, seed, session),
            Determinism::WeakMonteCarlo => self.solve_las_vegas(view, inputs, seed, session),
        }
    }

    /// Algorithm π (the proof of Theorem 1): iteration `i` runs one attempt per guess vector
    /// of `S_f(2^i)`, each restricted to `c·2^i` rounds and followed by the pruning algorithm.
    fn solve_deterministic(
        &self,
        view: GraphView<'_>,
        inputs: &[P::Input],
        seed: u64,
        session: &mut Session,
    ) -> UniformRun<P::Output> {
        let mut state = AlternationState::<P>::new(view, inputs, session, self.record_trace);
        let c = self.algorithm.time_bound.bounding_constant();
        let mut iterations = 0;
        for i in 1..=self.max_iterations {
            if state.alive() == 0 {
                break;
            }
            iterations = i;
            let budget = c.saturating_mul(1u64 << i.min(62));
            for (j, guesses) in
                self.algorithm.time_bound.set_sequence(1u64 << i.min(62)).iter().enumerate()
            {
                if state.alive() == 0 {
                    break;
                }
                let algo = (self.algorithm.build)(guesses);
                state.attempt(
                    i,
                    algo.as_ref(),
                    guesses,
                    budget,
                    self.pruning.as_ref(),
                    seed ^ (i << 32) ^ j as u64,
                );
            }
        }
        let mut run = state.finish(&self.fallback_output);
        run.iterations = iterations;
        run
    }

    /// Algorithm τ (the proof of Theorem 2): outer iteration `i` replays the first `i`
    /// iterations of Algorithm π on the current configuration, giving the Monte-Carlo black
    /// box geometrically many fresh chances at every budget level.
    fn solve_las_vegas(
        &self,
        view: GraphView<'_>,
        inputs: &[P::Input],
        seed: u64,
        session: &mut Session,
    ) -> UniformRun<P::Output> {
        let mut state = AlternationState::<P>::new(view, inputs, session, self.record_trace);
        let c = self.algorithm.time_bound.bounding_constant();
        let mut iterations = 0;
        'outer: for i in 1..=self.max_iterations {
            if state.alive() == 0 {
                break;
            }
            iterations = i;
            for j in 1..=i {
                if state.alive() == 0 {
                    break 'outer;
                }
                let budget = c.saturating_mul(1u64 << j.min(62));
                for (k, guesses) in
                    self.algorithm.time_bound.set_sequence(1u64 << j.min(62)).iter().enumerate()
                {
                    if state.alive() == 0 {
                        break 'outer;
                    }
                    let algo = (self.algorithm.build)(guesses);
                    state.attempt(
                        j,
                        algo.as_ref(),
                        guesses,
                        budget,
                        self.pruning.as_ref(),
                        seed ^ (i << 40) ^ (j << 20) ^ k as u64,
                    );
                }
            }
        }
        let mut run = state.finish(&self.fallback_output);
        run.iterations = iterations;
        run
    }
}

/// A uniform component for the Theorem 4 combinator: a uniform algorithm (it ignores guesses)
/// with an unknown running time.
pub struct UniformComponent<P: Problem> {
    /// Name used in reports.
    pub name: String,
    /// The uniform algorithm itself.
    pub algorithm: Arc<dyn GraphAlgorithm<Input = P::Input, Output = P::Output> + Send + Sync>,
}

impl<P: Problem> Clone for UniformComponent<P> {
    fn clone(&self) -> Self {
        UniformComponent { name: self.name.clone(), algorithm: self.algorithm.clone() }
    }
}

/// Theorem 4: given `k` uniform algorithms whose running times depend on different (unknown)
/// parameters, produce a uniform algorithm that runs as fast as the fastest of them (up to a
/// constant factor), by interleaving budget-doubled attempts of each component with pruning.
pub struct FastestOfTransformer<P: Problem, Pr: PruningAlgorithm<P>> {
    /// The component algorithms `U_1, …, U_k`.
    pub components: Vec<UniformComponent<P>>,
    /// The pruning algorithm (monotone with respect to every parameter involved).
    pub pruning: Arc<Pr>,
    /// Output for never-pruned nodes at the safety cap.
    pub fallback_output: P::Output,
    /// Safety cap on the number of doubling iterations.
    pub max_iterations: u64,
    /// Whether to record per-sub-iteration traces (see
    /// [`UniformTransformer::record_trace`]).
    pub record_trace: bool,
}

impl<P: Problem, Pr: PruningAlgorithm<P>> FastestOfTransformer<P, Pr> {
    /// Creates the combinator with a default iteration cap of 40.
    pub fn new(
        components: Vec<UniformComponent<P>>,
        pruning: Pr,
        fallback_output: P::Output,
    ) -> Self {
        FastestOfTransformer {
            components,
            pruning: Arc::new(pruning),
            fallback_output,
            max_iterations: 40,
            record_trace: true,
        }
    }

    /// Disables sub-iteration trace recording (the returned runs carry an empty trace).
    pub fn without_trace(mut self) -> Self {
        self.record_trace = false;
        self
    }

    /// Runs the combined uniform algorithm with a throwaway [`Session`].
    pub fn solve(&self, graph: &Graph, inputs: &[P::Input], seed: u64) -> UniformRun<P::Output> {
        self.solve_in(graph, inputs, seed, &mut Session::new())
    }

    /// Like [`FastestOfTransformer::solve`], but reuses the caller's [`Session`].
    pub fn solve_in(
        &self,
        graph: &Graph,
        inputs: &[P::Input],
        seed: u64,
        session: &mut Session,
    ) -> UniformRun<P::Output> {
        self.solve_view(GraphView::full(graph), inputs, seed, session)
    }

    /// Runs the combined uniform algorithm on a live view.
    pub fn solve_view(
        &self,
        view: GraphView<'_>,
        inputs: &[P::Input],
        seed: u64,
        session: &mut Session,
    ) -> UniformRun<P::Output> {
        let mut state = AlternationState::<P>::new(view, inputs, session, self.record_trace);
        let mut iterations = 0;
        for i in 1..=self.max_iterations {
            if state.alive() == 0 {
                break;
            }
            iterations = i;
            let budget = 1u64 << i.min(62);
            for (k, component) in self.components.iter().enumerate() {
                if state.alive() == 0 {
                    break;
                }
                state.attempt(
                    i,
                    component.algorithm.as_ref(),
                    &[],
                    budget,
                    self.pruning.as_ref(),
                    seed ^ (i << 32) ^ k as u64,
                );
            }
        }
        let mut run = state.finish(&self.fallback_output);
        run.iterations = iterations;
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::funcs::monotone;
    use crate::nonuniform::NonUniformAlgorithm;
    use crate::problem::{MatchingProblem, MisProblem, RulingSetProblem};
    use crate::pruning::{MatchingPruning, RulingSetPruning};
    use crate::seqnum::TimeBound;
    use local_algos::matching::MatchingFromEdgeColoring;
    use local_algos::mis::{ColoringMis, GreedyMis, LubyMis};
    use local_algos::ruling::MisRulingSet;
    use local_algos::synthetic::SyntheticMis;
    use local_graphs::{cycle, forest_union, gnp, grid, path, Family, GraphParams, Parameter};
    use local_runtime::DynAlgorithm;
    use std::sync::Arc;

    fn units(n: usize) -> Vec<()> {
        vec![(); n]
    }

    /// The ColoringMis black box with a *sound* additive bound (Bertrand gives the palette
    /// bound (2(Δ̃+1))², the rest is bookkeeping).
    fn coloring_mis_black_box() -> NonUniformAlgorithm<MisProblem> {
        NonUniformAlgorithm::deterministic(
            "coloring-MIS",
            vec![Parameter::MaxDegree, Parameter::MaxId],
            TimeBound::Additive(vec![
                monotone(|d| {
                    let d = d as f64;
                    4.0 * (d + 2.0) * (d + 2.0) + d + 6.0
                }),
                monotone(|m| local_graphs::log_star(m as f64) as f64 + 6.0),
            ]),
            Arc::new(|g: &[u64]| {
                Box::new(ColoringMis { delta_guess: g[0], id_bound_guess: g[1] })
                    as DynAlgorithm<(), bool>
            }),
        )
    }

    fn synthetic_ps_black_box() -> NonUniformAlgorithm<MisProblem> {
        NonUniformAlgorithm::deterministic(
            "synthetic-PS",
            vec![Parameter::N],
            TimeBound::single(monotone(|n| {
                (2f64).powf(1.5 * (n.max(2) as f64).log2().sqrt()).ceil()
            })),
            Arc::new(|g: &[u64]| {
                Box::new(SyntheticMis::panconesi_srinivasan(g[0], 1.5)) as DynAlgorithm<(), bool>
            }),
        )
    }

    #[test]
    fn theorem1_uniform_mis_from_coloring_black_box() {
        let transformer =
            UniformTransformer::new(coloring_mis_black_box(), RulingSetPruning::mis(), false);
        for (i, g) in [path(30), cycle(25), grid(6, 6), gnp(70, 0.08, 3), forest_union(60, 2, 1)]
            .iter()
            .enumerate()
        {
            let run = transformer.solve(g, &units(g.node_count()), i as u64);
            assert!(run.solved, "graph {i} not solved");
            MisProblem.validate(g, &units(g.node_count()), &run.outputs).unwrap();
            assert!(run.iterations >= 1);
            assert!(run.subiterations >= 1);
            assert!(!run.trace.is_empty());
        }
    }

    #[test]
    fn theorem1_round_overhead_is_a_constant_factor() {
        // The headline claim: the uniform algorithm's rounds are within a constant factor of
        // f(Γ*) (the non-uniform bound at the correct guesses).
        let black_box = coloring_mis_black_box();
        let transformer =
            UniformTransformer::new(black_box.clone(), RulingSetPruning::mis(), false);
        for n in [64usize, 128, 256] {
            let g = Family::SparseGnp.generate(n, 7);
            let run = transformer.solve(&g, &units(g.node_count()), 0);
            assert!(run.solved);
            let f_star = black_box.bound_at_correct_guesses(&g);
            // O(f*·s_f(f*)) with s_f = 1: allow a generous constant (the doubling schedule
            // pays at most 4× on the last iteration plus the geometric lower tail).
            assert!(
                (run.rounds as f64) <= 16.0 * f_star + 200.0,
                "n={n}: uniform rounds {} vastly exceed f* = {}",
                run.rounds,
                f_star
            );
        }
    }

    #[test]
    fn theorem1_with_synthetic_ps_bound() {
        let transformer =
            UniformTransformer::new(synthetic_ps_black_box(), RulingSetPruning::mis(), false);
        let g = gnp(120, 0.05, 9);
        let run = transformer.solve(&g, &units(120), 0);
        assert!(run.solved);
        MisProblem.validate(&g, &units(120), &run.outputs).unwrap();
    }

    #[test]
    fn theorem1_trace_shows_doubling_budgets() {
        let transformer =
            UniformTransformer::new(coloring_mis_black_box(), RulingSetPruning::mis(), false);
        let g = gnp(60, 0.1, 2);
        let run = transformer.solve(&g, &units(60), 0);
        let budgets: Vec<u64> = run.trace.iter().map(|t| t.budget).collect();
        assert!(budgets.windows(2).all(|w| w[1] >= w[0]), "budgets must be non-decreasing");
        assert!(budgets.last().unwrap() >= &budgets[0]);
        // Once solved, the last sub-iteration prunes every remaining node.
        let last = run.trace.last().unwrap();
        assert_eq!(last.pruned, last.alive_before);
    }

    #[test]
    fn theorem1_uniform_matching() {
        let black_box: NonUniformAlgorithm<MatchingProblem> = NonUniformAlgorithm::deterministic(
            "edge-coloring-MM",
            vec![Parameter::MaxDegree, Parameter::MaxId],
            TimeBound::Additive(vec![
                monotone(|d| {
                    let d = d as f64;
                    4.0 * (2.0 * d + 2.0) * (2.0 * d + 2.0) + 2.0 * d + 8.0
                }),
                monotone(|m| local_graphs::log_star((m as f64) * 1_000_004.0) as f64 + 6.0),
            ]),
            Arc::new(|g: &[u64]| {
                Box::new(MatchingFromEdgeColoring { delta_guess: g[0], id_bound_guess: g[1] })
                    as DynAlgorithm<(), Option<u64>>
            }),
        );
        let transformer = UniformTransformer::new(black_box, MatchingPruning, None);
        for g in [path(20), grid(5, 5), gnp(50, 0.1, 4)] {
            let run = transformer.solve(&g, &units(g.node_count()), 1);
            assert!(run.solved);
            MatchingProblem.validate(&g, &units(g.node_count()), &run.outputs).unwrap();
        }
    }

    #[test]
    fn theorem2_las_vegas_ruling_set() {
        // Weak Monte-Carlo black box: budgeted Luby with an O(log ñ) declared bound.
        let black_box: NonUniformAlgorithm<RulingSetProblem> = NonUniformAlgorithm::monte_carlo(
            "budgeted-Luby",
            vec![Parameter::N],
            TimeBound::single(monotone(|n| 16.0 * (n.max(2) as f64).log2() + 2.0)),
            Arc::new(|g: &[u64]| {
                Box::new(MisRulingSet::with_default_budget(g[0])) as DynAlgorithm<(), bool>
            }),
        );
        let beta = 2;
        let transformer = UniformTransformer::new(black_box, RulingSetPruning { beta }, false);
        for seed in 0..3u64 {
            let g = gnp(80, 0.07, seed);
            let run = transformer.solve(&g, &units(80), seed);
            assert!(run.solved, "Las Vegas run must terminate");
            RulingSetProblem::two(beta).validate(&g, &units(80), &run.outputs).unwrap();
        }
    }

    #[test]
    fn theorem2_las_vegas_with_flaky_synthetic_black_box() {
        // A Monte-Carlo black box that fails half of the time: the Las Vegas driver must still
        // always terminate with a correct answer.
        let black_box: NonUniformAlgorithm<MisProblem> = NonUniformAlgorithm::monte_carlo(
            "flaky-synthetic",
            vec![Parameter::N],
            TimeBound::single(monotone(|n| 4.0 * (n.max(2) as f64).log2())),
            Arc::new(|g: &[u64]| {
                Box::new(SyntheticMis::monte_carlo_log(g[0], 4, 0.5)) as DynAlgorithm<(), bool>
            }),
        );
        let transformer = UniformTransformer::new(black_box, RulingSetPruning::mis(), false);
        for seed in 0..5u64 {
            let g = gnp(60, 0.1, seed);
            let run = transformer.solve(&g, &units(60), seed);
            assert!(run.solved);
            MisProblem.validate(&g, &units(60), &run.outputs).unwrap();
        }
    }

    #[test]
    fn theorem4_fastest_of_runs_as_fast_as_best_component() {
        // Component 1: Luby (fast everywhere). Component 2: greedy by identity (slow on paths
        // with adversarial identities, fine on small-diameter graphs).
        let components = vec![
            UniformComponent::<MisProblem> { name: "luby".into(), algorithm: Arc::new(LubyMis) },
            UniformComponent::<MisProblem> {
                name: "greedy".into(),
                algorithm: Arc::new(GreedyMis),
            },
        ];
        let combiner = FastestOfTransformer::new(components, RulingSetPruning::mis(), false);
        for (i, g) in [path(200), gnp(100, 0.08, 1), grid(8, 8)].iter().enumerate() {
            let run = combiner.solve(g, &units(g.node_count()), i as u64);
            assert!(run.solved);
            MisProblem.validate(g, &units(g.node_count()), &run.outputs).unwrap();
            // The fastest component on these instances needs well under 100 rounds, so the
            // combinator (doubling overhead included) stays well under 1000.
            assert!(run.rounds < 1000, "combinator too slow: {} rounds", run.rounds);
        }
    }

    #[test]
    fn theorem4_matches_min_not_max() {
        // A deliberately slow component must not drag the combinator down: its budgeted
        // attempts are cut off and pruned away once the fast component solves the instance.
        struct NeverHalts;
        impl local_runtime::GraphAlgorithm for NeverHalts {
            type Input = ();
            type Output = bool;
            fn execute(
                &self,
                graph: &Graph,
                _inputs: &[()],
                budget: Option<u64>,
                _seed: u64,
            ) -> local_runtime::AlgoRun<bool> {
                local_runtime::AlgoRun {
                    outputs: vec![false; graph.node_count()],
                    rounds: budget.unwrap_or(1_000_000),
                    messages: 0,
                    completed: false,
                }
            }
        }
        let components = vec![
            UniformComponent::<MisProblem> {
                name: "never-halts".into(),
                algorithm: Arc::new(NeverHalts),
            },
            UniformComponent::<MisProblem> { name: "luby".into(), algorithm: Arc::new(LubyMis) },
        ];
        let combiner = FastestOfTransformer::new(components, RulingSetPruning::mis(), false);
        let g = gnp(80, 0.1, 3);
        let run = combiner.solve(&g, &units(80), 0);
        assert!(run.solved);
        MisProblem.validate(&g, &units(80), &run.outputs).unwrap();
        assert!(run.rounds < 2000);
    }

    #[test]
    fn transformer_on_empty_and_trivial_graphs() {
        let transformer =
            UniformTransformer::new(coloring_mis_black_box(), RulingSetPruning::mis(), false);
        let empty = Graph::from_edges(0, &[]).unwrap();
        let run = transformer.solve(&empty, &[], 0);
        assert!(run.solved);
        assert!(run.outputs.is_empty());
        assert_eq!(run.rounds, 0);

        let single = Graph::from_edges(1, &[]).unwrap();
        let run = transformer.solve(&single, &units(1), 0);
        assert!(run.solved);
        assert_eq!(run.outputs, vec![true]);
    }

    #[test]
    fn transformer_is_reproducible() {
        let transformer =
            UniformTransformer::new(coloring_mis_black_box(), RulingSetPruning::mis(), false);
        let g = gnp(70, 0.1, 5);
        let a = transformer.solve(&g, &units(70), 11);
        let b = transformer.solve(&g, &units(70), 11);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn pruning_monotonicity_preserved_along_the_run() {
        // Observation 3.1 / the Γ-monotonicity used by Theorem 1: parameters never increase
        // from one configuration to the next. We verify it on the recorded trace by checking
        // alive-node counts are non-increasing (n is one of the monotone parameters).
        let transformer =
            UniformTransformer::new(coloring_mis_black_box(), RulingSetPruning::mis(), false);
        let g = gnp(90, 0.06, 8);
        let run = transformer.solve(&g, &units(90), 0);
        let alive: Vec<usize> = run.trace.iter().map(|t| t.alive_before).collect();
        assert!(alive.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn theorem1_scaling_against_nonuniform_baseline() {
        // Figure-style check: the ratio uniform / non-uniform stays bounded as n grows.
        let black_box = coloring_mis_black_box();
        let transformer =
            UniformTransformer::new(black_box.clone(), RulingSetPruning::mis(), false);
        let mut ratios = Vec::new();
        for n in [64usize, 256] {
            let g = Family::Regular6.generate(n, 3);
            let p = GraphParams::of(&g);
            let non_uniform = (black_box.build)(&[p.max_degree, p.max_id]);
            let nu_run = non_uniform.execute(&g, &units(g.node_count()), None, 0);
            assert!(nu_run.completed);
            let run = transformer.solve(&g, &units(g.node_count()), 0);
            assert!(run.solved);
            ratios.push(run.rounds as f64 / nu_run.rounds.max(1) as f64);
        }
        // The two ratios are within a small factor of each other (no asymptotic blow-up).
        let (a, b) = (ratios[0], ratios[1]);
        assert!(b <= 8.0 * a + 8.0, "overhead ratio grew from {a} to {b}");
    }
}

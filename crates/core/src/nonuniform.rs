//! Descriptors of non-uniform algorithms: the black-box interface consumed by the
//! transformers of Section 4.
//!
//! A [`NonUniformAlgorithm`] bundles exactly what the paper assumes about `A_Γ`:
//!
//! * the collection `Γ` of non-decreasing parameters it *requires* (guesses are supplied
//!   positionally),
//! * a factory that instantiates the algorithm for a concrete vector of guesses,
//! * a non-decreasing bound `f` on its running time as a function of the guesses, packaged as
//!   a [`TimeBound`] (which also carries the set-sequence construction of Section 4.2).
//!
//! Nothing else about the algorithm is visible to the transformers.
//!
//! [`NonUniformAlgorithm::weakly_dominated`] implements the parameter translation of
//! Theorem 3: when the correctness parameters `Γ` are only *weakly dominated* by the time
//! parameters `Λ` (each extra parameter `p ∈ Γ \ Λ` satisfies `g_p(p(G)) ≤ q_{h(p)}(G)` for an
//! ascending `g_p`), the descriptor is rewritten into one over `Λ` whose builder derives the
//! extra guesses via the monotone inverse `g_p⁻¹`.

use crate::funcs::{largest_arg_at_most, MonotoneFn, ARGUMENT_CAP};
use crate::problem::Problem;
use crate::seqnum::TimeBound;
use local_graphs::Parameter;
use local_runtime::DynAlgorithm;
use std::sync::Arc;

/// Factory type: instantiate the black box for a concrete vector of guesses for `Γ`.
pub type AlgorithmFactory<P> = Arc<
    dyn Fn(&[u64]) -> DynAlgorithm<<P as Problem>::Input, <P as Problem>::Output> + Send + Sync,
>;

/// How randomness of the black box is to be interpreted by the transformers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Determinism {
    /// Deterministic: correct whenever the guesses are good (Theorem 1).
    Deterministic,
    /// Weak Monte-Carlo with some guarantee ρ ∈ (0, 1]: correct with probability at least ρ
    /// by its declared running time when the guesses are good (Theorem 2).
    WeakMonteCarlo,
}

/// A non-uniform algorithm `A_Γ`, as seen by the transformers.
#[derive(Clone)]
pub struct NonUniformAlgorithm<P: Problem> {
    /// Human-readable name, used in reports.
    pub name: String,
    /// The collection `Γ` of required parameters (order matters: guesses are positional).
    pub gamma: Vec<Parameter>,
    /// Instantiates the algorithm for a concrete guess vector (one entry per `gamma` item).
    pub build: AlgorithmFactory<P>,
    /// Non-decreasing bound on the running time, as a function of the guesses for `gamma`.
    pub time_bound: TimeBound,
    /// Deterministic or weak Monte-Carlo.
    pub determinism: Determinism,
}

impl<P: Problem> std::fmt::Debug for NonUniformAlgorithm<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NonUniformAlgorithm")
            .field("name", &self.name)
            .field("gamma", &self.gamma)
            .field("time_bound", &self.time_bound)
            .field("determinism", &self.determinism)
            .finish()
    }
}

/// One weak-domination relation of Theorem 3: the extra parameter `dominated` (a member of
/// `Γ \ Λ`) satisfies `relation(dominated(G)) ≤ Λ[dominating_index](G)` on every instance,
/// with `relation` ascending.
#[derive(Clone)]
pub struct Domination {
    /// The parameter in `Γ \ Λ` being eliminated.
    pub dominated: Parameter,
    /// Index into `Λ` of the parameter that dominates it.
    pub dominating_index: usize,
    /// The ascending function `g` with `g(p(G)) ≤ q(G)`.
    pub relation: MonotoneFn,
}

impl std::fmt::Debug for Domination {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Domination")
            .field("dominated", &self.dominated)
            .field("dominating_index", &self.dominating_index)
            .finish()
    }
}

impl<P: Problem> NonUniformAlgorithm<P> {
    /// Convenience constructor for a deterministic black box.
    pub fn deterministic(
        name: impl Into<String>,
        gamma: Vec<Parameter>,
        time_bound: TimeBound,
        build: AlgorithmFactory<P>,
    ) -> Self {
        NonUniformAlgorithm {
            name: name.into(),
            gamma,
            build,
            time_bound,
            determinism: Determinism::Deterministic,
        }
    }

    /// Convenience constructor for a weak Monte-Carlo black box.
    pub fn monte_carlo(
        name: impl Into<String>,
        gamma: Vec<Parameter>,
        time_bound: TimeBound,
        build: AlgorithmFactory<P>,
    ) -> Self {
        NonUniformAlgorithm {
            name: name.into(),
            gamma,
            build,
            time_bound,
            determinism: Determinism::WeakMonteCarlo,
        }
    }

    /// The running-time bound evaluated at the *correct* parameter values of a graph — the
    /// `f(Γ*)` against which the paper states the uniform algorithm's complexity.
    pub fn bound_at_correct_guesses(&self, graph: &local_runtime::Graph) -> f64 {
        let correct: Vec<u64> = self.gamma.iter().map(|p| p.eval(graph)).collect();
        self.time_bound.eval(&correct)
    }

    /// The Theorem 3 rewrite: produce an equivalent descriptor whose parameter collection is
    /// `lambda`, assuming the original `Γ` splits into parameters shared with `lambda`
    /// (matched by identity) and extra parameters each covered by a [`Domination`].
    ///
    /// The returned descriptor's `time_bound` must be the bound *with respect to `lambda`*,
    /// supplied by the caller (it is `f'` in the paper's proof, which coincides with `f` on
    /// the shared coordinates).
    ///
    /// # Panics
    ///
    /// Panics if some parameter of `Γ` is neither in `lambda` nor covered by a domination.
    pub fn weakly_dominated(
        &self,
        lambda: Vec<Parameter>,
        dominations: Vec<Domination>,
        time_bound_on_lambda: TimeBound,
    ) -> NonUniformAlgorithm<P> {
        // For each parameter of Γ, record how to derive its guess from a Λ guess vector.
        enum Source {
            Shared(usize),
            Dominated(usize, MonotoneFn),
        }
        let sources: Vec<Source> = self
            .gamma
            .iter()
            .map(|p| {
                if let Some(idx) = lambda.iter().position(|q| q == p) {
                    Source::Shared(idx)
                } else if let Some(dom) = dominations.iter().find(|d| &d.dominated == p) {
                    Source::Dominated(dom.dominating_index, dom.relation.clone())
                } else {
                    panic!("parameter {:?} of Γ is neither in Λ nor covered by a domination", p);
                }
            })
            .collect();
        let build = self.build.clone();
        let derived_build: AlgorithmFactory<P> = Arc::new(move |lambda_guesses: &[u64]| {
            let gamma_guesses: Vec<u64> = sources
                .iter()
                .map(|s| match s {
                    Source::Shared(idx) => lambda_guesses[*idx],
                    Source::Dominated(idx, g) => {
                        // Guess for the dominated parameter: the largest value whose image
                        // under g stays below the dominating guess (so a good Λ guess yields a
                        // good Γ guess, as in the proof of Theorem 3).
                        largest_arg_at_most(g, lambda_guesses[*idx] as f64, ARGUMENT_CAP)
                            .unwrap_or(1)
                    }
                })
                .collect();
            build(&gamma_guesses)
        });
        NonUniformAlgorithm {
            name: format!("{} [Γ→Λ]", self.name),
            gamma: lambda,
            build: derived_build,
            time_bound: time_bound_on_lambda,
            determinism: self.determinism,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::funcs::monotone;
    use crate::problem::MisProblem;
    use local_algos::mis::ColoringMis;
    use local_graphs::{gnp, GraphParams};
    use local_runtime::DynAlgorithm;

    fn coloring_mis_descriptor() -> NonUniformAlgorithm<MisProblem> {
        NonUniformAlgorithm::deterministic(
            "coloring-MIS",
            vec![Parameter::MaxDegree, Parameter::MaxId],
            TimeBound::Additive(vec![
                monotone(|d| {
                    let algo = ColoringMis { delta_guess: d, id_bound_guess: 1 };
                    algo.round_bound() as f64
                }),
                monotone(|m| 2.0 * local_graphs::log_star(m as f64) as f64),
            ]),
            Arc::new(|guesses: &[u64]| {
                let algo = ColoringMis { delta_guess: guesses[0], id_bound_guess: guesses[1] };
                Box::new(algo) as DynAlgorithm<(), bool>
            }),
        )
    }

    #[test]
    fn descriptor_builds_and_runs() {
        let g = gnp(50, 0.1, 3);
        let p = GraphParams::of(&g);
        let descriptor = coloring_mis_descriptor();
        let algo = (descriptor.build)(&[p.max_degree, p.max_id]);
        let run = algo.execute(&g, &[(); 50], None, 0);
        assert!(run.completed);
        local_algos::checkers::check_mis(&g, &run.outputs).unwrap();
    }

    #[test]
    fn bound_at_correct_guesses_matches_manual_evaluation() {
        let g = gnp(40, 0.1, 1);
        let p = GraphParams::of(&g);
        let descriptor = coloring_mis_descriptor();
        let manual = descriptor.time_bound.eval(&[p.max_degree, p.max_id]);
        assert!((descriptor.bound_at_correct_guesses(&g) - manual).abs() < 1e-9);
    }

    #[test]
    fn weakly_dominated_rewrites_parameters() {
        // Pretend the algorithm needs {Δ, m} but we only want to guess n: Δ ≤ n − 1 ≤ n and
        // m... is not bounded by n in general, but for this test the graphs use identities
        // 0..n−1 so m ≤ n, witnessed by the identity relation.
        let descriptor = coloring_mis_descriptor();
        let derived = descriptor.weakly_dominated(
            vec![Parameter::N],
            vec![
                Domination {
                    dominated: Parameter::MaxDegree,
                    dominating_index: 0,
                    relation: monotone(|d| d as f64 + 1.0), // Δ + 1 ≤ n
                },
                Domination {
                    dominated: Parameter::MaxId,
                    dominating_index: 0,
                    relation: monotone(|m| m as f64 + 1.0), // m + 1 ≤ n for 0..n−1 identities
                },
            ],
            TimeBound::single(monotone(|n| n as f64 * n as f64)),
        );
        assert_eq!(derived.gamma, vec![Parameter::N]);
        // Building with a good n-guess must produce a correct algorithm.
        let g = gnp(40, 0.12, 5);
        let algo = (derived.build)(&[40]);
        let run = algo.execute(&g, &[(); 40], None, 0);
        assert!(run.completed);
        local_algos::checkers::check_mis(&g, &run.outputs).unwrap();
    }

    #[test]
    #[should_panic(expected = "neither in Λ nor covered")]
    fn weakly_dominated_panics_on_uncovered_parameter() {
        let descriptor = coloring_mis_descriptor();
        let _ = descriptor.weakly_dominated(
            vec![Parameter::N],
            vec![],
            TimeBound::single(monotone(|n| n as f64)),
        );
    }

    #[test]
    fn debug_output_mentions_name() {
        let descriptor = coloring_mis_descriptor();
        assert!(format!("{descriptor:?}").contains("coloring-MIS"));
    }
}

//! Pruning algorithms (Section 3) — the paper's central new tool.
//!
//! A pruning algorithm `P` takes a triplet `(G, x, ŷ)` — an instance plus a *tentative*
//! output vector — and selects a set `W` of nodes to prune (returning the induced configuration
//! on the rest, possibly with modified inputs). It must satisfy:
//!
//! * **solution detection** — if `(G, x, ŷ) ∈ Π` then `W = V(G)`;
//! * **gluing** — if `y'` solves the returned configuration, then `ŷ` on `W` combined with
//!   `y'` on the rest solves `(G, x)`.
//!
//! Three pruning algorithms from the paper are implemented: the (2, β)-ruling-set pruning
//! `P_(2,β)` (Observation 3.2; MIS is the case β = 1), the maximal-matching pruning `P_MM`
//! (Observation 3.3), and the strong-list-colouring pruning used inside Theorem 5
//! (Section 5.2). All three ignore the input (except SLC, which rewrites the colour lists) and
//! run in a constant number of rounds, hence are monotone with respect to every non-decreasing
//! parameter (Observation 3.1).

use crate::problem::{
    MatchingProblem, MisProblem, Problem, RulingSetProblem, SlcColor, SlcInput, SlcProblem,
};
use local_runtime::{GraphView, NodeId};

/// The outcome of one pruning invocation on a configuration with `n` nodes: which nodes are
/// pruned, and the (possibly rewritten) inputs of the surviving nodes.
#[derive(Debug, Clone)]
pub struct Pruned<I> {
    /// `pruned[v] == true` iff node `v` belongs to the pruned set `W`.
    pub pruned: Vec<bool>,
    /// New inputs `x'`; only the entries of non-pruned nodes are meaningful.
    pub new_inputs: Vec<I>,
}

impl<I> Pruned<I> {
    /// Number of pruned nodes.
    pub fn pruned_count(&self) -> usize {
        self.pruned.iter().filter(|&&p| p).count()
    }

    /// `true` when every node was pruned (the configuration returned is the empty one, which
    /// by solution detection certifies that the tentative output was a solution).
    pub fn all_pruned(&self) -> bool {
        self.pruned.iter().all(|&p| p)
    }
}

/// A pruning algorithm for problem `P` (a uniform LOCAL algorithm of constant running time).
///
/// The configuration is handed over as a live [`GraphView`] — the alternating drivers never
/// materialize the surviving subgraph, so the pruning rule reads the current configuration
/// through the view's (dense, subgraph-identical) live indices.
pub trait PruningAlgorithm<P: Problem>: Send + Sync {
    /// The constant number of rounds one invocation costs.
    fn rounds(&self) -> u64;

    /// Runs the pruning rule on `(G, x, ŷ)`.
    fn prune(
        &self,
        view: &GraphView<'_>,
        input: &[P::Input],
        tentative: &[P::Output],
    ) -> Pruned<P::Input>;

    /// Normalises a tentative output vector *in place* before the outputs of pruned nodes are
    /// frozen by the alternating driver.
    ///
    /// The default is the identity (a no-op, so the alternation hot path pays neither a copy
    /// nor an allocation per attempt). The matching pruning overrides it to clear dangling
    /// partner claims: in the paper's output encoding (`y(u) = y(v)` marks a matched pair) an
    /// unreciprocated value simply means "unmatched", but with the explicit partner encoding
    /// used here it must be cleared for the glued vector to be well-formed.
    fn normalize(&self, view: &GraphView<'_>, tentative: &mut [P::Output]) {
        let _ = (view, tentative);
    }
}

/// The (2, β)-ruling-set pruning algorithm `P_(2,β)` of Observation 3.2.
///
/// A node `u` is pruned iff either (i) `ŷ(u) = 1` and no neighbour of `u` is in the set, or
/// (ii) `ŷ(u) = 0` and some node `v` within distance β of `u` has `ŷ(v) = 1` and no neighbour
/// of `v` in the set. Runs in `1 + β` rounds. With β = 1 this is the MIS pruning algorithm.
#[derive(Debug, Clone, Copy)]
pub struct RulingSetPruning {
    /// The domination radius β ≥ 1.
    pub beta: usize,
}

impl RulingSetPruning {
    /// The MIS pruning algorithm (β = 1).
    pub fn mis() -> Self {
        RulingSetPruning { beta: 1 }
    }

    fn prune_bools(&self, view: &GraphView<'_>, tentative: &[bool]) -> Vec<bool> {
        let n = view.node_count();
        // "Good" set nodes: in the set with no set neighbour.
        let good: Vec<bool> =
            (0..n).map(|v| tentative[v] && !view.neighbors(v).any(|w| tentative[w])).collect();
        if self.beta == 1 {
            // MIS fast path: the ball of radius 1 is the closed neighbourhood, and a non-set
            // node is never "good", so a per-node BFS would be pure overhead on the hot path.
            return (0..n)
                .map(|u| if tentative[u] { good[u] } else { view.neighbors(u).any(|v| good[v]) })
                .collect();
        }
        (0..n)
            .map(|u| {
                if tentative[u] {
                    good[u]
                } else {
                    view.ball(u, self.beta).iter().any(|&v| good[v])
                }
            })
            .collect()
    }
}

impl PruningAlgorithm<RulingSetProblem> for RulingSetPruning {
    fn rounds(&self) -> u64 {
        1 + self.beta as u64
    }

    fn prune(&self, view: &GraphView<'_>, input: &[()], tentative: &[bool]) -> Pruned<()> {
        Pruned { pruned: self.prune_bools(view, tentative), new_inputs: input.to_vec() }
    }
}

impl PruningAlgorithm<MisProblem> for RulingSetPruning {
    fn rounds(&self) -> u64 {
        2
    }

    fn prune(&self, view: &GraphView<'_>, input: &[()], tentative: &[bool]) -> Pruned<()> {
        // MIS is the (2, 1)-ruling set problem.
        let rule = RulingSetPruning { beta: 1 };
        Pruned { pruned: rule.prune_bools(view, tentative), new_inputs: input.to_vec() }
    }
}

/// The maximal-matching pruning algorithm `P_MM` of Observation 3.3.
///
/// With the partner encoding, `u` and `v` are *matched* when they are neighbours and each
/// names the other. A node `u` is pruned iff it is matched, or every neighbour of `u` is
/// matched (to somebody else). Runs in 3 rounds.
#[derive(Debug, Clone, Copy, Default)]
pub struct MatchingPruning;

fn is_matched_pair(view: &GraphView<'_>, partner: &[Option<NodeId>], u: usize, v: usize) -> bool {
    view.has_edge(u, v) && partner[u] == Some(view.id(v)) && partner[v] == Some(view.id(u))
}

impl MatchingPruning {
    fn matched_nodes(view: &GraphView<'_>, tentative: &[Option<NodeId>]) -> Vec<bool> {
        let n = view.node_count();
        let mut id_to_index = std::collections::HashMap::new();
        for v in 0..n {
            id_to_index.insert(view.id(v), v);
        }
        (0..n)
            .map(|u| {
                tentative[u]
                    .and_then(|pid| id_to_index.get(&pid).copied())
                    .is_some_and(|p| is_matched_pair(view, tentative, u, p))
            })
            .collect()
    }
}

impl PruningAlgorithm<MatchingProblem> for MatchingPruning {
    fn rounds(&self) -> u64 {
        3
    }

    fn prune(
        &self,
        view: &GraphView<'_>,
        input: &[()],
        tentative: &[Option<NodeId>],
    ) -> Pruned<()> {
        let matched = Self::matched_nodes(view, tentative);
        let n = view.node_count();
        let pruned: Vec<bool> =
            (0..n).map(|u| matched[u] || view.neighbors(u).all(|v| matched[v])).collect();
        Pruned { pruned, new_inputs: input.to_vec() }
    }

    fn normalize(&self, view: &GraphView<'_>, tentative: &mut [Option<NodeId>]) {
        let matched = Self::matched_nodes(view, tentative);
        for (claim, matched) in tentative.iter_mut().zip(matched) {
            if !matched {
                *claim = None;
            }
        }
    }
}

/// The strong-list-colouring pruning algorithm of Section 5.2.
///
/// A node is pruned iff its tentative colour is in its list and differs from every neighbour's
/// tentative colour; surviving nodes have the colours of pruned neighbours removed from their
/// lists (which preserves the SLC invariant because their degree in the remaining graph drops
/// by the same amount). Runs in 1 round.
#[derive(Debug, Clone, Copy, Default)]
pub struct SlcPruning;

impl PruningAlgorithm<SlcProblem> for SlcPruning {
    fn rounds(&self) -> u64 {
        1
    }

    fn prune(
        &self,
        view: &GraphView<'_>,
        input: &[SlcInput],
        tentative: &[SlcColor],
    ) -> Pruned<SlcInput> {
        let n = view.node_count();
        let pruned: Vec<bool> = (0..n)
            .map(|u| {
                input[u].list.contains(&tentative[u])
                    && view.neighbors(u).all(|v| tentative[v] != tentative[u])
            })
            .collect();
        let new_inputs: Vec<SlcInput> = (0..n)
            .map(|u| {
                if pruned[u] {
                    input[u].clone()
                } else {
                    let mut list = input[u].list.clone();
                    for v in view.neighbors(u) {
                        if pruned[v] {
                            list.remove(&tentative[v]);
                        }
                    }
                    SlcInput { delta_hat: input[u].delta_hat, list }
                }
            })
            .collect();
        Pruned { pruned, new_inputs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Problem;
    use local_graphs::{cycle, gnp, path, star};
    use local_runtime::Graph;

    fn units(n: usize) -> Vec<()> {
        vec![(); n]
    }

    fn view(g: &Graph) -> GraphView<'_> {
        GraphView::full(g)
    }

    // ------------------------------------------------------------------ MIS / ruling set ----

    #[test]
    fn mis_pruning_detects_solutions() {
        let g = path(6);
        let solution = [true, false, true, false, true, false];
        assert!(MisProblem.validate(&g, &units(6), &solution).is_ok());
        let pruning = RulingSetPruning::mis();
        let result =
            PruningAlgorithm::<MisProblem>::prune(&pruning, &view(&g), &units(6), &solution);
        assert!(result.all_pruned(), "solution detection failed");
    }

    #[test]
    fn mis_pruning_keeps_uncovered_regions() {
        let g = path(6);
        // Only node 0 is in the set: nodes 0 and 1 are fine (pruned); the tail is not.
        let tentative = [true, false, false, false, false, false];
        let pruning = RulingSetPruning::mis();
        let result =
            PruningAlgorithm::<MisProblem>::prune(&pruning, &view(&g), &units(6), &tentative);
        assert!(result.pruned[0]);
        assert!(result.pruned[1]);
        assert!(!result.pruned[2], "node 2 has no good set node within distance 1");
        assert!(!result.pruned[5]);
        assert_eq!(result.pruned_count(), 2);
    }

    #[test]
    fn mis_pruning_ignores_clashing_set_nodes() {
        let g = path(3);
        // Adjacent set nodes are not "good": nothing can be pruned around them.
        let tentative = [true, true, false];
        let pruning = RulingSetPruning::mis();
        let result =
            PruningAlgorithm::<MisProblem>::prune(&pruning, &view(&g), &units(3), &tentative);
        assert!(!result.pruned[0]);
        assert!(!result.pruned[1]);
        assert!(!result.pruned[2]);
    }

    #[test]
    fn mis_pruning_gluing_property_holds() {
        // For random tentative outputs: prune, solve MIS on the rest centrally, and check that
        // the combination solves the whole graph.
        for seed in 0..10u64 {
            let g = gnp(40, 0.12, seed);
            let n = g.node_count();
            let tentative: Vec<bool> =
                (0..n).map(|v| (v as u64 * 7 + seed).is_multiple_of(3)).collect();
            let pruning = RulingSetPruning::mis();
            let result =
                PruningAlgorithm::<MisProblem>::prune(&pruning, &view(&g), &units(n), &tentative);
            let keep: Vec<bool> = result.pruned.iter().map(|&p| !p).collect();
            let (sub, back) = g.induced_subgraph(&keep);
            let sub_solution = local_algos::mis::central_greedy_mis(&sub);
            let mut combined = tentative.clone();
            for (i, &orig) in back.iter().enumerate() {
                combined[orig] = sub_solution[i];
            }
            MisProblem
                .validate(&g, &units(n), &combined)
                .unwrap_or_else(|e| panic!("gluing failed (seed {seed}): {e}"));
        }
    }

    #[test]
    fn ruling_set_pruning_uses_beta_ball() {
        let g = path(7);
        // Node 0 is a good set node; with β = 3 nodes 0..=3 are pruned, farther ones are not.
        let tentative = [true, false, false, false, false, false, false];
        let pruning = RulingSetPruning { beta: 3 };
        let result =
            PruningAlgorithm::<RulingSetProblem>::prune(&pruning, &view(&g), &units(7), &tentative);
        assert_eq!(result.pruned, vec![true, true, true, true, false, false, false]);
        assert_eq!(PruningAlgorithm::<RulingSetProblem>::rounds(&pruning), 4);
    }

    #[test]
    fn ruling_set_pruning_detects_solutions() {
        let g = path(7);
        let problem = RulingSetProblem::two(3);
        let solution = [true, false, false, false, false, false, true];
        assert!(problem.validate(&g, &units(7), &solution).is_ok());
        let pruning = RulingSetPruning { beta: 3 };
        let result =
            PruningAlgorithm::<RulingSetProblem>::prune(&pruning, &view(&g), &units(7), &solution);
        assert!(result.all_pruned());
    }

    #[test]
    fn ruling_set_gluing_property_holds() {
        for seed in 0..6u64 {
            let beta = 2usize;
            let g = gnp(35, 0.1, seed);
            let n = g.node_count();
            let tentative: Vec<bool> =
                (0..n).map(|v| (v as u64 + seed).is_multiple_of(4)).collect();
            let pruning = RulingSetPruning { beta };
            let result = PruningAlgorithm::<RulingSetProblem>::prune(
                &pruning,
                &view(&g),
                &units(n),
                &tentative,
            );
            let keep: Vec<bool> = result.pruned.iter().map(|&p| !p).collect();
            let (sub, back) = g.induced_subgraph(&keep);
            // Any MIS of the remainder is a (2, β)-ruling set of it.
            let sub_solution = local_algos::mis::central_greedy_mis(&sub);
            let mut combined = tentative.clone();
            for (i, &orig) in back.iter().enumerate() {
                combined[orig] = sub_solution[i];
            }
            RulingSetProblem::two(beta)
                .validate(&g, &units(n), &combined)
                .unwrap_or_else(|e| panic!("gluing failed (seed {seed}): {e}"));
        }
    }

    // ------------------------------------------------------------------ matching -------------

    #[test]
    fn matching_pruning_detects_solutions() {
        let g = path(4);
        let solution = [Some(1), Some(0), Some(3), Some(2)];
        let result = MatchingPruning.prune(&view(&g), &units(4), &solution);
        assert!(result.all_pruned());
        assert_eq!(PruningAlgorithm::<MatchingProblem>::rounds(&MatchingPruning), 3);
    }

    #[test]
    fn matching_pruning_prunes_matched_and_saturated_nodes() {
        let g = path(4);
        // Only the middle edge (1, 2) is matched: 1 and 2 are pruned (matched); 0 and 3 are
        // pruned too because their only neighbour is matched.
        let tentative = [None, Some(2), Some(1), None];
        let result = MatchingPruning.prune(&view(&g), &units(4), &tentative);
        assert!(result.all_pruned());
    }

    #[test]
    fn matching_pruning_keeps_augmentable_regions() {
        let g = path(5);
        // Edge (0,1) matched; nodes 2, 3, 4 form an augmentable path and must survive.
        let tentative = [Some(1), Some(0), None, None, None];
        let result = MatchingPruning.prune(&view(&g), &units(5), &tentative);
        assert!(result.pruned[0] && result.pruned[1]);
        assert!(!result.pruned[3] && !result.pruned[4]);
        // Node 2's neighbours: 1 (matched) and 3 (unmatched) → not saturated, stays.
        assert!(!result.pruned[2]);
    }

    #[test]
    fn matching_pruning_ignores_asymmetric_claims() {
        let g = path(3);
        // Node 0 claims node 1 but node 1 does not reciprocate: nobody is matched.
        let tentative = [Some(1), None, None];
        let result = MatchingPruning.prune(&view(&g), &units(3), &tentative);
        assert_eq!(result.pruned_count(), 0);
    }

    #[test]
    fn matching_gluing_property_holds() {
        for seed in 0..8u64 {
            let g = gnp(30, 0.15, seed);
            let n = g.node_count();
            // Random tentative partner claims: match node v to its first neighbour when both
            // indices have the same parity class mod 3 (arbitrary, often inconsistent).
            let tentative: Vec<Option<NodeId>> = (0..n)
                .map(|v| {
                    g.neighbors(v)
                        .iter()
                        .find(|&&w| (v + w) as u64 % 3 == seed % 3)
                        .map(|&w| g.id(w))
                })
                .collect();
            let result = MatchingPruning.prune(&view(&g), &units(n), &tentative);
            let keep: Vec<bool> = result.pruned.iter().map(|&p| !p).collect();
            let (sub, back) = g.induced_subgraph(&keep);
            let sub_solution = local_algos::synthetic::central_greedy_matching(&sub);
            let mut combined = tentative.clone();
            MatchingPruning.normalize(&view(&g), &mut combined);
            for (i, &orig) in back.iter().enumerate() {
                combined[orig] = sub_solution[i];
            }
            MatchingProblem
                .validate(&g, &units(n), &combined)
                .unwrap_or_else(|e| panic!("gluing failed (seed {seed}): {e}"));
        }
    }

    // ------------------------------------------------------------------ SLC ------------------

    #[test]
    fn slc_pruning_detects_solutions() {
        let g = cycle(4);
        let inputs = vec![SlcInput::full(2, 3); 4];
        let solution = [(1, 1), (2, 1), (1, 1), (2, 1)];
        assert!(SlcProblem.validate(&g, &inputs, &solution).is_ok());
        let result = SlcPruning.prune(&view(&g), &inputs, &solution);
        assert!(result.all_pruned());
        assert_eq!(PruningAlgorithm::<SlcProblem>::rounds(&SlcPruning), 1);
    }

    #[test]
    fn slc_pruning_removes_used_colors_from_survivors() {
        let g = path(3);
        let inputs = vec![SlcInput::full(2, 2); 3];
        // Node 1 clashes with node 0 (same colour) so 0 is kept?  No: node 0's colour equals
        // node 1's, so *neither* 0 nor 1 is pruned; node 2 has a distinct in-list colour and no
        // clash with node 1, so node 2 is pruned and its colour is removed from node 1's list.
        let tentative = [(1, 1), (1, 1), (2, 2)];
        let result = SlcPruning.prune(&view(&g), &inputs, &tentative);
        assert_eq!(result.pruned, vec![false, false, true]);
        assert!(!result.new_inputs[1].list.contains(&(2, 2)));
        assert!(result.new_inputs[0].list.contains(&(2, 2)), "node 0 keeps unaffected entries");
    }

    #[test]
    fn slc_pruning_preserves_the_copy_invariant() {
        // The SLC invariant: each surviving node keeps at least deg'(v) + 1 copies of every
        // base colour, where deg' is its degree in the surviving subgraph.
        let g = star(5);
        let inputs: Vec<SlcInput> = (0..5).map(|_| SlcInput::full(4, 2)).collect();
        // Leaves 1 and 2 pick valid distinct colours, centre clashes with leaf 3's colour.
        let tentative = [(1, 1), (1, 2), (2, 1), (1, 1), (2, 2)];
        let result = SlcPruning.prune(&view(&g), &inputs, &tentative);
        let keep: Vec<bool> = result.pruned.iter().map(|&p| !p).collect();
        let (sub, back) = g.induced_subgraph(&keep);
        for (sub_idx, &orig) in back.iter().enumerate() {
            let input = &result.new_inputs[orig];
            for k in input.base_colors() {
                assert!(
                    input.copies_of(k) > sub.degree(sub_idx),
                    "node {orig} has too few copies of colour {k}"
                );
            }
        }
    }

    #[test]
    fn slc_gluing_property_holds() {
        let g = cycle(6);
        let inputs = vec![SlcInput::full(2, 3); 6];
        // A tentative output where only some nodes are consistent.
        let tentative = [(1, 1), (1, 1), (2, 1), (3, 1), (9, 9), (2, 2)];
        let result = SlcPruning.prune(&view(&g), &inputs, &tentative);
        let keep: Vec<bool> = result.pruned.iter().map(|&p| !p).collect();
        let (sub, back) = g.induced_subgraph(&keep);
        // Solve the remaining SLC instance greedily (centralised reference).
        let mut sub_solution: Vec<SlcColor> = vec![(0, 0); sub.node_count()];
        for v in 0..sub.node_count() {
            let input = &result.new_inputs[back[v]];
            let used: std::collections::BTreeSet<SlcColor> =
                (0..v).filter(|&u| sub.has_edge(u, v)).map(|u| sub_solution[u]).collect();
            sub_solution[v] = *input
                .list
                .iter()
                .find(|c| !used.contains(c))
                .expect("list large enough by the SLC invariant");
        }
        let mut combined: Vec<SlcColor> = tentative.to_vec();
        for (i, &orig) in back.iter().enumerate() {
            combined[orig] = sub_solution[i];
        }
        SlcProblem.validate(&g, &inputs, &combined).expect("glued SLC solution must be valid");
    }
}

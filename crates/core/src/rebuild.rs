//! Reference alternation drivers that rebuild the configuration after every pruning step.
//!
//! This is the pre-session execution strategy: every sub-iteration materializes the surviving
//! subgraph with [`Graph::induced_subgraph`] and runs the black box through a fresh
//! [`GraphAlgorithm::execute`] call. It is kept — verbatim in behaviour — for two reasons:
//!
//! 1. **Equivalence oracle.** The zero-rebuild path of [`crate::transform`] (live
//!    [`GraphView`] + reusable session) promises byte-identical [`UniformRun`]s; the property
//!    tests drive both paths over scenario grids and compare outputs, rounds, messages, and
//!    traces field by field.
//! 2. **Benchmark baseline.** The `alternation_hotpath` bench in `local-bench` measures the
//!    throughput of the session path against this rebuild path on doubling-budget MIS runs.
//!
//! The timing fields of the returned [`UniformRun`]s are left at zero — this path exists to
//! be compared against, not profiled.

use crate::nonuniform::Determinism;
use crate::problem::{MisProblem, Problem, RulingSetProblem};
use crate::pruning::{Pruned, PruningAlgorithm};
use crate::transform::{FastestOfTransformer, SubIterationTrace, UniformRun, UniformTransformer};
use local_runtime::{Graph, GraphAlgorithm, GraphView};

/// The seed implementation of the (2, β)-ruling-set pruning, kept verbatim in *cost profile*:
/// every covered-node check materializes a ball via a BFS whose distance array spans the whole
/// configuration — `O(n)` per node, `O(n²)` per pruning invocation. The pruning *decisions*
/// are identical to [`crate::pruning::RulingSetPruning`] (the property tests compare the two
/// drivers output-for-output); only the work profile differs.
///
/// This type exists for the `alternation_hotpath` bench, whose baseline must reproduce the
/// pre-refactor execution costs. Don't use it outside benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct SeedRulingSetPruning {
    /// The domination radius β ≥ 1.
    pub beta: usize,
}

impl SeedRulingSetPruning {
    /// The seed's ball computation: a full-size distance array per call (the pre-refactor
    /// `Graph::ball`), BFS to depth `r`, sorted output.
    fn ball(view: &GraphView<'_>, v: usize, r: usize) -> Vec<usize> {
        let mut dist = vec![usize::MAX; view.node_count()];
        let mut queue = std::collections::VecDeque::new();
        let mut out = vec![v];
        dist[v] = 0;
        queue.push_back(v);
        while let Some(u) = queue.pop_front() {
            if dist[u] == r {
                continue;
            }
            for w in view.neighbors(u) {
                if dist[w] == usize::MAX {
                    dist[w] = dist[u] + 1;
                    out.push(w);
                    queue.push_back(w);
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn prune_bools(&self, view: &GraphView<'_>, tentative: &[bool]) -> Vec<bool> {
        let n = view.node_count();
        let good: Vec<bool> =
            (0..n).map(|v| tentative[v] && !view.neighbors(v).any(|w| tentative[w])).collect();
        (0..n)
            .map(|u| {
                if tentative[u] {
                    good[u]
                } else {
                    Self::ball(view, u, self.beta).iter().any(|&v| good[v])
                }
            })
            .collect()
    }
}

impl PruningAlgorithm<MisProblem> for SeedRulingSetPruning {
    fn rounds(&self) -> u64 {
        2
    }

    fn prune(&self, view: &GraphView<'_>, input: &[()], tentative: &[bool]) -> Pruned<()> {
        let rule = SeedRulingSetPruning { beta: 1 };
        Pruned { pruned: rule.prune_bools(view, tentative), new_inputs: input.to_vec() }
    }
}

impl PruningAlgorithm<RulingSetProblem> for SeedRulingSetPruning {
    fn rounds(&self) -> u64 {
        1 + self.beta as u64
    }

    fn prune(&self, view: &GraphView<'_>, input: &[()], tentative: &[bool]) -> Pruned<()> {
        Pruned { pruned: self.prune_bools(view, tentative), new_inputs: input.to_vec() }
    }
}

/// The rebuild-per-prune twin of `AlternationState`.
struct RebuildState<P: Problem> {
    graph: Graph,
    inputs: Vec<P::Input>,
    back: Vec<usize>,
    outputs: Vec<Option<P::Output>>,
    rounds: u64,
    messages: u64,
    subiterations: u64,
    record_trace: bool,
    trace: Vec<SubIterationTrace>,
}

impl<P: Problem> RebuildState<P> {
    fn new(graph: &Graph, inputs: &[P::Input], record_trace: bool) -> Self {
        RebuildState {
            graph: graph.clone(),
            inputs: inputs.to_vec(),
            back: (0..graph.node_count()).collect(),
            outputs: vec![None; graph.node_count()],
            rounds: 0,
            messages: 0,
            subiterations: 0,
            record_trace,
            trace: Vec::new(),
        }
    }

    fn alive(&self) -> usize {
        self.graph.node_count()
    }

    fn attempt<Pr: PruningAlgorithm<P> + ?Sized>(
        &mut self,
        iteration: u64,
        algorithm: &dyn GraphAlgorithm<Input = P::Input, Output = P::Output>,
        guesses: &[u64],
        budget: u64,
        pruning: &Pr,
        seed: u64,
    ) {
        let alive_before = self.alive();
        let run =
            self.graph.is_empty().then(local_runtime::AlgoRun::empty).unwrap_or_else(|| {
                algorithm.execute(&self.graph, &self.inputs, Some(budget), seed)
            });
        self.rounds += budget + pruning.rounds();
        self.messages += run.messages;
        self.subiterations += 1;

        let full = GraphView::full(&self.graph);
        let mut tentative = run.outputs;
        pruning.normalize(&full, &mut tentative);
        let pruned = pruning.prune(&full, &self.inputs, &tentative);
        drop(full);
        let pruned_count = pruned.pruned_count();
        if self.record_trace {
            self.trace.push(SubIterationTrace {
                iteration,
                guesses: guesses.to_vec(),
                budget,
                alive_before,
                pruned: pruned_count,
            });
        }
        if pruned_count == 0 {
            return;
        }
        for (v, output) in tentative.iter().enumerate() {
            if pruned.pruned[v] {
                self.outputs[self.back[v]] = Some(output.clone());
            }
        }
        let keep: Vec<bool> = pruned.pruned.iter().map(|&p| !p).collect();
        let (sub, sub_back) = self.graph.induced_subgraph(&keep);
        self.inputs = sub_back.iter().map(|&old| pruned.new_inputs[old].clone()).collect();
        self.back = sub_back.iter().map(|&old| self.back[old]).collect();
        self.graph = sub;
    }

    fn finish<O: Clone>(self, fallback: &O) -> UniformRun<O>
    where
        P: Problem<Output = O>,
    {
        let solved = self.graph.is_empty();
        let outputs =
            self.outputs.into_iter().map(|o| o.unwrap_or_else(|| fallback.clone())).collect();
        UniformRun {
            outputs,
            rounds: self.rounds,
            messages: self.messages,
            iterations: 0,
            subiterations: self.subiterations,
            solved,
            trace: self.trace,
            attempt_micros: 0,
            prune_micros: 0,
        }
    }
}

impl<P: Problem, Pr: PruningAlgorithm<P>> UniformTransformer<P, Pr> {
    /// Runs the uniform algorithm through the rebuild-per-prune reference path.
    ///
    /// Semantically identical to [`UniformTransformer::solve`] — outputs, rounds, messages,
    /// iteration counts, and traces agree for every seed — but pays an `O(n + m)` subgraph
    /// copy per pruning step and a full runtime re-allocation per attempt.
    pub fn solve_rebuild(
        &self,
        graph: &Graph,
        inputs: &[P::Input],
        seed: u64,
    ) -> UniformRun<P::Output> {
        match self.algorithm.determinism {
            Determinism::Deterministic => self.solve_deterministic_rebuild(graph, inputs, seed),
            Determinism::WeakMonteCarlo => self.solve_las_vegas_rebuild(graph, inputs, seed),
        }
    }

    fn solve_deterministic_rebuild(
        &self,
        graph: &Graph,
        inputs: &[P::Input],
        seed: u64,
    ) -> UniformRun<P::Output> {
        let mut state = RebuildState::<P>::new(graph, inputs, self.record_trace);
        let c = self.algorithm.time_bound.bounding_constant();
        let mut iterations = 0;
        for i in 1..=self.max_iterations {
            if state.alive() == 0 {
                break;
            }
            iterations = i;
            let budget = c.saturating_mul(1u64 << i.min(62));
            for (j, guesses) in
                self.algorithm.time_bound.set_sequence(1u64 << i.min(62)).iter().enumerate()
            {
                if state.alive() == 0 {
                    break;
                }
                let algo = (self.algorithm.build)(guesses);
                state.attempt(
                    i,
                    algo.as_ref(),
                    guesses,
                    budget,
                    self.pruning.as_ref(),
                    seed ^ (i << 32) ^ j as u64,
                );
            }
        }
        let mut run = state.finish(&self.fallback_output);
        run.iterations = iterations;
        run
    }

    fn solve_las_vegas_rebuild(
        &self,
        graph: &Graph,
        inputs: &[P::Input],
        seed: u64,
    ) -> UniformRun<P::Output> {
        let mut state = RebuildState::<P>::new(graph, inputs, self.record_trace);
        let c = self.algorithm.time_bound.bounding_constant();
        let mut iterations = 0;
        'outer: for i in 1..=self.max_iterations {
            if state.alive() == 0 {
                break;
            }
            iterations = i;
            for j in 1..=i {
                if state.alive() == 0 {
                    break 'outer;
                }
                let budget = c.saturating_mul(1u64 << j.min(62));
                for (k, guesses) in
                    self.algorithm.time_bound.set_sequence(1u64 << j.min(62)).iter().enumerate()
                {
                    if state.alive() == 0 {
                        break 'outer;
                    }
                    let algo = (self.algorithm.build)(guesses);
                    state.attempt(
                        j,
                        algo.as_ref(),
                        guesses,
                        budget,
                        self.pruning.as_ref(),
                        seed ^ (i << 40) ^ (j << 20) ^ k as u64,
                    );
                }
            }
        }
        let mut run = state.finish(&self.fallback_output);
        run.iterations = iterations;
        run
    }
}

impl<P: Problem, Pr: PruningAlgorithm<P>> FastestOfTransformer<P, Pr> {
    /// Runs the Theorem 4 combinator through the rebuild-per-prune reference path
    /// (see [`UniformTransformer::solve_rebuild`]).
    pub fn solve_rebuild(
        &self,
        graph: &Graph,
        inputs: &[P::Input],
        seed: u64,
    ) -> UniformRun<P::Output> {
        let mut state = RebuildState::<P>::new(graph, inputs, self.record_trace);
        let mut iterations = 0;
        for i in 1..=self.max_iterations {
            if state.alive() == 0 {
                break;
            }
            iterations = i;
            let budget = 1u64 << i.min(62);
            for (k, component) in self.components.iter().enumerate() {
                if state.alive() == 0 {
                    break;
                }
                state.attempt(
                    i,
                    component.algorithm.as_ref(),
                    &[],
                    budget,
                    self.pruning.as_ref(),
                    seed ^ (i << 32) ^ k as u64,
                );
            }
        }
        let mut run = state.finish(&self.fallback_output);
        run.iterations = iterations;
        run
    }
}

#[cfg(test)]
mod tests {
    use crate::catalog;
    use crate::problem::Problem;
    use local_graphs::{gnp, grid, path};

    fn units(n: usize) -> Vec<()> {
        vec![(); n]
    }

    #[test]
    fn rebuild_path_matches_view_path_exactly() {
        let transformer = catalog::uniform_coloring_mis();
        for (i, g) in [path(40), grid(6, 6), gnp(80, 0.08, 4)].iter().enumerate() {
            let n = g.node_count();
            let fast = transformer.solve(g, &units(n), i as u64);
            let reference = transformer.solve_rebuild(g, &units(n), i as u64);
            assert_eq!(fast.outputs, reference.outputs, "graph {i}: outputs diverge");
            assert_eq!(fast.rounds, reference.rounds, "graph {i}: rounds diverge");
            assert_eq!(fast.messages, reference.messages, "graph {i}: messages diverge");
            assert_eq!(fast.iterations, reference.iterations);
            assert_eq!(fast.subiterations, reference.subiterations);
            assert_eq!(fast.solved, reference.solved);
            assert_eq!(fast.trace, reference.trace, "graph {i}: traces diverge");
            crate::problem::MisProblem.validate(g, &units(n), &fast.outputs).unwrap();
        }
    }

    #[test]
    fn rebuild_matches_view_for_materializing_black_box() {
        // ArboricityMis has no view-native execute_view: the fast driver reaches it through
        // the session's epoch-cached materialization. Results must still be byte-identical.
        let transformer = catalog::uniform_arboricity_mis();
        let g = local_graphs::forest_union(90, 3, 5);
        let n = g.node_count();
        let fast = transformer.solve(&g, &units(n), 2);
        let reference = transformer.solve_rebuild(&g, &units(n), 2);
        assert_eq!(fast.outputs, reference.outputs);
        assert_eq!(fast.rounds, reference.rounds);
        assert_eq!(fast.messages, reference.messages);
        assert_eq!(fast.trace, reference.trace);
        crate::problem::MisProblem.validate(&g, &units(n), &fast.outputs).unwrap();
    }

    #[test]
    fn seed_pruning_reproduces_fast_pruning_decisions() {
        // The bench baseline (rebuild driver + seed ball-based pruning) must stay
        // output-identical to the optimized path, or the throughput comparison is meaningless.
        let black_box = catalog::coloring_mis_black_box();
        let fast = catalog::uniform_coloring_mis();
        let reference = crate::transform::UniformTransformer::new(
            black_box,
            super::SeedRulingSetPruning { beta: 1 },
            false,
        );
        for seed in 0..3u64 {
            let g = gnp(70, 0.09, seed);
            let a = fast.solve(&g, &units(70), seed);
            let b = reference.solve_rebuild(&g, &units(70), seed);
            assert_eq!(a.outputs, b.outputs);
            assert_eq!(a.rounds, b.rounds);
            assert_eq!(a.trace, b.trace);
        }
    }

    #[test]
    fn rebuild_matches_view_for_las_vegas_driver() {
        let transformer = catalog::uniform_ruling_set(2);
        for seed in 0..3u64 {
            let g = gnp(60, 0.08, seed);
            let fast = transformer.solve(&g, &units(60), seed);
            let reference = transformer.solve_rebuild(&g, &units(60), seed);
            assert_eq!(fast.outputs, reference.outputs);
            assert_eq!(fast.rounds, reference.rounds);
            assert_eq!(fast.messages, reference.messages);
            assert_eq!(fast.trace, reference.trace);
        }
    }

    #[test]
    fn rebuild_matches_view_for_fastest_of_combinator() {
        let combiner = catalog::corollary1_mis();
        let g = gnp(70, 0.1, 2);
        let fast = combiner.solve(&g, &units(70), 0);
        let reference = combiner.solve_rebuild(&g, &units(70), 0);
        assert_eq!(fast.outputs, reference.outputs);
        assert_eq!(fast.rounds, reference.rounds);
        assert_eq!(fast.messages, reference.messages);
        assert_eq!(fast.trace, reference.trace);
    }
}

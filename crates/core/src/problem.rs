//! Problems in the sense of Section 2 of the paper.
//!
//! A problem `Π` is a collection of triplets `(G, x, y)` closed under disjoint union; an
//! instance is a pair `(G, x)` admitting a solution. In code a [`Problem`] bundles the input
//! and output types with a *validator* deciding whether `(G, x, y) ∈ Π` — the ground truth
//! against which pruning algorithms, transformers and benchmarks are checked.

use local_algos::checkers;
use local_runtime::{Graph, NodeId};
use std::collections::BTreeSet;

/// A distributed problem `Π = {(G, x, y)}` closed under disjoint union.
pub trait Problem: Clone + Send + Sync + 'static {
    /// Per-node input type `x(v)`.
    type Input: Clone + Send + Sync;
    /// Per-node output type `y(v)`.
    type Output: Clone + Send + Sync;

    /// Human-readable problem name (for reports).
    fn name(&self) -> &'static str;

    /// Returns `Ok(())` iff `(G, x, y) ∈ Π`.
    fn validate(
        &self,
        graph: &Graph,
        input: &[Self::Input],
        output: &[Self::Output],
    ) -> Result<(), String>;
}

/// Maximal Independent Set: output `true` iff the node is in the set; the set must be
/// independent and dominating. MIS is exactly the (2, 1)-ruling set problem.
#[derive(Debug, Clone, Copy, Default)]
pub struct MisProblem;

impl Problem for MisProblem {
    type Input = ();
    type Output = bool;

    fn name(&self) -> &'static str {
        "MIS"
    }

    fn validate(&self, graph: &Graph, _input: &[()], output: &[bool]) -> Result<(), String> {
        checkers::check_mis(graph, output).map_err(|v| format!("{v:?}"))
    }
}

/// The (α, β)-ruling set problem.
#[derive(Debug, Clone, Copy)]
pub struct RulingSetProblem {
    /// Minimum pairwise distance between set nodes.
    pub alpha: usize,
    /// Maximum distance from any node to the set.
    pub beta: usize,
}

impl RulingSetProblem {
    /// The (2, β)-ruling set problem, the family covered by the paper's pruning algorithm.
    pub fn two(beta: usize) -> Self {
        RulingSetProblem { alpha: 2, beta }
    }
}

impl Problem for RulingSetProblem {
    type Input = ();
    type Output = bool;

    fn name(&self) -> &'static str {
        "ruling-set"
    }

    fn validate(&self, graph: &Graph, _input: &[()], output: &[bool]) -> Result<(), String> {
        checkers::check_ruling_set(graph, output, self.alpha, self.beta)
            .map_err(|v| format!("{v:?}"))
    }
}

/// Maximal matching: the output of a node is the identity of its partner (or `None`); the
/// matching must be consistent, valid and maximal.
#[derive(Debug, Clone, Copy, Default)]
pub struct MatchingProblem;

impl Problem for MatchingProblem {
    type Input = ();
    type Output = Option<NodeId>;

    fn name(&self) -> &'static str {
        "maximal-matching"
    }

    fn validate(
        &self,
        graph: &Graph,
        _input: &[()],
        output: &[Option<NodeId>],
    ) -> Result<(), String> {
        checkers::check_maximal_matching(graph, output).map_err(|v| format!("{v:?}"))
    }
}

/// Proper vertex colouring (no palette restriction: palettes are checked separately by the
/// benchmarks because the allowed number of colours is a function of Δ, which a uniform
/// validator cannot know — exactly the difficulty the paper discusses in Section 5).
#[derive(Debug, Clone, Copy, Default)]
pub struct ColoringProblem;

impl Problem for ColoringProblem {
    type Input = ();
    type Output = u64;

    fn name(&self) -> &'static str {
        "coloring"
    }

    fn validate(&self, graph: &Graph, _input: &[()], output: &[u64]) -> Result<(), String> {
        checkers::check_coloring(graph, output).map_err(|v| format!("{v:?}"))
    }
}

/// A colour of the strong list colouring problem: the pair `(k, j)` with `k ∈ [1, g(Δ̂)]` and
/// `j ∈ [1, Δ̂ + 1]` of Section 5.2.
pub type SlcColor = (u64, u64);

/// Input of the strong list colouring (SLC) problem at one node: the common degree bound `Δ̂`
/// and the node's list of allowed colours.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlcInput {
    /// The common upper bound `Δ̂ ≥ Δ(G)` contained in every node's input.
    pub delta_hat: u64,
    /// The allowed colours `L(v)`; the SLC invariant requires at least `deg(v) + 1` entries
    /// for every first coordinate `k ∈ [1, g(Δ̂)]`.
    pub list: BTreeSet<SlcColor>,
}

impl SlcInput {
    /// The full list `[1, num_base_colors] × [1, Δ̂ + 1]` (the layer-initial configuration of
    /// the Theorem 5 proof).
    pub fn full(delta_hat: u64, num_base_colors: u64) -> Self {
        let mut list = BTreeSet::new();
        for k in 1..=num_base_colors.max(1) {
            for j in 1..=delta_hat + 1 {
                list.insert((k, j));
            }
        }
        SlcInput { delta_hat, list }
    }

    /// Number of copies of base colour `k` still available.
    pub fn copies_of(&self, k: u64) -> usize {
        self.list.iter().filter(|&&(kk, _)| kk == k).count()
    }

    /// The distinct base colours present in the list.
    pub fn base_colors(&self) -> BTreeSet<u64> {
        self.list.iter().map(|&(k, _)| k).collect()
    }
}

/// The strong list colouring problem of Section 5.2: every node must output a colour from its
/// list such that adjacent nodes output different colours.
#[derive(Debug, Clone, Copy, Default)]
pub struct SlcProblem;

impl Problem for SlcProblem {
    type Input = SlcInput;
    type Output = SlcColor;

    fn name(&self) -> &'static str {
        "strong-list-coloring"
    }

    fn validate(
        &self,
        graph: &Graph,
        input: &[SlcInput],
        output: &[SlcColor],
    ) -> Result<(), String> {
        for v in 0..graph.node_count() {
            if !input[v].list.contains(&output[v]) {
                return Err(format!("node {v} chose a colour outside its list"));
            }
        }
        for (u, v) in graph.edges() {
            if output[u] == output[v] {
                return Err(format!("adjacent nodes {u} and {v} share colour {:?}", output[u]));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_graphs::{cycle, path};

    #[test]
    fn mis_problem_validates() {
        let g = path(4);
        assert!(MisProblem.validate(&g, &[(); 4], &[true, false, true, false]).is_ok());
        assert!(MisProblem.validate(&g, &[(); 4], &[true, true, false, false]).is_err());
        assert_eq!(MisProblem.name(), "MIS");
    }

    #[test]
    fn ruling_set_problem_validates() {
        let g = path(7);
        let p = RulingSetProblem::two(3);
        assert_eq!(p.alpha, 2);
        let set = [true, false, false, false, false, false, true];
        assert!(p.validate(&g, &[(); 7], &set).is_ok());
        let bad = [true, false, false, false, false, false, false];
        assert!(p.validate(&g, &[(); 7], &bad).is_err());
    }

    #[test]
    fn matching_problem_validates() {
        let g = path(4);
        assert!(MatchingProblem
            .validate(&g, &[(); 4], &[Some(1), Some(0), Some(3), Some(2)])
            .is_ok());
        assert!(MatchingProblem.validate(&g, &[(); 4], &[None, None, None, None]).is_err());
    }

    #[test]
    fn coloring_problem_validates() {
        let g = cycle(4);
        assert!(ColoringProblem.validate(&g, &[(); 4], &[0, 1, 0, 1]).is_ok());
        assert!(ColoringProblem.validate(&g, &[(); 4], &[0, 0, 1, 1]).is_err());
    }

    #[test]
    fn slc_input_full_has_enough_copies() {
        let input = SlcInput::full(3, 5);
        assert_eq!(input.base_colors().len(), 5);
        for k in 1..=5 {
            assert_eq!(input.copies_of(k), 4);
        }
        assert_eq!(input.copies_of(99), 0);
    }

    #[test]
    fn slc_problem_validates_membership_and_properness() {
        let g = path(3);
        let inputs = vec![SlcInput::full(2, 2); 3];
        // Proper and in-list.
        assert!(SlcProblem.validate(&g, &inputs, &[(1, 1), (2, 1), (1, 1)]).is_ok());
        // Out of list.
        assert!(SlcProblem.validate(&g, &inputs, &[(9, 9), (2, 1), (1, 1)]).is_err());
        // Improper.
        assert!(SlcProblem.validate(&g, &inputs, &[(1, 1), (1, 1), (2, 1)]).is_err());
    }
}

//! Theorem 5: the colouring transformer.
//!
//! Colouring does not admit a pruning algorithm directly (a node cannot locally check that its
//! colour is within the `O(g(Δ))` range without knowing Δ, and a pruned colour constrains its
//! surviving neighbours). Theorem 5 circumvents both obstacles:
//!
//! 1. **Degree layering.** Thresholds `D_1 = 1`, `D_{i+1} = min{ℓ : g(ℓ) ≥ 2·g(D_i)}` split the
//!    nodes by degree into layers; a node knows its layer from its own degree alone, and the
//!    degree bound `Δ̂_i = D_{i+1}` is common knowledge inside layer `i`.
//! 2. **Strong list colouring (SLC).** Within a layer, the unknown parameter is only the
//!    maximum identity `m`. The SLC problem *does* admit a pruning algorithm
//!    ([`crate::pruning::SlcPruning`]), so the Theorem 1/2 machinery applies: the layer is
//!    coloured uniformly by iterating the budgeted black box `B` (the given non-uniform
//!    colouring algorithm `A` wrapped to pick an available copy `(c, j)` from the node's list)
//!    against the SLC pruning.
//! 3. **Palette compression.** A second phase re-colours each layer from the phase-1 palette
//!    down to `Δ̂_i + 1 ≤ g(Δ̂_i)` colours, treating the phase-1 colours as identities — the
//!    paper's observation that the underlying colouring algorithms only need the initial
//!    identities to form a proper colouring. Layer `i`'s final colours are shifted into
//!    `[g(D_{i+1}), 2·g(D_{i+1}))`; since `g(D_{i+1}) ≥ 2·g(D_i)` these ranges are pairwise
//!    disjoint, and the total number of colours is `O(g(Δ))`.
//!
//! Layers run in parallel, so the charged running time is the *maximum* over layers, as in the
//! paper's proof.

use crate::funcs::monotone;
use crate::nonuniform::NonUniformAlgorithm;
use crate::problem::{SlcColor, SlcInput, SlcProblem};
use crate::pruning::SlcPruning;
use crate::seqnum::TimeBound;
use crate::transform::UniformTransformer;
use local_algos::coloring::RefineColoring;
use local_graphs::Parameter;
use local_runtime::{AlgoRun, DynAlgorithm, Graph, GraphAlgorithm, GraphView, Session};
use std::sync::Arc;

/// The non-uniform `g(Δ̃)`-colouring black box handed to the Theorem 5 transformer.
#[derive(Clone)]
pub struct NonUniformColoringBox {
    /// Name used in reports.
    pub name: String,
    /// Builds the algorithm from `(Δ̃, m̃)` guesses; its output colours must lie in
    /// `[0, palette(Δ̃))` whenever the guesses are good.
    pub build: Arc<dyn Fn(u64, u64) -> DynAlgorithm<(), u64> + Send + Sync>,
    /// The number of colours `g(Δ̃)` the black box uses (must be moderately fast, in particular
    /// `g(Δ̃) ≥ Δ̃ + 1`).
    pub palette: Arc<dyn Fn(u64) -> u64 + Send + Sync>,
    /// Non-decreasing running-time bound `f(Δ̃, m̃)`.
    pub time: Arc<dyn Fn(u64, u64) -> f64 + Send + Sync>,
}

impl std::fmt::Debug for NonUniformColoringBox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NonUniformColoringBox").field("name", &self.name).finish()
    }
}

/// Adapter `B` of the Theorem 5 proof: run `A` with the common degree bound `Δ̂` and a guess
/// `m̃`, then output the pair `(c + 1, min{j : (c + 1, j) ∈ L(v)})`.
struct SlcFromColoring {
    inner: DynAlgorithm<(), u64>,
    palette: u64,
}

impl GraphAlgorithm for SlcFromColoring {
    type Input = SlcInput;
    type Output = SlcColor;

    fn execute(
        &self,
        graph: &Graph,
        inputs: &[SlcInput],
        budget: Option<u64>,
        seed: u64,
    ) -> AlgoRun<SlcColor> {
        let unit_inputs = vec![(); graph.node_count()];
        let run = self.inner.execute(graph, &unit_inputs, budget, seed);
        self.lift(&run, inputs)
    }

    fn execute_view(
        &self,
        view: &GraphView<'_>,
        inputs: &[SlcInput],
        budget: Option<u64>,
        seed: u64,
        session: &mut Session,
    ) -> AlgoRun<SlcColor> {
        let unit_inputs = vec![(); view.node_count()];
        let run = self.inner.execute_view(view, &unit_inputs, budget, seed, session);
        let lifted = self.lift(&run, inputs);
        // The wrapped colouring's u64 outputs are done with: back to the session pool, so
        // the next attempt's colouring phase reuses the buffer.
        session.recycle_outputs(run.outputs);
        lifted
    }
}

impl SlcFromColoring {
    /// Maps the wrapped colouring's outputs into the nodes' SLC lists.
    fn lift(&self, run: &AlgoRun<u64>, inputs: &[SlcInput]) -> AlgoRun<SlcColor> {
        let outputs: Vec<SlcColor> = run
            .outputs
            .iter()
            .zip(inputs)
            .map(|(&c, input)| {
                let base = (c + 1).min(self.palette.max(1));
                input
                    .list
                    .iter()
                    .find(|&&(k, _)| k == base)
                    .copied()
                    // Empty base-colour bucket can only happen under bad guesses; emit an
                    // arbitrary (out-of-list) value, which the pruning will reject.
                    .unwrap_or((base, 0))
            })
            .collect();
        AlgoRun { outputs, rounds: run.rounds, messages: run.messages, completed: run.completed }
    }
}

/// The outcome of the uniform colouring algorithm produced by Theorem 5.
#[derive(Debug, Clone)]
pub struct ColoringRun {
    /// Final colours, one per node.
    pub colors: Vec<u64>,
    /// Rounds charged: the maximum over layers (they run in parallel) of the two phases.
    pub rounds: u64,
    /// Total messages delivered, summed over all layers and phases.
    pub messages: u64,
    /// Number of non-empty degree layers.
    pub layers: usize,
    /// `true` when every layer's SLC instance was solved before the safety cap.
    pub solved: bool,
    /// Wall-clock time spent inside black-box attempts, summed over layers, in microseconds
    /// (profiling aid; non-deterministic).
    pub attempt_micros: u64,
    /// Wall-clock time spent in pruning, summed over layers, in microseconds (profiling aid;
    /// non-deterministic).
    pub prune_micros: u64,
}

/// The Theorem 5 transformer: a uniform `O(g(Δ))`-colouring algorithm built from a non-uniform
/// `g(Δ̃)`-colouring black box.
pub struct ColoringTransformer {
    /// The black box `A_Γ` with `Γ ⊆ {Δ, m}`.
    pub black_box: NonUniformColoringBox,
    /// Safety cap on the doubling iterations of the per-layer SLC transformer.
    pub max_iterations: u64,
}

impl ColoringTransformer {
    /// Creates the transformer with the default iteration cap.
    pub fn new(black_box: NonUniformColoringBox) -> Self {
        ColoringTransformer { black_box, max_iterations: 40 }
    }

    /// The degree thresholds `D_1 < D_2 < …` up to (and one past) `max_degree`.
    pub fn thresholds(&self, max_degree: u64) -> Vec<u64> {
        let g = &self.black_box.palette;
        let mut thresholds = vec![1u64];
        while *thresholds.last().expect("non-empty") <= max_degree {
            let current = *thresholds.last().expect("non-empty");
            let target = 2 * g(current).max(1);
            let mut next = current + 1;
            while g(next) < target && next < current.saturating_mul(4) + 64 {
                next += 1;
            }
            thresholds.push(next);
        }
        thresholds
    }

    /// The palette bound `2·g(D_{i_max + 1}) = O(g(Δ))` claimed by Theorem 5 for a graph of
    /// maximum degree `max_degree`.
    pub fn palette_bound(&self, max_degree: u64) -> u64 {
        let thresholds = self.thresholds(max_degree);
        let top = *thresholds.last().expect("non-empty");
        2 * (self.black_box.palette)(top)
    }

    /// Runs the uniform colouring algorithm with a throwaway [`Session`].
    pub fn solve(&self, graph: &Graph, seed: u64) -> ColoringRun {
        self.solve_in(graph, seed, &mut Session::new())
    }

    /// Like [`ColoringTransformer::solve`], but reuses the caller's [`Session`] buffers
    /// across layers and phases.
    pub fn solve_in(&self, graph: &Graph, seed: u64, session: &mut Session) -> ColoringRun {
        let n = graph.node_count();
        if n == 0 {
            return ColoringRun {
                colors: Vec::new(),
                rounds: 0,
                messages: 0,
                layers: 0,
                solved: true,
                attempt_micros: 0,
                prune_micros: 0,
            };
        }
        let max_degree = graph.max_degree() as u64;
        let thresholds = self.thresholds(max_degree);
        // Layer of a node: the unique i with D_i <= deg < D_{i+1} (degree-0 nodes in layer 1).
        let layer_of = |deg: u64| -> usize {
            let mut layer = 1usize;
            for (i, window) in thresholds.windows(2).enumerate() {
                if deg >= window[0] && deg < window[1] {
                    layer = i + 1;
                }
            }
            if deg == 0 {
                1
            } else {
                layer
            }
        };
        let layers: Vec<usize> = (0..n).map(|v| layer_of(graph.degree(v) as u64)).collect();
        let num_layers = thresholds.len() - 1;

        let mut colors = vec![0u64; n];
        let mut max_rounds = 0u64;
        let mut messages = 0u64;
        let mut solved = true;
        let mut nonempty_layers = 0usize;
        let mut attempt_micros = 0u64;
        let mut prune_micros = 0u64;

        // `delta_hat` is `thresholds[layer]`, i.e. D_{layer+1} in 1-based threshold indexing.
        for (layer, &delta_hat) in thresholds.iter().enumerate().take(num_layers + 1).skip(1) {
            let keep: Vec<bool> = (0..n).map(|v| layers[v] == layer).collect();
            if !keep.iter().any(|&k| k) {
                continue;
            }
            nonempty_layers += 1;
            // The layer is a live view over the base graph — never materialized; the SLC
            // alternation below shrinks its own clone of the view in place.
            let layer_view = GraphView::with_mask(graph, &keep);
            let base_palette = (self.black_box.palette)(delta_hat).max(delta_hat + 1);

            // ---- Phase 1: uniform SLC via the Theorem 1 transformer over the m̃ guess. ----
            let slc_inputs: Vec<SlcInput> = (0..layer_view.node_count())
                .map(|_| SlcInput::full(delta_hat, base_palette))
                .collect();
            let build = self.black_box.build.clone();
            let time = self.black_box.time.clone();
            let palette_for_adapter = base_palette;
            let slc_black_box: NonUniformAlgorithm<SlcProblem> = NonUniformAlgorithm::deterministic(
                format!("{}@layer{layer}", self.black_box.name),
                vec![Parameter::MaxId],
                TimeBound::single(monotone(move |m| time(delta_hat, m) + 2.0)),
                Arc::new(move |guesses: &[u64]| {
                    Box::new(SlcFromColoring {
                        inner: build(delta_hat, guesses[0]),
                        palette: palette_for_adapter,
                    }) as DynAlgorithm<SlcInput, SlcColor>
                }),
            );
            let mut transformer = UniformTransformer::new(slc_black_box, SlcPruning, (1, 1));
            transformer.max_iterations = self.max_iterations;
            let phase1 = transformer.solve_view(
                layer_view.clone(),
                &slc_inputs,
                seed ^ ((layer as u64) << 8),
                session,
            );
            solved &= phase1.solved;
            attempt_micros += phase1.attempt_micros;
            prune_micros += phase1.prune_micros;

            // Map SLC pairs to integers in [0, base_palette·(Δ̂+1)).
            let phase1_colors: Vec<u64> = phase1
                .outputs
                .iter()
                .map(|&(k, j)| (k.saturating_sub(1)) * (delta_hat + 1) + j.saturating_sub(1))
                .collect();
            let phase1_palette = base_palette * (delta_hat + 1);

            // ---- Phase 2: compress the layer palette to Δ̂ + 1 ≤ g(Δ̂) colours. ----
            let refine = RefineColoring {
                delta_guess: delta_hat,
                initial_palette_guess: phase1_palette,
                target_colors: delta_hat + 1,
            };
            let phase2 =
                refine.execute_view(&layer_view, &phase1_colors, None, seed ^ 0x77, session);
            solved &= phase2.completed;

            // ---- Final colours: shift into the layer's private range. ----
            let offset = (self.black_box.palette)(delta_hat);
            for (sub_idx, &orig) in layer_view.live_nodes().iter().enumerate() {
                colors[orig] = offset + phase2.outputs[sub_idx];
            }
            max_rounds = max_rounds.max(phase1.rounds + phase2.rounds);
            messages += phase1.messages + phase2.messages;
        }

        ColoringRun {
            colors,
            rounds: max_rounds,
            messages,
            layers: nonempty_layers,
            solved,
            attempt_micros,
            prune_micros,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_algos::checkers::{check_coloring, palette_size};
    use local_algos::coloring::{linial_final_palette, ReducedColoring};
    use local_graphs::{forest_union, gnp, grid, path, star, Family, GraphParams};

    /// The (Δ̃+1)-colouring black box (g(Δ) = Δ + 1): the Corollary 1(iii)-style instantiation
    /// with λ = 1 — the palette is linear in Δ, so Theorem 5 gives a uniform O(Δ)-colouring.
    fn delta_plus_one_box() -> NonUniformColoringBox {
        NonUniformColoringBox {
            name: "(Δ+1)-coloring".into(),
            build: Arc::new(|delta, m| {
                Box::new(ReducedColoring::delta_plus_one(delta, m)) as DynAlgorithm<(), u64>
            }),
            palette: Arc::new(|delta| delta + 1),
            time: Arc::new(|delta, m| {
                ReducedColoring::delta_plus_one(delta, m).round_bound() as f64
            }),
        }
    }

    /// An `O(Δ̃²)`-colouring black box (g(Δ) ≈ Linial's palette): the λ(Δ+1) extreme. The
    /// output palette is clamped to the declared `g(Δ̃)` so that the Theorem 5 adapter's
    /// base-colour range is always respected.
    fn quadratic_box() -> NonUniformColoringBox {
        let declared_palette = |delta: u64| linial_final_palette(1 << 40, delta).max(delta + 1);
        NonUniformColoringBox {
            name: "O(Δ²)-coloring".into(),
            build: Arc::new(move |delta, m| {
                Box::new(ReducedColoring {
                    delta_guess: delta,
                    id_bound_guess: m,
                    target: local_algos::coloring::ColoringTarget::Fixed(declared_palette(delta)),
                }) as DynAlgorithm<(), u64>
            }),
            palette: Arc::new(declared_palette),
            time: Arc::new(move |delta, m| {
                ReducedColoring {
                    delta_guess: delta,
                    id_bound_guess: m,
                    target: local_algos::coloring::ColoringTarget::Fixed(declared_palette(delta)),
                }
                .round_bound() as f64
            }),
        }
    }

    #[test]
    fn thresholds_double_roughly_for_linear_palettes() {
        let transformer = ColoringTransformer::new(delta_plus_one_box());
        let t = transformer.thresholds(100);
        assert_eq!(t[0], 1);
        assert!(t.windows(2).all(|w| w[1] > w[0]));
        assert!(*t.last().unwrap() > 100);
        assert!(t.len() <= 12, "O(log Δ) layers expected, got {}", t.len());
    }

    #[test]
    fn uniform_coloring_is_proper_with_bounded_palette() {
        let transformer = ColoringTransformer::new(delta_plus_one_box());
        for (i, g) in [path(40), grid(6, 7), gnp(70, 0.08, 3), star(20), forest_union(50, 2, 1)]
            .iter()
            .enumerate()
        {
            let run = transformer.solve(g, i as u64);
            assert!(run.solved, "graph {i} not solved");
            check_coloring(g, &run.colors).unwrap_or_else(|e| panic!("graph {i}: {e:?}"));
            let bound = transformer.palette_bound(g.max_degree() as u64);
            assert!(
                run.colors.iter().all(|&c| c < 2 * bound),
                "graph {i}: colour exceeds twice the palette bound"
            );
            assert!(
                (palette_size(&run.colors) as u64) <= bound,
                "graph {i}: {} colours used but bound is {bound}",
                palette_size(&run.colors)
            );
        }
    }

    #[test]
    fn palette_bound_is_linear_in_delta_for_delta_plus_one_box() {
        let transformer = ColoringTransformer::new(delta_plus_one_box());
        let small = transformer.palette_bound(8);
        let large = transformer.palette_bound(64);
        // O(g(Δ)) = O(Δ): growing Δ by 8× grows the bound by at most ~16× (one extra doubling).
        assert!(large <= 20 * small, "palette bound not linear: {small} -> {large}");
    }

    #[test]
    fn uniform_coloring_with_quadratic_palette_black_box() {
        let transformer = ColoringTransformer::new(quadratic_box());
        let g = gnp(60, 0.1, 5);
        let run = transformer.solve(&g, 0);
        assert!(run.solved);
        check_coloring(&g, &run.colors).unwrap();
    }

    #[test]
    fn layers_are_disjoint_color_ranges() {
        let transformer = ColoringTransformer::new(delta_plus_one_box());
        // A star has two very different degrees (1 and n−1), hence two layers.
        let g = star(30);
        let run = transformer.solve(&g, 0);
        assert!(run.solved);
        assert!(run.layers >= 2, "expected at least two non-empty layers");
        check_coloring(&g, &run.colors).unwrap();
        // The centre (high layer) must use a colour outside the leaves' range.
        let leaf_colors: std::collections::BTreeSet<u64> = (1..30).map(|v| run.colors[v]).collect();
        assert!(!leaf_colors.contains(&run.colors[0]));
    }

    #[test]
    fn rounds_are_max_over_layers_not_sum() {
        // On a family with a single layer the rounds equal that layer's cost; a trivial graph
        // (one cheap layer) must not cost more than a dense one.
        let transformer = ColoringTransformer::new(delta_plus_one_box());
        let dense = Family::DenseGnp.generate(128, 1);
        let run_dense = transformer.solve(&dense, 0);
        assert!(run_dense.solved);
        assert!(run_dense.rounds > 0);
        let trivial = path(16);
        let run_trivial = transformer.solve(&trivial, 0);
        assert!(run_trivial.rounds <= run_dense.rounds);
    }

    #[test]
    fn empty_graph() {
        let transformer = ColoringTransformer::new(delta_plus_one_box());
        let g = Graph::from_edges(0, &[]).unwrap();
        let run = transformer.solve(&g, 0);
        assert!(run.solved);
        assert!(run.colors.is_empty());
    }

    #[test]
    fn reproducible_given_seed() {
        let transformer = ColoringTransformer::new(delta_plus_one_box());
        let g = gnp(50, 0.12, 9);
        let a = transformer.solve(&g, 4);
        let b = transformer.solve(&g, 4);
        assert_eq!(a.colors, b.colors);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn uniform_coloring_scaling_matches_nonuniform_shape() {
        // The headline Theorem 5 claim: rounds of the uniform algorithm stay within a constant
        // factor of the non-uniform bound f(Δ, m) evaluated at the true parameters.
        let box_ = delta_plus_one_box();
        let transformer = ColoringTransformer::new(box_.clone());
        for n in [64usize, 256] {
            let g = Family::SparseGnp.generate(n, 5);
            let p = GraphParams::of(&g);
            let f_star = (box_.time)(p.max_degree, p.max_id);
            let run = transformer.solve(&g, 0);
            assert!(run.solved);
            assert!(
                (run.rounds as f64) <= 24.0 * f_star + 300.0,
                "n={n}: rounds {} too large versus f* = {f_star}",
                run.rounds
            );
        }
    }
}

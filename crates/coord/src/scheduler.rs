//! Deficit-round-robin scheduling of client tasks over a fixed fleet of peers.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// Maximum fleet size: task provenance is a per-peer bitmask in a `u64`.
pub const MAX_PEERS: usize = 64;

/// Eligibility slack for floating-point deficits.
const EPS: f64 = 1e-9;

/// One schedulable unit of work: a client's task with its cost (the fairness currency)
/// and the set of peers that already failed it (a failed peer never gets the same task
/// twice).
#[derive(Debug)]
pub struct TaskEntry<T> {
    /// The caller's task body (the coordinator stores a stripe + its job handle here).
    pub payload: T,
    /// Owning client key; fairness is enforced between these.
    pub client: String,
    /// Predicted cost. Deficit round-robin shares the fleet by summed cost, so a client
    /// submitting few huge stripes and one submitting many small ones get equal bandwidth.
    pub cost: f64,
    /// Bitmask of peers that already failed this task (bit `p` = peer `p` tried it).
    pub attempted: u64,
}

impl<T> TaskEntry<T> {
    /// A fresh task no peer has attempted.
    pub fn new(payload: T, client: impl Into<String>, cost: f64) -> Self {
        TaskEntry { payload, client: client.into(), cost: cost.max(0.0), attempted: 0 }
    }

    /// True when `peer` may serve this task (it has not failed it before).
    pub fn servable_by(&self, peer: usize) -> bool {
        self.attempted & (1u64 << peer) == 0
    }

    /// Marks `peer` as having attempted (and failed) this task.
    pub fn mark_attempted(&mut self, peer: usize) {
        self.attempted |= 1u64 << peer;
    }
}

struct ClientQueue<T> {
    deficit: f64,
    tasks: VecDeque<TaskEntry<T>>,
}

impl<T> ClientQueue<T> {
    /// Position and cost of the first task `peer` may serve, in queue (LPT) order.
    fn first_servable(&self, peer: usize) -> Option<(usize, f64)> {
        self.tasks.iter().position(|t| t.servable_by(peer)).map(|pos| (pos, self.tasks[pos].cost))
    }
}

struct SchedState<T> {
    queues: Vec<ClientQueue<T>>,
    index: HashMap<String, usize>,
    /// Round-robin pointer into `queues`; advanced past a queue after serving it.
    cursor: usize,
    live: Vec<bool>,
    shutdown: bool,
}

impl<T> SchedState<T> {
    fn queue_for(&mut self, client: &str) -> usize {
        if let Some(&qi) = self.index.get(client) {
            return qi;
        }
        let qi = self.queues.len();
        self.queues.push(ClientQueue { deficit: 0.0, tasks: VecDeque::new() });
        self.index.insert(client.to_string(), qi);
        qi
    }

    fn any_live_can_serve(&self, task: &TaskEntry<T>) -> bool {
        self.live.iter().enumerate().any(|(p, &up)| up && task.servable_by(p))
    }
}

/// A deficit-round-robin task queue shared by a fleet of peer worker threads.
///
/// Every client gets a FIFO queue (callers enqueue each job's stripes in LPT order, so
/// the head is the costliest remaining stripe) and a *deficit* measured in task cost.
/// When a peer asks for work and no queue's head is affordable, every contending queue's
/// deficit is topped up by the minimum shortfall ("water-filling" — the continuous-time
/// limit of classic DRR quanta), so the queue with the cheapest head becomes eligible
/// first and clients are served proportionally to cost, not task count. After a pop the
/// round-robin cursor advances, interleaving clients whenever several are eligible.
///
/// Peers are numbered `0..peers` and fixed at construction ([`MAX_PEERS`] cap). A peer
/// that fails a task marks itself in the task's `attempted` mask; [`requeue`] refuses a
/// task no live peer can serve, and [`peer_down`] drains every task stranded the same way
/// — in both cases the caller rescues the work locally, so nothing is silently dropped.
///
/// [`requeue`]: FairScheduler::requeue
/// [`peer_down`]: FairScheduler::peer_down
pub struct FairScheduler<T> {
    state: Mutex<SchedState<T>>,
    ready: Condvar,
}

impl<T> FairScheduler<T> {
    /// A scheduler over `peers` fleet slots (all initially live).
    ///
    /// # Panics
    /// When `peers` exceeds [`MAX_PEERS`].
    pub fn new(peers: usize) -> Self {
        assert!(peers <= MAX_PEERS, "fleet of {peers} peers exceeds the {MAX_PEERS} cap");
        FairScheduler {
            state: Mutex::new(SchedState {
                queues: Vec::new(),
                index: HashMap::new(),
                cursor: 0,
                live: vec![true; peers],
                shutdown: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// How many peers are still live.
    pub fn live_peers(&self) -> usize {
        self.state.lock().expect("scheduler poisoned").live.iter().filter(|&&l| l).count()
    }

    /// Tasks currently queued (all clients).
    pub fn queued_tasks(&self) -> usize {
        self.state.lock().expect("scheduler poisoned").queues.iter().map(|q| q.tasks.len()).sum()
    }

    /// Enqueues `tasks` on their clients' queues, in order. Fails — returning the tasks
    /// untouched — when no peer is live, so the caller can rescue the job locally instead
    /// of parking it forever.
    pub fn submit(&self, tasks: Vec<TaskEntry<T>>) -> Result<(), Vec<TaskEntry<T>>> {
        let mut state = self.state.lock().expect("scheduler poisoned");
        if !state.live.iter().any(|&l| l) {
            return Err(tasks);
        }
        for task in tasks {
            let qi = state.queue_for(&task.client);
            state.queues[qi].tasks.push_back(task);
        }
        drop(state);
        self.ready.notify_all();
        Ok(())
    }

    /// Puts a partially-failed task back at the *front* of its client's queue (its cells
    /// are already late). Fails — returning the task — when no live peer outside its
    /// `attempted` mask remains.
    pub fn requeue(&self, task: TaskEntry<T>) -> Result<(), TaskEntry<T>> {
        let mut state = self.state.lock().expect("scheduler poisoned");
        if !state.any_live_can_serve(&task) {
            return Err(task);
        }
        let qi = state.queue_for(&task.client);
        state.queues[qi].tasks.push_front(task);
        drop(state);
        self.ready.notify_all();
        Ok(())
    }

    /// Marks `peer` dead and drains every queued task the remaining live fleet can no
    /// longer serve (for local rescue by the caller). Idempotent.
    pub fn peer_down(&self, peer: usize) -> Vec<TaskEntry<T>> {
        let mut state = self.state.lock().expect("scheduler poisoned");
        state.live[peer] = false;
        let mut stranded = Vec::new();
        for qi in 0..state.queues.len() {
            let mut kept = VecDeque::new();
            while let Some(task) = state.queues[qi].tasks.pop_front() {
                if state.any_live_can_serve(&task) {
                    kept.push_back(task);
                } else {
                    stranded.push(task);
                }
            }
            state.queues[qi].tasks = kept;
            if state.queues[qi].tasks.is_empty() {
                state.queues[qi].deficit = 0.0;
            }
        }
        drop(state);
        self.ready.notify_all();
        stranded
    }

    /// Ends the scheduler: every blocked and future [`next`](FairScheduler::next) call
    /// returns `None`.
    pub fn shutdown(&self) {
        self.state.lock().expect("scheduler poisoned").shutdown = true;
        self.ready.notify_all();
    }

    /// Blocks until a task `peer` may serve is scheduled to it (`None` once the scheduler
    /// shuts down or the peer was marked dead).
    pub fn next(&self, peer: usize) -> Option<TaskEntry<T>> {
        let mut state = self.state.lock().expect("scheduler poisoned");
        loop {
            if state.shutdown || !state.live.get(peer).copied().unwrap_or(false) {
                return None;
            }
            // Water-filled DRR pass: pop the first affordable head from the cursor on;
            // when none is affordable, top every contending queue up by the minimum
            // shortfall and retry (terminates — some queue then affords its head).
            loop {
                let n = state.queues.len();
                let mut popped = None;
                for step in 0..n {
                    let qi = (state.cursor + step) % n;
                    let Some((pos, cost)) = state.queues[qi].first_servable(peer) else {
                        continue;
                    };
                    if state.queues[qi].deficit + EPS >= cost {
                        popped = Some((qi, pos, cost));
                        break;
                    }
                }
                if let Some((qi, pos, cost)) = popped {
                    let queue = &mut state.queues[qi];
                    queue.deficit -= cost;
                    let task = queue.tasks.remove(pos).expect("position just found");
                    if queue.tasks.is_empty() {
                        // Classic DRR: an idle queue accumulates no credit.
                        queue.deficit = 0.0;
                    }
                    state.cursor = (qi + 1) % n.max(1);
                    return Some(task);
                }
                let shortfall = (0..n)
                    .filter_map(|qi| {
                        let (_, cost) = state.queues[qi].first_servable(peer)?;
                        Some(cost - state.queues[qi].deficit)
                    })
                    .fold(f64::INFINITY, f64::min);
                if !shortfall.is_finite() {
                    break; // nothing this peer can serve — sleep
                }
                for qi in 0..n {
                    if state.queues[qi].first_servable(peer).is_some() {
                        state.queues[qi].deficit += shortfall.max(EPS);
                    }
                }
            }
            state = self.ready.wait(state).expect("scheduler poisoned");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop_sequence(sched: &FairScheduler<&'static str>, peer: usize, n: usize) -> Vec<String> {
        (0..n).map(|_| sched.next(peer).expect("task available").client).collect()
    }

    #[test]
    fn equal_cost_clients_interleave_one_for_one() {
        let sched = FairScheduler::new(1);
        sched
            .submit(
                (0..4)
                    .flat_map(|_| {
                        [TaskEntry::new("t", "alpha", 10.0), TaskEntry::new("t", "beta", 10.0)]
                    })
                    .collect(),
            )
            .unwrap();
        let seq = pop_sequence(&sched, 0, 8);
        assert_eq!(seq, vec!["alpha", "beta", "alpha", "beta", "alpha", "beta", "alpha", "beta"]);
    }

    #[test]
    fn fairness_is_by_cost_not_task_count() {
        // alpha's stripes cost 3x beta's: cost-fair service gives beta three tasks for
        // every alpha task, regardless of queue lengths.
        let sched = FairScheduler::new(1);
        let mut tasks: Vec<TaskEntry<&str>> =
            (0..4).map(|_| TaskEntry::new("t", "alpha", 30.0)).collect();
        tasks.extend((0..12).map(|_| TaskEntry::new("t", "beta", 10.0)));
        sched.submit(tasks).unwrap();
        let seq = pop_sequence(&sched, 0, 12);
        let alpha = seq.iter().filter(|c| *c == "alpha").count();
        let beta = seq.iter().filter(|c| *c == "beta").count();
        assert_eq!(alpha, 3, "cost-weighted share, got {seq:?}");
        assert_eq!(beta, 9);
        // And neither client is fully served before the other starts.
        assert!(seq[..4].iter().any(|c| c == "alpha"));
        assert!(seq[..4].iter().any(|c| c == "beta"));
    }

    #[test]
    fn late_clients_are_not_starved_by_a_deep_early_queue() {
        let sched = FairScheduler::new(1);
        sched.submit((0..10).map(|_| TaskEntry::new("t", "early", 5.0)).collect()).unwrap();
        assert_eq!(sched.next(0).unwrap().client, "early");
        sched.submit((0..3).map(|_| TaskEntry::new("t", "late", 5.0)).collect()).unwrap();
        let seq = pop_sequence(&sched, 0, 6);
        assert!(
            seq.iter().take(2).any(|c| c == "late"),
            "late client waited behind the whole early queue: {seq:?}"
        );
    }

    #[test]
    fn attempted_peers_never_get_the_same_task_back() {
        let sched = FairScheduler::new(2);
        let mut task = TaskEntry::new("t", "solo", 1.0);
        task.mark_attempted(0);
        sched.submit(vec![task]).unwrap();
        // Peer 1 may serve it; peer 0 must not. (next(0) would block, so check servability
        // through requeue/drain instead of racing a blocked call.)
        let got = sched.next(1).expect("peer 1 serves the task");
        assert!(!got.servable_by(0));
        assert!(got.servable_by(1));
    }

    #[test]
    fn requeue_fails_once_every_live_peer_has_attempted() {
        let sched: FairScheduler<&str> = FairScheduler::new(2);
        let mut task = TaskEntry::new("t", "solo", 1.0);
        task.mark_attempted(0);
        task.mark_attempted(1);
        let rejected = sched.requeue(task).expect_err("no peer left to serve it");
        assert_eq!(rejected.attempted, 0b11);
        // With a peer down, a task attempted only by the survivor is equally stranded.
        let drained = sched.peer_down(1);
        assert!(drained.is_empty());
        let mut task = TaskEntry::new("t", "solo", 1.0);
        task.mark_attempted(0);
        assert!(sched.requeue(task).is_err());
    }

    #[test]
    fn peer_death_drains_exactly_the_stranded_tasks() {
        let sched = FairScheduler::new(2);
        let mut hit_by_1 = TaskEntry::new("stranded", "c", 1.0);
        hit_by_1.mark_attempted(1);
        sched
            .submit(vec![
                TaskEntry::new("fresh", "c", 1.0),
                hit_by_1,
                TaskEntry::new("fresh", "c", 1.0),
            ])
            .unwrap();
        // Peer 1 dies: the task it already failed could still run on peer 0… so nothing
        // is stranded. Then peer 0 dies: everything left is stranded.
        assert!(sched.peer_down(1).is_empty());
        let stranded = sched.peer_down(0);
        assert_eq!(stranded.len(), 3);
        assert_eq!(sched.queued_tasks(), 0);
        assert_eq!(sched.live_peers(), 0);
    }

    #[test]
    fn submit_is_refused_with_no_live_fleet() {
        let sched = FairScheduler::new(1);
        sched.peer_down(0);
        let returned =
            sched.submit(vec![TaskEntry::new("t", "c", 1.0)]).expect_err("fleet is gone");
        assert_eq!(returned.len(), 1);
    }

    #[test]
    fn shutdown_unblocks_waiting_peers() {
        let sched: std::sync::Arc<FairScheduler<()>> = std::sync::Arc::new(FairScheduler::new(1));
        let waiter = {
            let sched = sched.clone();
            std::thread::spawn(move || sched.next(0))
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        sched.shutdown();
        assert!(waiter.join().unwrap().is_none());
    }

    #[test]
    fn lpt_order_within_a_client_is_preserved() {
        let sched = FairScheduler::new(1);
        sched
            .submit(vec![
                TaskEntry::new("big", "c", 30.0),
                TaskEntry::new("mid", "c", 20.0),
                TaskEntry::new("small", "c", 10.0),
            ])
            .unwrap();
        let order: Vec<&str> = (0..3).map(|_| sched.next(0).unwrap().payload).collect();
        assert_eq!(order, vec!["big", "mid", "small"]);
    }
}

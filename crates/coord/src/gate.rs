//! The bounded shared/exclusive gate that replaces a daemon's global serve lock.

use std::sync::{Condvar, Mutex};

#[derive(Debug)]
struct GateState {
    /// Shared holders currently inside the gate.
    active: usize,
    /// An exclusive holder is inside the gate.
    exclusive_active: bool,
    /// Exclusive acquirers waiting; shared acquirers yield to them so a fault-scripted or
    /// telemetry request can never be starved by a stream of plain ones.
    exclusive_waiting: usize,
}

/// A bounded semaphore with an exclusive mode.
///
/// Up to `capacity` *shared* holders run concurrently. An *exclusive* holder runs alone —
/// it waits for every shared holder to leave and blocks new ones from entering. The
/// daemon uses shared mode for plain shard requests (so one slow shard cannot starve a
/// second client) and exclusive mode for requests that need a deterministic process-wide
/// view: an armed fault script (its result-line counter is process-cumulative) or a
/// telemetry request (which resets the obs epoch).
///
/// Both acquire paths take a `keepalive` callback invoked roughly every 250ms while
/// blocked, so a queued network request can keep heartbeating its client instead of
/// tripping the client's shrunken liveness window.
#[derive(Debug)]
pub struct ConcurrencyGate {
    capacity: usize,
    state: Mutex<GateState>,
    ready: Condvar,
}

impl ConcurrencyGate {
    /// A gate admitting up to `capacity` concurrent shared holders (floored at 1).
    pub fn new(capacity: usize) -> Self {
        ConcurrencyGate {
            capacity: capacity.max(1),
            state: Mutex::new(GateState {
                active: 0,
                exclusive_active: false,
                exclusive_waiting: 0,
            }),
            ready: Condvar::new(),
        }
    }

    /// The configured shared capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Acquires a shared slot, blocking while the gate is full, exclusively held, or an
    /// exclusive acquirer is waiting. `keepalive` runs periodically while blocked.
    pub fn acquire(&self, mut keepalive: impl FnMut()) -> GateGuard<'_> {
        let mut state = self.state.lock().expect("gate poisoned");
        while state.exclusive_active || state.exclusive_waiting > 0 || state.active >= self.capacity
        {
            let (next, timeout) = self
                .ready
                .wait_timeout(state, std::time::Duration::from_millis(250))
                .expect("gate poisoned");
            state = next;
            if timeout.timed_out() {
                keepalive();
            }
        }
        state.active += 1;
        GateGuard { gate: self, exclusive: false }
    }

    /// Acquires the gate exclusively, blocking until every holder has left. `keepalive`
    /// runs periodically while blocked.
    pub fn acquire_exclusive(&self, mut keepalive: impl FnMut()) -> GateGuard<'_> {
        let mut state = self.state.lock().expect("gate poisoned");
        state.exclusive_waiting += 1;
        while state.exclusive_active || state.active > 0 {
            let (next, timeout) = self
                .ready
                .wait_timeout(state, std::time::Duration::from_millis(250))
                .expect("gate poisoned");
            state = next;
            if timeout.timed_out() {
                keepalive();
            }
        }
        state.exclusive_waiting -= 1;
        state.exclusive_active = true;
        GateGuard { gate: self, exclusive: true }
    }

    fn release(&self, exclusive: bool) {
        let mut state = self.state.lock().expect("gate poisoned");
        if exclusive {
            state.exclusive_active = false;
        } else {
            state.active -= 1;
        }
        drop(state);
        self.ready.notify_all();
    }
}

/// RAII handle for a gate slot; releases on drop.
#[must_use = "dropping the guard releases the gate slot"]
#[derive(Debug)]
pub struct GateGuard<'a> {
    gate: &'a ConcurrencyGate,
    exclusive: bool,
}

impl Drop for GateGuard<'_> {
    fn drop(&mut self) {
        self.gate.release(self.exclusive);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn shared_holders_run_concurrently_up_to_capacity() {
        let gate = Arc::new(ConcurrencyGate::new(2));
        let inside = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..6 {
            let (gate, inside, peak) = (gate.clone(), inside.clone(), peak.clone());
            handles.push(std::thread::spawn(move || {
                let _slot = gate.acquire(|| {});
                let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(20));
                inside.fetch_sub(1, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let peak = peak.load(Ordering::SeqCst);
        assert!(peak <= 2, "capacity 2 exceeded: {peak}");
        assert!(peak == 2, "holders never overlapped — the gate serializes");
    }

    #[test]
    fn exclusive_holds_alone_and_is_not_starved() {
        let gate = Arc::new(ConcurrencyGate::new(4));
        let inside = Arc::new(AtomicUsize::new(0));
        let violations = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for i in 0..8 {
            let (gate, inside, violations) = (gate.clone(), inside.clone(), violations.clone());
            handles.push(std::thread::spawn(move || {
                if i % 4 == 0 {
                    let _slot = gate.acquire_exclusive(|| {});
                    if inside.load(Ordering::SeqCst) != 0 {
                        violations.fetch_add(1, Ordering::SeqCst);
                    }
                    std::thread::sleep(std::time::Duration::from_millis(5));
                } else {
                    let _slot = gate.acquire(|| {});
                    inside.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    inside.fetch_sub(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(violations.load(Ordering::SeqCst), 0, "exclusive overlapped a shared holder");
    }

    #[test]
    fn keepalive_fires_while_blocked() {
        let gate = Arc::new(ConcurrencyGate::new(1));
        let beats = Arc::new(AtomicUsize::new(0));
        let held = gate.acquire(|| {});
        let waiter = {
            let (gate, beats) = (gate.clone(), beats.clone());
            std::thread::spawn(move || {
                let _slot = gate.acquire(|| {
                    beats.fetch_add(1, Ordering::SeqCst);
                });
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(600));
        drop(held);
        waiter.join().unwrap();
        assert!(beats.load(Ordering::SeqCst) >= 1, "blocked acquirer never kept alive");
    }

    #[test]
    fn capacity_is_floored_at_one() {
        assert_eq!(ConcurrencyGate::new(0).capacity(), 1);
    }
}

//! Per-client job and cell accounting with exact reconciliation.

use std::collections::BTreeMap;
use std::fmt;

/// Final accounting for one completed job.
///
/// The invariant the coordinator proves per job: every cell was emitted exactly once, so
/// `verified + rescued == cells`. `assigned` may exceed `cells` (a stripe re-dispatched
/// after a peer death counts its cells once per dispatch), and `redispatched` counts the
/// cells verified on a second-or-later dispatch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobStats {
    /// Cells in the job.
    pub cells: u64,
    /// Cells whose result line came back from a fleet peer and verified.
    pub verified: u64,
    /// Cells recomputed locally after every eligible peer failed them.
    pub rescued: u64,
    /// Cells dispatched to a peer, summed over every dispatch attempt.
    pub assigned: u64,
    /// Cells verified on a re-dispatch (their first peer failed mid-stripe).
    pub redispatched: u64,
    /// Total microseconds the job's stripes spent queued before dispatch.
    pub queue_wait_micros: u64,
}

impl JobStats {
    /// True when every cell is accounted for exactly once.
    pub fn reconciles(&self) -> bool {
        self.verified + self.rescued == self.cells
    }
}

/// Running totals for one client across all its jobs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Jobs accepted from this client.
    pub jobs_submitted: u64,
    /// Jobs fully emitted back to this client.
    pub jobs_completed: u64,
    /// Cell totals accumulated from each completed job's [`JobStats`].
    pub cells: u64,
    /// Sum of per-job `verified`.
    pub verified: u64,
    /// Sum of per-job `rescued`.
    pub rescued: u64,
    /// Sum of per-job `assigned`.
    pub assigned: u64,
    /// Sum of per-job `redispatched`.
    pub redispatched: u64,
    /// Sum of per-job `queue_wait_micros`.
    pub queue_wait_micros: u64,
}

impl ClientStats {
    fn absorb(&mut self, job: &JobStats) {
        self.jobs_completed += 1;
        self.cells += job.cells;
        self.verified += job.verified;
        self.rescued += job.rescued;
        self.assigned += job.assigned;
        self.redispatched += job.redispatched;
        self.queue_wait_micros += job.queue_wait_micros;
    }

    /// True when every completed job's cells are accounted for exactly once.
    pub fn reconciles(&self) -> bool {
        self.verified + self.rescued == self.cells
    }
}

impl fmt::Display for ClientStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "jobs {}/{} cells {} = verified {} + rescued {}; assigned {}; redispatched {}; queue-wait {} us",
            self.jobs_completed,
            self.jobs_submitted,
            self.cells,
            self.verified,
            self.rescued,
            self.assigned,
            self.redispatched,
            self.queue_wait_micros
        )
    }
}

/// The coordinator's book of record: one [`ClientStats`] row per client name, ordered
/// deterministically (BTreeMap) so rendered summaries are stable across runs.
#[derive(Debug, Default)]
pub struct ClientLedger {
    clients: BTreeMap<String, ClientStats>,
}

impl ClientLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        ClientLedger::default()
    }

    /// Records that `client` submitted a job.
    pub fn job_submitted(&mut self, client: &str) {
        self.clients.entry(client.to_string()).or_default().jobs_submitted += 1;
    }

    /// Folds a completed job's stats into `client`'s row.
    pub fn job_completed(&mut self, client: &str, job: &JobStats) {
        self.clients.entry(client.to_string()).or_default().absorb(job);
    }

    /// This client's running totals, if it ever submitted.
    pub fn client(&self, client: &str) -> Option<&ClientStats> {
        self.clients.get(client)
    }

    /// Clients whose completed jobs do **not** reconcile (should always be empty).
    pub fn unreconciled(&self) -> Vec<&str> {
        self.clients
            .iter()
            .filter(|(_, stats)| !stats.reconciles())
            .map(|(name, _)| name.as_str())
            .collect()
    }

    /// One `client <name>: <stats>` line per client, in name order.
    pub fn render(&self) -> Vec<String> {
        self.clients.iter().map(|(name, stats)| format!("client {name}: {stats}")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_fold_into_client_totals() {
        let mut ledger = ClientLedger::new();
        ledger.job_submitted("a");
        ledger.job_submitted("a");
        ledger.job_completed(
            "a",
            &JobStats {
                cells: 12,
                verified: 10,
                rescued: 2,
                assigned: 14,
                redispatched: 2,
                queue_wait_micros: 500,
            },
        );
        ledger.job_completed(
            "a",
            &JobStats { cells: 6, verified: 6, assigned: 6, ..JobStats::default() },
        );
        let a = ledger.client("a").unwrap();
        assert_eq!(a.jobs_submitted, 2);
        assert_eq!(a.jobs_completed, 2);
        assert_eq!(a.cells, 18);
        assert_eq!(a.verified, 16);
        assert_eq!(a.rescued, 2);
        assert_eq!(a.assigned, 20);
        assert_eq!(a.redispatched, 2);
        assert!(a.reconciles());
        assert!(ledger.unreconciled().is_empty());
    }

    #[test]
    fn a_lost_cell_is_flagged() {
        let mut ledger = ClientLedger::new();
        ledger.job_submitted("b");
        ledger.job_completed("b", &JobStats { cells: 10, verified: 9, ..JobStats::default() });
        assert_eq!(ledger.unreconciled(), vec!["b"]);
    }

    #[test]
    fn render_is_name_ordered_and_stable() {
        let mut ledger = ClientLedger::new();
        ledger.job_submitted("zeta");
        ledger.job_submitted("alpha");
        let lines = ledger.render();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("client alpha: jobs 0/1"));
        assert!(lines[1].starts_with("client zeta: jobs 0/1"));
    }
}

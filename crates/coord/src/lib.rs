//! # local-coord — multi-client sweep coordination primitives
//!
//! The policy layer of the sweep coordinator, kept free of engine and transport types so
//! `local-engine` (which owns the TCP glue, the shard protocol, and the `sweep
//! --coordinate` mode) can depend on it without a dependency cycle:
//!
//! * [`FairScheduler`] — a deficit-round-robin task queue over a fixed fleet of peers:
//!   clients share the fleet's bandwidth (measured in task *cost*, not task count), tasks
//!   remember which peers already failed them, and a dying peer drains whatever the
//!   remaining fleet can no longer serve so the caller can rescue it locally.
//! * [`ClientLedger`] — per-client accounting (jobs, cells assigned / verified / rescued /
//!   re-dispatched, queue-wait time) with exact reconciliation: for every completed job,
//!   `verified + rescued == cells`.
//! * [`ConcurrencyGate`] — the bounded shared/exclusive gate that replaces the daemon's
//!   global serve lock: up to `capacity` plain shard requests run concurrently, while a
//!   request that needs a deterministic process-wide view (armed fault scripts, telemetry
//!   epochs) acquires the gate exclusively.
//!
//! Everything here is synchronous `std` (mutex + condvar); the coordinator's concurrency
//! comes from one OS thread per client connection and per fleet peer, which is the same
//! discipline the engine's backends already use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accounting;
mod gate;
mod scheduler;

pub use accounting::{ClientLedger, ClientStats, JobStats};
pub use gate::{ConcurrencyGate, GateGuard};
pub use scheduler::{FairScheduler, TaskEntry, MAX_PEERS};

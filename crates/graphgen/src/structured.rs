//! Deterministic structured graph generators.
//!
//! These families cover the regimes that Table 1 of the paper distinguishes: low maximum
//! degree (paths, cycles, grids, bounded-degree trees), low arboricity (trees, grids, planar
//! meshes), and dense graphs (cliques, barbells).

use local_runtime::Graph;

/// A path `P_n` on `n` nodes (arboricity 1, maximum degree 2).
pub fn path(n: usize) -> Graph {
    let edges: Vec<_> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
    Graph::from_edges(n, &edges).expect("path edges are valid")
}

/// A cycle `C_n` on `n >= 3` nodes.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 nodes");
    let mut edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
    edges.push((n - 1, 0));
    Graph::from_edges(n, &edges).expect("cycle edges are valid")
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges).expect("complete graph edges are valid")
}

/// A star `K_{1,n-1}` with node 0 as the center.
pub fn star(n: usize) -> Graph {
    let edges: Vec<_> = (1..n).map(|v| (0, v)).collect();
    Graph::from_edges(n, &edges).expect("star edges are valid")
}

/// A complete binary tree on `n` nodes (node `v` has children `2v+1`, `2v+2`).
pub fn binary_tree(n: usize) -> Graph {
    let mut edges = Vec::new();
    for v in 1..n {
        edges.push((v, (v - 1) / 2));
    }
    Graph::from_edges(n, &edges).expect("binary tree edges are valid")
}

/// A `rows × cols` 2-dimensional grid (arboricity 2, maximum degree 4).
pub fn grid(rows: usize, cols: usize) -> Graph {
    let idx = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((idx(r, c), idx(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((idx(r, c), idx(r + 1, c)));
            }
        }
    }
    Graph::from_edges(rows * cols, &edges).expect("grid edges are valid")
}

/// A triangulated `rows × cols` grid (adds one diagonal per cell; still planar, arboricity ≤ 3).
pub fn triangulated_grid(rows: usize, cols: usize) -> Graph {
    let idx = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((idx(r, c), idx(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((idx(r, c), idx(r + 1, c)));
            }
            if r + 1 < rows && c + 1 < cols {
                edges.push((idx(r, c), idx(r + 1, c + 1)));
            }
        }
    }
    Graph::from_edges(rows * cols, &edges).expect("grid edges are valid")
}

/// The `d`-dimensional hypercube `Q_d` on `2^d` nodes (maximum degree `d`).
pub fn hypercube(d: u32) -> Graph {
    let n = 1usize << d;
    let mut edges = Vec::new();
    for v in 0..n {
        for bit in 0..d {
            let w = v ^ (1usize << bit);
            if v < w {
                edges.push((v, w));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("hypercube edges are valid")
}

/// Two cliques of size `k` joined by a path of length `bridge` (a "barbell"): dense components
/// with a long thin connection, useful for stressing identity-based symmetry breaking.
pub fn barbell(k: usize, bridge: usize) -> Graph {
    let n = 2 * k + bridge;
    let mut edges = Vec::new();
    for u in 0..k {
        for v in (u + 1)..k {
            edges.push((u, v));
        }
    }
    let right = k + bridge;
    for u in right..n {
        for v in (u + 1)..n {
            edges.push((u, v));
        }
    }
    // Path connecting node k-1 .. k .. k+bridge-1 .. right
    let mut prev = k - 1;
    for v in k..right {
        edges.push((prev, v));
        prev = v;
    }
    edges.push((prev, right));
    Graph::from_edges(n, &edges).expect("barbell edges are valid")
}

/// A caterpillar: a path of length `spine` where every spine node gets `legs` pendant leaves.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    let n = spine + spine * legs;
    let mut edges = Vec::new();
    for i in 0..spine.saturating_sub(1) {
        edges.push((i, i + 1));
    }
    for s in 0..spine {
        for l in 0..legs {
            edges.push((s, spine + s * legs + l));
        }
    }
    Graph::from_edges(n, &edges).expect("caterpillar edges are valid")
}

/// The empty graph on `n` isolated nodes.
pub fn edgeless(n: usize) -> Graph {
    Graph::from_edges(n, &[]).expect("edgeless graph is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_shape() {
        let g = path(10);
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.edge_count(), 9);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn single_node_path() {
        let g = path(1);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(7);
        assert_eq!(g.edge_count(), 7);
        assert!(g.neighbors(0).contains(&6));
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_cycle_panics() {
        cycle(2);
    }

    #[test]
    fn complete_shape() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn star_shape() {
        let g = star(9);
        assert_eq!(g.degree(0), 8);
        assert_eq!(g.max_degree(), 8);
        assert_eq!(g.edge_count(), 8);
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(15);
        assert_eq!(g.edge_count(), 14);
        assert_eq!(g.max_degree(), 3);
        let (_, comps) = g.connected_components();
        assert_eq!(comps, 1);
    }

    #[test]
    fn grid_shape() {
        let g = grid(4, 5);
        assert_eq!(g.node_count(), 20);
        assert_eq!(g.edge_count(), 4 * 4 + 5 * 3);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn triangulated_grid_has_more_edges_than_grid() {
        let plain = grid(5, 5);
        let tri = triangulated_grid(5, 5);
        assert!(tri.edge_count() > plain.edge_count());
        assert!(tri.max_degree() <= 8);
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 32);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn barbell_is_connected_and_dense_at_ends() {
        let g = barbell(5, 3);
        assert_eq!(g.node_count(), 13);
        let (_, comps) = g.connected_components();
        assert_eq!(comps, 1);
        assert!(g.degree(0) >= 4);
    }

    #[test]
    fn caterpillar_is_a_tree() {
        let g = caterpillar(6, 3);
        assert_eq!(g.node_count(), 24);
        assert_eq!(g.edge_count(), 23);
        let (_, comps) = g.connected_components();
        assert_eq!(comps, 1);
    }

    #[test]
    fn edgeless_has_no_edges() {
        let g = edgeless(12);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
    }
}

//! Random graph generators.
//!
//! All generators are deterministic functions of their seed so experiments are reproducible.
//! The families are chosen to exercise the parameter regimes the paper's Table 1
//! distinguishes: Erdős–Rényi `G(n, p)` (controls Δ around `np`), random regular graphs
//! (fixed Δ), random forests and unions of forests (arboricity exactly `k`), random geometric
//! / unit-disk graphs (bounded independence, the Schneider–Wattenhofer regime), and
//! preferential attachment (skewed degrees, small arboricity).

use local_runtime::Graph;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Erdős–Rényi `G(n, p)`: every pair becomes an edge independently with probability `p`.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    let mut r = rng(seed);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if r.gen_bool(p.clamp(0.0, 1.0)) {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("gnp edges are valid")
}

/// `G(n, p)` with `p = c / n`, i.e. expected average degree `c`.
pub fn gnp_avg_degree(n: usize, c: f64, seed: u64) -> Graph {
    let p = if n <= 1 { 0.0 } else { (c / n as f64).clamp(0.0, 1.0) };
    gnp(n, p, seed)
}

/// Replays the Batagelj–Brandes skip walk for `G(n, p)` with `ln_q = ln(1 - p)`: `(v, w)`
/// walks the strictly-lower-triangular adjacency (`w < v`) in row-major order, each uniform
/// draw advancing by one plus a geometric number of skipped pairs. Calls `emit(w, v)` per
/// edge, in walk order. Deterministic in `seed`, so two passes see the identical edge stream.
fn gnp_skip_walk(n: usize, ln_q: f64, seed: u64, mut emit: impl FnMut(usize, usize)) {
    let mut r = rng(seed);
    let mut v: usize = 1;
    let mut w: i64 = -1;
    while v < n {
        let u: f64 = r.gen::<f64>();
        let gap = ((1.0 - u).ln() / ln_q).floor() as i64;
        w += 1 + gap.max(0);
        while w >= v as i64 && v < n {
            w -= v as i64;
            v += 1;
        }
        if v < n {
            emit(w as usize, v);
        }
    }
}

/// Erdős–Rényi `G(n, p)` in `O(n + m)` expected time via Batagelj–Brandes skip sampling:
/// instead of flipping a coin per pair, jump geometric gaps between successive edges of the
/// row-major upper triangle. Same distribution as [`gnp`], different (still deterministic)
/// draw — the two are separate generators, not interchangeable seed-for-seed.
///
/// The CSR is built directly by replaying the deterministic walk twice — one pass counts
/// degrees, one places arcs and their mirror positions — so no intermediate edge `Vec` is
/// ever materialized. The walk emits each node's smaller neighbors (while the walk is on its
/// row, `w` ascending) before its larger ones (later rows, `v` ascending), so every row comes
/// out sorted and the result is bit-identical to routing the same stream through
/// [`Graph::from_edges`], without its `O(m log m)` dedup-and-sort. At `n = 10^7` this also
/// halves peak memory: the graph's own arrays are the only edge-sized allocations.
pub fn gnp_skip(n: usize, p: f64, seed: u64) -> Graph {
    let p = p.clamp(0.0, 1.0);
    if n == 0 || p <= 0.0 {
        return Graph::from_edges(n, &[]).expect("empty gnp edges are valid");
    }
    if p >= 1.0 {
        let edges: Vec<(usize, usize)> =
            (0..n).flat_map(|u| ((u + 1)..n).map(move |v| (u, v))).collect();
        return Graph::from_edges(n, &edges).expect("complete gnp edges are valid");
    }
    let ln_q = (1.0 - p).ln();
    let mut offsets = vec![0usize; n + 1];
    gnp_skip_walk(n, ln_q, seed, |w, v| {
        offsets[w + 1] += 1;
        offsets[v + 1] += 1;
    });
    for v in 0..n {
        offsets[v + 1] += offsets[v];
    }
    let arcs = offsets[n];
    let mut adjacency = vec![0usize; arcs];
    let mut reverse = vec![0usize; arcs];
    let mut cursor: Vec<usize> = offsets[..n].to_vec();
    gnp_skip_walk(n, ln_q, seed, |w, v| {
        let (kw, kv) = (cursor[w], cursor[v]);
        adjacency[kw] = v;
        adjacency[kv] = w;
        reverse[kw] = kv;
        reverse[kv] = kw;
        cursor[w] = kw + 1;
        cursor[v] = kv + 1;
    });
    Graph::from_csr(offsets, adjacency, reverse).expect("skip-sampled CSR is valid")
}

/// [`gnp_skip`] with `p = c / n`, i.e. expected average degree `c` — the generator behind
/// the parameterized `gnp-d<c>` family, cheap enough for `n` in the hundreds of thousands.
pub fn gnp_avg_degree_fast(n: usize, c: f64, seed: u64) -> Graph {
    let p = if n <= 1 { 0.0 } else { (c / n as f64).clamp(0.0, 1.0) };
    gnp_skip(n, p, seed)
}

/// A random `d`-regular-ish multigraph via the configuration model, with self-loops and
/// duplicate edges dropped; the result has maximum degree at most `d`.
///
/// # Panics
///
/// Panics if `n * d` is odd or `d >= n`.
pub fn random_regular(n: usize, d: usize, seed: u64) -> Graph {
    assert!(d < n, "degree must be smaller than the number of nodes");
    assert!((n * d).is_multiple_of(2), "n * d must be even");
    let mut r = rng(seed);
    let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
    stubs.shuffle(&mut r);
    let mut edges = Vec::new();
    for pair in stubs.chunks(2) {
        if pair.len() == 2 && pair[0] != pair[1] {
            edges.push((pair[0], pair[1]));
        }
    }
    Graph::from_edges(n, &edges).expect("configuration model edges are valid")
}

/// A uniformly random labelled tree on `n` nodes (via a random Prüfer sequence).
pub fn random_tree(n: usize, seed: u64) -> Graph {
    if n <= 1 {
        return Graph::from_edges(n, &[]).expect("trivial tree");
    }
    if n == 2 {
        return Graph::from_edges(2, &[(0, 1)]).expect("two-node tree");
    }
    let mut r = rng(seed);
    let prufer: Vec<usize> = (0..n - 2).map(|_| r.gen_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &v in &prufer {
        degree[v] += 1;
    }
    let mut edges = Vec::new();
    let mut used = vec![false; n];
    for &v in &prufer {
        let leaf = (0..n).find(|&u| degree[u] == 1 && !used[u]).expect("a leaf always exists");
        edges.push((leaf, v));
        used[leaf] = true;
        degree[leaf] -= 1;
        degree[v] -= 1;
    }
    let rest: Vec<usize> = (0..n).filter(|&u| degree[u] == 1 && !used[u]).collect();
    edges.push((rest[0], rest[1]));
    Graph::from_edges(n, &edges).expect("Prüfer decoding yields a tree")
}

/// The union of `k` independent random forests on the same node set: a graph with arboricity
/// at most `k` (and usually close to `k`). This is the workhorse family for the paper's
/// arboricity-parameterised MIS results (Table 1 rows 3–4).
pub fn forest_union(n: usize, k: usize, seed: u64) -> Graph {
    let mut edges = Vec::new();
    for i in 0..k {
        let tree = random_tree(n, seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9));
        edges.extend(tree.edges());
    }
    Graph::from_edges(n, &edges).expect("forest union edges are valid")
}

/// A random geometric (unit-disk) graph: `n` points uniform in the unit square, edges between
/// points at distance at most `radius`. Unit-disk graphs have bounded independence, the model
/// assumption of Schneider–Wattenhofer's uniform algorithms.
pub fn unit_disk(n: usize, radius: f64, seed: u64) -> Graph {
    let mut r = rng(seed);
    let points: Vec<(f64, f64)> = (0..n).map(|_| (r.gen::<f64>(), r.gen::<f64>())).collect();
    let r2 = radius * radius;
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            let dx = points[u].0 - points[v].0;
            let dy = points[u].1 - points[v].1;
            if dx * dx + dy * dy <= r2 {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("unit disk edges are valid")
}

/// Barabási–Albert preferential attachment: each new node attaches to `m` existing nodes
/// chosen proportionally to degree. Produces skewed degree distributions with small arboricity.
pub fn preferential_attachment(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m >= 1, "each node must attach with at least one edge");
    let mut r = rng(seed);
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut endpoints: Vec<usize> = Vec::new(); // multiset of edge endpoints, for sampling
    let start = m.min(n);
    // Seed clique among the first `start` nodes.
    for u in 0..start {
        for v in (u + 1)..start {
            edges.push((u, v));
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in start..n {
        let mut targets = std::collections::BTreeSet::new();
        let mut guard = 0;
        while targets.len() < m && guard < 50 * m {
            guard += 1;
            let t = if endpoints.is_empty() || r.gen_bool(0.1) {
                r.gen_range(0..v)
            } else {
                endpoints[r.gen_range(0..endpoints.len())]
            };
            if t != v {
                targets.insert(t);
            }
        }
        for &t in &targets {
            edges.push((v, t));
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    Graph::from_edges(n, &edges).expect("preferential attachment edges are valid")
}

/// Permutes node identities at random while keeping the topology: useful for checking that
/// algorithms only rely on identities for symmetry breaking, not on their magnitudes being
/// `0..n`.
pub fn scramble_ids(g: &Graph, id_space: u64, seed: u64) -> Graph {
    let n = g.node_count();
    let mut r = rng(seed);
    let space = id_space.max(n as u64);
    let mut ids: Vec<u64> = Vec::with_capacity(n);
    let mut used = std::collections::BTreeSet::new();
    while ids.len() < n {
        let candidate = r.gen_range(0..space);
        if used.insert(candidate) {
            ids.push(candidate);
        }
    }
    let edges: Vec<_> = g.edges().collect();
    Graph::from_edges_with_ids(n, &edges, &ids).expect("scrambled graph is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnp_is_reproducible() {
        let a = gnp(50, 0.1, 7);
        let b = gnp(50, 0.1, 7);
        assert_eq!(a.edge_count(), b.edge_count());
        let c = gnp(50, 0.1, 8);
        // Overwhelmingly likely to differ.
        assert!(a.edge_count() != c.edge_count() || a != c);
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(20, 0.0, 1).edge_count(), 0);
        assert_eq!(gnp(10, 1.0, 1).edge_count(), 45);
    }

    #[test]
    fn gnp_avg_degree_is_roughly_right() {
        let g = gnp_avg_degree(400, 6.0, 3);
        let avg = 2.0 * g.edge_count() as f64 / g.node_count() as f64;
        assert!((3.0..9.0).contains(&avg), "average degree {avg} too far from 6");
    }

    #[test]
    fn gnp_skip_matches_the_pairwise_distribution_roughly() {
        let g = gnp_skip(800, 10.0 / 800.0, 5);
        let avg = 2.0 * g.edge_count() as f64 / g.node_count() as f64;
        assert!((7.0..13.0).contains(&avg), "skip-sampled average degree {avg} too far from 10");
        // Valid simple-graph output: no duplicate pairs.
        let mut pairs: Vec<_> = g.edges().collect();
        let count = pairs.len();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), count);
    }

    #[test]
    fn gnp_skip_csr_build_matches_the_edge_list_path_exactly() {
        // The direct-CSR build must be bit-identical to collecting the same walk's edges
        // and routing them through `Graph::from_edges` (offsets, adjacency, reverse, ids).
        for (n, p, seed) in [(120, 0.05, 7), (300, 0.02, 1), (64, 0.3, 9), (2, 0.9, 3)] {
            let direct = gnp_skip(n, p, seed);
            let mut edges = Vec::new();
            gnp_skip_walk(n, (1.0 - p).ln(), seed, |w, v| edges.push((w, v)));
            let reference = Graph::from_edges(n, &edges).expect("walk edges are valid");
            assert_eq!(direct, reference, "n={n} p={p} seed={seed}");
        }
    }

    #[test]
    fn gnp_skip_is_reproducible_and_handles_extremes() {
        assert_eq!(gnp_skip(120, 0.05, 7), gnp_skip(120, 0.05, 7));
        assert_eq!(gnp_skip(20, 0.0, 1).edge_count(), 0);
        assert_eq!(gnp_skip(10, 1.0, 1).edge_count(), 45);
        assert_eq!(gnp_skip(0, 0.5, 1).node_count(), 0);
        assert_eq!(gnp_skip(1, 0.5, 1).edge_count(), 0);
    }

    #[test]
    fn random_regular_degree_bounded() {
        let g = random_regular(60, 4, 11);
        assert!(g.max_degree() <= 4);
        assert!(g.edge_count() > 60); // most stubs survive
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn random_regular_odd_total_panics() {
        random_regular(5, 3, 0);
    }

    #[test]
    fn random_tree_is_a_tree() {
        for n in [1usize, 2, 3, 10, 57] {
            let g = random_tree(n, 5);
            assert_eq!(g.node_count(), n);
            assert_eq!(g.edge_count(), n.saturating_sub(1));
            let (_, comps) = g.connected_components();
            assert_eq!(comps, 1.min(n).max(if n == 0 { 0 } else { 1 }));
        }
    }

    #[test]
    fn forest_union_has_bounded_arboricity_edge_count() {
        let k = 3;
        let n = 100;
        let g = forest_union(n, k, 21);
        // A graph of arboricity k has at most k(n-1) edges.
        assert!(g.edge_count() <= k * (n - 1));
        assert!(g.edge_count() >= n - 1);
    }

    #[test]
    fn unit_disk_radius_monotone() {
        let small = unit_disk(80, 0.05, 9);
        let large = unit_disk(80, 0.3, 9);
        assert!(large.edge_count() >= small.edge_count());
    }

    #[test]
    fn preferential_attachment_connected_and_sized() {
        let g = preferential_attachment(120, 2, 13);
        assert_eq!(g.node_count(), 120);
        assert!(g.edge_count() >= 120);
        let (_, comps) = g.connected_components();
        assert_eq!(comps, 1);
    }

    #[test]
    fn scramble_ids_preserves_topology() {
        let g = gnp(40, 0.15, 2);
        let s = scramble_ids(&g, 1 << 20, 3);
        assert_eq!(g.edge_count(), s.edge_count());
        assert_eq!(g.node_count(), s.node_count());
        assert_eq!(g.max_degree(), s.max_degree());
        // Identities really did change (with overwhelming probability).
        assert_ne!(g.ids(), s.ids());
    }
}

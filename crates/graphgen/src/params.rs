//! Graph-parameter computation.
//!
//! The paper's transformers are parameterised by non-decreasing graph parameters: the number
//! of nodes `n`, the maximum degree `Δ`, the arboricity `a`, and the maximum identity `m`
//! (Section 2, "Parameters"). This module computes them centrally for experiment setup and
//! for supplying *correct guesses* to the non-uniform baselines.
//!
//! Arboricity is approximated by the degeneracy `d(G)` computed with the standard core-peeling
//! procedure; `a(G) ≤ d(G) ≤ 2·a(G) − 1`, and degeneracy is itself a non-decreasing graph
//! parameter, so every monotonicity argument in the paper carries over (documented substitution
//! in DESIGN.md).

use local_runtime::{Graph, GraphView};
use serde::{Deserialize, Serialize};

/// A non-decreasing graph parameter, in the sense of Section 2 of the paper: a function of the
/// graph (independent of the problem input) that can only decrease when passing to a subgraph.
///
/// These are exactly the parameters the paper's non-uniform algorithms require good guesses
/// for, and with respect to which the transformers' monotonicity arguments are stated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Parameter {
    /// The number of nodes `n`.
    N,
    /// The maximum degree `Δ`.
    MaxDegree,
    /// The degeneracy (our computable stand-in for the arboricity `a`; `a ≤ d ≤ 2a − 1`).
    Degeneracy,
    /// The maximum identity `m`.
    MaxId,
}

impl Parameter {
    /// Evaluates the parameter on a graph.
    pub fn eval(&self, g: &Graph) -> u64 {
        match self {
            Parameter::N => g.node_count() as u64,
            Parameter::MaxDegree => g.max_degree() as u64,
            Parameter::Degeneracy => degeneracy(g) as u64,
            Parameter::MaxId => g.max_id(),
        }
    }

    /// Evaluates the parameter on a live [`GraphView`] — the value the parameter takes on the
    /// *current configuration* of an alternating algorithm, without materializing it.
    /// Agrees with [`Parameter::eval`] on the materialized subgraph.
    pub fn eval_view(&self, view: &GraphView<'_>) -> u64 {
        match self {
            Parameter::N => view.node_count() as u64,
            Parameter::MaxDegree => view.max_degree() as u64,
            Parameter::Degeneracy => degeneracy_view(view) as u64,
            Parameter::MaxId => view.max_id(),
        }
    }

    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Parameter::N => "n",
            Parameter::MaxDegree => "Δ",
            Parameter::Degeneracy => "a",
            Parameter::MaxId => "m",
        }
    }
}

/// The global parameters of a graph, as used throughout the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphParams {
    /// Number of nodes `n`.
    pub n: u64,
    /// Maximum degree `Δ`.
    pub max_degree: u64,
    /// Degeneracy `d` (our stand-in for the arboricity `a`; `a ≤ d ≤ 2a − 1`).
    pub degeneracy: u64,
    /// Maximum identity `m`.
    pub max_id: u64,
    /// Number of edges (not a paper parameter; reported for context).
    pub edges: u64,
}

impl GraphParams {
    /// Computes every parameter of `g`.
    pub fn of(g: &Graph) -> Self {
        GraphParams {
            n: g.node_count() as u64,
            max_degree: g.max_degree() as u64,
            degeneracy: degeneracy(g) as u64,
            max_id: g.max_id(),
            edges: g.edge_count() as u64,
        }
    }
}

/// The degeneracy of `g`: the smallest `d` such that every subgraph has a node of degree ≤ d.
///
/// Computed by repeatedly removing a minimum-degree node (bucket queue with lazy deletion).
pub fn degeneracy(g: &Graph) -> usize {
    let n = g.node_count();
    if n == 0 {
        return 0;
    }
    let mut degree: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let max_deg = *degree.iter().max().unwrap_or(&0);
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n {
        buckets[degree[v]].push(v);
    }
    let mut removed = vec![false; n];
    let mut degen = 0;
    let mut peeled = 0;
    let mut cursor = 0usize;
    while peeled < n {
        // Lazy-deletion bucket queue: entries may be stale (node already removed or its degree
        // has since decreased); pop until a fresh minimum-degree entry is found.
        cursor = cursor.saturating_sub(1);
        let v = loop {
            while buckets[cursor].is_empty() {
                cursor += 1;
            }
            let candidate = buckets[cursor].pop().expect("bucket checked non-empty");
            if !removed[candidate] && degree[candidate] == cursor {
                break candidate;
            }
        };
        removed[v] = true;
        peeled += 1;
        degen = degen.max(degree[v]);
        for &w in g.neighbors(v) {
            if !removed[w] {
                degree[w] -= 1;
                buckets[degree[w]].push(w);
            }
        }
    }
    degen
}

/// The degeneracy of a live [`GraphView`], by the same peeling procedure as [`degeneracy`]
/// but over the view's live adjacency. Agrees with `degeneracy` on the materialized subgraph.
pub fn degeneracy_view(view: &GraphView<'_>) -> usize {
    let n = view.node_count();
    if n == 0 {
        return 0;
    }
    let mut degree: Vec<usize> = (0..n).map(|v| view.degree(v)).collect();
    let max_deg = *degree.iter().max().unwrap_or(&0);
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); max_deg + 1];
    for (v, &d) in degree.iter().enumerate() {
        buckets[d].push(v);
    }
    let mut removed = vec![false; n];
    let mut degen = 0;
    let mut peeled = 0;
    let mut cursor = 0usize;
    while peeled < n {
        cursor = cursor.saturating_sub(1);
        let v = loop {
            while buckets[cursor].is_empty() {
                cursor += 1;
            }
            let candidate = buckets[cursor].pop().expect("bucket checked non-empty");
            if !removed[candidate] && degree[candidate] == cursor {
                break candidate;
            }
        };
        removed[v] = true;
        peeled += 1;
        degen = degen.max(degree[v]);
        for w in view.neighbors(v) {
            if !removed[w] {
                degree[w] -= 1;
                buckets[degree[w]].push(w);
            }
        }
    }
    degen
}

/// An ordering of the nodes witnessing the degeneracy: each node has at most
/// [`degeneracy`]`(g)` neighbors *later* in the order. Returned as `order[rank] = node`.
pub fn degeneracy_ordering(g: &Graph) -> Vec<usize> {
    let n = g.node_count();
    let mut degree: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let v = (0..n)
            .filter(|&v| !removed[v])
            .min_by_key(|&v| degree[v])
            .expect("unremoved node exists");
        removed[v] = true;
        order.push(v);
        for &w in g.neighbors(v) {
            if !removed[w] {
                degree[w] -= 1;
            }
        }
    }
    order
}

/// Exact diameter of `g` (largest eccentricity over all nodes of the largest component);
/// `0` for graphs with at most one node. Runs a BFS from every node, so use on small graphs.
pub fn diameter(g: &Graph) -> usize {
    let n = g.node_count();
    let mut best = 0;
    for v in 0..n {
        let dist = g.bfs_distances(v);
        for d in dist {
            if d != usize::MAX {
                best = best.max(d);
            }
        }
    }
    best
}

/// A lower bound on the arboricity from the Nash-Williams density formula applied to the whole
/// graph: `ceil(m / (n - 1))` (the true arboricity is the maximum over all subgraphs).
pub fn arboricity_lower_bound(g: &Graph) -> usize {
    let n = g.node_count();
    if n <= 1 {
        return 0;
    }
    g.edge_count().div_ceil(n - 1)
}

/// An upper bound on the arboricity: the degeneracy (every `d`-degenerate graph decomposes
/// into at most `d` forests... more precisely `a ≤ d`; we return `d`).
pub fn arboricity_upper_bound(g: &Graph) -> usize {
    degeneracy(g)
}

/// The iterated logarithm `log* x` (number of times `log2` must be applied to bring `x`
/// to at most 1). Used in the paper's running-time bounds.
pub fn log_star(x: f64) -> u64 {
    let mut count = 0;
    let mut value = x;
    while value > 1.0 {
        value = value.log2();
        count += 1;
        if count > 64 {
            break;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{forest_union, gnp};
    use crate::structured::{complete, cycle, grid, path, star};

    #[test]
    fn degeneracy_of_standard_graphs() {
        assert_eq!(degeneracy(&path(10)), 1);
        assert_eq!(degeneracy(&cycle(10)), 2);
        assert_eq!(degeneracy(&complete(6)), 5);
        assert_eq!(degeneracy(&star(8)), 1);
        assert_eq!(degeneracy(&grid(5, 5)), 2);
    }

    #[test]
    fn degeneracy_of_empty_and_single() {
        let empty = local_runtime::Graph::from_edges(0, &[]).unwrap();
        assert_eq!(degeneracy(&empty), 0);
        let single = local_runtime::Graph::from_edges(1, &[]).unwrap();
        assert_eq!(degeneracy(&single), 0);
    }

    #[test]
    fn degeneracy_ordering_witnesses_bound() {
        let g = gnp(60, 0.1, 5);
        let d = degeneracy(&g);
        let order = degeneracy_ordering(&g);
        let mut rank = vec![0usize; g.node_count()];
        for (r, &v) in order.iter().enumerate() {
            rank[v] = r;
        }
        for v in 0..g.node_count() {
            let later = g.neighbors(v).iter().filter(|&&w| rank[w] > rank[v]).count();
            assert!(later <= d, "node {v} has {later} later neighbors but degeneracy is {d}");
        }
    }

    #[test]
    fn forest_union_degeneracy_close_to_k() {
        let g = forest_union(150, 4, 9);
        let d = degeneracy(&g);
        // arboricity ≤ 4, hence degeneracy ≤ 2·4 − 1 = 7; also ≥ density bound.
        assert!(d <= 7, "degeneracy {d} too large");
        assert!(d >= 2);
    }

    #[test]
    fn diameter_of_path_and_cycle() {
        assert_eq!(diameter(&path(10)), 9);
        assert_eq!(diameter(&cycle(10)), 5);
        assert_eq!(diameter(&complete(5)), 1);
    }

    #[test]
    fn arboricity_bounds_are_consistent() {
        for g in [grid(6, 6), gnp(50, 0.2, 1), forest_union(80, 3, 2)] {
            assert!(arboricity_lower_bound(&g) <= arboricity_upper_bound(&g).max(1));
        }
    }

    #[test]
    fn log_star_values() {
        assert_eq!(log_star(1.0), 0);
        assert_eq!(log_star(2.0), 1);
        assert_eq!(log_star(4.0), 2);
        assert_eq!(log_star(16.0), 3);
        assert_eq!(log_star(65536.0), 4);
        assert_eq!(log_star(1e30), 5);
    }

    #[test]
    fn parameter_eval_matches_graph_params() {
        let g = gnp(40, 0.15, 3);
        let p = GraphParams::of(&g);
        assert_eq!(Parameter::N.eval(&g), p.n);
        assert_eq!(Parameter::MaxDegree.eval(&g), p.max_degree);
        assert_eq!(Parameter::Degeneracy.eval(&g), p.degeneracy);
        assert_eq!(Parameter::MaxId.eval(&g), p.max_id);
        assert_eq!(Parameter::N.name(), "n");
    }

    #[test]
    fn parameters_are_monotone_under_subgraphs() {
        let g = gnp(50, 0.2, 11);
        let keep: Vec<bool> = (0..g.node_count()).map(|v| v % 3 != 0).collect();
        let (sub, _) = g.induced_subgraph(&keep);
        for p in [Parameter::N, Parameter::MaxDegree, Parameter::Degeneracy, Parameter::MaxId] {
            assert!(p.eval(&sub) <= p.eval(&g), "{} not monotone", p.name());
        }
    }

    #[test]
    fn graph_params_of_grid() {
        let g = grid(4, 4);
        let p = GraphParams::of(&g);
        assert_eq!(p.n, 16);
        assert_eq!(p.max_degree, 4);
        assert_eq!(p.degeneracy, 2);
        assert_eq!(p.max_id, 15);
        assert_eq!(p.edges, 24);
    }
}

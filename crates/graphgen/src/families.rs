//! Named benchmark families.
//!
//! The benchmark harness sweeps over graph *families* rather than individual graphs: each
//! family fixes how Δ and the arboricity scale with `n`, matching the regimes the paper's
//! Table 1 distinguishes (general graphs, bounded degree, bounded arboricity,
//! bounded independence).

use crate::params::GraphParams;
use crate::random::{
    forest_union, gnp_avg_degree, preferential_attachment, random_regular, unit_disk,
};
use crate::spec::FamilySpec;
use crate::structured::{binary_tree, cycle, grid, path, triangulated_grid};
use local_runtime::Graph;
use serde::{Deserialize, Serialize};

/// One-line summaries of the builtin families, indexed by the variant's rank in
/// [`Family::ALL`] (shared by `GraphFamily::describe` and the CLI listing).
pub(crate) const FAMILY_SUMMARIES: [(&str, &str); 11] = [
    ("path", "path graphs (Δ = 2, arboricity 1)"),
    ("cycle", "cycles (Δ = 2, arboricity ≤ 2)"),
    ("binary-tree", "complete binary trees (Δ = 3, arboricity 1)"),
    ("grid", "square grids (Δ = 4, arboricity 2)"),
    ("triangulated-grid", "triangulated grids (Δ ≤ 8, planar, arboricity ≤ 3)"),
    ("gnp-avg8", "Erdős–Rényi G(n, p) with expected average degree 8"),
    ("gnp-sqrt-n", "Erdős–Rényi G(n, p) with expected average degree √n (large Δ)"),
    ("regular-6", "random 6-regular graphs (constant Δ)"),
    ("forest-union-3", "unions of 3 random forests (arboricity ≤ 3, unbounded Δ)"),
    ("unit-disk", "unit-disk graphs with radius chosen for expected degree ≈ 10"),
    ("power-law", "preferential attachment with m = 3 (skewed degrees, small arboricity)"),
];

/// A named graph family with a scaling rule.
///
/// `Hash`/`Ord` are derived so a family can key instance caches (see [`InstanceKey`]) and be
/// sorted into stable report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Family {
    /// Path graphs (Δ = 2, a = 1).
    Path,
    /// Cycles (Δ = 2, a ≤ 2).
    Cycle,
    /// Complete binary trees (Δ = 3, a = 1).
    BinaryTree,
    /// Square grids (Δ = 4, a = 2).
    Grid,
    /// Triangulated grids (Δ ≤ 8, planar, a ≤ 3).
    TriangulatedGrid,
    /// Erdős–Rényi graphs with expected average degree 8.
    SparseGnp,
    /// Erdős–Rényi graphs with expected average degree `sqrt(n)` (dense-ish, large Δ).
    DenseGnp,
    /// Random 6-regular graphs (constant Δ).
    Regular6,
    /// Unions of 3 random forests (arboricity ≤ 3, unbounded Δ).
    Forest3,
    /// Unit-disk graphs with radius chosen for expected degree ~10 (bounded independence).
    UnitDisk,
    /// Preferential attachment with m = 3 (skewed degrees, small arboricity).
    PowerLaw,
}

impl Family {
    /// All families, in a stable order.
    pub const ALL: [Family; 11] = [
        Family::Path,
        Family::Cycle,
        Family::BinaryTree,
        Family::Grid,
        Family::TriangulatedGrid,
        Family::SparseGnp,
        Family::DenseGnp,
        Family::Regular6,
        Family::Forest3,
        Family::UnitDisk,
        Family::PowerLaw,
    ];

    /// Human-readable name used in benchmark reports.
    pub fn name(&self) -> &'static str {
        match self {
            Family::Path => "path",
            Family::Cycle => "cycle",
            Family::BinaryTree => "binary-tree",
            Family::Grid => "grid",
            Family::TriangulatedGrid => "triangulated-grid",
            Family::SparseGnp => "gnp-avg8",
            Family::DenseGnp => "gnp-sqrt-n",
            Family::Regular6 => "regular-6",
            Family::Forest3 => "forest-union-3",
            Family::UnitDisk => "unit-disk",
            Family::PowerLaw => "power-law",
        }
    }

    /// Generates a member of the family with (approximately) `n` nodes.
    pub fn generate(&self, n: usize, seed: u64) -> Graph {
        let n = n.max(4);
        match self {
            Family::Path => path(n),
            Family::Cycle => cycle(n),
            Family::BinaryTree => binary_tree(n),
            Family::Grid => {
                let side = (n as f64).sqrt().round().max(2.0) as usize;
                grid(side, side)
            }
            Family::TriangulatedGrid => {
                let side = (n as f64).sqrt().round().max(2.0) as usize;
                triangulated_grid(side, side)
            }
            Family::SparseGnp => gnp_avg_degree(n, 8.0, seed),
            Family::DenseGnp => gnp_avg_degree(n, (n as f64).sqrt(), seed),
            Family::Regular6 => {
                let n = if n % 2 == 1 { n + 1 } else { n };
                random_regular(n, 6, seed)
            }
            Family::Forest3 => forest_union(n, 3, seed),
            Family::UnitDisk => {
                // Expected degree ≈ n·π·r² = 10  ⇒  r = sqrt(10 / (π n)).
                let r = (10.0 / (std::f64::consts::PI * n as f64)).sqrt();
                unit_disk(n, r, seed)
            }
            Family::PowerLaw => preferential_attachment(n, 3, seed),
        }
    }

    /// Generates a member together with its computed parameters.
    pub fn generate_with_params(&self, n: usize, seed: u64) -> (Graph, GraphParams) {
        let g = self.generate(n, seed);
        let p = GraphParams::of(&g);
        (g, p)
    }

    /// Parses a family from its [`Family::name`] or a common alias (as accepted by the
    /// `sweep` CLI): `sparse-gnp`, `dense-gnp`, `gnp`, `tree`, `forest`, `regular`,
    /// `power-law`/`pa`.
    pub fn from_name(name: &str) -> Option<Family> {
        let canonical = Family::ALL.iter().find(|f| f.name() == name).copied();
        canonical.or(match name {
            "sparse-gnp" | "gnp" => Some(Family::SparseGnp),
            "dense-gnp" => Some(Family::DenseGnp),
            "tree" => Some(Family::BinaryTree),
            "forest" => Some(Family::Forest3),
            "regular" => Some(Family::Regular6),
            "pa" => Some(Family::PowerLaw),
            _ => None,
        })
    }
}

/// The identity of one generated graph instance: `(family, n, seed)` fully determines the
/// graph ([`crate::spec::GraphFamily::generate`] is deterministic), so batch runners can
/// use this key to generate each instance once and share it across every algorithm that
/// runs on it. The family is an open [`FamilySpec`], so parameterized families key
/// instance caches exactly like the builtin catalog does.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceKey {
    /// The graph family.
    pub family: FamilySpec,
    /// Requested number of nodes (the generated graph may deviate slightly; families round
    /// the size to fit their structure).
    pub n: usize,
    /// Generation seed.
    pub seed: u64,
}

impl InstanceKey {
    /// Creates a key.
    pub fn new(family: impl Into<FamilySpec>, n: usize, seed: u64) -> Self {
        InstanceKey { family: family.into(), n, seed }
    }

    /// Generates the graph this key names, together with its global parameters.
    pub fn realize(&self) -> (Graph, GraphParams) {
        self.family.generate_with_params(self.n, self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_generates_requested_size_roughly() {
        for fam in Family::ALL {
            let g = fam.generate(64, 1);
            assert!(
                g.node_count() >= 32 && g.node_count() <= 130,
                "{} produced {} nodes",
                fam.name(),
                g.node_count()
            );
        }
    }

    #[test]
    fn family_names_are_unique() {
        let mut names: Vec<_> = Family::ALL.iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Family::ALL.len());
    }

    #[test]
    fn bounded_degree_families_have_bounded_degree() {
        assert!(Family::Path.generate(100, 0).max_degree() <= 2);
        assert!(Family::Cycle.generate(100, 0).max_degree() <= 2);
        assert!(Family::BinaryTree.generate(100, 0).max_degree() <= 3);
        assert!(Family::Grid.generate(100, 0).max_degree() <= 4);
        assert!(Family::Regular6.generate(100, 0).max_degree() <= 6);
    }

    #[test]
    fn forest_family_has_small_degeneracy() {
        let (_, p) = Family::Forest3.generate_with_params(200, 7);
        assert!(p.degeneracy <= 5, "degeneracy {} too large for forest union", p.degeneracy);
    }

    #[test]
    fn dense_family_has_large_degree() {
        let (_, p) = Family::DenseGnp.generate_with_params(256, 7);
        assert!(p.max_degree >= 10);
    }

    #[test]
    fn generation_is_reproducible() {
        for fam in Family::ALL {
            let a = fam.generate(50, 33);
            let b = fam.generate(50, 33);
            assert_eq!(a, b, "{} not reproducible", fam.name());
        }
    }

    #[test]
    fn from_name_accepts_canonical_names_and_aliases() {
        for fam in Family::ALL {
            assert_eq!(Family::from_name(fam.name()), Some(fam), "{}", fam.name());
        }
        assert_eq!(Family::from_name("sparse-gnp"), Some(Family::SparseGnp));
        assert_eq!(Family::from_name("dense-gnp"), Some(Family::DenseGnp));
        assert_eq!(Family::from_name("tree"), Some(Family::BinaryTree));
        assert_eq!(Family::from_name("forest"), Some(Family::Forest3));
        assert_eq!(Family::from_name("no-such-family"), None);
    }

    #[test]
    fn instance_keys_realize_reproducibly_and_order_stably() {
        let key = InstanceKey::new(Family::Grid, 81, 5);
        let (g1, p1) = key.realize();
        let (g2, p2) = key.realize();
        assert_eq!(g1, g2);
        assert_eq!(p1.max_degree, p2.max_degree);
        // Keys are usable in ordered and hashed containers.
        let mut set = std::collections::BTreeSet::new();
        set.insert(key);
        set.insert(InstanceKey::new(Family::Grid, 81, 5));
        set.insert(InstanceKey::new(Family::Grid, 81, 6));
        assert_eq!(set.len(), 2);
    }
}

//! Named benchmark families.
//!
//! The benchmark harness sweeps over graph *families* rather than individual graphs: each
//! family fixes how Δ and the arboricity scale with `n`, matching the regimes the paper's
//! Table 1 distinguishes (general graphs, bounded degree, bounded arboricity,
//! bounded independence).

use crate::params::GraphParams;
use crate::random::{forest_union, gnp_avg_degree, preferential_attachment, random_regular, unit_disk};
use crate::structured::{binary_tree, cycle, grid, path, triangulated_grid};
use local_runtime::Graph;
use serde::{Deserialize, Serialize};

/// A named graph family with a scaling rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Family {
    /// Path graphs (Δ = 2, a = 1).
    Path,
    /// Cycles (Δ = 2, a ≤ 2).
    Cycle,
    /// Complete binary trees (Δ = 3, a = 1).
    BinaryTree,
    /// Square grids (Δ = 4, a = 2).
    Grid,
    /// Triangulated grids (Δ ≤ 8, planar, a ≤ 3).
    TriangulatedGrid,
    /// Erdős–Rényi graphs with expected average degree 8.
    SparseGnp,
    /// Erdős–Rényi graphs with expected average degree `sqrt(n)` (dense-ish, large Δ).
    DenseGnp,
    /// Random 6-regular graphs (constant Δ).
    Regular6,
    /// Unions of 3 random forests (arboricity ≤ 3, unbounded Δ).
    Forest3,
    /// Unit-disk graphs with radius chosen for expected degree ~10 (bounded independence).
    UnitDisk,
    /// Preferential attachment with m = 3 (skewed degrees, small arboricity).
    PowerLaw,
}

impl Family {
    /// All families, in a stable order.
    pub const ALL: [Family; 11] = [
        Family::Path,
        Family::Cycle,
        Family::BinaryTree,
        Family::Grid,
        Family::TriangulatedGrid,
        Family::SparseGnp,
        Family::DenseGnp,
        Family::Regular6,
        Family::Forest3,
        Family::UnitDisk,
        Family::PowerLaw,
    ];

    /// Human-readable name used in benchmark reports.
    pub fn name(&self) -> &'static str {
        match self {
            Family::Path => "path",
            Family::Cycle => "cycle",
            Family::BinaryTree => "binary-tree",
            Family::Grid => "grid",
            Family::TriangulatedGrid => "triangulated-grid",
            Family::SparseGnp => "gnp-avg8",
            Family::DenseGnp => "gnp-sqrt-n",
            Family::Regular6 => "regular-6",
            Family::Forest3 => "forest-union-3",
            Family::UnitDisk => "unit-disk",
            Family::PowerLaw => "power-law",
        }
    }

    /// Generates a member of the family with (approximately) `n` nodes.
    pub fn generate(&self, n: usize, seed: u64) -> Graph {
        let n = n.max(4);
        match self {
            Family::Path => path(n),
            Family::Cycle => cycle(n),
            Family::BinaryTree => binary_tree(n),
            Family::Grid => {
                let side = (n as f64).sqrt().round().max(2.0) as usize;
                grid(side, side)
            }
            Family::TriangulatedGrid => {
                let side = (n as f64).sqrt().round().max(2.0) as usize;
                triangulated_grid(side, side)
            }
            Family::SparseGnp => gnp_avg_degree(n, 8.0, seed),
            Family::DenseGnp => gnp_avg_degree(n, (n as f64).sqrt(), seed),
            Family::Regular6 => {
                let n = if n % 2 == 1 { n + 1 } else { n };
                random_regular(n, 6, seed)
            }
            Family::Forest3 => forest_union(n, 3, seed),
            Family::UnitDisk => {
                // Expected degree ≈ n·π·r² = 10  ⇒  r = sqrt(10 / (π n)).
                let r = (10.0 / (std::f64::consts::PI * n as f64)).sqrt();
                unit_disk(n, r, seed)
            }
            Family::PowerLaw => preferential_attachment(n, 3, seed),
        }
    }

    /// Generates a member together with its computed parameters.
    pub fn generate_with_params(&self, n: usize, seed: u64) -> (Graph, GraphParams) {
        let g = self.generate(n, seed);
        let p = GraphParams::of(&g);
        (g, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_generates_requested_size_roughly() {
        for fam in Family::ALL {
            let g = fam.generate(64, 1);
            assert!(
                g.node_count() >= 32 && g.node_count() <= 130,
                "{} produced {} nodes",
                fam.name(),
                g.node_count()
            );
        }
    }

    #[test]
    fn family_names_are_unique() {
        let mut names: Vec<_> = Family::ALL.iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Family::ALL.len());
    }

    #[test]
    fn bounded_degree_families_have_bounded_degree() {
        assert!(Family::Path.generate(100, 0).max_degree() <= 2);
        assert!(Family::Cycle.generate(100, 0).max_degree() <= 2);
        assert!(Family::BinaryTree.generate(100, 0).max_degree() <= 3);
        assert!(Family::Grid.generate(100, 0).max_degree() <= 4);
        assert!(Family::Regular6.generate(100, 0).max_degree() <= 6);
    }

    #[test]
    fn forest_family_has_small_degeneracy() {
        let (_, p) = Family::Forest3.generate_with_params(200, 7);
        assert!(p.degeneracy <= 5, "degeneracy {} too large for forest union", p.degeneracy);
    }

    #[test]
    fn dense_family_has_large_degree() {
        let (_, p) = Family::DenseGnp.generate_with_params(256, 7);
        assert!(p.max_degree >= 10);
    }

    #[test]
    fn generation_is_reproducible() {
        for fam in Family::ALL {
            let a = fam.generate(50, 33);
            let b = fam.generate(50, 33);
            assert_eq!(a, b, "{} not reproducible", fam.name());
        }
    }
}

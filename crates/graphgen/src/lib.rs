//! # local-graphs — graph generators and parameters for LOCAL-model experiments
//!
//! Companion crate to [`local_runtime`]: produces the input graphs and computes the global
//! parameters (`n`, `Δ`, arboricity/degeneracy, `m`) that the non-uniform algorithms of the
//! paper require as *guesses* and that the benchmark harness needs as ground truth.
//!
//! ```
//! use local_graphs::{Family, GraphParams};
//!
//! let (graph, params) = Family::Grid.generate_with_params(100, 42);
//! assert_eq!(params.max_degree, 4);
//! assert_eq!(params.degeneracy, 2);
//! assert!(graph.node_count() >= 81);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod families;
pub mod params;
pub mod random;
pub mod spec;
pub mod structured;

pub use families::{Family, InstanceKey};
pub use params::{
    arboricity_lower_bound, arboricity_upper_bound, degeneracy, degeneracy_ordering,
    degeneracy_view, diameter, log_star, GraphParams, Parameter,
};
pub use random::{
    forest_union, gnp, gnp_avg_degree, gnp_avg_degree_fast, gnp_skip, preferential_attachment,
    random_regular, random_tree, scramble_ids, unit_disk,
};
pub use spec::{
    builtin_families, family, parse_family, FamilyEntry, FamilySpec, GraphFamily, FAMILY_ENTRIES,
};
pub use structured::{
    barbell, binary_tree, caterpillar, complete, cycle, edgeless, grid, hypercube, path, star,
    triangulated_grid,
};

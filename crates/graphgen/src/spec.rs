//! The open family model: the [`GraphFamily`] trait, the name-keyed [`FamilySpec`] handle,
//! the parameterized generator families, and the family registry.
//!
//! The benchmark harness historically swept over the closed [`Family`] enum; every new
//! graph class meant editing the enum, its name/parse tables, and the engine's cost
//! factors in lock step. This module opens that catalog: a family is anything implementing
//! [`GraphFamily`], a [`FamilySpec`] is a cheap clonable handle identified by its stable
//! name, and [`parse_family`] resolves names (including *parameterized* ones like
//! `gnp-d16` or `forest-5`) through one registry table — the single place a new family is
//! wired up.
//!
//! Parameterized families make degree/arboricity regimes sweepable axes instead of
//! hardcoded constants: `gnp-d<d>` fixes the expected average degree, `regular-<d>` the
//! exact degree, `forest-<k>` the arboricity bound, `pa-<m>` the attachment count, and
//! `unit-disk-r<milli>` the geometric radius (in thousandths).

use crate::families::{Family, FAMILY_SUMMARIES};
use crate::random::{forest_union, gnp_avg_degree_fast, preferential_attachment, unit_disk};
use local_runtime::Graph;
use std::sync::Arc;

/// An open-ended graph family: a named, seeded, deterministic generator.
///
/// Implementations must keep `name()` **stable** — it is the wire representation of the
/// family in serialized `Scenario`s and the sweep cache — and `tag()` **distinct** from
/// every other registered family, because the tag is mixed into instance-generation seeds
/// (two families sharing a tag would draw identically-seeded instances).
pub trait GraphFamily: Send + Sync {
    /// The stable canonical name (what [`parse_family`] accepts and reports print).
    fn name(&self) -> String;

    /// A small stable integer distinguishing families, mixed into instance seeds.
    fn tag(&self) -> u64;

    /// A one-line human description for CLI listings.
    fn describe(&self) -> String;

    /// Relative instance-density cost factor for the engine's cost model (1.0 = the sparse
    /// default). Only ever affects scheduling *order*, never results.
    fn cost_factor(&self) -> f64 {
        1.0
    }

    /// Generates a member of the family with (approximately) `n` nodes, deterministically
    /// in `seed`.
    fn generate(&self, n: usize, seed: u64) -> Graph;
}

/// A cheap clonable handle on a registered graph family.
///
/// Identity (equality, ordering, hashing) is the family's stable *name*, so specs key
/// instance caches and sort into stable report order exactly like the old enum did; the
/// generator itself is shared behind an `Arc`.
#[derive(Clone)]
pub struct FamilySpec {
    name: Arc<str>,
    family: Arc<dyn GraphFamily>,
}

impl FamilySpec {
    /// Wraps a [`GraphFamily`] implementation, capturing its canonical name.
    pub fn new(family: impl GraphFamily + 'static) -> Self {
        FamilySpec { name: family.name().into(), family: Arc::new(family) }
    }

    /// The family's stable canonical name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The family's stable tag (see [`GraphFamily::tag`]).
    pub fn tag(&self) -> u64 {
        self.family.tag()
    }

    /// One-line description for CLI listings.
    pub fn describe(&self) -> String {
        self.family.describe()
    }

    /// Relative density cost factor (see [`GraphFamily::cost_factor`]).
    pub fn cost_factor(&self) -> f64 {
        self.family.cost_factor()
    }

    /// Generates a member of the family (see [`GraphFamily::generate`]).
    pub fn generate(&self, n: usize, seed: u64) -> Graph {
        self.family.generate(n, seed)
    }

    /// Generates a member together with its computed global parameters.
    pub fn generate_with_params(&self, n: usize, seed: u64) -> (Graph, crate::GraphParams) {
        let g = self.generate(n, seed);
        let p = crate::GraphParams::of(&g);
        (g, p)
    }
}

impl From<Family> for FamilySpec {
    fn from(family: Family) -> Self {
        FamilySpec::new(family)
    }
}

impl PartialEq for FamilySpec {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
    }
}

impl Eq for FamilySpec {}

impl PartialOrd for FamilySpec {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for FamilySpec {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.name.cmp(&other.name)
    }
}

impl std::hash::Hash for FamilySpec {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.name.hash(state);
    }
}

impl std::fmt::Debug for FamilySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FamilySpec({})", self.name)
    }
}

impl std::fmt::Display for FamilySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

// The builtin enum behind the trait. Tags are the variant's historical rank in
// `Family::ALL` — the exact integer the engine used to mix into instance seeds — so every
// pre-existing family keeps drawing byte-identical instances.
impl GraphFamily for Family {
    fn name(&self) -> String {
        Family::name(self).to_string()
    }

    fn tag(&self) -> u64 {
        Family::ALL.iter().position(|f| f == self).expect("builtin family is in ALL") as u64
    }

    fn describe(&self) -> String {
        FAMILY_SUMMARIES[GraphFamily::tag(self) as usize].1.to_string()
    }

    fn cost_factor(&self) -> f64 {
        match self {
            Family::DenseGnp => 4.0,
            Family::Regular6 => 1.5,
            Family::UnitDisk => 2.0,
            Family::Grid | Family::Path | Family::Cycle => 0.7,
            _ => 1.0,
        }
    }

    fn generate(&self, n: usize, seed: u64) -> Graph {
        Family::generate(self, n, seed)
    }
}

// Tag namespaces of the parameterized families: one block of `1 << 20` per family shape,
// far above the builtin ranks 0..=10 and wide enough for any sane parameter.
const TAG_GNP_DEGREE: u64 = 1 << 20;
const TAG_REGULAR: u64 = 2 << 20;
const TAG_FOREST: u64 = 3 << 20;
const TAG_PREF_ATTACH: u64 = 4 << 20;
const TAG_UNIT_DISK: u64 = 5 << 20;

/// `gnp-d<d>` — Erdős–Rényi `G(n, d/n)` with expected average degree `d`, generated by the
/// O(n + m) skip-sampling generator so large sparse instances stay cheap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GnpDegree {
    /// Expected average degree.
    pub avg_degree: u64,
}

impl GraphFamily for GnpDegree {
    fn name(&self) -> String {
        format!("gnp-d{}", self.avg_degree)
    }

    fn tag(&self) -> u64 {
        TAG_GNP_DEGREE + self.avg_degree
    }

    fn describe(&self) -> String {
        format!("Erdős–Rényi G(n, p) with expected average degree {}", self.avg_degree)
    }

    fn cost_factor(&self) -> f64 {
        (self.avg_degree as f64 / 8.0).clamp(0.25, 16.0)
    }

    fn generate(&self, n: usize, seed: u64) -> Graph {
        gnp_avg_degree_fast(n.max(4), self.avg_degree as f64, seed)
    }
}

/// `regular-<d>` — random `d`-regular-ish graphs via the configuration model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegularDegree {
    /// Target degree.
    pub degree: usize,
}

impl GraphFamily for RegularDegree {
    fn name(&self) -> String {
        format!("regular-{}", self.degree)
    }

    fn tag(&self) -> u64 {
        TAG_REGULAR + self.degree as u64
    }

    fn describe(&self) -> String {
        format!("random {}-regular graphs (configuration model, constant Δ)", self.degree)
    }

    fn cost_factor(&self) -> f64 {
        (self.degree as f64 / 4.0).clamp(0.5, 16.0)
    }

    fn generate(&self, n: usize, seed: u64) -> Graph {
        // The configuration model needs d < n and an even number of stubs.
        let n = n.max(4).max(self.degree + 1);
        let n = if (n * self.degree) % 2 == 1 { n + 1 } else { n };
        crate::random::random_regular(n, self.degree, seed)
    }
}

/// `forest-<k>` — the union of `k` independent random forests (arboricity ≤ `k`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForestUnion {
    /// Number of forests, an upper bound on the arboricity.
    pub forests: usize,
}

impl GraphFamily for ForestUnion {
    fn name(&self) -> String {
        format!("forest-{}", self.forests)
    }

    fn tag(&self) -> u64 {
        TAG_FOREST + self.forests as u64
    }

    fn describe(&self) -> String {
        format!("unions of {} random forests (arboricity ≤ {})", self.forests, self.forests)
    }

    fn cost_factor(&self) -> f64 {
        (self.forests as f64 / 3.0).clamp(0.5, 8.0)
    }

    fn generate(&self, n: usize, seed: u64) -> Graph {
        forest_union(n.max(4), self.forests, seed)
    }
}

/// `pa-<m>` — Barabási–Albert preferential attachment with `m` edges per arriving node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefAttach {
    /// Edges each arriving node attaches with.
    pub edges_per_node: usize,
}

impl GraphFamily for PrefAttach {
    fn name(&self) -> String {
        format!("pa-{}", self.edges_per_node)
    }

    fn tag(&self) -> u64 {
        TAG_PREF_ATTACH + self.edges_per_node as u64
    }

    fn describe(&self) -> String {
        format!(
            "preferential attachment with m = {} (skewed degrees, small arboricity)",
            self.edges_per_node
        )
    }

    fn cost_factor(&self) -> f64 {
        (self.edges_per_node as f64 / 3.0).clamp(0.5, 8.0)
    }

    fn generate(&self, n: usize, seed: u64) -> Graph {
        preferential_attachment(n.max(4), self.edges_per_node, seed)
    }
}

/// `unit-disk-r<milli>` — random geometric graphs with connection radius `milli / 1000`
/// (points uniform in the unit square; bounded independence at any fixed radius).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitDiskRadius {
    /// Connection radius in thousandths (`50` = radius 0.050).
    pub milli_radius: u64,
}

impl GraphFamily for UnitDiskRadius {
    fn name(&self) -> String {
        format!("unit-disk-r{}", self.milli_radius)
    }

    fn tag(&self) -> u64 {
        TAG_UNIT_DISK + self.milli_radius
    }

    fn describe(&self) -> String {
        format!("unit-disk graphs with fixed radius {:.3}", self.milli_radius as f64 / 1000.0)
    }

    fn cost_factor(&self) -> f64 {
        2.0
    }

    fn generate(&self, n: usize, seed: u64) -> Graph {
        unit_disk(n.max(4), self.milli_radius as f64 / 1000.0, seed)
    }
}

/// One row of the family registry: a name pattern, a one-line summary for CLI listings,
/// a parser from names to specs, and the representative specs `--families all` expands to
/// (empty for parameterized families — they are opt-in axes, not part of the default
/// catalog, so pre-existing sweeps keep their exact shape).
pub struct FamilyEntry {
    /// The name or name pattern this entry parses (`grid`, `gnp-d<d>`).
    pub pattern: &'static str,
    /// One-line description for `sweep --list`.
    pub summary: &'static str,
    /// Parses a concrete family name into a spec (`None` when the name is not this
    /// entry's).
    pub parse: fn(&str) -> Option<FamilySpec>,
    /// The specs this entry contributes to the default (`all`) catalog.
    pub defaults: fn() -> Vec<FamilySpec>,
}

fn parse_builtin(name: &str) -> Option<FamilySpec> {
    Family::from_name(name).map(FamilySpec::from)
}

fn no_defaults() -> Vec<FamilySpec> {
    Vec::new()
}

/// Parameterized-family parameters must fit inside their `1 << 20`-wide tag namespace,
/// or tags of different family shapes could collide (the registry-wide distinctness
/// contract of [`GraphFamily::tag`]).
const PARAM_LIMIT: u64 = 1 << 20;

/// Parses a family parameter, rejecting values that would escape the tag namespace.
fn parse_param(text: &str) -> Option<u64> {
    let value: u64 = text.parse().ok()?;
    (value < PARAM_LIMIT).then_some(value)
}

fn parse_gnp_degree(name: &str) -> Option<FamilySpec> {
    let avg_degree = parse_param(name.strip_prefix("gnp-d")?)?;
    Some(FamilySpec::new(GnpDegree { avg_degree }))
}

// Parameterizations that coincide with a builtin family delegate to it (same generator,
// same parameters ⇒ same spec), so the registry's name → generator map stays
// single-valued: `regular-6`, `forest-3`, and `pa-3` resolve to the builtin specs with
// their historical tags, and results stay comparable/cache-shared with old sweeps.

fn parse_regular(name: &str) -> Option<FamilySpec> {
    let degree = parse_param(name.strip_prefix("regular-")?)?;
    match degree {
        0 => None,
        6 => Some(Family::Regular6.into()),
        _ => Some(FamilySpec::new(RegularDegree { degree: degree as usize })),
    }
}

fn parse_forest(name: &str) -> Option<FamilySpec> {
    let forests = parse_param(name.strip_prefix("forest-")?)?;
    match forests {
        0 => None,
        3 => Some(Family::Forest3.into()),
        _ => Some(FamilySpec::new(ForestUnion { forests: forests as usize })),
    }
}

fn parse_pref_attach(name: &str) -> Option<FamilySpec> {
    let edges_per_node = parse_param(name.strip_prefix("pa-")?)?;
    match edges_per_node {
        0 => None,
        3 => Some(Family::PowerLaw.into()),
        _ => Some(FamilySpec::new(PrefAttach { edges_per_node: edges_per_node as usize })),
    }
}

fn parse_unit_disk_radius(name: &str) -> Option<FamilySpec> {
    let milli_radius = parse_param(name.strip_prefix("unit-disk-r")?)?;
    Some(FamilySpec::new(UnitDiskRadius { milli_radius }))
}

fn builtin_defaults() -> Vec<FamilySpec> {
    Family::ALL.iter().map(|&f| FamilySpec::from(f)).collect()
}

/// The family registry: one entry per family (or family pattern), in listing order.
/// Adding a family is one `GraphFamily` impl plus one line here.
pub static FAMILY_ENTRIES: &[FamilyEntry] = &[
    FamilyEntry {
        pattern: "<builtin>",
        summary: "the fixed benchmark catalog below (accepts aliases like sparse-gnp, tree)",
        parse: parse_builtin,
        defaults: builtin_defaults,
    },
    FamilyEntry {
        pattern: "gnp-d<d>",
        summary: "Erdős–Rényi G(n, d/n): expected average degree d (skip-sampled, O(n+m))",
        parse: parse_gnp_degree,
        defaults: no_defaults,
    },
    FamilyEntry {
        pattern: "regular-<d>",
        summary: "random d-regular graphs via the configuration model (constant Δ = d)",
        parse: parse_regular,
        defaults: no_defaults,
    },
    FamilyEntry {
        pattern: "forest-<k>",
        summary: "union of k independent random forests (arboricity ≤ k, unbounded Δ)",
        parse: parse_forest,
        defaults: no_defaults,
    },
    FamilyEntry {
        pattern: "pa-<m>",
        summary: "preferential attachment, m edges per arriving node (skewed degrees)",
        parse: parse_pref_attach,
        defaults: no_defaults,
    },
    FamilyEntry {
        pattern: "unit-disk-r<milli>",
        summary: "random geometric graph with radius milli/1000 (bounded independence)",
        parse: parse_unit_disk_radius,
        defaults: no_defaults,
    },
];

/// Resolves a family name (canonical, alias, or parameterized) through the registry.
pub fn parse_family(name: &str) -> Option<FamilySpec> {
    FAMILY_ENTRIES.iter().find_map(|entry| (entry.parse)(name))
}

/// The default family catalog (`--families all`): every builtin family, in stable order.
pub fn builtin_families() -> Vec<FamilySpec> {
    FAMILY_ENTRIES.iter().flat_map(|entry| (entry.defaults)()).collect()
}

/// Resolves a family name, panicking on unknown names — the concise constructor for
/// presets and tests (`family("gnp-d16")`).
///
/// # Panics
///
/// Panics when the name is not registered.
pub fn family(name: &str) -> FamilySpec {
    parse_family(name).unwrap_or_else(|| panic!("unknown graph family: {name:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_tags_match_their_historical_ranks() {
        // The engine used to mix `Family::ALL.position()` into instance seeds; tags must
        // reproduce those exact integers or every pre-existing instance changes.
        for (rank, fam) in Family::ALL.iter().enumerate() {
            assert_eq!(GraphFamily::tag(fam), rank as u64, "{}", Family::name(fam));
        }
    }

    #[test]
    fn every_builtin_name_and_alias_resolves() {
        for fam in Family::ALL {
            let spec = parse_family(Family::name(&fam)).expect("canonical name parses");
            assert_eq!(spec, FamilySpec::from(fam));
        }
        assert_eq!(parse_family("sparse-gnp"), Some(Family::SparseGnp.into()));
        assert_eq!(parse_family("tree"), Some(Family::BinaryTree.into()));
        assert_eq!(parse_family("regular"), Some(Family::Regular6.into()));
        assert!(parse_family("no-such-family").is_none());
    }

    #[test]
    fn parameterized_names_round_trip() {
        for name in
            ["gnp-d16", "gnp-d2", "regular-4", "regular-12", "forest-5", "pa-2", "unit-disk-r75"]
        {
            let spec = parse_family(name).unwrap_or_else(|| panic!("{name} must parse"));
            assert_eq!(spec.name(), name, "canonical name must round-trip");
        }
        assert!(parse_family("gnp-d").is_none());
        assert!(parse_family("forest-x").is_none());
    }

    #[test]
    fn parameterizations_coinciding_with_builtins_delegate_to_them() {
        // Same generator + same parameters must resolve to the same spec (historical name
        // and tag), so results stay comparable and cache-shared with old sweeps — the
        // registry's name → generator map is single-valued. The tag assertions also pin
        // the delegation independent of registry entry order (the builtin entry parses
        // "regular-6" first today, but these must hold even if ordering changes).
        assert_eq!(parse_family("regular-6"), Some(Family::Regular6.into()));
        assert_eq!(parse_family("regular-6").unwrap().tag(), 7);
        assert_eq!(parse_family("forest-3"), Some(Family::Forest3.into()));
        assert_eq!(parse_family("forest-3").unwrap().name(), "forest-union-3");
        assert_eq!(parse_family("pa-3"), Some(Family::PowerLaw.into()));
        assert_eq!(parse_family("pa-3").unwrap().tag(), 10);
    }

    #[test]
    fn degenerate_and_out_of_range_parameters_are_rejected_at_parse() {
        // 0 forests/edges/degree would silently run a different distribution than the
        // name claims (or panic inside the generator); parameters at or above the tag
        // namespace width would let tags of different family shapes collide.
        for name in ["regular-0", "forest-0", "pa-0"] {
            assert!(parse_family(name).is_none(), "{name} must be rejected");
        }
        let limit = 1u64 << 20;
        for pattern in ["gnp-d", "regular-", "forest-", "pa-", "unit-disk-r"] {
            assert!(
                parse_family(&format!("{pattern}{limit}")).is_none(),
                "{pattern}{limit} escapes its tag namespace"
            );
            assert!(parse_family(&format!("{pattern}{}", u64::MAX)).is_none());
        }
        // The largest in-range parameter still parses and stays inside its namespace.
        let spec = parse_family(&format!("gnp-d{}", limit - 1)).expect("in-range parses");
        assert!(spec.tag() < 2 << 20);
    }

    #[test]
    fn parameterized_families_generate_their_regimes() {
        let sparse = family("gnp-d4").generate(600, 3);
        let dense = family("gnp-d24").generate(600, 3);
        let avg = |g: &Graph| 2.0 * g.edge_count() as f64 / g.node_count() as f64;
        assert!(avg(&sparse) < avg(&dense), "degree axis must be monotone");
        assert!((2.0..7.0).contains(&avg(&sparse)), "gnp-d4 average degree {}", avg(&sparse));

        assert!(family("regular-4").generate(100, 1).max_degree() <= 4);
        assert!(family("regular-9").generate(100, 1).max_degree() <= 9);

        let (_, p) = family("forest-2").generate_with_params(200, 7);
        assert!(p.degeneracy <= 4, "forest-2 degeneracy {}", p.degeneracy);

        let pa = family("pa-2").generate(150, 5);
        assert!(pa.edge_count() >= 140);

        let tight = family("unit-disk-r50").generate(200, 9);
        let loose = family("unit-disk-r300").generate(200, 9);
        assert!(tight.edge_count() < loose.edge_count());
    }

    #[test]
    fn parameterized_generation_is_reproducible() {
        for name in ["gnp-d16", "regular-8", "forest-4", "pa-2", "unit-disk-r100"] {
            let spec = family(name);
            assert_eq!(spec.generate(80, 33), spec.generate(80, 33), "{name} not reproducible");
        }
    }

    #[test]
    fn registry_tags_are_distinct_across_entries_and_parameters() {
        let mut specs = builtin_families();
        for name in [
            "gnp-d8",
            "gnp-d16",
            "regular-4",
            "regular-8",
            "forest-2",
            "forest-5",
            "pa-2",
            "pa-4",
            "unit-disk-r50",
            "unit-disk-r100",
        ] {
            specs.push(family(name));
        }
        let mut tags: Vec<u64> = specs.iter().map(FamilySpec::tag).collect();
        let count = tags.len();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), count, "family tags must be pairwise distinct");
    }

    #[test]
    fn specs_key_and_order_by_name() {
        let a = family("gnp-d16");
        let b = parse_family("gnp-d16").unwrap();
        let c = family("gnp-d8");
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut set = std::collections::BTreeSet::new();
        set.insert(a.clone());
        set.insert(b);
        set.insert(c);
        assert_eq!(set.len(), 2);
        let mut hashed = std::collections::HashSet::new();
        hashed.insert(a);
        assert!(hashed.contains(&family("gnp-d16")));
    }
}

//! Maximal-matching algorithms.
//!
//! * [`ProposalMatching`] — randomized proposer/acceptor matching (Israeli–Itai style).
//!   **Uniform**, always correct on termination (Las Vegas), `O(log n)` phases with high
//!   probability. Restricted to a budget it is the weak Monte-Carlo algorithm used with the
//!   Theorem 2 transformer.
//! * [`PointerMatching`] — deterministic greedy matching by identities: every unmatched node
//!   points at its smallest-identity unmatched neighbour, mutual pointers marry. **Uniform**
//!   and always correct; worst-case Θ(n) rounds (correctness baseline).
//! * [`MatchingFromEdgeColoring`] — the classical non-uniform pipeline: edge-colour the graph
//!   (via the line graph) and add colour classes greedily, one class per round. Non-uniform in
//!   `{Δ, m}`; our stand-in for the Hańćkowiak et al. `O(log⁴ n)` algorithm of Table 1 row 8
//!   (see DESIGN.md for the substitution argument).

use crate::edge_coloring::LineGraphEdgeColoring;
use local_runtime::{
    Action, AlgoRun, Graph, GraphAlgorithm, GraphView, NodeId, NodeInit, NodeProgram, ProgramSpec,
    RoundCtx, Session,
};
use rand::Rng;

/// Per-node matching output: the identity of the matched neighbour, or `None`.
pub type Partner = Option<NodeId>;

/// Randomized proposer/acceptor maximal matching (uniform).
#[derive(Debug, Clone, Copy, Default)]
pub struct ProposalMatching;

/// Messages of [`ProposalMatching`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProposalMsg {
    /// "I propose to marry you."
    Propose,
    /// "I accept your proposal."
    Accept,
    /// "I am matched" (bookkeeping so neighbours can retire).
    Matched,
    /// "I am retired" (all my neighbours are matched, I can never be matched).
    Retired,
}

/// Node automaton for [`ProposalMatching`].
#[derive(Debug)]
pub struct ProposalProg {
    /// Neighbours that can still be matched to me.
    available: Vec<bool>,
    /// Port I proposed to in the current phase, if any.
    proposed_to: Option<usize>,
    /// Port I accepted in the current phase, if any.
    accepted: Option<usize>,
    partner: Partner,
}

impl ProposalProg {
    fn no_available_neighbor(&self) -> bool {
        self.available.iter().all(|&a| !a)
    }
}

impl NodeProgram for ProposalProg {
    type Msg = ProposalMsg;
    type Output = Partner;

    fn round(&mut self, ctx: &mut RoundCtx<'_, ProposalMsg>) -> Action<Partner> {
        // Bookkeeping valid in every round.
        let inbox: Vec<(usize, ProposalMsg)> =
            ctx.messages().map(|(port, &msg)| (port, msg)).collect();
        for &(port, msg) in &inbox {
            match msg {
                ProposalMsg::Matched | ProposalMsg::Retired => self.available[port] = false,
                _ => {}
            }
        }
        // Phase structure: 3 rounds per phase.
        match ctx.round() % 3 {
            0 => {
                // If I became matched last phase, announce and halt.
                if self.partner.is_some() {
                    ctx.broadcast(ProposalMsg::Matched);
                    return Action::Halt(self.partner);
                }
                if self.no_available_neighbor() {
                    ctx.broadcast(ProposalMsg::Retired);
                    return Action::Halt(None);
                }
                // Flip a coin: proposer or acceptor.
                self.proposed_to = None;
                self.accepted = None;
                if ctx.rng().gen_bool(0.5) {
                    let candidates: Vec<usize> =
                        (0..self.available.len()).filter(|&p| self.available[p]).collect();
                    let pick = candidates[ctx.rng().gen_range(0..candidates.len())];
                    self.proposed_to = Some(pick);
                    ctx.send(pick, ProposalMsg::Propose);
                }
                Action::Continue
            }
            1 => {
                // Acceptors: accept exactly one incoming proposal (smallest sender identity),
                // but only if we did not propose ourselves this phase.
                if self.proposed_to.is_none() && self.partner.is_none() {
                    let mut best: Option<usize> = None;
                    for &(port, msg) in &inbox {
                        if msg == ProposalMsg::Propose && self.available[port] {
                            let ids = ctx.neighbor_ids();
                            best = match best {
                                None => Some(port),
                                Some(b) if ids[port] < ids[b] => Some(port),
                                keep => keep,
                            };
                        }
                    }
                    if let Some(port) = best {
                        self.accepted = Some(port);
                        self.partner = Some(ctx.neighbor_ids()[port]);
                        ctx.send(port, ProposalMsg::Accept);
                    }
                }
                Action::Continue
            }
            _ => {
                // Proposers: if the node we proposed to accepted, we are matched.
                if let Some(port) = self.proposed_to {
                    let accepted_by_target =
                        inbox.iter().any(|&(p, msg)| p == port && msg == ProposalMsg::Accept);
                    if accepted_by_target {
                        self.partner = Some(ctx.neighbor_ids()[port]);
                    }
                }
                Action::Continue
            }
        }
    }
}

impl ProgramSpec for ProposalMatching {
    type Input = ();
    type Msg = ProposalMsg;
    type Output = Partner;
    type Prog = ProposalProg;

    fn build(&self, init: &NodeInit<()>) -> ProposalProg {
        ProposalProg {
            available: vec![true; init.degree],
            proposed_to: None,
            accepted: None,
            partner: None,
        }
    }

    fn default_output(&self, _init: &NodeInit<()>) -> Partner {
        None
    }
}

/// Deterministic pointer matching by identities (uniform).
#[derive(Debug, Clone, Copy, Default)]
pub struct PointerMatching;

/// Messages of [`PointerMatching`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointerMsg {
    /// "You are my preferred unmatched neighbour."
    PointAt,
    /// "I am matched."
    Matched,
    /// "I am retired."
    Retired,
}

/// Node automaton for [`PointerMatching`].
#[derive(Debug)]
pub struct PointerProg {
    available: Vec<bool>,
    pointed_at: Option<usize>,
    partner: Partner,
}

impl NodeProgram for PointerProg {
    type Msg = PointerMsg;
    type Output = Partner;

    fn round(&mut self, ctx: &mut RoundCtx<'_, PointerMsg>) -> Action<Partner> {
        let inbox: Vec<(usize, PointerMsg)> =
            ctx.messages().map(|(port, &msg)| (port, msg)).collect();
        for &(port, msg) in &inbox {
            match msg {
                PointerMsg::Matched | PointerMsg::Retired => self.available[port] = false,
                PointerMsg::PointAt => {}
            }
        }
        // Phase of 2 rounds: even = point, odd = marry mutual pointers.
        if ctx.round() % 2 == 0 {
            if self.partner.is_some() {
                ctx.broadcast(PointerMsg::Matched);
                return Action::Halt(self.partner);
            }
            if self.available.iter().all(|&a| !a) {
                ctx.broadcast(PointerMsg::Retired);
                return Action::Halt(None);
            }
            // Point at the smallest-identity available neighbour.
            let ids = ctx.neighbor_ids();
            let target = (0..self.available.len())
                .filter(|&p| self.available[p])
                .min_by_key(|&p| ids[p])
                .expect("an available neighbour exists");
            self.pointed_at = Some(target);
            ctx.send(target, PointerMsg::PointAt);
            Action::Continue
        } else {
            if let Some(target) = self.pointed_at {
                let mutual =
                    inbox.iter().any(|&(p, msg)| p == target && msg == PointerMsg::PointAt);
                if mutual {
                    self.partner = Some(ctx.neighbor_ids()[target]);
                }
            }
            Action::Continue
        }
    }
}

impl ProgramSpec for PointerMatching {
    type Input = ();
    type Msg = PointerMsg;
    type Output = Partner;
    type Prog = PointerProg;

    fn build(&self, init: &NodeInit<()>) -> PointerProg {
        PointerProg { available: vec![true; init.degree], pointed_at: None, partner: None }
    }

    fn default_output(&self, _init: &NodeInit<()>) -> Partner {
        None
    }
}

/// Adds colour classes of an edge colouring greedily, one class per round: if the edge on my
/// port `p` has colour `t−1` (processed in round `t`) and both endpoints are still unmatched,
/// they marry. Uniform given the edge colouring and the number of colours.
#[derive(Debug, Clone)]
pub struct GreedyClassMatching {
    /// Number of colour classes to process (derived from the guesses by the caller).
    pub num_colors: u64,
}

/// Input of [`GreedyClassMatching`]: colour of the edge on each port.
pub type PortColors = Vec<u64>;

/// Messages of [`GreedyClassMatching`]: `true` = "I am (now) matched".
pub type MatchedMsg = bool;

/// Node automaton for [`GreedyClassMatching`].
#[derive(Debug)]
pub struct GreedyClassProg {
    port_colors: Vec<u64>,
    neighbor_matched: Vec<bool>,
    partner: Partner,
    num_colors: u64,
}

impl NodeProgram for GreedyClassProg {
    type Msg = MatchedMsg;
    type Output = Partner;

    fn round(&mut self, ctx: &mut RoundCtx<'_, MatchedMsg>) -> Action<Partner> {
        for (port, &matched) in ctx.messages() {
            if matched {
                self.neighbor_matched[port] = true;
            }
        }
        let t = ctx.round();
        if t >= 1 && self.partner.is_none() {
            let class = t - 1;
            // At most one incident edge has this colour (properness).
            if let Some(port) = (0..self.port_colors.len())
                .find(|&p| self.port_colors[p] == class && !self.neighbor_matched[p])
            {
                // The neighbour sees the same colour on the shared edge and the same matched
                // statuses as of the previous round, so the decision is symmetric.
                self.partner = Some(ctx.neighbor_ids()[port]);
                ctx.broadcast(true);
            }
        }
        if t >= self.num_colors {
            return Action::Halt(self.partner);
        }
        Action::Continue
    }
}

impl ProgramSpec for GreedyClassMatching {
    type Input = PortColors;
    type Msg = MatchedMsg;
    type Output = Partner;
    type Prog = GreedyClassProg;

    fn build(&self, init: &NodeInit<PortColors>) -> GreedyClassProg {
        GreedyClassProg {
            port_colors: init.input.clone(),
            neighbor_matched: vec![false; init.degree],
            partner: None,
            num_colors: self.num_colors,
        }
    }

    fn default_output(&self, _init: &NodeInit<PortColors>) -> Partner {
        None
    }
}

/// The non-uniform deterministic maximal matching: edge-colour with `O(Δ̃)` colours via the
/// line graph, then add the colour classes greedily. Non-uniform in `{Δ, m}`.
#[derive(Debug, Clone)]
pub struct MatchingFromEdgeColoring {
    /// Guess for the maximum degree `Δ` of the original graph.
    pub delta_guess: u64,
    /// Guess for the largest identity `m` of the original graph.
    pub id_bound_guess: u64,
}

impl MatchingFromEdgeColoring {
    fn edge_coloring(&self) -> LineGraphEdgeColoring {
        LineGraphEdgeColoring { delta_guess: self.delta_guess, id_bound_guess: self.id_bound_guess }
    }

    /// Upper bound on the number of rounds, as a function of the guesses.
    pub fn round_bound(&self) -> u64 {
        let ec = self.edge_coloring();
        ec.round_bound() + ec.palette() + 2
    }
}

impl GraphAlgorithm for MatchingFromEdgeColoring {
    type Input = ();
    type Output = Partner;

    fn execute(
        &self,
        graph: &Graph,
        inputs: &[()],
        budget: Option<u64>,
        seed: u64,
    ) -> AlgoRun<Partner> {
        if graph.is_empty() {
            return AlgoRun::empty();
        }
        debug_assert_eq!(inputs.len(), graph.node_count());
        let ec = self.edge_coloring();
        let phase1 = ec.execute(graph, inputs, budget, seed);
        let remaining = budget.map(|b| b.saturating_sub(phase1.rounds));
        if remaining == Some(0) && budget.is_some() {
            return AlgoRun {
                outputs: vec![None; graph.node_count()],
                rounds: budget.unwrap_or(phase1.rounds),
                messages: phase1.messages,
                completed: false,
            };
        }
        let adder = GreedyClassMatching { num_colors: ec.palette() };
        let phase2 = adder.execute(graph, &phase1.outputs, remaining, seed ^ 0xabcd);
        AlgoRun {
            outputs: phase2.outputs,
            rounds: phase1.rounds + phase2.rounds,
            messages: phase1.messages + phase2.messages,
            completed: phase1.completed && phase2.completed,
        }
    }

    fn execute_view(
        &self,
        view: &GraphView<'_>,
        inputs: &[()],
        budget: Option<u64>,
        seed: u64,
        session: &mut Session,
    ) -> AlgoRun<Partner> {
        if view.is_empty() {
            return AlgoRun::empty();
        }
        debug_assert_eq!(inputs.len(), view.node_count());
        // Phase 1 operates on the line graph, so it falls back to a materializing
        // `execute_view`; the colour-class adder is a node automaton and runs on the view.
        let ec = self.edge_coloring();
        let phase1 = ec.execute_view(view, inputs, budget, seed, session);
        let remaining = budget.map(|b| b.saturating_sub(phase1.rounds));
        if remaining == Some(0) && budget.is_some() {
            return AlgoRun {
                outputs: vec![None; view.node_count()],
                rounds: budget.unwrap_or(phase1.rounds),
                messages: phase1.messages,
                completed: false,
            };
        }
        let adder = GreedyClassMatching { num_colors: ec.palette() };
        let phase2 = adder.execute_view(view, &phase1.outputs, remaining, seed ^ 0xabcd, session);
        AlgoRun {
            outputs: phase2.outputs,
            rounds: phase1.rounds + phase2.rounds,
            messages: phase1.messages + phase2.messages,
            completed: phase1.completed && phase2.completed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkers::{check_matching, check_maximal_matching};
    use local_graphs::{complete, cycle, gnp, grid, path, star, GraphParams};
    use local_runtime::GraphAlgorithm;

    #[test]
    fn proposal_matching_is_maximal_on_many_graphs() {
        for (i, g) in [path(20), cycle(21), grid(5, 6), star(12), complete(9), gnp(70, 0.1, 4)]
            .iter()
            .enumerate()
        {
            let run = ProposalMatching.execute(g, &vec![(); g.node_count()], None, i as u64);
            assert!(run.completed, "proposal matching did not terminate on graph {i}");
            check_maximal_matching(g, &run.outputs).unwrap_or_else(|e| panic!("graph {i}: {e:?}"));
        }
    }

    #[test]
    fn proposal_matching_budgeted_is_a_matching() {
        let g = gnp(120, 0.05, 2);
        let run = ProposalMatching.execute(&g, &[(); 120], Some(6), 0);
        assert!(run.rounds <= 6);
        // Possibly not maximal, but whatever is matched must be consistent.
        check_matching(&g, &run.outputs).unwrap();
    }

    #[test]
    fn proposal_matching_round_count_scales_slowly() {
        let small = gnp(64, 8.0 / 64.0, 1);
        let large = gnp(1024, 8.0 / 1024.0, 1);
        let r_small =
            ProposalMatching.execute(&small, &vec![(); small.node_count()], None, 0).rounds;
        let r_large =
            ProposalMatching.execute(&large, &vec![(); large.node_count()], None, 0).rounds;
        assert!(r_large <= r_small * 8 + 30, "not logarithmic-ish: {r_small} -> {r_large}");
    }

    #[test]
    fn pointer_matching_is_maximal_and_deterministic() {
        for g in [path(25), cycle(16), grid(4, 7), gnp(50, 0.12, 9), star(10)] {
            let a = PointerMatching.execute(&g, &vec![(); g.node_count()], None, 0);
            let b = PointerMatching.execute(&g, &vec![(); g.node_count()], None, 5);
            assert!(a.completed);
            check_maximal_matching(&g, &a.outputs).unwrap();
            assert_eq!(a.outputs, b.outputs);
        }
    }

    #[test]
    fn matching_from_edge_coloring_is_maximal() {
        for g in [path(30), cycle(18), grid(6, 5), gnp(60, 0.08, 3), star(14)] {
            let p = GraphParams::of(&g);
            let algo =
                MatchingFromEdgeColoring { delta_guess: p.max_degree, id_bound_guess: p.max_id };
            let run = algo.execute(&g, &vec![(); g.node_count()], None, 0);
            assert!(run.completed);
            check_maximal_matching(&g, &run.outputs).unwrap();
            assert!(run.rounds <= algo.round_bound());
        }
    }

    #[test]
    fn matching_from_edge_coloring_respects_budget() {
        let g = gnp(60, 0.15, 1);
        let algo = MatchingFromEdgeColoring { delta_guess: 2, id_bound_guess: 2 };
        let run = algo.execute(&g, &[(); 60], Some(5), 0);
        assert!(run.rounds <= 5);
    }

    #[test]
    fn matching_on_single_edge() {
        let g = path(2);
        let run = PointerMatching.execute(&g, &[(); 2], None, 0);
        assert_eq!(run.outputs[0], Some(1));
        assert_eq!(run.outputs[1], Some(0));
        let run = ProposalMatching.execute(&g, &[(); 2], None, 0);
        check_maximal_matching(&g, &run.outputs).unwrap();
    }

    #[test]
    fn matching_on_edgeless_graph() {
        let g = local_graphs::edgeless(7);
        let run = PointerMatching.execute(&g, &[(); 7], None, 0);
        assert!(run.outputs.iter().all(|p| p.is_none()));
        assert!(run.completed);
    }
}

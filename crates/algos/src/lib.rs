//! # local-algos — baseline LOCAL algorithms
//!
//! The algorithm library underneath the reproduction of *"Toward more localized local
//! algorithms"* (Korman, Sereni, Viennot): the non-uniform and uniform LOCAL algorithms that
//! the paper's transformers take as black boxes (Table 1's "Ref." column), plus centralized
//! validators for the classical problems.
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`coloring`] | Linial colour reduction, (Δ+1)- and λ(Δ+1)-colouring, colouring→MIS |
//! | [`mis`] | Luby's randomized MIS, greedy-by-identity MIS, colouring-based MIS |
//! | [`matching`] | randomized proposal matching, pointer matching, matching from edge colouring |
//! | [`edge_coloring`] | (2Δ−1)-edge colouring via the line graph |
//! | [`arboricity`] | H-partition (degree peeling), arboricity-parameterised MIS and colouring |
//! | [`ruling`] | budgeted-Luby (2, β)-ruling sets (weak Monte-Carlo) |
//! | [`synthetic`] | synthetic timed black boxes for time bounds we do not re-implement |
//! | [`checkers`] | centralized validators (ground truth for tests and benches) |
//!
//! ```
//! use local_algos::mis::LubyMis;
//! use local_algos::checkers::check_mis;
//! use local_runtime::GraphAlgorithm;
//!
//! let g = local_graphs::gnp(50, 0.1, 7);
//! let run = LubyMis.execute(&g, &vec![(); 50], None, 0);
//! assert!(run.completed);
//! check_mis(&g, &run.outputs).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arboricity;
pub mod checkers;
pub mod coloring;
pub mod edge_coloring;
pub mod matching;
pub mod mis;
pub mod ruling;
pub mod synthetic;

//! Centralized validators for the classical LOCAL problems.
//!
//! These are the ground-truth checkers used by the test suite, the pruning-algorithm tests and
//! the benchmark harness. They are *centralized* (they see the whole graph), in contrast to the
//! paper's *local checking* and *pruning* procedures, which are distributed; the unit tests of
//! the pruning algorithms cross-validate the two.

use local_runtime::{Graph, NodeId};

/// A violation discovered by a validator, pointing at the offending nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two adjacent nodes are both in the independent set.
    AdjacentInSet(usize, usize),
    /// A node outside the set has no neighbor in the set (MIS maximality violation).
    NotDominated(usize),
    /// A node outside the set has no set node within the required distance.
    NotRuled(usize),
    /// Two set nodes are closer than the required distance.
    TooClose(usize, usize),
    /// Two adjacent nodes share a colour.
    SameColor(usize, usize),
    /// A colour exceeds the allowed palette.
    ColorOutOfRange(usize),
    /// A node claims a partner that is not a neighbor, or the partner disagrees.
    BadPartner(usize),
    /// Two edges of the matching share an endpoint.
    NotAMatching(usize),
    /// An edge could still be added to the matching (maximality violation).
    AugmentableEdge(usize, usize),
    /// Two incident edges share a colour, or endpoints disagree on an edge colour.
    BadEdgeColor(usize, usize),
}

/// Checks that `in_set` is an independent set of `g`.
pub fn check_independent_set(g: &Graph, in_set: &[bool]) -> Result<(), Violation> {
    for (u, v) in g.edges() {
        if in_set[u] && in_set[v] {
            return Err(Violation::AdjacentInSet(u, v));
        }
    }
    Ok(())
}

/// Checks that `in_set` is a *maximal* independent set of `g`.
pub fn check_mis(g: &Graph, in_set: &[bool]) -> Result<(), Violation> {
    check_independent_set(g, in_set)?;
    for v in 0..g.node_count() {
        if !in_set[v] && !g.neighbors(v).iter().any(|&w| in_set[w]) {
            return Err(Violation::NotDominated(v));
        }
    }
    Ok(())
}

/// Checks that `in_set` is an (α, β)-ruling set of `g`: set nodes pairwise at distance ≥ α,
/// and every node within distance β of a set node.
pub fn check_ruling_set(
    g: &Graph,
    in_set: &[bool],
    alpha: usize,
    beta: usize,
) -> Result<(), Violation> {
    let n = g.node_count();
    for v in 0..n {
        if !in_set[v] {
            continue;
        }
        // BFS to depth max(alpha - 1, beta) from each set node.
        let dist = g.bfs_distances(v);
        for u in 0..n {
            if u != v && in_set[u] && dist[u] != usize::MAX && dist[u] < alpha {
                return Err(Violation::TooClose(v, u));
            }
        }
    }
    for v in 0..n {
        if in_set[v] {
            continue;
        }
        let dist = g.bfs_distances(v);
        let ruled = (0..n).any(|u| in_set[u] && dist[u] != usize::MAX && dist[u] <= beta);
        if !ruled {
            return Err(Violation::NotRuled(v));
        }
    }
    Ok(())
}

/// Checks that `colors` is a proper vertex colouring of `g`.
pub fn check_coloring(g: &Graph, colors: &[u64]) -> Result<(), Violation> {
    for (u, v) in g.edges() {
        if colors[u] == colors[v] {
            return Err(Violation::SameColor(u, v));
        }
    }
    Ok(())
}

/// Checks that `colors` is a proper colouring using at most `palette` distinct colour values,
/// all smaller than `palette`.
pub fn check_coloring_with_palette(
    g: &Graph,
    colors: &[u64],
    palette: u64,
) -> Result<(), Violation> {
    check_coloring(g, colors)?;
    for (v, &c) in colors.iter().enumerate() {
        if c >= palette {
            return Err(Violation::ColorOutOfRange(v));
        }
    }
    Ok(())
}

/// Checks that `partner` (per-node identity of the matched neighbor, `None` if unmatched)
/// encodes a *maximal* matching of `g`.
pub fn check_maximal_matching(g: &Graph, partner: &[Option<NodeId>]) -> Result<(), Violation> {
    check_matching(g, partner)?;
    // Maximality: no edge with both endpoints unmatched.
    for (u, v) in g.edges() {
        if partner[u].is_none() && partner[v].is_none() {
            return Err(Violation::AugmentableEdge(u, v));
        }
    }
    Ok(())
}

/// Checks that `partner` encodes a (not necessarily maximal) matching: partners are neighbors
/// and the relation is symmetric.
pub fn check_matching(g: &Graph, partner: &[Option<NodeId>]) -> Result<(), Violation> {
    let n = g.node_count();
    let mut id_to_index = std::collections::HashMap::new();
    for v in 0..n {
        id_to_index.insert(g.id(v), v);
    }
    for v in 0..n {
        if let Some(pid) = partner[v] {
            let Some(&p) = id_to_index.get(&pid) else {
                return Err(Violation::BadPartner(v));
            };
            if !g.has_edge(v, p) {
                return Err(Violation::BadPartner(v));
            }
            if partner[p] != Some(g.id(v)) {
                return Err(Violation::NotAMatching(v));
            }
        }
    }
    Ok(())
}

/// Checks a proper edge colouring given, for every node, the colour of each of its incident
/// edges indexed by port: endpoints must agree on every edge's colour and no two edges
/// incident to the same node may share a colour.
pub fn check_edge_coloring(g: &Graph, port_colors: &[Vec<u64>]) -> Result<(), Violation> {
    for v in 0..g.node_count() {
        if port_colors[v].len() != g.degree(v) {
            return Err(Violation::BadEdgeColor(v, v));
        }
        // No two incident edges share a colour.
        let mut seen = std::collections::BTreeSet::new();
        for &c in &port_colors[v] {
            if !seen.insert(c) {
                return Err(Violation::BadEdgeColor(v, v));
            }
        }
        // Endpoints agree.
        for port in 0..g.degree(v) {
            let w = g.neighbor(v, port);
            let back = g.reverse_port(v, port);
            if port_colors[w][back] != port_colors[v][port] {
                return Err(Violation::BadEdgeColor(v, w));
            }
        }
    }
    Ok(())
}

/// Number of distinct colours used.
pub fn palette_size(colors: &[u64]) -> usize {
    let set: std::collections::BTreeSet<_> = colors.iter().collect();
    set.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_graphs::{cycle, path, star};

    #[test]
    fn mis_checker_accepts_and_rejects() {
        let g = path(4); // 0-1-2-3
        assert!(check_mis(&g, &[true, false, true, false]).is_ok());
        assert!(check_mis(&g, &[true, false, false, true]).is_ok());
        assert_eq!(check_mis(&g, &[true, true, false, true]), Err(Violation::AdjacentInSet(0, 1)));
        assert_eq!(check_mis(&g, &[true, false, false, false]), Err(Violation::NotDominated(2)));
    }

    #[test]
    fn independent_but_not_maximal() {
        let g = path(5);
        let set = [true, false, false, false, true];
        assert!(check_independent_set(&g, &set).is_ok());
        assert!(check_mis(&g, &set).is_err());
    }

    #[test]
    fn ruling_set_checker() {
        let g = path(7);
        // {0, 6}: distance 6 ≥ 2, every node within distance 3 of one of them.
        assert!(
            check_ruling_set(&g, &[true, false, false, false, false, false, true], 2, 3).is_ok()
        );
        // Not within β = 2: node 3 is at distance 3 from both.
        assert_eq!(
            check_ruling_set(&g, &[true, false, false, false, false, false, true], 2, 2),
            Err(Violation::NotRuled(3))
        );
        // Too close for α = 3.
        assert_eq!(
            check_ruling_set(&g, &[true, false, true, false, false, false, true], 3, 3),
            Err(Violation::TooClose(0, 2))
        );
    }

    #[test]
    fn mis_is_a_2_1_ruling_set() {
        let g = cycle(9);
        let mis = [true, false, false, true, false, false, true, false, false];
        assert!(check_mis(&g, &mis).is_ok());
        assert!(check_ruling_set(&g, &mis, 2, 1).is_ok());
    }

    #[test]
    fn coloring_checker() {
        let g = cycle(4);
        assert!(check_coloring(&g, &[0, 1, 0, 1]).is_ok());
        // The violating edge reported first in iteration order is (0, 3).
        assert_eq!(check_coloring(&g, &[0, 1, 1, 0]), Err(Violation::SameColor(0, 3)));
        assert!(check_coloring_with_palette(&g, &[0, 1, 0, 1], 2).is_ok());
        assert_eq!(
            check_coloring_with_palette(&g, &[0, 5, 0, 1], 3),
            Err(Violation::ColorOutOfRange(1))
        );
    }

    #[test]
    fn matching_checker() {
        let g = path(4);
        // 0-1 matched, 2-3 matched.
        let ok = [Some(1), Some(0), Some(3), Some(2)];
        assert!(check_maximal_matching(&g, &ok).is_ok());
        // 1-2 matched only: maximal (0 and 3 have no unmatched neighbor... 0's neighbor 1 is matched).
        let mid = [None, Some(2), Some(1), None];
        assert!(check_maximal_matching(&g, &mid).is_ok());
        // Empty matching is not maximal.
        let empty = [None, None, None, None];
        assert!(matches!(
            check_maximal_matching(&g, &empty),
            Err(Violation::AugmentableEdge(_, _))
        ));
        // Asymmetric partner claims.
        let bad = [Some(1), None, None, None];
        assert!(matches!(check_maximal_matching(&g, &bad), Err(Violation::NotAMatching(0))));
        // Partner is not a neighbor.
        let far = [Some(3), None, None, Some(0)];
        assert!(matches!(check_matching(&g, &far), Err(Violation::BadPartner(0))));
    }

    #[test]
    fn edge_coloring_checker() {
        let g = star(4); // center 0 with leaves 1, 2, 3
                         // Center's ports must all differ; leaves have a single port each and must agree.
        let ok = vec![vec![0, 1, 2], vec![0], vec![1], vec![2]];
        assert!(check_edge_coloring(&g, &ok).is_ok());
        let clash = vec![vec![0, 0, 2], vec![0], vec![0], vec![2]];
        assert!(check_edge_coloring(&g, &clash).is_err());
        let disagree = vec![vec![0, 1, 2], vec![1], vec![1], vec![2]];
        assert!(check_edge_coloring(&g, &disagree).is_err());
    }

    #[test]
    fn palette_size_counts_distinct() {
        assert_eq!(palette_size(&[3, 3, 1, 7]), 3);
        assert_eq!(palette_size(&[]), 0);
    }
}

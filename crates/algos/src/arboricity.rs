//! Arboricity-parameterised algorithms (Barenboim–Elkin style).
//!
//! The key tool is the *H-partition* (degree peeling): given guesses `ã ≥ a` and `ñ ≥ n`,
//! repeatedly peel every node whose remaining degree is at most `(2+ε)·ã`. A Nash-Williams
//! counting argument shows that each peeling round removes at least an `ε/(2+ε)` fraction of
//! the surviving nodes, so `ℓ(ñ) = ⌈log_{(2+ε)/2} ñ⌉ + 1` rounds empty the graph when the
//! guesses are good. Nodes that survive all `ℓ` rounds (possible only under bad guesses) are
//! dumped into the last layer.
//!
//! On top of the partition, [`ArboricityMis`] computes an MIS layer by layer, from the last
//! layer down to the first: within the subgraph induced by the still-undominated nodes of one
//! layer, every node has at most `(2+ε)·ã` neighbours in its own or higher layers, so the
//! non-uniform colouring MIS with degree guess `(2+ε)·ã` finishes each layer quickly.
//!
//! Substitution note (DESIGN.md): the paper cites the `O(log n / log log n)` MIS of
//! Barenboim–Elkin [6]; our layer-by-layer pipeline has the same parameter set `{a, n, m}` and
//! a bound of the form `ℓ(ñ) · (poly(ã) + log* m̃)`, which is what Theorem 3 consumes (`Γ =
//! {a, n}` weakly dominated by `Λ = {n}` because `a ≤ n` and `m` plays the role the paper
//! assigns to identities).

use crate::coloring::ReducedColoring;
use crate::mis::ColoringMis;
use local_runtime::{
    Action, AlgoRun, Graph, GraphAlgorithm, NodeInit, NodeProgram, ProgramSpec, RoundCtx,
};

/// Number of peeling rounds used for a given guess of `n` (with ε = 1, i.e. threshold `3ã`).
pub fn h_partition_layers(n_guess: u64) -> u64 {
    // Each round removes at least 1/3 of the surviving nodes, so log_{3/2} n rounds suffice.
    let mut layers = 1u64;
    let mut remaining = n_guess.max(1) as f64;
    while remaining > 1.0 && layers < 200 {
        remaining *= 2.0 / 3.0;
        layers += 1;
    }
    layers
}

/// The H-partition / degree-peeling algorithm: outputs a layer index per node.
/// Non-uniform in `{a, n}`; runs in `ℓ(ñ) + 1` rounds.
#[derive(Debug, Clone)]
pub struct HPartition {
    /// Guess for the arboricity `a` (we use the degeneracy as its computable stand-in).
    pub arboricity_guess: u64,
    /// Guess for the number of nodes `n`.
    pub n_guess: u64,
}

impl HPartition {
    /// Peeling threshold `(2+ε)·ã` with ε = 1.
    pub fn threshold(&self) -> u64 {
        3 * self.arboricity_guess.max(1)
    }

    /// Number of layers (and peeling rounds).
    pub fn layers(&self) -> u64 {
        h_partition_layers(self.n_guess)
    }

    /// Upper bound on the number of rounds.
    pub fn round_bound(&self) -> u64 {
        self.layers() + 1
    }
}

/// Messages of [`HPartition`]: `true` = "I am leaving the active set this round".
pub type LeaveMsg = bool;

/// Node automaton for [`HPartition`].
#[derive(Debug)]
pub struct HPartitionProg {
    threshold: u64,
    layers: u64,
    active_neighbors: u64,
}

impl NodeProgram for HPartitionProg {
    type Msg = LeaveMsg;
    type Output = u64;

    fn round(&mut self, ctx: &mut RoundCtx<'_, LeaveMsg>) -> Action<u64> {
        for (_, &left) in ctx.messages() {
            if left {
                self.active_neighbors = self.active_neighbors.saturating_sub(1);
            }
        }
        let layer = ctx.round() + 1;
        if self.active_neighbors <= self.threshold || layer >= self.layers {
            // Peel myself into the current layer (forced into the last layer if the guesses
            // were too small to empty the graph).
            ctx.broadcast(true);
            return Action::Halt(layer.min(self.layers));
        }
        ctx.broadcast(false);
        Action::Continue
    }
}

impl ProgramSpec for HPartition {
    type Input = ();
    type Msg = LeaveMsg;
    type Output = u64;
    type Prog = HPartitionProg;

    fn build(&self, init: &NodeInit<()>) -> HPartitionProg {
        HPartitionProg {
            threshold: self.threshold(),
            layers: self.layers(),
            active_neighbors: init.degree as u64,
        }
    }

    fn default_output(&self, _init: &NodeInit<()>) -> u64 {
        self.layers()
    }
}

/// Checks that a layer assignment is a valid H-partition with the given threshold: every node
/// has at most `threshold` neighbours in its own or higher layers. (Centralised validator.)
pub fn check_h_partition(g: &Graph, layers: &[u64], threshold: u64) -> bool {
    (0..g.node_count()).all(|v| {
        let later = g.neighbors(v).iter().filter(|&&w| layers[w] >= layers[v]).count() as u64;
        later <= threshold
    })
}

/// MIS via H-partition + per-layer colouring MIS. Non-uniform in `{a, n, m}`.
#[derive(Debug, Clone)]
pub struct ArboricityMis {
    /// Guess for the arboricity `a`.
    pub arboricity_guess: u64,
    /// Guess for the number of nodes `n`.
    pub n_guess: u64,
    /// Guess for the largest identity `m`.
    pub id_bound_guess: u64,
}

impl ArboricityMis {
    fn partition(&self) -> HPartition {
        HPartition { arboricity_guess: self.arboricity_guess, n_guess: self.n_guess }
    }

    /// Upper bound on the number of rounds, as a function of the guesses:
    /// `ℓ(ñ) + 1` for the partition plus, per layer, the colouring-MIS bound with degree guess
    /// `3ã` plus two bookkeeping rounds.
    pub fn round_bound(&self) -> u64 {
        let partition = self.partition();
        let per_layer =
            ColoringMis { delta_guess: partition.threshold(), id_bound_guess: self.id_bound_guess }
                .round_bound()
                + 2;
        partition.round_bound() + partition.layers() * per_layer
    }
}

impl GraphAlgorithm for ArboricityMis {
    type Input = ();
    type Output = bool;

    fn execute(
        &self,
        graph: &Graph,
        inputs: &[()],
        budget: Option<u64>,
        seed: u64,
    ) -> AlgoRun<bool> {
        if graph.is_empty() {
            return AlgoRun::empty();
        }
        debug_assert_eq!(inputs.len(), graph.node_count());
        let n = graph.node_count();
        let partition = self.partition();
        let part_run = partition.execute(graph, inputs, budget, seed);
        let mut rounds = part_run.rounds;
        let mut messages = part_run.messages;
        let out_of_budget = |rounds: u64| budget.is_some_and(|b| rounds >= b);

        let layers = part_run.outputs.clone();
        let max_layer = partition.layers();
        let mut in_mis = vec![false; n];
        let mut dominated = vec![false; n];
        let per_layer_algo =
            ColoringMis { delta_guess: partition.threshold(), id_bound_guess: self.id_bound_guess };

        // Process layers from the last (highest) to the first.
        let mut layer = max_layer;
        let mut completed = part_run.completed;
        while layer >= 1 {
            if out_of_budget(rounds) {
                completed = false;
                break;
            }
            let keep: Vec<bool> =
                (0..n).map(|v| layers[v] == layer && !dominated[v] && !in_mis[v]).collect();
            if keep.iter().any(|&k| k) {
                let (sub, back) = graph.induced_subgraph(&keep);
                let remaining = budget.map(|b| b.saturating_sub(rounds));
                let sub_run = per_layer_algo.execute(
                    &sub,
                    &vec![(); sub.node_count()],
                    remaining,
                    seed ^ layer,
                );
                rounds += sub_run.rounds + 2; // +2: dominance notification to lower layers.
                messages += sub_run.messages;
                completed &= sub_run.completed;
                for (sub_idx, &orig) in back.iter().enumerate() {
                    if sub_run.outputs[sub_idx] {
                        in_mis[orig] = true;
                        for &w in graph.neighbors(orig) {
                            dominated[w] = true;
                        }
                    }
                }
            }
            layer -= 1;
        }
        if let Some(b) = budget {
            rounds = rounds.min(b);
        }
        AlgoRun { outputs: in_mis, rounds, messages, completed }
    }
}

/// `O(a)`-ish colouring via the H-partition: colour layer by layer from the last to the first;
/// within a layer every node has at most `3ã` already-coloured or same-layer neighbours, so a
/// palette of `3ã + 1` fresh colours per layer... is wasteful; instead we reuse the classical
/// trick of colouring the whole graph with the degree guess `3ã` applied layer by layer,
/// giving `O(ã)` colours in total when the guesses are good.
#[derive(Debug, Clone)]
pub struct ArboricityColoring {
    /// Guess for the arboricity `a`.
    pub arboricity_guess: u64,
    /// Guess for the number of nodes `n`.
    pub n_guess: u64,
    /// Guess for the largest identity `m`.
    pub id_bound_guess: u64,
}

impl ArboricityColoring {
    fn partition(&self) -> HPartition {
        HPartition { arboricity_guess: self.arboricity_guess, n_guess: self.n_guess }
    }

    /// The palette used: `6ã + 1` colours (each node has at most `3ã` neighbours in its own or
    /// later layers and we give the per-layer colouring a palette of `3ã + 1`, doubled by the
    /// layer parity trick below).
    pub fn palette(&self) -> u64 {
        6 * self.arboricity_guess.max(1) + 2
    }

    /// Upper bound on the number of rounds.
    pub fn round_bound(&self) -> u64 {
        let partition = self.partition();
        let per_layer = ReducedColoring::delta_plus_one(partition.threshold(), self.id_bound_guess)
            .round_bound()
            + 2;
        partition.round_bound() + partition.layers() * per_layer
    }
}

impl GraphAlgorithm for ArboricityColoring {
    type Input = ();
    type Output = u64;

    fn execute(
        &self,
        graph: &Graph,
        inputs: &[()],
        budget: Option<u64>,
        seed: u64,
    ) -> AlgoRun<u64> {
        if graph.is_empty() {
            return AlgoRun::empty();
        }
        debug_assert_eq!(inputs.len(), graph.node_count());
        let n = graph.node_count();
        let partition = self.partition();
        let part_run = partition.execute(graph, inputs, budget, seed);
        let mut rounds = part_run.rounds;
        let mut messages = part_run.messages;
        let layers = part_run.outputs.clone();
        let max_layer = partition.layers();
        let mut colors: Vec<u64> = vec![0; n];
        let mut colored = vec![false; n];
        let palette_half = 3 * self.arboricity_guess.max(1) + 1;
        let per_layer_algo =
            ReducedColoring::delta_plus_one(partition.threshold(), self.id_bound_guess);
        let mut completed = part_run.completed;

        // Colour layers from the last to the first. A node of layer i has ≤ 3ã neighbours in
        // layers ≥ i; conflicts with *lower* layers are avoided by alternating between two
        // disjoint colour ranges per layer parity and then greedily fixing any residual clash
        // with already-coloured higher layers (each node has ≤ 3ã of those, and the half
        // palette has 3ã + 1 colours, so a free colour always exists).
        let mut layer = max_layer;
        while layer >= 1 {
            if budget.is_some_and(|b| rounds >= b) {
                completed = false;
                break;
            }
            let keep: Vec<bool> = (0..n).map(|v| layers[v] == layer).collect();
            if keep.iter().any(|&k| k) {
                let (sub, back) = graph.induced_subgraph(&keep);
                let remaining = budget.map(|b| b.saturating_sub(rounds));
                let sub_run = per_layer_algo.execute(
                    &sub,
                    &vec![(); sub.node_count()],
                    remaining,
                    seed ^ layer,
                );
                rounds += sub_run.rounds + 2;
                messages += sub_run.messages;
                completed &= sub_run.completed;
                let offset = if layer.is_multiple_of(2) { 0 } else { palette_half };
                for (sub_idx, &orig) in back.iter().enumerate() {
                    let mut c = sub_run.outputs[sub_idx].min(palette_half - 1) + offset;
                    // Fix residual clashes with already-coloured (higher-layer) neighbours.
                    let used: std::collections::BTreeSet<u64> = graph
                        .neighbors(orig)
                        .iter()
                        .filter(|&&w| colored[w])
                        .map(|&w| colors[w])
                        .collect();
                    if used.contains(&c) {
                        c = (offset..offset + palette_half)
                            .find(|cc| !used.contains(cc))
                            .unwrap_or(c);
                    }
                    colors[orig] = c;
                    colored[orig] = true;
                }
            }
            layer -= 1;
        }
        if let Some(b) = budget {
            rounds = rounds.min(b);
        }
        AlgoRun { outputs: colors, rounds, messages, completed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkers::{check_coloring, check_mis, palette_size};
    use local_graphs::{binary_tree, forest_union, grid, path, random_tree, GraphParams};
    use local_runtime::GraphAlgorithm;

    #[test]
    fn h_partition_layer_counts_grow_logarithmically() {
        assert!(h_partition_layers(16) <= 12);
        assert!(h_partition_layers(1 << 20) <= 40);
        assert!(h_partition_layers(1 << 20) >= h_partition_layers(16));
    }

    #[test]
    fn h_partition_is_valid_on_low_arboricity_graphs() {
        for g in [random_tree(100, 1), forest_union(120, 3, 2), grid(8, 8), binary_tree(63)] {
            let p = GraphParams::of(&g);
            let hp = HPartition { arboricity_guess: p.degeneracy.max(1), n_guess: p.n };
            let run = hp.execute(&g, &vec![(); g.node_count()], None, 0);
            assert!(run.completed);
            assert!(
                check_h_partition(&g, &run.outputs, hp.threshold()),
                "invalid H-partition (threshold {})",
                hp.threshold()
            );
            assert!(run.rounds <= hp.round_bound());
        }
    }

    #[test]
    fn h_partition_respects_budget_with_bad_guesses() {
        let g = local_graphs::complete(30);
        let hp = HPartition { arboricity_guess: 1, n_guess: 4 };
        let run = hp.execute(&g, &[(); 30], None, 0);
        // Even with silly guesses the algorithm stops by itself within its round bound.
        assert!(run.rounds <= hp.round_bound());
    }

    #[test]
    fn arboricity_mis_is_correct_on_forests_and_grids() {
        for g in [random_tree(80, 3), forest_union(90, 2, 5), grid(7, 7), path(40)] {
            let p = GraphParams::of(&g);
            let algo = ArboricityMis {
                arboricity_guess: p.degeneracy.max(1),
                n_guess: p.n,
                id_bound_guess: p.max_id,
            };
            let run = algo.execute(&g, &vec![(); g.node_count()], None, 0);
            assert!(run.completed);
            check_mis(&g, &run.outputs).unwrap();
            assert!(run.rounds <= algo.round_bound());
        }
    }

    #[test]
    fn arboricity_mis_respects_budget() {
        let g = forest_union(100, 3, 1);
        let algo = ArboricityMis { arboricity_guess: 1, n_guess: 2, id_bound_guess: 2 };
        let run = algo.execute(&g, &[(); 100], Some(9), 0);
        assert!(run.rounds <= 9);
        assert_eq!(run.outputs.len(), 100);
    }

    #[test]
    fn arboricity_coloring_is_proper_with_bounded_palette() {
        for g in [random_tree(70, 9), forest_union(80, 3, 3), grid(6, 9)] {
            let p = GraphParams::of(&g);
            let algo = ArboricityColoring {
                arboricity_guess: p.degeneracy.max(1),
                n_guess: p.n,
                id_bound_guess: p.max_id,
            };
            let run = algo.execute(&g, &vec![(); g.node_count()], None, 0);
            assert!(run.completed);
            check_coloring(&g, &run.outputs).expect("arboricity colouring must be proper");
            assert!(
                (palette_size(&run.outputs) as u64) <= algo.palette(),
                "{} colours used, palette {}",
                palette_size(&run.outputs),
                algo.palette()
            );
            assert!(run.outputs.iter().all(|&c| c < algo.palette()));
        }
    }

    #[test]
    fn empty_graph_runs() {
        let g = local_runtime::Graph::from_edges(0, &[]).unwrap();
        let algo = ArboricityMis { arboricity_guess: 1, n_guess: 1, id_bound_guess: 1 };
        assert!(algo.execute(&g, &[], None, 0).completed);
    }
}

//! Edge-colouring algorithms.
//!
//! [`LineGraphEdgeColoring`] colours the edges of `G` by running the non-uniform vertex
//! colouring pipeline on the line graph `L(G)`: the maximum degree of `L(G)` is at most
//! `2(Δ−1)`, so a (Δ_L+1)-colouring of `L(G)` is a proper edge colouring of `G` with
//! `2Δ − 1` colours. This mirrors how Barenboim–Elkin obtain their edge-colouring algorithms
//! (the paper applies Theorem 5 to a vertex-colouring algorithm run on line graphs,
//! Section 5.2).
//!
//! **Round accounting.** One round of a LOCAL algorithm on `L(G)` is simulated in one round on
//! `G` by letting *both* endpoints of every edge run the edge's automaton: two edges adjacent
//! in `L(G)` share an endpoint, which can forward their messages within a single round of `G`.
//! The composite therefore charges the `L(G)` execution's rounds plus one.

use crate::coloring::ReducedColoring;
use local_runtime::{AlgoRun, Graph, GraphAlgorithm};

/// Proper edge colouring with `2Δ̃ − 1` colours via vertex-colouring the line graph.
/// Non-uniform in `{Δ, m}`.
#[derive(Debug, Clone)]
pub struct LineGraphEdgeColoring {
    /// Guess for the maximum degree `Δ` of the original graph.
    pub delta_guess: u64,
    /// Guess for the largest identity `m` of the original graph.
    pub id_bound_guess: u64,
}

impl LineGraphEdgeColoring {
    /// The degree guess used on the line graph: `Δ(L(G)) ≤ 2(Δ − 1)`.
    pub fn line_graph_delta_guess(&self) -> u64 {
        2 * self.delta_guess.saturating_sub(1).max(1)
    }

    /// The identity bound used on the line graph (edge identities are packed from the endpoint
    /// identities; see [`Graph::line_graph`]).
    pub fn line_graph_id_bound(&self) -> u64 {
        self.id_bound_guess.saturating_mul(1_000_003).saturating_add(self.id_bound_guess).max(1)
    }

    /// Number of colours used (the palette of the line-graph colouring): `2Δ̃ − 1`.
    pub fn palette(&self) -> u64 {
        self.line_graph_delta_guess() + 1
    }

    /// Upper bound on the number of rounds, as a function of the guesses.
    pub fn round_bound(&self) -> u64 {
        ReducedColoring::delta_plus_one(self.line_graph_delta_guess(), self.line_graph_id_bound())
            .round_bound()
            + 1
    }

    fn inner(&self) -> ReducedColoring {
        ReducedColoring::delta_plus_one(self.line_graph_delta_guess(), self.line_graph_id_bound())
    }
}

impl GraphAlgorithm for LineGraphEdgeColoring {
    type Input = ();
    type Output = Vec<u64>;

    fn execute(
        &self,
        graph: &Graph,
        inputs: &[()],
        budget: Option<u64>,
        seed: u64,
    ) -> AlgoRun<Vec<u64>> {
        if graph.is_empty() {
            return AlgoRun::empty();
        }
        debug_assert_eq!(inputs.len(), graph.node_count());
        let (lg, edges) = graph.line_graph();
        if lg.is_empty() {
            // No edges: every node has an empty port-colour vector.
            return AlgoRun {
                outputs: vec![Vec::new(); graph.node_count()],
                rounds: 0,
                messages: 0,
                completed: true,
            };
        }
        let inner = self.inner();
        let lg_run = inner.execute(&lg, &vec![(); lg.node_count()], budget, seed);

        // Index edges for the mapping back to ports.
        let mut edge_color = std::collections::HashMap::new();
        for (i, &(u, v)) in edges.iter().enumerate() {
            edge_color.insert((u.min(v), u.max(v)), lg_run.outputs[i]);
        }
        let outputs: Vec<Vec<u64>> = (0..graph.node_count())
            .map(|v| {
                graph.neighbors(v).iter().map(|&w| edge_color[&(v.min(w), v.max(w))]).collect()
            })
            .collect();
        AlgoRun {
            outputs,
            rounds: (lg_run.rounds + 1).min(budget.unwrap_or(u64::MAX)),
            messages: lg_run.messages,
            completed: lg_run.completed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkers::{check_edge_coloring, palette_size};
    use local_graphs::{cycle, gnp, grid, path, star, GraphParams};

    #[test]
    fn edge_coloring_is_proper_on_many_graphs() {
        for g in [path(20), cycle(15), grid(5, 5), star(10), gnp(50, 0.1, 2)] {
            let p = GraphParams::of(&g);
            let algo =
                LineGraphEdgeColoring { delta_guess: p.max_degree, id_bound_guess: p.max_id };
            let run = algo.execute(&g, &vec![(); g.node_count()], None, 0);
            assert!(run.completed);
            check_edge_coloring(&g, &run.outputs).expect("edge colouring must be proper");
            assert!(run.rounds <= algo.round_bound());
        }
    }

    #[test]
    fn edge_coloring_palette_is_at_most_2_delta_minus_1() {
        let g = gnp(60, 0.08, 7);
        let p = GraphParams::of(&g);
        let algo = LineGraphEdgeColoring { delta_guess: p.max_degree, id_bound_guess: p.max_id };
        let run = algo.execute(&g, &vec![(); g.node_count()], None, 0);
        let all_colors: Vec<u64> = run.outputs.iter().flatten().copied().collect();
        assert!(palette_size(&all_colors) as u64 <= algo.palette());
        assert!(all_colors.iter().all(|&c| c < algo.palette()));
    }

    #[test]
    fn star_needs_degree_many_colors() {
        let g = star(8);
        let algo = LineGraphEdgeColoring { delta_guess: 7, id_bound_guess: 7 };
        let run = algo.execute(&g, &[(); 8], None, 0);
        check_edge_coloring(&g, &run.outputs).unwrap();
        // All 7 edges share the centre, so 7 distinct colours are necessary.
        let center: std::collections::BTreeSet<u64> = run.outputs[0].iter().copied().collect();
        assert_eq!(center.len(), 7);
    }

    #[test]
    fn edgeless_graph_gets_empty_port_vectors() {
        let g = local_graphs::edgeless(5);
        let algo = LineGraphEdgeColoring { delta_guess: 1, id_bound_guess: 5 };
        let run = algo.execute(&g, &[(); 5], None, 0);
        assert!(run.completed);
        assert!(run.outputs.iter().all(|v| v.is_empty()));
    }

    #[test]
    fn budget_is_respected() {
        let g = gnp(40, 0.2, 1);
        let algo = LineGraphEdgeColoring { delta_guess: 30, id_bound_guess: 1 << 20 };
        let run = algo.execute(&g, &[(); 40], Some(3), 0);
        assert!(run.rounds <= 3);
    }
}

//! Synthetic timed black boxes.
//!
//! The paper's transformers treat the non-uniform algorithm as a black box characterised only
//! by (i) which parameters it needs, (ii) a non-decreasing bound `f` on its running time as a
//! function of the *guesses*, and (iii) correctness whenever the guesses are good. A synthetic
//! black box reproduces exactly that interface for an arbitrary time function `f` — e.g. the
//! `2^{O(√log n)}` of Panconesi–Srinivasan, the `O(log⁴ n)` of Hańćkowiak et al., or the
//! `O(2^c · log^{1/c} n)` of Schneider–Wattenhofer — without implementing those algorithms:
//!
//! * it *charges* `f(guesses)` rounds (capped at the budget),
//! * if every guess is at least the true parameter value of the executed (sub)graph, it emits
//!   a correct solution (computed centrally),
//! * otherwise it emits garbage, exactly like a real non-uniform algorithm run with bad
//!   guesses is allowed to.
//!
//! This is a **simulated** dependency (documented in DESIGN.md): it exercises the
//! transformers' guess schedules, iteration counts, and round accounting for the paper's exact
//! time functions, which is what Table 1 rows (ii), (viii) and (ix) need.

use crate::mis::{central_greedy_mis, central_greedy_mis_view};
use local_graphs::Parameter;
use local_runtime::{AlgoRun, Graph, GraphAlgorithm, GraphView, NodeId, Session};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// A running-time bound: maps the vector of guesses to a number of rounds.
pub type TimeFunction = Arc<dyn Fn(&[u64]) -> u64 + Send + Sync>;

/// Which problem a synthetic black box solves (determines how the reference solution is
/// computed and what "garbage" looks like).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyntheticProblem {
    /// Maximal independent set (output `bool`).
    Mis,
    /// Maximal matching (output `Option<NodeId>`), derived greedily from identities.
    MaximalMatching,
}

/// A synthetic non-uniform black box for MIS.
#[derive(Clone)]
pub struct SyntheticMis {
    /// The parameters the algorithm "requires" (in order; guesses are matched positionally).
    pub parameters: Vec<Parameter>,
    /// The guesses the algorithm was instantiated with.
    pub guesses: Vec<u64>,
    /// Declared running-time bound as a function of the guesses.
    pub time: TimeFunction,
    /// Probability that the algorithm succeeds even though it is given good guesses; `1.0`
    /// models a deterministic algorithm, `ρ < 1` models a weak Monte-Carlo algorithm with
    /// guarantee `ρ`.
    pub success_probability: f64,
}

impl std::fmt::Debug for SyntheticMis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyntheticMis")
            .field("parameters", &self.parameters)
            .field("guesses", &self.guesses)
            .field("success_probability", &self.success_probability)
            .finish()
    }
}

impl SyntheticMis {
    /// A deterministic synthetic MIS with the Panconesi–Srinivasan time shape
    /// `2^{c·√(log₂ ñ)}`, parameterised by `n` only.
    pub fn panconesi_srinivasan(n_guess: u64, c: f64) -> Self {
        SyntheticMis {
            parameters: vec![Parameter::N],
            guesses: vec![n_guess],
            time: Arc::new(move |g: &[u64]| {
                let n = g[0].max(2) as f64;
                (2f64.powf(c * n.log2().sqrt())).ceil() as u64
            }),
            success_probability: 1.0,
        }
    }

    /// A deterministic synthetic MIS with an additive `c₁·Δ̃ + c₂·log₂* m̃`-style bound,
    /// parameterised by `{Δ, m}` (the Barenboim–Elkin / Kuhn shape).
    pub fn additive_delta_logstar(
        delta_weight: u64,
        logstar_weight: u64,
    ) -> impl Fn(u64, u64) -> Self {
        move |delta_guess: u64, id_guess: u64| SyntheticMis {
            parameters: vec![Parameter::MaxDegree, Parameter::MaxId],
            guesses: vec![delta_guess, id_guess],
            time: Arc::new(move |g: &[u64]| {
                delta_weight * g[0] + logstar_weight * local_graphs::log_star(g[1] as f64).max(1)
            }),
            success_probability: 1.0,
        }
    }

    /// A weak Monte-Carlo synthetic MIS with guarantee `rho` and bound `c·log₂ ñ`.
    pub fn monte_carlo_log(n_guess: u64, c: u64, rho: f64) -> Self {
        SyntheticMis {
            parameters: vec![Parameter::N],
            guesses: vec![n_guess],
            time: Arc::new(move |g: &[u64]| c * (g[0].max(2) as f64).log2().ceil() as u64),
            success_probability: rho,
        }
    }

    /// The declared bound evaluated at the instantiated guesses.
    pub fn declared_rounds(&self) -> u64 {
        (self.time)(&self.guesses)
    }

    fn guesses_are_good(&self, graph: &Graph) -> bool {
        self.parameters.iter().zip(self.guesses.iter()).all(|(p, &guess)| guess >= p.eval(graph))
    }

    fn guesses_are_good_view(&self, view: &GraphView<'_>) -> bool {
        self.parameters
            .iter()
            .zip(self.guesses.iter())
            .all(|(p, &guess)| guess >= p.eval_view(view))
    }
}

impl GraphAlgorithm for SyntheticMis {
    type Input = ();
    type Output = bool;

    fn execute(
        &self,
        graph: &Graph,
        inputs: &[()],
        budget: Option<u64>,
        seed: u64,
    ) -> AlgoRun<bool> {
        if graph.is_empty() {
            return AlgoRun::empty();
        }
        debug_assert_eq!(inputs.len(), graph.node_count());
        let declared = self.declared_rounds();
        let rounds = budget.map_or(declared, |b| b.min(declared));
        let finished_in_time = budget.is_none_or(|b| declared <= b);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x53_59_4e_54);
        let lucky = rng.gen_bool(self.success_probability.clamp(0.0, 1.0));
        let correct = finished_in_time && self.guesses_are_good(graph) && lucky;
        let outputs = if correct {
            central_greedy_mis(graph)
        } else {
            // Garbage: an output vector that is *not* promised to be a solution (all-out is the
            // paper's canonical arbitrary output).
            vec![false; graph.node_count()]
        };
        AlgoRun { outputs, rounds, messages: 0, completed: finished_in_time }
    }

    fn execute_view(
        &self,
        view: &GraphView<'_>,
        inputs: &[()],
        budget: Option<u64>,
        seed: u64,
        _session: &mut Session,
    ) -> AlgoRun<bool> {
        if view.is_empty() {
            return AlgoRun::empty();
        }
        debug_assert_eq!(inputs.len(), view.node_count());
        let declared = self.declared_rounds();
        let rounds = budget.map_or(declared, |b| b.min(declared));
        let finished_in_time = budget.is_none_or(|b| declared <= b);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x53_59_4e_54);
        let lucky = rng.gen_bool(self.success_probability.clamp(0.0, 1.0));
        let correct = finished_in_time && self.guesses_are_good_view(view) && lucky;
        let outputs =
            if correct { central_greedy_mis_view(view) } else { vec![false; view.node_count()] };
        AlgoRun { outputs, rounds, messages: 0, completed: finished_in_time }
    }
}

/// A synthetic non-uniform black box for maximal matching with an `O(log⁴ ñ)` bound
/// (the Hańćkowiak–Karoński–Panconesi shape), parameterised by `n`.
#[derive(Clone)]
pub struct SyntheticMatching {
    /// Guess for `n`.
    pub n_guess: u64,
    /// Multiplier in front of `log₂⁴ ñ`.
    pub scale: f64,
}

impl std::fmt::Debug for SyntheticMatching {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyntheticMatching")
            .field("n_guess", &self.n_guess)
            .field("scale", &self.scale)
            .finish()
    }
}

impl SyntheticMatching {
    /// The declared `scale · log₂⁴ ñ` bound.
    pub fn declared_rounds(&self) -> u64 {
        let l = (self.n_guess.max(2) as f64).log2();
        (self.scale * l.powi(4)).ceil().max(1.0) as u64
    }
}

/// Central greedy maximal matching by identity order (reference solution).
pub fn central_greedy_matching(g: &Graph) -> Vec<Option<NodeId>> {
    let mut edges: Vec<(usize, usize)> = g.edges().collect();
    edges.sort_by_key(|&(u, v)| (g.id(u).min(g.id(v)), g.id(u).max(g.id(v))));
    let mut partner: Vec<Option<NodeId>> = vec![None; g.node_count()];
    for (u, v) in edges {
        if partner[u].is_none() && partner[v].is_none() {
            partner[u] = Some(g.id(v));
            partner[v] = Some(g.id(u));
        }
    }
    partner
}

/// [`central_greedy_matching`] over a live [`GraphView`]; identical (live-indexed) output to
/// the graph version on the materialized subgraph.
pub fn central_greedy_matching_view(view: &GraphView<'_>) -> Vec<Option<NodeId>> {
    let mut edges: Vec<(usize, usize)> = view.edges().collect();
    edges.sort_by_key(|&(u, v)| (view.id(u).min(view.id(v)), view.id(u).max(view.id(v))));
    let mut partner: Vec<Option<NodeId>> = vec![None; view.node_count()];
    for (u, v) in edges {
        if partner[u].is_none() && partner[v].is_none() {
            partner[u] = Some(view.id(v));
            partner[v] = Some(view.id(u));
        }
    }
    partner
}

impl GraphAlgorithm for SyntheticMatching {
    type Input = ();
    type Output = Option<NodeId>;

    fn execute(
        &self,
        graph: &Graph,
        inputs: &[()],
        budget: Option<u64>,
        _seed: u64,
    ) -> AlgoRun<Option<NodeId>> {
        if graph.is_empty() {
            return AlgoRun::empty();
        }
        debug_assert_eq!(inputs.len(), graph.node_count());
        let declared = self.declared_rounds();
        let rounds = budget.map_or(declared, |b| b.min(declared));
        let finished_in_time = budget.is_none_or(|b| declared <= b);
        let good = self.n_guess >= graph.node_count() as u64;
        let outputs = if finished_in_time && good {
            central_greedy_matching(graph)
        } else {
            vec![None; graph.node_count()]
        };
        AlgoRun { outputs, rounds, messages: 0, completed: finished_in_time }
    }

    fn execute_view(
        &self,
        view: &GraphView<'_>,
        inputs: &[()],
        budget: Option<u64>,
        _seed: u64,
        _session: &mut Session,
    ) -> AlgoRun<Option<NodeId>> {
        if view.is_empty() {
            return AlgoRun::empty();
        }
        debug_assert_eq!(inputs.len(), view.node_count());
        let declared = self.declared_rounds();
        let rounds = budget.map_or(declared, |b| b.min(declared));
        let finished_in_time = budget.is_none_or(|b| declared <= b);
        let good = self.n_guess >= view.node_count() as u64;
        let outputs = if finished_in_time && good {
            central_greedy_matching_view(view)
        } else {
            vec![None; view.node_count()]
        };
        AlgoRun { outputs, rounds, messages: 0, completed: finished_in_time }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkers::{check_maximal_matching, check_mis};
    use local_graphs::{gnp, GraphParams};
    use local_runtime::GraphAlgorithm;

    #[test]
    fn synthetic_ps_mis_correct_with_good_guess() {
        let g = gnp(60, 0.1, 1);
        let algo = SyntheticMis::panconesi_srinivasan(60, 1.5);
        let run = algo.execute(&g, &[(); 60], None, 0);
        assert!(run.completed);
        check_mis(&g, &run.outputs).unwrap();
        assert_eq!(run.rounds, algo.declared_rounds());
    }

    #[test]
    fn synthetic_ps_mis_garbage_with_bad_guess() {
        let g = gnp(60, 0.1, 1);
        let algo = SyntheticMis::panconesi_srinivasan(4, 1.5);
        let run = algo.execute(&g, &[(); 60], None, 0);
        // All-out is not an MIS on a non-empty graph with edges.
        assert!(check_mis(&g, &run.outputs).is_err());
    }

    #[test]
    fn synthetic_rounds_respect_budget() {
        let g = gnp(60, 0.1, 1);
        let algo = SyntheticMis::panconesi_srinivasan(1 << 30, 2.0);
        let run = algo.execute(&g, &[(); 60], Some(5), 0);
        assert_eq!(run.rounds, 5);
        assert!(!run.completed);
        // Cut off before its declared time, so no correctness promise: output is garbage.
        assert!(run.outputs.iter().all(|&b| !b));
    }

    #[test]
    fn additive_synthetic_uses_both_parameters() {
        let g = gnp(80, 0.1, 2);
        let p = GraphParams::of(&g);
        let make = SyntheticMis::additive_delta_logstar(1, 3);
        let algo = make(p.max_degree, p.max_id);
        let run = algo.execute(&g, &[(); 80], None, 0);
        check_mis(&g, &run.outputs).unwrap();
        assert_eq!(run.rounds, p.max_degree + 3 * local_graphs::log_star(p.max_id as f64));
    }

    #[test]
    fn monte_carlo_synthetic_sometimes_fails() {
        let g = gnp(50, 0.1, 3);
        let algo = SyntheticMis::monte_carlo_log(50, 4, 0.5);
        let mut successes = 0;
        for seed in 0..40 {
            let run = algo.execute(&g, &[(); 50], None, seed);
            if check_mis(&g, &run.outputs).is_ok() {
                successes += 1;
            }
        }
        assert!(successes > 5, "success probability far below guarantee");
        assert!(successes < 40, "a ρ=0.5 Monte-Carlo black box must fail sometimes");
    }

    #[test]
    fn synthetic_matching_shape_and_correctness() {
        let g = gnp(70, 0.1, 5);
        let algo = SyntheticMatching { n_guess: 70, scale: 0.1 };
        let run = algo.execute(&g, &[(); 70], None, 0);
        check_maximal_matching(&g, &run.outputs).unwrap();
        let small = SyntheticMatching { n_guess: 256, scale: 1.0 }.declared_rounds();
        let large = SyntheticMatching { n_guess: 65536, scale: 1.0 }.declared_rounds();
        // log⁴: doubling the exponent multiplies the bound by 16.
        assert_eq!(large, small * 16);
    }

    #[test]
    fn central_greedy_matching_is_maximal() {
        for seed in 0..3 {
            let g = gnp(60, 0.1, seed);
            check_maximal_matching(&g, &central_greedy_matching(&g)).unwrap();
        }
    }
}

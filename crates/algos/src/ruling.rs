//! Ruling-set algorithms.
//!
//! A set `S` is `(α, β)`-ruling if set nodes are pairwise at distance at least `α` and every
//! node is within distance `β` of a set node. MIS is exactly the (2, 1)-ruling set problem.
//!
//! [`MisRulingSet`] — any MIS is a (2, β)-ruling set for every `β ≥ 1`; this wrapper runs a
//! budgeted Luby MIS and is the *weak Monte-Carlo* (2, β)-ruling set algorithm fed to the
//! Theorem 2 transformer for Table 1 row 9. Its declared round bound is `c · ⌈log₂ ñ⌉`
//! (non-uniform in `{n}`); within that budget the output is a correct ruling set with
//! probability well above 1/2 on the graph families we benchmark — exactly the weak
//! Monte-Carlo contract of Section 2 (the algorithm need not have terminated everywhere by its
//! declared running time, but when it has, the output is correct).
//!
//! The exact Schneider–Wattenhofer `O(2^c log^{1/c} n)` bound of Table 1 row 9 is exercised
//! through the synthetic black boxes (see `synthetic.rs` and DESIGN.md): the transformer never
//! looks inside the algorithm, only at its declared time bound and its output.

use crate::mis::LubyMis;
use local_runtime::{AlgoRun, Graph, GraphAlgorithm, GraphView, Session};

/// Budgeted-Luby (2, β)-ruling set: a weak Monte-Carlo algorithm, non-uniform in `{n}`.
#[derive(Debug, Clone)]
pub struct MisRulingSet {
    /// Guess for the number of nodes `n`.
    pub n_guess: u64,
    /// Multiplier on `⌈log₂ ñ⌉` defining the declared round bound.
    pub rounds_per_log: u64,
}

impl MisRulingSet {
    /// A reasonable default: 8 phases (16 rounds) per `log₂ ñ`.
    pub fn with_default_budget(n_guess: u64) -> Self {
        MisRulingSet { n_guess, rounds_per_log: 16 }
    }

    /// Declared upper bound on the number of rounds (a function of the guess only).
    pub fn round_bound(&self) -> u64 {
        let log = (self.n_guess.max(2) as f64).log2().ceil() as u64;
        self.rounds_per_log * log.max(1) + 2
    }
}

impl GraphAlgorithm for MisRulingSet {
    type Input = ();
    type Output = bool;

    fn execute(
        &self,
        graph: &Graph,
        inputs: &[()],
        budget: Option<u64>,
        seed: u64,
    ) -> AlgoRun<bool> {
        let own_bound = self.round_bound();
        let effective = budget.map_or(own_bound, |b| b.min(own_bound));
        LubyMis.execute(graph, inputs, Some(effective), seed)
    }

    fn execute_view(
        &self,
        view: &GraphView<'_>,
        inputs: &[()],
        budget: Option<u64>,
        seed: u64,
        session: &mut Session,
    ) -> AlgoRun<bool> {
        let own_bound = self.round_bound();
        let effective = budget.map_or(own_bound, |b| b.min(own_bound));
        LubyMis.execute_view(view, inputs, Some(effective), seed, session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkers::{check_independent_set, check_ruling_set};
    use local_graphs::{cycle, gnp, grid, path, GraphParams};
    use local_runtime::GraphAlgorithm;

    #[test]
    fn budgeted_luby_ruling_set_is_usually_a_mis() {
        for (i, g) in [path(40), cycle(30), grid(6, 6), gnp(100, 0.08, 4)].iter().enumerate() {
            let p = GraphParams::of(g);
            let algo = MisRulingSet::with_default_budget(p.n);
            let run = algo.execute(g, &vec![(); g.node_count()], None, i as u64);
            assert!(run.rounds <= algo.round_bound());
            // With the default budget the Luby run virtually always completes on these sizes,
            // in which case the output is an MIS and hence a (2, β)-ruling set for any β ≥ 1.
            if run.completed {
                check_ruling_set(g, &run.outputs, 2, 1).unwrap();
                check_ruling_set(g, &run.outputs, 2, 3).unwrap();
            } else {
                check_independent_set(g, &run.outputs).unwrap();
            }
        }
    }

    #[test]
    fn tiny_budget_still_yields_independent_partial_output() {
        let g = gnp(150, 0.05, 7);
        let algo = MisRulingSet { n_guess: 150, rounds_per_log: 1 };
        let run = algo.execute(&g, &[(); 150], None, 0);
        assert!(run.rounds <= algo.round_bound());
        check_independent_set(&g, &run.outputs).unwrap();
    }

    #[test]
    fn declared_bound_grows_logarithmically() {
        let small = MisRulingSet::with_default_budget(1 << 8).round_bound();
        let large = MisRulingSet::with_default_budget(1 << 32).round_bound();
        // Squaring n twice (2^8 → 2^32) only quadruples the declared bound.
        assert!(large <= 4 * small);
        assert!(large > small);
    }

    #[test]
    fn external_budget_overrides_internal_bound() {
        let g = gnp(80, 0.1, 0);
        let algo = MisRulingSet::with_default_budget(80);
        let run = algo.execute(&g, &[(); 80], Some(3), 0);
        assert!(run.rounds <= 3);
    }
}

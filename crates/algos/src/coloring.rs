//! Non-uniform vertex-colouring algorithms.
//!
//! Two building blocks, both classical and both *non-uniform* (they need guesses for the
//! maximum degree `Δ` and the largest identity `m`):
//!
//! * [`LinialColoring`] — Linial's iterated colour reduction. Starting from the identities
//!   (an `m̃+1`-colouring), each round maps the current colouring to one over a quadratically
//!   smaller palette using an explicit polynomial (cover-free-family) construction; after
//!   `O(log* m̃)` rounds the palette stabilises at `O(Δ̃²)` colours (`q²` for the smallest
//!   prime `q > Δ̃`).
//! * [`ReducedColoring`] — colour elimination: given the Linial colouring, repeatedly recolour
//!   the highest colour class (an independent set) greedily into a target palette, one class
//!   per round, until `max(target, Δ̃+1)` colours remain. With `target = Δ̃+1` this yields the
//!   classical `(Δ+1)`-colouring in `O(Δ̃² + log* m̃)` rounds; with `target = λ(Δ̃+1)` it yields
//!   the λ(Δ+1)-colouring trade-off of Table 1 row 5.
//!
//! Substitution note (see DESIGN.md): the paper cites `O(Δ + log* n)` algorithms
//! (Barenboim–Elkin, Kuhn); we implement the `O(Δ² + log* n)` textbook pipeline, which has the
//! same *parameter set* and the same additive structure of its time bound, which is all the
//! transformer framework observes.
//!
//! Also provided: [`MisFromColoring`], the standard reduction that turns any proper colouring
//! into an MIS in (number of colours) extra rounds, and is *uniform* given the colouring.

use local_runtime::{Action, NodeInit, NodeProgram, ProgramSpec, RoundCtx};
use std::cell::RefCell;
use std::sync::Arc;

/// Returns the smallest prime `>= x` (trial division; fine for the palette sizes involved).
pub fn smallest_prime_at_least(x: u64) -> u64 {
    let mut candidate = x.max(2);
    loop {
        if is_prime(candidate) {
            return candidate;
        }
        candidate += 1;
    }
}

fn is_prime(x: u64) -> bool {
    if x < 2 {
        return false;
    }
    if x.is_multiple_of(2) {
        return x == 2;
    }
    let mut d = 3;
    while d * d <= x {
        if x.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// One step of Linial's reduction: given a palette of size `k` and a degree bound `delta`,
/// returns the parameters `(d, q)` of the polynomial construction — polynomials of degree at
/// most `d` over `F_q` with `q` prime, `q > d·delta` and `q^(d+1) >= k` — choosing the smallest
/// workable `d`. The new palette has size `q²`.
pub fn linial_step(k: u64, delta: u64) -> (u32, u64) {
    let delta = delta.max(1);
    for d in 1u32..=64 {
        let q = smallest_prime_at_least(u64::from(d) * delta + 1);
        // q^(d+1) >= k, computed in logs to avoid overflow.
        let lhs = f64::from(d + 1) * (q as f64).ln();
        let rhs = (k.max(1) as f64).ln();
        if lhs >= rhs {
            return (d, q);
        }
    }
    // Unreachable for any sane k (2^64 at most); fall back to a huge degree.
    (64, smallest_prime_at_least(64 * delta + 1))
}

/// The deterministic schedule of palette sizes produced by iterating [`linial_step`] from an
/// initial palette of `m + 1` colours (identities in `[0, m]`) until it stops shrinking.
///
/// All nodes compute the same schedule from the same guesses, which is how they agree on the
/// number of rounds — this is exactly the paper's notion of the algorithm *using* the guesses.
pub fn linial_schedule(id_bound: u64, delta: u64) -> Vec<(u32, u64)> {
    let mut schedule = Vec::new();
    let mut palette = id_bound.saturating_add(1).max(2);
    loop {
        let (d, q) = linial_step(palette, delta);
        let next = q.saturating_mul(q);
        if next >= palette || schedule.len() >= 64 {
            break;
        }
        schedule.push((d, q));
        palette = next;
    }
    schedule
}

/// The palette size after running the full Linial schedule (the `O(Δ²)` bound).
pub fn linial_final_palette(id_bound: u64, delta: u64) -> u64 {
    let mut palette = id_bound.saturating_add(1).max(2);
    for &(_, q) in &linial_schedule(id_bound, delta) {
        palette = q * q;
    }
    palette
}

/// Appends the coefficients (base-`q` digits) of a colour's polynomial of degree `<= d`.
///
/// Stops dividing as soon as the colour is exhausted and pads with zeros: under a generous
/// identity-bound guess (say `m̃ = 2^48` against identities around `10^4`) almost all high
/// digits are zero, and skipping their divisions is the hot-path win of the Linial step.
#[cfg(test)]
fn push_poly_digits(color: u64, d: u32, q: u64, out: &mut Vec<u64>) {
    let modq = (q < local_simd::EVAL_POLY_MAX_Q).then(|| local_simd::ModQ::new(q));
    push_poly_digits_with(color, d, q, modq, out);
}

/// [`push_poly_digits`] with a caller-supplied reciprocal context, so per-neighbour digit
/// splits inside one recolouring share a single `ModQ::new`. The reciprocal divisions are
/// exact (same digits as `%`/`/`) within the `ModQ` operand bound; anything else falls back
/// to hardware division.
fn push_poly_digits_with(
    color: u64,
    d: u32,
    q: u64,
    modq: Option<local_simd::ModQ>,
    out: &mut Vec<u64>,
) {
    let mut rest = color;
    let mut produced = 0u32;
    match modq {
        Some(m) if color < local_simd::ModQ::MAX_OPERAND => {
            while rest > 0 && produced <= d {
                let (k, r) = m.div_rem(rest);
                out.push(r);
                rest = k;
                produced += 1;
            }
        }
        _ => {
            while rest > 0 && produced <= d {
                out.push(rest % q);
                rest /= q;
                produced += 1;
            }
        }
    }
    for _ in produced..=d {
        out.push(0);
    }
}

/// Maps a colour to the coefficients (base-`q` digits) of its polynomial of degree `<= d`.
#[cfg(test)]
fn color_to_poly(color: u64, d: u32, q: u64) -> Vec<u64> {
    let mut coeffs = Vec::with_capacity(d as usize + 1);
    push_poly_digits(color, d, q, &mut coeffs);
    coeffs
}

fn eval_poly(coeffs: &[u64], a: u64, q: u64) -> u64 {
    // Leading zero coefficients leave a Horner accumulator at zero; skip their
    // multiply-and-reduce steps outright (the digit layout above makes them the common
    // case under generous guesses).
    let mut coeffs = coeffs;
    while let Some((&0, rest)) = coeffs.split_last() {
        coeffs = rest;
    }
    if q < (1 << 20) {
        // Hot path: with q < 2^20 two unreduced Horner steps stay below q³ + q² + q < 2^62,
        // so one division pays for two coefficients. This runs once per (evaluation point ×
        // neighbour × node × Linial round) — the inner loop of the colouring attempts.
        let mut acc: u64 = 0;
        let mut chunks = coeffs.rchunks_exact(2);
        for pair in &mut chunks {
            acc = ((acc * a + pair[1]) * a + pair[0]) % q;
        }
        if let [c] = chunks.remainder() {
            acc = (acc * a + *c) % q;
        }
        return acc;
    }
    if q < (1 << 32) {
        let mut acc: u64 = 0;
        for &c in coeffs.iter().rev() {
            acc = (acc * a + c) % q;
        }
        return acc;
    }
    let mut acc: u128 = 0;
    for &c in coeffs.iter().rev() {
        acc = (acc * u128::from(a) + u128::from(c)) % u128::from(q);
    }
    acc as u64
}

/// Reusable workspace of the Linial recolouring step: the node's own polynomial digits, the
/// neighbours' digits (flattened, stride `d + 1`), and the inbox colours. One per *thread*
/// (see [`RECOLOR_SCRATCH`]), shared by every node automaton the thread runs — capacities go
/// warm within the first few recolourings and attempts allocate nothing after that.
#[derive(Debug, Clone, Default)]
struct RecolorScratch {
    mine: Vec<u64>,
    others: Vec<u64>,
    neighbor_colors: Vec<u64>,
}

thread_local! {
    /// The per-thread recolouring workspace. Node automata run strictly sequentially on
    /// their thread and a `round()` call never re-enters, so one workspace serves them all —
    /// unlike a per-program buffer it is not reallocated from empty on every attempt of an
    /// alternation run.
    static RECOLOR_SCRATCH: RefCell<RecolorScratch> = RefCell::new(RecolorScratch::default());
}

impl RecolorScratch {
    /// Given my colour, the neighbour colours staged in `self.neighbor_colors`, and the step
    /// parameters, pick the new colour `a·q + p(a)` for an evaluation point `a` where my
    /// polynomial differs from every neighbour's.
    ///
    /// Scan order (and therefore the result) is exactly the reference loop at the bottom:
    /// smallest evaluation point whose digest differs from every neighbour's, early-exiting
    /// on the first clash. The arithmetic is tiered for the overwhelmingly common outcome
    /// that `a = 0` is already free: `p(0)` is just the colour's lowest base-`q` digit, so
    /// the `a = 0` test is one reciprocal reduction per neighbour — no digit arrays are
    /// built at all unless `a = 0` clashes.
    fn recolor(&mut self, my_color: u64, d: u32, q: u64) -> u64 {
        let stride = d as usize + 1;
        // Small-field fast path (the practical case): digit splits and Horner steps go
        // through the exact reciprocal context, and my own digest is evaluated eight
        // candidate points at a time by the dispatched block kernel.
        let modq = (q + 7 < local_simd::EVAL_POLY_MAX_Q).then(|| local_simd::ModQ::new(q));
        // The digit split truncates at d + 1 digits, so two colours share a polynomial iff
        // they agree mod q^(d+1) (`None` = the power overflows u64 and nothing truncates).
        let poly_space = q.checked_pow(d + 1);
        let same_poly = |c: u64| match poly_space {
            Some(space) => c % space == my_color % space,
            None => c == my_color,
        };
        let mod_q = |c: u64| match modq {
            Some(m) if c < local_simd::ModQ::MAX_OPERAND => m.div_rem(c).1,
            _ => c % q,
        };
        // a = 0: the digest is the lowest digit. A neighbour whose *whole polynomial*
        // equals mine (possible only under bad guesses, when the colour space overflows
        // the polynomial space) cannot be avoided at any point and is ignored, exactly as
        // the staged scan below drops it; the (rare) same-lowest-digit neighbours are the
        // only ones that pay the full-polynomial comparison.
        let my0 = mod_q(my_color);
        if !self.neighbor_colors.iter().any(|&c| mod_q(c) == my0 && !same_poly(c)) {
            return my0;
        }
        // a = 0 clashed: stage the digit arrays once and scan the remaining points.
        self.mine.clear();
        push_poly_digits_with(my_color, d, q, modq, &mut self.mine);
        self.others.clear();
        for &c in &self.neighbor_colors {
            if !same_poly(c) {
                push_poly_digits_with(c, d, q, modq, &mut self.others);
            }
        }
        if let Some(m) = modq {
            // Block-of-8 kernel evaluation for my digest (amortized one dispatch per 8
            // candidate points), reciprocal Horner for the (early-exiting) neighbour checks.
            let mut block = [0u64; 8];
            let mut block_base = u64::MAX;
            for a in 1..q {
                let base = a & !7;
                if base != block_base {
                    block = local_simd::eval_poly_block8(&self.mine, base, q);
                    block_base = base;
                }
                let val = block[(a - base) as usize];
                let clash = self.others.chunks_exact(stride).any(|p| m.eval_poly(p, a) == val);
                if !clash {
                    return a * q + val;
                }
            }
            return q * q - 1;
        }
        for a in 1..q {
            let val = eval_poly(&self.mine, a, q);
            let clash = self.others.chunks_exact(stride).any(|p| eval_poly(p, a, q) == val);
            if !clash {
                return a * q + val;
            }
        }
        // No free evaluation point (only possible with bad guesses): return something
        // deterministic.
        q * q - 1
    }

    /// Stages the received colours for the next [`RecolorScratch::recolor`] call.
    /// `for_each` (internal iteration) lets stamp-mask message iterators run their tight
    /// fold loop instead of the per-item `next()` state machine.
    fn stage(&mut self, colors: impl Iterator<Item = u64>) {
        self.neighbor_colors.clear();
        let buf = &mut self.neighbor_colors;
        colors.for_each(|c| buf.push(c));
    }
}

/// The schedule and final palette implied by a guess pair, shared by every node automaton of
/// a spec through an [`Arc`] — computing it *once per attempt* instead of once per node
/// removes the dominant build-time cost (prime search) of short colouring attempts.
#[derive(Debug, Clone)]
struct LinialPlan {
    schedule: Arc<[(u32, u64)]>,
    final_palette: u64,
}

thread_local! {
    /// Last-plan memo: the runtime builds all `n` automata of an attempt back to back with
    /// the same guesses, so a single-entry per-thread cache turns `n` schedule computations
    /// into one (no locks, bounded memory).
    static LAST_PLAN: RefCell<Option<((u64, u64), LinialPlan)>> = const { RefCell::new(None) };
}

fn cached_plan(id_bound: u64, delta: u64) -> LinialPlan {
    LAST_PLAN.with(|slot| {
        let mut slot = slot.borrow_mut();
        match slot.as_ref() {
            Some((key, plan)) if *key == (id_bound, delta) => plan.clone(),
            _ => {
                let schedule: Arc<[(u32, u64)]> = linial_schedule(id_bound, delta).into();
                let final_palette = schedule
                    .last()
                    .map(|&(_, q)| q * q)
                    .unwrap_or_else(|| id_bound.saturating_add(1).max(2));
                let plan = LinialPlan { schedule, final_palette };
                *slot = Some(((id_bound, delta), plan.clone()));
                plan
            }
        }
    })
}

/// Messages exchanged by the colouring algorithms: the sender's current colour.
pub type ColorMsg = u64;

/// Linial's iterated colour-reduction algorithm (non-uniform in `{Δ, m}`).
///
/// Produces a proper colouring with [`linial_final_palette`]`(id_bound_guess, delta_guess)`
/// colours in `O(log* m̃)` rounds, *provided the guesses are good* (`Δ̃ ≥ Δ`, `m̃ ≥ m`). With bad
/// guesses the output may be improper — exactly the behaviour the paper allows for non-uniform
/// algorithms run with bad guesses.
#[derive(Debug, Clone)]
pub struct LinialColoring {
    /// Guess for the maximum degree `Δ`.
    pub delta_guess: u64,
    /// Guess for the largest identity `m`.
    pub id_bound_guess: u64,
}

impl LinialColoring {
    /// Number of rounds this algorithm takes (a function of the guesses only).
    pub fn round_bound(&self) -> u64 {
        linial_schedule(self.id_bound_guess, self.delta_guess).len() as u64 + 1
    }
}

/// Node automaton for [`LinialColoring`].
#[derive(Debug)]
pub struct LinialProg {
    schedule: Arc<[(u32, u64)]>,
    color: u64,
}

impl NodeProgram for LinialProg {
    type Msg = ColorMsg;
    type Output = u64;

    fn round(&mut self, ctx: &mut RoundCtx<'_, ColorMsg>) -> Action<u64> {
        let t = ctx.round() as usize;
        if t > 0 {
            // Apply step t-1 of the schedule using the neighbour colours broadcast last round.
            if let Some(&(d, q)) = self.schedule.get(t - 1) {
                self.color = RECOLOR_SCRATCH.with(|s| {
                    let s = &mut *s.borrow_mut();
                    s.stage(ctx.messages().map(|(_, &c)| c));
                    s.recolor(self.color, d, q)
                });
            }
        }
        if t == self.schedule.len() {
            return Action::Halt(self.color);
        }
        ctx.broadcast(self.color);
        Action::Continue
    }
}

impl ProgramSpec for LinialColoring {
    type Input = ();
    type Msg = ColorMsg;
    type Output = u64;
    type Prog = LinialProg;

    fn build(&self, init: &NodeInit<()>) -> LinialProg {
        LinialProg {
            schedule: cached_plan(self.id_bound_guess, self.delta_guess).schedule,
            color: init.id,
        }
    }

    fn default_output(&self, init: &NodeInit<()>) -> u64 {
        init.id
    }
}

/// Which palette the [`ReducedColoring`] pipeline should stop at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColoringTarget {
    /// Reduce all the way to `Δ̃ + 1` colours (the classical (Δ+1)-colouring).
    DeltaPlusOne,
    /// Reduce to `λ·(Δ̃ + 1)` colours (the λ(Δ+1)-colouring trade-off; λ ≥ 1).
    LambdaDeltaPlusOne(u64),
    /// Stop as soon as the palette is at most this many colours.
    Fixed(u64),
    /// Do not run the elimination phase at all (Linial palette, `O(Δ̃²)` colours).
    LinialOnly,
}

impl ColoringTarget {
    /// The concrete palette size implied by the target for a given degree guess.
    pub fn palette(&self, delta_guess: u64, linial_palette: u64) -> u64 {
        match self {
            ColoringTarget::DeltaPlusOne => delta_guess + 1,
            ColoringTarget::LambdaDeltaPlusOne(lambda) => {
                (delta_guess + 1).saturating_mul((*lambda).max(1)).min(linial_palette)
            }
            ColoringTarget::Fixed(t) => (*t).max(delta_guess + 1).min(linial_palette),
            ColoringTarget::LinialOnly => linial_palette,
        }
    }
}

/// The full non-uniform colouring pipeline: Linial reduction followed by colour elimination
/// down to a target palette. Non-uniform in `{Δ, m}`; running time
/// `O(log* m̃ + (Δ̃² − target))` rounds.
#[derive(Debug, Clone)]
pub struct ReducedColoring {
    /// Guess for the maximum degree `Δ`.
    pub delta_guess: u64,
    /// Guess for the largest identity `m`.
    pub id_bound_guess: u64,
    /// Target palette.
    pub target: ColoringTarget,
}

impl ReducedColoring {
    /// The classical (Δ+1)-colouring configuration.
    pub fn delta_plus_one(delta_guess: u64, id_bound_guess: u64) -> Self {
        ReducedColoring { delta_guess, id_bound_guess, target: ColoringTarget::DeltaPlusOne }
    }

    /// The λ(Δ+1)-colouring configuration.
    pub fn lambda(delta_guess: u64, id_bound_guess: u64, lambda: u64) -> Self {
        ReducedColoring {
            delta_guess,
            id_bound_guess,
            target: ColoringTarget::LambdaDeltaPlusOne(lambda),
        }
    }

    /// Palette size of the final colouring (as a function of the guesses).
    pub fn final_palette(&self) -> u64 {
        let linial = linial_final_palette(self.id_bound_guess, self.delta_guess);
        self.target.palette(self.delta_guess, linial)
    }

    /// Upper bound on the number of rounds (a function of the guesses only).
    pub fn round_bound(&self) -> u64 {
        let linial_rounds = linial_schedule(self.id_bound_guess, self.delta_guess).len() as u64 + 1;
        let linial_palette = linial_final_palette(self.id_bound_guess, self.delta_guess);
        let target = self.final_palette();
        linial_rounds + linial_palette.saturating_sub(target) + 1
    }
}

/// Phases of the [`ReducedColoring`] node automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReducePhase {
    Linial,
    Eliminate,
    Done,
}

/// Node automaton for [`ReducedColoring`].
#[derive(Debug)]
pub struct ReducedColoringProg {
    schedule: Arc<[(u32, u64)]>,
    linial_palette: u64,
    target: u64,
    color: u64,
    phase: ReducePhase,
    /// Round at which the elimination phase started (= number of Linial rounds).
    eliminate_start: u64,
}

impl NodeProgram for ReducedColoringProg {
    type Msg = ColorMsg;
    type Output = u64;

    fn round(&mut self, ctx: &mut RoundCtx<'_, ColorMsg>) -> Action<u64> {
        let t = ctx.round();
        match self.phase {
            ReducePhase::Linial => {
                let step = t as usize;
                if step > 0 {
                    if let Some(&(d, q)) = self.schedule.get(step - 1) {
                        self.color = RECOLOR_SCRATCH.with(|s| {
                            let s = &mut *s.borrow_mut();
                            s.stage(ctx.messages().map(|(_, &c)| c));
                            s.recolor(self.color, d, q)
                        });
                    }
                }
                if step == self.schedule.len() {
                    self.phase = ReducePhase::Eliminate;
                    self.eliminate_start = t;
                    if self.linial_palette <= self.target {
                        self.phase = ReducePhase::Done;
                        return Action::Halt(self.color);
                    }
                }
                ctx.broadcast(self.color);
                Action::Continue
            }
            ReducePhase::Eliminate => {
                // Elimination step s (s >= 1) removes colour class `linial_palette - s`.
                let s = t - self.eliminate_start;
                if s >= 1 {
                    let class = self.linial_palette - s;
                    if self.color == class && self.color >= self.target {
                        // Recolour greedily into [0, target): smallest colour no neighbour
                        // uses. Sort-and-scan over the reused scratch buffer instead of a
                        // `BTreeSet` — same colour, no per-recolour allocation.
                        let target = self.target;
                        self.color = RECOLOR_SCRATCH.with(|s| {
                            let used = &mut s.borrow_mut().neighbor_colors;
                            used.clear();
                            ctx.messages().for_each(|(_, &c)| {
                                if c < target {
                                    used.push(c);
                                }
                            });
                            used.sort_unstable();
                            let mut free = 0u64;
                            for &c in used.iter() {
                                if c == free {
                                    free += 1;
                                } else if c > free {
                                    break;
                                }
                            }
                            free.min(target.saturating_sub(1))
                        });
                    }
                    if class <= self.target {
                        self.phase = ReducePhase::Done;
                        return Action::Halt(self.color);
                    }
                }
                ctx.broadcast(self.color);
                Action::Continue
            }
            ReducePhase::Done => Action::Halt(self.color),
        }
    }
}

impl ProgramSpec for ReducedColoring {
    type Input = ();
    type Msg = ColorMsg;
    type Output = u64;
    type Prog = ReducedColoringProg;

    fn build(&self, init: &NodeInit<()>) -> ReducedColoringProg {
        let plan = cached_plan(self.id_bound_guess, self.delta_guess);
        ReducedColoringProg {
            target: self.target.palette(self.delta_guess, plan.final_palette),
            linial_palette: plan.final_palette,
            schedule: plan.schedule,
            color: init.id,
            phase: ReducePhase::Linial,
            eliminate_start: 0,
        }
    }

    fn default_output(&self, init: &NodeInit<()>) -> u64 {
        init.id
    }
}

/// Refines a proper colouring given as *input* (rather than starting from the identities):
/// runs the Linial schedule seeded from the input colours and then the colour elimination down
/// to `max(target_colors, Δ̃+1)` colours.
///
/// This is the paper's observation (Section 5.2) that the colouring algorithms it builds on
/// only need the initial "identities" to form a proper colouring: it is used as the second
/// phase of the Theorem 5 transformer, where the first-phase colours play the role of the
/// identities and their palette bound plays the role of `m̃`.
#[derive(Debug, Clone)]
pub struct RefineColoring {
    /// Guess for the maximum degree `Δ` of the (sub)graph being coloured.
    pub delta_guess: u64,
    /// Upper bound on the input palette (input colours lie in `[0, initial_palette_guess)`).
    pub initial_palette_guess: u64,
    /// Target palette (clamped to at least `Δ̃ + 1`).
    pub target_colors: u64,
}

impl RefineColoring {
    /// Palette size of the final colouring.
    pub fn final_palette(&self) -> u64 {
        let linial =
            linial_final_palette(self.initial_palette_guess.saturating_sub(1), self.delta_guess);
        self.target_colors.max(self.delta_guess + 1).min(linial.max(self.delta_guess + 1))
    }

    /// Upper bound on the number of rounds (a function of the guesses only).
    pub fn round_bound(&self) -> u64 {
        let id_bound = self.initial_palette_guess.saturating_sub(1);
        let linial_rounds = linial_schedule(id_bound, self.delta_guess).len() as u64 + 1;
        let linial_palette = linial_final_palette(id_bound, self.delta_guess);
        linial_rounds + linial_palette.saturating_sub(self.final_palette()) + 1
    }
}

impl ProgramSpec for RefineColoring {
    type Input = u64;
    type Msg = ColorMsg;
    type Output = u64;
    type Prog = ReducedColoringProg;

    fn build(&self, init: &NodeInit<u64>) -> ReducedColoringProg {
        let id_bound = self.initial_palette_guess.saturating_sub(1);
        let plan = cached_plan(id_bound, self.delta_guess);
        ReducedColoringProg {
            target: self
                .target_colors
                .max(self.delta_guess + 1)
                .min(plan.final_palette.max(self.delta_guess + 1)),
            linial_palette: plan.final_palette,
            schedule: plan.schedule,
            color: *init.input,
            phase: ReducePhase::Linial,
            eliminate_start: 0,
        }
    }

    fn default_output(&self, init: &NodeInit<u64>) -> u64 {
        *init.input
    }
}

/// The standard colouring→MIS reduction: process colour classes in increasing order; a node
/// of colour `c` joins the MIS in round `c` unless a neighbour already joined. Uniform given
/// the colouring; takes (number of colours) rounds.
#[derive(Debug, Clone, Default)]
pub struct MisFromColoring;

/// Messages of [`MisFromColoring`]: `true` = "I joined the MIS".
pub type JoinMsg = bool;

/// Node automaton for [`MisFromColoring`].
#[derive(Debug)]
pub struct MisFromColoringProg {
    color: u64,
    dominated: bool,
}

impl NodeProgram for MisFromColoringProg {
    type Msg = JoinMsg;
    type Output = bool;

    fn round(&mut self, ctx: &mut RoundCtx<'_, JoinMsg>) -> Action<bool> {
        if ctx.messages().any(|(_, &joined)| joined) {
            self.dominated = true;
        }
        if self.dominated {
            return Action::Halt(false);
        }
        if ctx.round() == self.color {
            // My turn: no neighbour with a smaller colour joined, so I join.
            ctx.broadcast(true);
            return Action::Halt(true);
        }
        Action::Continue
    }
}

impl ProgramSpec for MisFromColoring {
    type Input = u64;
    type Msg = JoinMsg;
    type Output = bool;
    type Prog = MisFromColoringProg;

    fn build(&self, init: &NodeInit<u64>) -> MisFromColoringProg {
        MisFromColoringProg { color: *init.input, dominated: false }
    }

    fn default_output(&self, _init: &NodeInit<u64>) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkers::{check_coloring, check_coloring_with_palette, check_mis};
    use local_graphs::{cycle, gnp, grid, path, scramble_ids, GraphParams};
    use local_runtime::{GraphAlgorithm, RunConfig};

    #[test]
    fn primes() {
        assert_eq!(smallest_prime_at_least(1), 2);
        assert_eq!(smallest_prime_at_least(2), 2);
        assert_eq!(smallest_prime_at_least(8), 11);
        assert_eq!(smallest_prime_at_least(90), 97);
    }

    #[test]
    fn linial_step_parameters_are_sound() {
        let (d, q) = linial_step(1_000_000, 10);
        assert!(q > u64::from(d) * 10);
        assert!(((d + 1) as f64) * (q as f64).ln() >= (1_000_000f64).ln());
    }

    #[test]
    fn linial_schedule_shrinks_palette_quickly() {
        let schedule = linial_schedule(1 << 40, 8);
        // log* of 2^40 is tiny.
        assert!(schedule.len() <= 6, "schedule too long: {}", schedule.len());
        let final_palette = linial_final_palette(1 << 40, 8);
        assert!(final_palette <= 4 * 9 * 9, "final palette {final_palette} not O(Δ²)");
    }

    #[test]
    fn eval_poly_matches_direct_computation() {
        // p(x) = 3 + 2x + x² over F_7 at x = 4: 3 + 8 + 16 = 27 ≡ 6 (mod 7).
        assert_eq!(eval_poly(&[3, 2, 1], 4, 7), 6);
    }

    #[test]
    fn color_roundtrip_digits() {
        let coeffs = color_to_poly(123, 3, 5);
        // 123 = 3 + 4*5 + 4*25 + 0*125 → digits [3, 4, 4, 0]
        assert_eq!(coeffs, vec![3, 4, 4, 0]);
    }

    #[test]
    fn linial_produces_proper_coloring_on_random_graph() {
        let g = gnp(120, 0.05, 3);
        let params = GraphParams::of(&g);
        let algo = LinialColoring { delta_guess: params.max_degree, id_bound_guess: params.max_id };
        let run = algo.execute(&g, &vec![(); g.node_count()], None, 0);
        assert!(run.completed);
        check_coloring(&g, &run.outputs).expect("Linial colouring must be proper");
        assert!(run.rounds <= algo.round_bound());
    }

    #[test]
    fn linial_with_generous_guesses_is_still_proper() {
        let g = grid(8, 8);
        let algo = LinialColoring { delta_guess: 16, id_bound_guess: 1 << 20 };
        let run = algo.execute(&g, &vec![(); g.node_count()], None, 1);
        check_coloring(&g, &run.outputs).expect("proper with over-estimates");
    }

    #[test]
    fn delta_plus_one_coloring_on_various_graphs() {
        for (g, seed) in [(path(40), 0u64), (cycle(31), 1), (grid(7, 9), 2), (gnp(90, 0.08, 9), 3)]
        {
            let p = GraphParams::of(&g);
            let algo = ReducedColoring::delta_plus_one(p.max_degree, p.max_id);
            let run = algo.execute(&g, &vec![(); g.node_count()], None, seed);
            assert!(run.completed, "did not complete");
            check_coloring_with_palette(&g, &run.outputs, p.max_degree + 1)
                .expect("(Δ+1)-colouring must be proper and within palette");
            assert!(run.rounds <= algo.round_bound());
        }
    }

    #[test]
    fn lambda_coloring_uses_larger_palette_but_fewer_rounds() {
        let g = gnp(150, 0.15, 5);
        let p = GraphParams::of(&g);
        let tight = ReducedColoring::delta_plus_one(p.max_degree, p.max_id);
        let loose = ReducedColoring::lambda(p.max_degree, p.max_id, 4);
        let run_tight = tight.execute(&g, &vec![(); g.node_count()], None, 0);
        let run_loose = loose.execute(&g, &vec![(); g.node_count()], None, 0);
        check_coloring_with_palette(&g, &run_tight.outputs, tight.final_palette()).unwrap();
        check_coloring_with_palette(&g, &run_loose.outputs, loose.final_palette()).unwrap();
        assert!(loose.final_palette() >= tight.final_palette());
        assert!(run_loose.rounds <= run_tight.rounds);
    }

    #[test]
    fn coloring_works_with_scrambled_identities() {
        let g = scramble_ids(&gnp(80, 0.07, 2), 1 << 30, 7);
        let p = GraphParams::of(&g);
        let algo = ReducedColoring::delta_plus_one(p.max_degree, p.max_id);
        let run = algo.execute(&g, &vec![(); g.node_count()], None, 0);
        check_coloring_with_palette(&g, &run.outputs, p.max_degree + 1).unwrap();
    }

    #[test]
    fn bad_guesses_may_break_correctness_but_respect_budget() {
        // Deliberately under-estimate Δ and m: the algorithm must still stop within the budget
        // (the runtime enforces it) and produce *some* output at every node.
        let g = gnp(60, 0.2, 4);
        let algo = ReducedColoring::delta_plus_one(1, 3);
        let cfg_budget = 10;
        let run = algo.execute(&g, &vec![(); g.node_count()], Some(cfg_budget), 0);
        assert!(run.rounds <= cfg_budget);
        assert_eq!(run.outputs.len(), g.node_count());
    }

    #[test]
    fn refine_coloring_shrinks_palette_of_an_input_coloring() {
        let g = gnp(80, 0.08, 11);
        let p = GraphParams::of(&g);
        // Start from a wasteful proper colouring: colour = 3 × identity.
        let wasteful: Vec<u64> = (0..g.node_count()).map(|v| 3 * g.id(v)).collect();
        let refine = RefineColoring {
            delta_guess: p.max_degree,
            initial_palette_guess: 3 * p.max_id + 1,
            target_colors: p.max_degree + 1,
        };
        let run = refine.execute(&g, &wasteful, None, 0);
        assert!(run.completed);
        check_coloring_with_palette(&g, &run.outputs, refine.final_palette()).unwrap();
        assert!(run.rounds <= refine.round_bound());
    }

    #[test]
    fn refine_coloring_respects_custom_target() {
        let g = grid(6, 6);
        let input: Vec<u64> = (0..36u64).collect();
        let refine =
            RefineColoring { delta_guess: 4, initial_palette_guess: 36, target_colors: 10 };
        let run = refine.execute(&g, &input, None, 0);
        check_coloring_with_palette(&g, &run.outputs, 10).unwrap();
    }

    #[test]
    fn mis_from_coloring_yields_mis() {
        let g = gnp(100, 0.06, 8);
        let p = GraphParams::of(&g);
        let coloring = ReducedColoring::delta_plus_one(p.max_degree, p.max_id);
        let colors = coloring.execute(&g, &vec![(); g.node_count()], None, 0);
        let mis_run = MisFromColoring.execute(&g, &colors.outputs, None, 0);
        assert!(mis_run.completed);
        check_mis(&g, &mis_run.outputs).expect("colour-class MIS must be maximal independent");
        // Takes at most (palette) rounds.
        assert!(mis_run.rounds <= p.max_degree + 1);
    }

    #[test]
    fn mis_from_coloring_on_a_path_with_two_colors() {
        let g = path(9);
        let colors: Vec<u64> = (0..9).map(|v| (v % 2) as u64).collect();
        let run = MisFromColoring.execute(&g, &colors, None, 0);
        check_mis(&g, &run.outputs).unwrap();
        assert!(run.rounds <= 2);
    }

    #[test]
    fn linial_round_count_grows_very_slowly_with_id_space() {
        let small = LinialColoring { delta_guess: 4, id_bound_guess: 1 << 10 }.round_bound();
        let large = LinialColoring { delta_guess: 4, id_bound_guess: 1 << 50 }.round_bound();
        assert!(large <= small + 3, "log* growth violated: {small} -> {large}");
    }

    #[test]
    fn budget_zero_forces_default_outputs() {
        let g = path(5);
        let algo = LinialColoring { delta_guess: 2, id_bound_guess: 4 };
        let cfg = RunConfig { max_rounds: Some(0), ..RunConfig::default() };
        let exec = local_runtime::run(&g, &[(); 5], &algo, &cfg);
        assert_eq!(exec.outputs.len(), 5);
        assert!(!exec.completed);
    }
}

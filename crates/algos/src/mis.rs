//! Maximal-independent-set algorithms.
//!
//! * [`LubyMis`] — Luby's randomized MIS. **Uniform** (no global knowledge), terminates with
//!   probability 1, `O(log n)` rounds with high probability (Table 1, last row). Restricted to
//!   a round budget it becomes the *weak Monte-Carlo* algorithm fed to the Theorem 2
//!   transformer.
//! * [`GreedyMis`] — greedy by identity: a node joins once it is the largest-identity
//!   undecided node in its neighbourhood. **Uniform**, deterministic and always correct, but
//!   its running time is only bounded by the length of a decreasing-identity path (Θ(n) in the
//!   worst case). Used as the correctness baseline and inside the synthetic black boxes.
//! * [`ColoringMis`] — the classical non-uniform pipeline: (Δ+1)-colouring followed by the
//!   colouring→MIS reduction; non-uniform in `{Δ, m}`, `O(Δ² + log* m)` rounds (our stand-in
//!   for the `O(Δ + log* n)` algorithms of Table 1 row 1, see DESIGN.md).

use crate::coloring::{MisFromColoring, ReducedColoring};
use local_runtime::{
    Action, AlgoRun, Graph, GraphAlgorithm, GraphView, NodeInit, NodeProgram, ProgramSpec,
    RoundCtx, Session,
};
use rand::Rng;

/// Luby's randomized MIS (uniform).
#[derive(Debug, Clone, Copy, Default)]
pub struct LubyMis;

/// Messages of [`LubyMis`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LubyMsg {
    /// The sender's random value for this phase (sent by undecided nodes).
    Value(u64),
    /// The sender joined the MIS.
    Joined,
    /// The sender terminated without joining (it is dominated).
    Retired,
}

/// Phase-internal state of the Luby automaton.
#[derive(Debug)]
pub struct LubyProg {
    /// Ports of neighbours that are still undecided.
    undecided_neighbors: Vec<bool>,
    /// My random value for the current phase.
    my_value: u64,
    /// Whether a neighbour joined the MIS (then I retire).
    dominated: bool,
}

impl LubyProg {
    fn all_neighbors_decided(&self) -> bool {
        self.undecided_neighbors.iter().all(|&u| !u)
    }
}

impl NodeProgram for LubyProg {
    type Msg = LubyMsg;
    type Output = bool;

    fn round(&mut self, ctx: &mut RoundCtx<'_, LubyMsg>) -> Action<bool> {
        // Phases of two rounds: even round = draw + broadcast value, odd round = compare and
        // possibly join, then announce.
        for (port, msg) in ctx.messages() {
            match *msg {
                LubyMsg::Joined => {
                    self.dominated = true;
                    self.undecided_neighbors[port] = false;
                }
                LubyMsg::Retired => {
                    self.undecided_neighbors[port] = false;
                }
                LubyMsg::Value(_) => {}
            }
        }
        if self.dominated {
            ctx.broadcast(LubyMsg::Retired);
            return Action::Halt(false);
        }
        if ctx.round() % 2 == 0 {
            // If every neighbour is decided (and none joined), I can safely join.
            if self.all_neighbors_decided() {
                ctx.broadcast(LubyMsg::Joined);
                return Action::Halt(true);
            }
            self.my_value = ctx.rng().gen();
            ctx.broadcast(LubyMsg::Value(self.my_value));
            Action::Continue
        } else {
            // Join if my value is a strict local maximum among undecided neighbours
            // (ties broken against joining keeps adjacent nodes from joining together).
            let mut is_max = true;
            for (port, msg) in ctx.messages() {
                if let LubyMsg::Value(v) = *msg {
                    if self.undecided_neighbors[port] && v >= self.my_value {
                        is_max = false;
                    }
                }
            }
            if is_max {
                ctx.broadcast(LubyMsg::Joined);
                return Action::Halt(true);
            }
            Action::Continue
        }
    }
}

impl ProgramSpec for LubyMis {
    type Input = ();
    type Msg = LubyMsg;
    type Output = bool;
    type Prog = LubyProg;

    fn build(&self, init: &NodeInit<()>) -> LubyProg {
        LubyProg { undecided_neighbors: vec![true; init.degree], my_value: 0, dominated: false }
    }

    fn default_output(&self, _init: &NodeInit<()>) -> bool {
        false
    }
}

/// Greedy-by-identity MIS (uniform, deterministic).
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyMis;

/// Messages of [`GreedyMis`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GreedyMsg {
    /// The sender joined the MIS.
    Joined,
    /// The sender retired (a neighbour of it joined).
    Retired,
}

/// Node automaton for [`GreedyMis`]. Neighbor identities are read per round from
/// [`RoundCtx::neighbor_ids`] (the runtime's cached init slab) instead of being copied into
/// the automaton, so building a node costs one `undecided` vector and nothing else.
#[derive(Debug)]
pub struct GreedyMisProg {
    my_id: u64,
    undecided_neighbors: Vec<bool>,
    dominated: bool,
}

impl NodeProgram for GreedyMisProg {
    type Msg = GreedyMsg;
    type Output = bool;

    fn round(&mut self, ctx: &mut RoundCtx<'_, GreedyMsg>) -> Action<bool> {
        for (port, msg) in ctx.messages() {
            match *msg {
                GreedyMsg::Joined => {
                    self.dominated = true;
                    self.undecided_neighbors[port] = false;
                }
                GreedyMsg::Retired => {
                    self.undecided_neighbors[port] = false;
                }
            }
        }
        if self.dominated {
            ctx.broadcast(GreedyMsg::Retired);
            return Action::Halt(false);
        }
        let neighbor_ids = ctx.neighbor_ids();
        let highest_undecided = (0..neighbor_ids.len())
            .filter(|&p| self.undecided_neighbors[p])
            .map(|p| neighbor_ids[p])
            .max();
        match highest_undecided {
            Some(h) if h > self.my_id => Action::Continue,
            _ => {
                // I am the largest-identity undecided node in my closed neighbourhood.
                ctx.broadcast(GreedyMsg::Joined);
                Action::Halt(true)
            }
        }
    }
}

impl ProgramSpec for GreedyMis {
    type Input = ();
    type Msg = GreedyMsg;
    type Output = bool;
    type Prog = GreedyMisProg;

    fn build(&self, init: &NodeInit<()>) -> GreedyMisProg {
        GreedyMisProg {
            my_id: init.id,
            undecided_neighbors: vec![true; init.degree],
            dominated: false,
        }
    }

    fn default_output(&self, _init: &NodeInit<()>) -> bool {
        false
    }
}

/// Computes an MIS centrally by greedy over decreasing identity. Used by the synthetic black
/// boxes and by tests as a reference solution; not charged any rounds.
pub fn central_greedy_mis(g: &Graph) -> Vec<bool> {
    let n = g.node_count();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(g.id(v)));
    let mut in_set = vec![false; n];
    let mut blocked = vec![false; n];
    for v in order {
        if !blocked[v] {
            in_set[v] = true;
            for &w in g.neighbors(v) {
                blocked[w] = true;
            }
        }
    }
    in_set
}

/// [`central_greedy_mis`] over a live [`GraphView`]; identical output (live-indexed) to
/// running the graph version on the materialized subgraph, since identities are preserved.
pub fn central_greedy_mis_view(view: &GraphView<'_>) -> Vec<bool> {
    let n = view.node_count();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(view.id(v)));
    let mut in_set = vec![false; n];
    let mut blocked = vec![false; n];
    for v in order {
        if !blocked[v] {
            in_set[v] = true;
            for w in view.neighbors(v) {
                blocked[w] = true;
            }
        }
    }
    in_set
}

/// The non-uniform colouring-based MIS: (Δ+1)-colouring followed by [`MisFromColoring`].
///
/// Non-uniform in `{Δ, m}`; round bound `O(Δ̃² + log* m̃) + (Δ̃ + 1)`.
#[derive(Debug, Clone)]
pub struct ColoringMis {
    /// Guess for the maximum degree `Δ`.
    pub delta_guess: u64,
    /// Guess for the largest identity `m`.
    pub id_bound_guess: u64,
}

impl ColoringMis {
    /// Upper bound on the number of rounds, as a function of the guesses.
    pub fn round_bound(&self) -> u64 {
        let coloring = ReducedColoring::delta_plus_one(self.delta_guess, self.id_bound_guess);
        coloring.round_bound() + self.delta_guess + 2
    }
}

impl GraphAlgorithm for ColoringMis {
    type Input = ();
    type Output = bool;

    fn execute(
        &self,
        graph: &Graph,
        inputs: &[()],
        budget: Option<u64>,
        seed: u64,
    ) -> AlgoRun<bool> {
        if graph.is_empty() {
            return AlgoRun::empty();
        }
        debug_assert_eq!(inputs.len(), graph.node_count());
        let coloring = ReducedColoring::delta_plus_one(self.delta_guess, self.id_bound_guess);
        let phase1 = coloring.execute(graph, inputs, budget, seed);
        let remaining = budget.map(|b| b.saturating_sub(phase1.rounds));
        if remaining == Some(0) && budget.is_some() {
            // Budget exhausted during the colouring phase: emit placeholder outputs.
            return AlgoRun {
                outputs: vec![false; graph.node_count()],
                rounds: budget.unwrap_or(phase1.rounds),
                messages: phase1.messages,
                completed: false,
            };
        }
        let phase2 = MisFromColoring.execute(graph, &phase1.outputs, remaining, seed ^ 0x5eed);
        // Observation 2.1: the running time of A1;A2 is at most the sum of the running times.
        AlgoRun {
            outputs: phase2.outputs,
            rounds: phase1.rounds + phase2.rounds,
            messages: phase1.messages + phase2.messages,
            completed: phase1.completed && phase2.completed,
        }
    }

    fn execute_view(
        &self,
        view: &GraphView<'_>,
        inputs: &[()],
        budget: Option<u64>,
        seed: u64,
        session: &mut Session,
    ) -> AlgoRun<bool> {
        if view.is_empty() {
            return AlgoRun::empty();
        }
        debug_assert_eq!(inputs.len(), view.node_count());
        // Both phases are node automata, so the whole pipeline runs on the live view with the
        // session's buffers — no subgraph is materialized on the alternation hot path.
        let coloring = ReducedColoring::delta_plus_one(self.delta_guess, self.id_bound_guess);
        let phase1 = coloring.execute_view(view, inputs, budget, seed, session);
        let remaining = budget.map(|b| b.saturating_sub(phase1.rounds));
        if remaining == Some(0) && budget.is_some() {
            return AlgoRun {
                outputs: vec![false; view.node_count()],
                rounds: budget.unwrap_or(phase1.rounds),
                messages: phase1.messages,
                completed: false,
            };
        }
        let phase2 =
            MisFromColoring.execute_view(view, &phase1.outputs, remaining, seed ^ 0x5eed, session);
        AlgoRun {
            outputs: phase2.outputs,
            rounds: phase1.rounds + phase2.rounds,
            messages: phase1.messages + phase2.messages,
            completed: phase1.completed && phase2.completed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkers::{check_independent_set, check_mis};
    use local_graphs::{
        complete, cycle, forest_union, gnp, grid, path, scramble_ids, star, Family, GraphParams,
    };
    use local_runtime::GraphAlgorithm;

    #[test]
    fn luby_computes_mis_on_many_graphs() {
        for (i, g) in [
            path(30),
            cycle(25),
            grid(6, 6),
            star(20),
            complete(12),
            gnp(80, 0.1, 3),
            forest_union(60, 3, 4),
        ]
        .iter()
        .enumerate()
        {
            let run = LubyMis.execute(g, &vec![(); g.node_count()], None, i as u64);
            assert!(run.completed, "Luby did not terminate on graph {i}");
            check_mis(g, &run.outputs).unwrap_or_else(|e| panic!("graph {i}: {e:?}"));
        }
    }

    #[test]
    fn luby_round_count_scales_logarithmically() {
        let small = Family::SparseGnp.generate(64, 1);
        let large = Family::SparseGnp.generate(1024, 1);
        let r_small = LubyMis.execute(&small, &vec![(); small.node_count()], None, 0).rounds;
        let r_large = LubyMis.execute(&large, &vec![(); large.node_count()], None, 0).rounds;
        // 16× more nodes should cost far less than 16× more rounds.
        assert!(r_large <= r_small * 6 + 20, "Luby not logarithmic: {r_small} -> {r_large}");
    }

    #[test]
    fn luby_is_reproducible_per_seed() {
        let g = gnp(70, 0.1, 5);
        let a = LubyMis.execute(&g, &[(); 70], None, 9);
        let b = LubyMis.execute(&g, &[(); 70], None, 9);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn luby_restricted_budget_gives_partial_but_independent_output() {
        let g = gnp(200, 0.05, 2);
        let run = LubyMis.execute(&g, &[(); 200], Some(2), 0);
        assert!(run.rounds <= 2);
        // Whatever has been decided is independent (nodes only join when locally maximal).
        check_independent_set(&g, &run.outputs).unwrap();
    }

    #[test]
    fn greedy_mis_is_correct_and_deterministic() {
        for g in [path(50), cycle(33), grid(5, 8), gnp(60, 0.15, 1), star(15)] {
            let a = GreedyMis.execute(&g, &vec![(); g.node_count()], None, 0);
            let b = GreedyMis.execute(&g, &vec![(); g.node_count()], None, 99);
            assert!(a.completed);
            check_mis(&g, &a.outputs).unwrap();
            assert_eq!(a.outputs, b.outputs, "greedy MIS must not depend on the seed");
        }
    }

    #[test]
    fn greedy_mis_matches_central_greedy() {
        let g = scramble_ids(&gnp(40, 0.2, 7), 1 << 16, 3);
        let distributed = GreedyMis.execute(&g, &vec![(); g.node_count()], None, 0);
        let central = central_greedy_mis(&g);
        assert_eq!(distributed.outputs, central);
    }

    #[test]
    fn central_greedy_mis_is_a_mis() {
        for g in [gnp(90, 0.1, 0), forest_union(70, 2, 1), complete(9)] {
            check_mis(&g, &central_greedy_mis(&g)).unwrap();
        }
    }

    #[test]
    fn coloring_mis_with_correct_guesses_is_correct() {
        for g in [grid(7, 7), gnp(90, 0.07, 6), forest_union(60, 3, 8), cycle(41)] {
            let p = GraphParams::of(&g);
            let algo = ColoringMis { delta_guess: p.max_degree, id_bound_guess: p.max_id };
            let run = algo.execute(&g, &vec![(); g.node_count()], None, 0);
            assert!(run.completed);
            check_mis(&g, &run.outputs).unwrap();
            assert!(
                run.rounds <= algo.round_bound(),
                "rounds {} > bound {}",
                run.rounds,
                algo.round_bound()
            );
        }
    }

    #[test]
    fn coloring_mis_respects_budget_even_with_bad_guesses() {
        let g = gnp(80, 0.2, 3);
        let algo = ColoringMis { delta_guess: 1, id_bound_guess: 1 };
        let run = algo.execute(&g, &[(); 80], Some(7), 0);
        assert!(run.rounds <= 7);
        assert_eq!(run.outputs.len(), 80);
    }

    #[test]
    fn coloring_mis_on_empty_graph() {
        let g = local_runtime::Graph::from_edges(0, &[]).unwrap();
        let algo = ColoringMis { delta_guess: 5, id_bound_guess: 5 };
        let run = algo.execute(&g, &[], None, 0);
        assert!(run.completed);
        assert!(run.outputs.is_empty());
    }

    #[test]
    fn luby_on_single_node_and_edgeless_graphs() {
        let single = local_runtime::Graph::from_edges(1, &[]).unwrap();
        let run = LubyMis.execute(&single, &[(); 1], None, 0);
        assert_eq!(run.outputs, vec![true]);
        let edgeless = local_graphs::edgeless(10);
        let run = LubyMis.execute(&edgeless, &[(); 10], None, 0);
        assert!(run.outputs.iter().all(|&b| b));
    }
}

//! Worker-child lifecycle: no worker process may outlive the backend that spawned it — not
//! as a zombie (dead but unreaped) and not as a live orphan — no matter how the dispatch
//! ends (clean, failed, or panicked mid-emit).
//!
//! These tests scan `/proc` for children of the test process, so they live in their own
//! integration-test binary (own PID) and serialize on a lock.

use local_engine::backend::{CellShard, ExecBackend, ProcessBackend};
use local_engine::{workload, Scenario, ScenarioGrid, Sweep};
use local_graphs::family;
use std::sync::Mutex;
use std::time::{Duration, Instant};

static SERIAL: Mutex<()> = Mutex::new(());

fn small_grid() -> ScenarioGrid {
    ScenarioGrid::new()
        .problems([workload("mis"), workload("luby-mis")])
        .families([family("sparse-gnp")])
        .sizes([36usize, 48])
        .replicates(1)
        .base_seed(9)
}

/// Children of this process right now, as (pid, comm, state) parsed from `/proc/*/stat`.
fn children() -> Vec<(u32, String, char)> {
    let my_pid = std::process::id();
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir("/proc") else { return out };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(pid) = name.to_str().and_then(|s| s.parse::<u32>().ok()) else { continue };
        let Ok(stat) = std::fs::read_to_string(format!("/proc/{pid}/stat")) else { continue };
        // Field 2 (comm) is parenthesized and may contain spaces; split after the last ')'.
        let Some(close) = stat.rfind(')') else { continue };
        let comm = stat[stat.find('(').map_or(0, |i| i + 1)..close].to_string();
        let mut rest = stat[close + 1..].split_whitespace();
        let Some(state) = rest.next().and_then(|s| s.chars().next()) else { continue };
        let Some(ppid) = rest.next().and_then(|s| s.parse::<u32>().ok()) else { continue };
        if ppid == my_pid {
            out.push((pid, comm, state));
        }
    }
    out
}

/// Polls until no child matching `predicate` remains (they may need a scheduler tick to
/// finish dying); returns the survivors on timeout.
fn settle(predicate: impl Fn(&(u32, String, char)) -> bool) -> Vec<(u32, String, char)> {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let leftover: Vec<_> = children().into_iter().filter(&predicate).collect();
        if leftover.is_empty() || Instant::now() > deadline {
            return leftover;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn no_worker_outlives_a_completed_sweep() {
    let _guard = SERIAL.lock().unwrap();
    let grid = small_grid();
    let report = Sweep::over(&grid)
        .backend(ProcessBackend::with_command(2, vec![env!("CARGO_BIN_EXE_sweep").to_string()]))
        .run();
    assert_eq!(report.cell_count, grid.cell_count());
    // Every worker must be dead *and reaped*: no zombies (state Z), no live stragglers.
    let leftover = settle(|(_, comm, _)| comm.contains("sweep"));
    assert!(leftover.is_empty(), "workers outlived the sweep: {leftover:?}");
}

#[test]
fn a_panicking_emit_still_kills_and_reaps_the_worker() {
    let _guard = SERIAL.lock().unwrap();
    let grid = small_grid();
    let cells: Vec<Scenario> = grid.cells();
    let shard = CellShard::new(grid.base_seed, cells);
    let backend = ProcessBackend::with_command(1, vec![env!("CARGO_BIN_EXE_sweep").to_string()]);
    // The emit sink panics on the first result: the dispatcher thread unwinds mid-stream
    // with the worker still running. The reap guard must kill and wait for it during the
    // unwind — an early drop must not leak a zombie.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        backend.run_shard(&shard, &|_, _| panic!("sink exploded"));
    }));
    assert!(result.is_err(), "the panic must propagate");
    let leftover = settle(|(_, comm, _)| comm.contains("sweep"));
    assert!(leftover.is_empty(), "a worker survived the panicking dispatch: {leftover:?}");
}

#[test]
fn hung_workers_are_killed_at_the_deadline_and_reaped() {
    let _guard = SERIAL.lock().unwrap();
    let grid = small_grid();
    let wedged = vec!["/bin/sh".to_string(), "-c".to_string(), "sleep 600".to_string()];
    let report = Sweep::over(&grid)
        .backend(ProcessBackend::with_command(1, wedged).io_deadline_ms(300))
        .run();
    assert_eq!(report.cell_count, grid.cell_count(), "the rescue path still delivers");
    let leftover = settle(|(_, comm, state)| comm == "sleep" || comm == "sh" || *state == 'Z');
    assert!(leftover.is_empty(), "a wedged worker was not killed and reaped: {leftover:?}");
}

//! Property test: every cell of an arbitrary (small) scenario grid produces an output that
//! passes its problem's ground-truth validator, and the uniform driver always terminates.

use local_engine::{default_workloads, run_grid, ScenarioGrid, SweepConfig};
use local_graphs::{family, Family, FamilySpec};
use proptest::prelude::*;

/// Families every catalog problem can digest at small sizes in reasonable time — builtins
/// plus parameterized generators across the degree/arboricity regimes.
fn families() -> Vec<FamilySpec> {
    vec![
        Family::Path.into(),
        Family::BinaryTree.into(),
        Family::Grid.into(),
        Family::SparseGnp.into(),
        Family::Forest3.into(),
        Family::UnitDisk.into(),
        family("gnp-d6"),
        family("regular-4"),
        family("forest-2"),
        family("pa-2"),
    ]
}

fn arbitrary_grid() -> impl Strategy<Value = ScenarioGrid> {
    let workloads = default_workloads();
    let pool = families();
    (0usize..workloads.len(), 0usize..pool.len(), 24usize..64, 1u64..3, 0u64..1_000).prop_map(
        move |(problem, family, n, replicates, base_seed)| {
            ScenarioGrid::new()
                .problems([workloads[problem].clone()])
                .families([pool[family].clone()])
                .sizes([n])
                .replicates(replicates)
                .base_seed(base_seed)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_grid_cell_validates(grid in arbitrary_grid()) {
        let report = run_grid(&grid, &SweepConfig::with_threads(2));
        prop_assert_eq!(report.cell_count, grid.cell_count());
        for cell in &report.cells {
            prop_assert!(
                cell.valid,
                "invalid cell: {}/{} n={} seed={}",
                cell.problem, cell.family, cell.n, cell.seed
            );
            prop_assert!(
                cell.solved,
                "unsolved cell: {}/{} n={} seed={}",
                cell.problem, cell.family, cell.n, cell.seed
            );
        }
    }
}

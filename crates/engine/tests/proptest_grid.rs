//! Property test: every cell of an arbitrary (small) scenario grid produces an output that
//! passes its problem's ground-truth validator, and the uniform driver always terminates.

use local_engine::{run_grid, ProblemKind, ScenarioGrid, SweepConfig};
use local_graphs::Family;
use proptest::prelude::*;

/// Families every catalog problem can digest at small sizes in reasonable time.
const FAMILIES: [Family; 6] = [
    Family::Path,
    Family::BinaryTree,
    Family::Grid,
    Family::SparseGnp,
    Family::Forest3,
    Family::UnitDisk,
];

fn arbitrary_grid() -> impl Strategy<Value = ScenarioGrid> {
    (0usize..ProblemKind::ALL.len(), 0usize..FAMILIES.len(), 24usize..64, 1u64..3, 0u64..1_000)
        .prop_map(|(problem, family, n, replicates, base_seed)| {
            ScenarioGrid::new()
                .problems([ProblemKind::ALL[problem]])
                .families([FAMILIES[family]])
                .sizes([n])
                .replicates(replicates)
                .base_seed(base_seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_grid_cell_validates(grid in arbitrary_grid()) {
        let report = run_grid(&grid, &SweepConfig::with_threads(2));
        prop_assert_eq!(report.cell_count, grid.cell_count());
        for cell in &report.cells {
            prop_assert!(
                cell.valid,
                "invalid cell: {}/{} n={} seed={}",
                cell.problem, cell.family, cell.n, cell.seed
            );
            prop_assert!(
                cell.solved,
                "unsolved cell: {}/{} n={} seed={}",
                cell.problem, cell.family, cell.n, cell.seed
            );
        }
    }
}

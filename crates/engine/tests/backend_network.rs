//! The network backend's headline guarantees, exercised against real `sweep --serve`
//! daemons on localhost (Cargo builds the binary for integration tests and exposes the
//! path as `CARGO_BIN_EXE_sweep`):
//!
//! * a 2-daemon network sweep is byte-identical to a single-threaded in-process sweep;
//! * a daemon killed mid-sweep (scripted via `LOCAL_FAULTS`) loses nothing: verified cells
//!   stand, the remainder is re-dispatched to the healthy peer;
//! * refused connections retry through the capped backoff and recover;
//! * an unreachable fleet degrades all the way to in-process rescue;
//! * every degradation increments the observable resilience counters.
//!
//! Counter assertions use before/after deltas under one test-local lock, because the obs
//! counters are process-global and the test harness runs tests concurrently.

use local_engine::backend::{FaultPlan, NetworkBackend};
use local_engine::{run_grid, workload, Report, ScenarioGrid, Sweep, SweepConfig};
use local_graphs::{family, Family};
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

fn demo_grid() -> ScenarioGrid {
    ScenarioGrid::new()
        .problems([workload("mis"), workload("luby-mis"), workload("ruling-set-b2")])
        .families([Family::SparseGnp.into(), Family::Grid.into(), family("gnp-d16")])
        .sizes([36usize, 48])
        .replicates(2)
        .base_seed(9)
}

fn assert_reports_identical(reference: &Report, candidate: &Report, label: &str) {
    assert_eq!(reference.cell_count, candidate.cell_count, "{label}: cell counts differ");
    for (a, b) in reference.cells.iter().zip(&candidate.cells) {
        assert_eq!(a.deterministic_view(), b.deterministic_view(), "{label}: cell diverged");
    }
    assert_eq!(
        reference.deterministic_view().to_csv(),
        candidate.deterministic_view().to_csv(),
        "{label}: CSV bytes diverged"
    );
    assert_eq!(
        reference.deterministic_view().to_json(),
        candidate.deterministic_view().to_json(),
        "{label}: JSON bytes diverged"
    );
}

/// A `sweep --serve` daemon on an OS-assigned localhost port, killed and reaped on drop.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(faults: Option<&str>) -> Daemon {
        let mut command = Command::new(env!("CARGO_BIN_EXE_sweep"));
        command
            .args(["--serve", "127.0.0.1:0", "--threads", "1"])
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        match faults {
            Some(script) => command.env("LOCAL_FAULTS", script),
            None => command.env_remove("LOCAL_FAULTS"),
        };
        let mut child = command.spawn().expect("daemon spawns");
        let stdout = child.stdout.take().expect("stdout was piped");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("daemon announces its address");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
            .to_string();
        Daemon { child, addr }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn counters() -> (u64, u64, u64, u64) {
    (
        local_obs::counter_value(local_obs::metrics::NET_RETRIES),
        local_obs::counter_value(local_obs::metrics::REDISPATCHED_CELLS),
        local_obs::counter_value(local_obs::metrics::RESCUED_CELLS),
        local_obs::counter_value(local_obs::metrics::FAULTS_INJECTED),
    )
}

#[test]
fn two_network_daemons_match_one_in_process_thread_byte_for_byte() {
    let _guard = SERIAL.lock().unwrap();
    let grid = demo_grid();
    let reference = run_grid(&grid, &SweepConfig::with_threads(1));
    let a = Daemon::spawn(None);
    let b = Daemon::spawn(None);
    let candidate =
        Sweep::over(&grid).backend(NetworkBackend::new(vec![a.addr.clone(), b.addr.clone()])).run();
    assert_eq!(candidate.threads, 2, "the report records the peer count");
    assert_reports_identical(&reference, &candidate, "network backend");
}

#[test]
fn one_connection_serves_many_shards_and_stays_deterministic() {
    let _guard = SERIAL.lock().unwrap();
    let grid = demo_grid();
    let reference = run_grid(&grid, &SweepConfig::with_threads(1));
    let daemon = Daemon::spawn(None);
    // Two sweeps against the same persistent daemon: the second request must be served as
    // cleanly as the first (fresh connections, same daemon process).
    for round in 0..2 {
        let candidate =
            Sweep::over(&grid).backend(NetworkBackend::new(vec![daemon.addr.clone()])).run();
        assert_reports_identical(
            &reference,
            &candidate,
            &format!("persistent daemon round {round}"),
        );
    }
}

#[test]
fn a_daemon_killed_mid_sweep_loses_nothing() {
    let _guard = SERIAL.lock().unwrap();
    local_obs::enable();
    let grid = demo_grid();
    let reference = run_grid(&grid, &SweepConfig::with_threads(1));
    let healthy = Daemon::spawn(None);
    // This daemon exits(1) right before serving its 6th result line — a mid-sweep crash.
    let doomed = Daemon::spawn(Some("kill@5"));
    let (retries0, redispatched0, rescued0, _) = counters();
    let candidate = Sweep::over(&grid)
        .backend(
            NetworkBackend::new(vec![healthy.addr.clone(), doomed.addr.clone()]).retry(5, 50, 2),
        )
        .run();
    assert_reports_identical(&reference, &candidate, "killed daemon");
    let (_, redispatched1, rescued1, _) = counters();
    assert!(
        redispatched1 - redispatched0 > 0,
        "the dead daemon's unverified cells must be re-dispatched"
    );
    // The healthy peer absorbs everything; nothing should need the in-process fallback.
    assert_eq!(rescued1, rescued0, "no irreducible remainder with a healthy peer up");
    let _ = retries0;
}

#[test]
fn overlapping_peer_deaths_count_each_redispatch_and_rescue_exactly_once() {
    let _guard = SERIAL.lock().unwrap();
    local_obs::enable();
    // 12 equal-cost cells (one instance each) stripe 6/6 across two peers. Peer 0 dies
    // before its 3rd result line, leaving 4 cells. Peer 1 serves its own 6, then dies two
    // lines into the re-dispatched remainder (its process-cumulative counter hits 8). The
    // accounting must book exactly the 2 cells that *landed* on the retry peer as
    // re-dispatched — not the 4 attempted — and exactly the 2 irreducible cells as
    // rescued. Mid-stream deaths are not connect failures, so no retry is booked at all.
    let grid = ScenarioGrid::new()
        .problems([workload("mis")])
        .families([family("sparse-gnp")])
        .sizes([48usize])
        .replicates(12)
        .base_seed(9);
    let reference = run_grid(&grid, &SweepConfig::with_threads(1));
    let first_to_die = Daemon::spawn(Some("kill@2"));
    let second_to_die = Daemon::spawn(Some("kill@8"));
    let (retries0, redispatched0, rescued0, _) = counters();
    let candidate = Sweep::over(&grid)
        .backend(
            NetworkBackend::new(vec![first_to_die.addr.clone(), second_to_die.addr.clone()])
                .retry(5, 50, 2),
        )
        .run();
    assert_reports_identical(&reference, &candidate, "double kill");
    let (retries1, redispatched1, rescued1, _) = counters();
    assert_eq!(retries1 - retries0, 0, "mid-stream deaths must not book connect retries");
    assert_eq!(
        redispatched1 - redispatched0,
        2,
        "only the cells that landed on the retry peer count as re-dispatched"
    );
    assert_eq!(rescued1 - rescued0, 2, "exactly the irreducible remainder is rescued");
}

#[test]
fn truncated_daemon_streams_keep_verified_cells() {
    let _guard = SERIAL.lock().unwrap();
    local_obs::enable();
    let grid = demo_grid();
    let reference = run_grid(&grid, &SweepConfig::with_threads(1));
    let healthy = Daemon::spawn(None);
    // This daemon flushes four verified lines, then exits(0): a clean stream that simply
    // ends without a sentinel.
    let truncating = Daemon::spawn(Some("truncate@4"));
    let candidate = Sweep::over(&grid)
        .backend(
            NetworkBackend::new(vec![truncating.addr.clone(), healthy.addr.clone()])
                .retry(5, 50, 2),
        )
        .run();
    assert_reports_identical(&reference, &candidate, "truncated daemon");
}

#[test]
fn garbled_daemon_streams_abandon_trust_at_the_corruption() {
    let _guard = SERIAL.lock().unwrap();
    local_obs::enable();
    let grid = demo_grid();
    let reference = run_grid(&grid, &SweepConfig::with_threads(1));
    // A single peer that garbles its stream after two verified lines: the two cells stand,
    // the peer is marked unhealthy, and with no other peers the remainder is rescued
    // in-process — still byte-identical.
    let garbler = Daemon::spawn(Some("garble@2"));
    let (_, _, rescued0, _) = counters();
    let candidate = Sweep::over(&grid)
        .backend(NetworkBackend::new(vec![garbler.addr.clone()]).retry(5, 50, 2))
        .run();
    assert_reports_identical(&reference, &candidate, "garbled daemon");
    let (_, _, rescued1, _) = counters();
    assert!(rescued1 - rescued0 > 0, "the unverified remainder must be rescued");
}

#[test]
fn refused_connections_back_off_and_recover() {
    let _guard = SERIAL.lock().unwrap();
    local_obs::enable();
    let grid = demo_grid();
    let reference = run_grid(&grid, &SweepConfig::with_threads(1));
    let daemon = Daemon::spawn(None);
    let (retries0, _, _, injected0) = counters();
    // The coordinator's own fault plan refuses this peer's first two connect attempts;
    // the third goes through and the sweep completes over the daemon.
    let candidate = Sweep::over(&grid)
        .backend(
            NetworkBackend::new(vec![daemon.addr.clone()])
                .faults(FaultPlan::parse("w0:refuse*2").unwrap())
                .retry(1, 5, 5),
        )
        .run();
    assert_reports_identical(&reference, &candidate, "refused connects");
    let (retries1, _, _, injected1) = counters();
    assert!(retries1 - retries0 >= 2, "each refusal must count as a retry");
    assert_eq!(injected1 - injected0, 2, "each scripted refusal must count as a fault");
}

#[test]
fn an_unreachable_fleet_degrades_to_in_process_rescue() {
    let _guard = SERIAL.lock().unwrap();
    local_obs::enable();
    let grid = demo_grid();
    let reference = run_grid(&grid, &SweepConfig::with_threads(1));
    let (retries0, _, rescued0, _) = counters();
    // Nothing listens on port 1; every connect is refused by the kernel.
    let candidate = Sweep::over(&grid)
        .backend(NetworkBackend::new(vec!["127.0.0.1:1".to_string()]).retry(1, 5, 2))
        .run();
    assert_reports_identical(&reference, &candidate, "unreachable fleet");
    let (retries1, _, rescued1, _) = counters();
    assert!(retries1 - retries0 >= 2, "failed connects must count as retries");
    assert_eq!(
        rescued1 - rescued0,
        grid.cell_count() as u64,
        "every cell must be rescued in-process"
    );
}

#[test]
fn a_dead_peer_in_a_fleet_shifts_its_stripe_to_the_living() {
    let _guard = SERIAL.lock().unwrap();
    local_obs::enable();
    let grid = demo_grid();
    let reference = run_grid(&grid, &SweepConfig::with_threads(1));
    let live = Daemon::spawn(None);
    let candidate = Sweep::over(&grid)
        .backend(
            NetworkBackend::new(vec![live.addr.clone(), "127.0.0.1:1".to_string()]).retry(1, 5, 2),
        )
        .run();
    assert_reports_identical(&reference, &candidate, "half-dead fleet");
}

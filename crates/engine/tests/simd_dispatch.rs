//! SIMD dispatch must be invisible in every deterministic output: a full-catalog sweep
//! forced to the portable scalar kernels (`LOCAL_SIMD=scalar`) must produce byte-identical
//! CSV and JSON report bytes to the same sweep under automatic dispatch. The two runs are
//! separate processes because the dispatch level is detected once and cached per process.

use std::path::PathBuf;
use std::process::Command;

fn sweep_bin() -> &'static str {
    env!("CARGO_BIN_EXE_sweep")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("simd-dispatch-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Runs a full-catalog deterministic sweep and returns `(csv bytes, json bytes, stderr)`.
fn full_catalog_sweep(
    dir: &std::path::Path,
    tag: &str,
    simd: Option<&str>,
) -> (Vec<u8>, Vec<u8>, String) {
    let csv = dir.join(format!("{tag}.csv"));
    let json = dir.join(format!("{tag}.json"));
    let mut command = Command::new(sweep_bin());
    command.args(["--problems", "all", "--families", "all", "--sizes", "40,64", "--seeds", "1"]);
    command.args(["--no-cache", "--threads", "1", "--deterministic"]);
    command.args(["--csv", csv.to_str().unwrap(), "--out", json.to_str().unwrap()]);
    match simd {
        Some(level) => {
            command.env("LOCAL_SIMD", level);
        }
        None => {
            command.env_remove("LOCAL_SIMD");
        }
    }
    let output = command.output().expect("sweep runs");
    assert!(
        output.status.success(),
        "sweep ({tag}) failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    (
        std::fs::read(&csv).expect("csv written"),
        std::fs::read(&json).expect("json written"),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

#[test]
fn scalar_and_auto_dispatch_sweeps_are_byte_identical() {
    let dir = temp_dir("scalar-vs-auto");
    let (csv_auto, json_auto, stderr_auto) = full_catalog_sweep(&dir, "auto", None);
    let (csv_scalar, json_scalar, stderr_scalar) =
        full_catalog_sweep(&dir, "scalar", Some("scalar"));

    // The header's dispatch report proves each process really ran the level under test.
    assert!(
        stderr_scalar.contains("simd: scalar"),
        "forced-scalar run did not report scalar dispatch:\n{stderr_scalar}"
    );
    assert!(stderr_auto.contains("simd: "), "auto run reported no dispatch:\n{stderr_auto}");

    assert!(
        !csv_auto.is_empty() && csv_auto.iter().filter(|&&b| b == b'\n').count() > 100,
        "full-catalog CSV is suspiciously small"
    );
    assert_eq!(csv_scalar, csv_auto, "scalar and auto-dispatch CSV bytes diverged");
    assert_eq!(json_scalar, json_auto, "scalar and auto-dispatch JSON report bytes diverged");
    let _ = std::fs::remove_dir_all(&dir);
}

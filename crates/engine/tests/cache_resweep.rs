//! Incremental re-sweeps: a second identical `run_grid` serves every cell from the sweep
//! cache and produces a byte-identical merged report; a code-version bump retires the
//! cache; streaming mode folds the same summaries without holding cells in memory.

use local_engine::{folded_stacks, run_grid, workload, ScenarioGrid, SweepCache, SweepConfig};
use local_graphs::{family, Family};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sweep-resweep-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_grid() -> ScenarioGrid {
    ScenarioGrid::new()
        .problems([workload("mis"), workload("luby-mis")])
        .families([Family::SparseGnp.into(), family("gnp-d10")])
        .sizes([36usize, 48])
        .replicates(2)
        .base_seed(5)
}

#[test]
fn second_sweep_is_all_hits_and_byte_identical() {
    let dir = temp_dir("identical");
    let grid = small_grid();
    let cfg = SweepConfig::with_threads(2).with_cache(SweepCache::new(&dir));

    let first = run_grid(&grid, &cfg);
    assert_eq!(first.cache_hits, 0, "a cold cache must not hit");
    assert!(first.cells.iter().all(|c| c.valid && c.solved));

    let second = run_grid(&grid, &cfg);
    assert_eq!(second.cache_hits, second.cell_count, "a re-sweep must be 100% cache hits");
    assert_eq!(second.distinct_instances, 0, "hits must not regenerate instances");
    // The merged report is byte-identical: cached cells carry their original measurements.
    assert_eq!(first.to_csv_with(true), second.to_csv_with(true));
    assert_eq!(first.summaries, second.summaries);
    assert_eq!(first.to_folded(), second.to_folded());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn changed_axes_execute_only_the_new_cells() {
    let dir = temp_dir("partial");
    let grid = small_grid();
    let cfg = SweepConfig::with_threads(2).with_cache(SweepCache::new(&dir));
    let first = run_grid(&grid, &cfg);

    // Same grid plus one extra size: only the new cells run.
    let extended = small_grid().sizes([36usize, 48, 60]);
    let second = run_grid(&extended, &cfg);
    assert_eq!(second.cache_hits, first.cell_count);
    assert_eq!(
        second.cell_count - second.cache_hits,
        8,
        "2 problems x 2 families x 1 new size x 2 seeds"
    );
    // Shared cells are carried over verbatim.
    for cell in &first.cells {
        assert!(
            second.cells.iter().any(|c| c == cell),
            "cached cell {}/{}/n{} missing from the extended sweep",
            cell.problem,
            cell.family,
            cell.requested_n
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn code_version_bump_retires_the_cache() {
    let dir = temp_dir("codebump");
    let grid = small_grid();
    let v1 = SweepConfig::with_threads(2)
        .with_cache(SweepCache::with_code_version(&dir, "resweep-test-v1"));
    let first = run_grid(&grid, &v1);
    assert_eq!(first.cache_hits, 0);
    assert_eq!(run_grid(&grid, &v1).cache_hits, first.cell_count);

    let v2 = SweepConfig::with_threads(2)
        .with_cache(SweepCache::with_code_version(&dir, "resweep-test-v2"));
    let bumped = run_grid(&grid, &v2);
    assert_eq!(bumped.cache_hits, 0, "a code-version bump must re-execute every cell");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn streaming_mode_matches_collected_summaries_without_holding_cells() {
    let dir = temp_dir("stream");
    let grid = small_grid();
    let collected = run_grid(&grid, &SweepConfig::with_threads(2));

    let streaming = SweepConfig::with_threads(2).with_cache(SweepCache::new(&dir)).streaming();
    let streamed = run_grid(&grid, &streaming);
    assert!(streamed.cells.is_empty(), "streaming mode must not hold cells in memory");
    assert_eq!(streamed.cell_count, collected.cell_count);
    // Summaries agree on every deterministic field (wall times differ between two live runs).
    assert_eq!(streamed.summaries.len(), collected.summaries.len());
    for (s, c) in streamed.summaries.iter().zip(&collected.summaries) {
        let mut s = s.clone();
        s.total_wall_micros = c.total_wall_micros;
        assert_eq!(&s, c, "streamed summary diverges for {}/{}", c.problem, c.family);
    }

    // Every cell is recoverable from the cache, in canonical order, deterministically
    // identical to the collected run.
    let cache = SweepCache::new(&dir);
    let reloaded: Vec<_> = grid
        .cells()
        .into_iter()
        .map(|cell| cache.load(&cell, grid.base_seed).expect("streamed cell must be cached"))
        .collect();
    let reloaded_view: Vec<_> = reloaded.iter().map(|c| c.deterministic_view()).collect();
    let collected_view: Vec<_> = collected.cells.iter().map(|c| c.deterministic_view()).collect();
    assert_eq!(reloaded_view, collected_view);
    let folded = folded_stacks(reloaded);
    assert!(folded.lines().any(|l| l.starts_with("sweep;mis;")), "folded stacks missing: {folded}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cost_ordered_execution_is_thread_count_independent() {
    // The cost model reorders the work queue; results must still land in canonical order
    // and be byte-identical across thread counts (the determinism contract).
    let grid = small_grid();
    let seq = run_grid(&grid, &SweepConfig::with_threads(1));
    let par = run_grid(&grid, &SweepConfig::with_threads(8));
    let seq_view: Vec<_> = seq.cells.iter().map(|c| c.deterministic_view()).collect();
    let par_view: Vec<_> = par.cells.iter().map(|c| c.deterministic_view()).collect();
    assert_eq!(seq_view, par_view);
}

//! End-to-end observability guarantees, exercised against the real `sweep` binary:
//!
//! * a 2-worker process sweep under `--trace` produces a valid Chrome trace-event JSON
//!   with phase spans from at least two distinct worker tracks (the workers' span dumps
//!   made it home over the wire and were rebased onto coordinator time);
//! * `--trace-events` writes parseable NDJSON, one self-describing object per line;
//! * tracing is observation only: the `--deterministic` report and CSV bytes are
//!   byte-identical with and without the recorder armed;
//! * `--dry-run` pushes its predictions through the same metric registry, so a dry-run
//!   trace joins a real sweep's trace on (metric, cell label).

use serde::{Deserialize, Value};
use std::path::PathBuf;
use std::process::Command;

fn sweep_bin() -> &'static str {
    env!("CARGO_BIN_EXE_sweep")
}

/// The grid every test sweeps: 2 sizes × 2 seeds = 4 cells (4 distinct instances, so
/// instance-grouped striping spreads them over both workers).
const GRID: [&str; 8] =
    ["--problems", "mis", "--families", "sparse-gnp", "--sizes", "32,48", "--seeds", "2"];

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("obs-trace-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Runs the sweep binary with the demo grid plus `extra`, asserting success.
fn sweep(extra: &[&str]) {
    let output = Command::new(sweep_bin())
        .args(GRID)
        .args(["--no-cache"])
        .args(extra)
        .output()
        .expect("sweep runs");
    assert!(
        output.status.success(),
        "sweep {extra:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}

fn parse_json(path: &std::path::Path) -> Value {
    let text = std::fs::read_to_string(path).expect("trace file exists");
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("{path:?} is not valid JSON: {e}"))
}

fn as_str(value: &Value) -> &str {
    match value {
        Value::Str(s) => s,
        other => panic!("expected string, got {other:?}"),
    }
}

#[test]
fn two_worker_trace_is_valid_chrome_json_with_both_worker_tracks() {
    let dir = temp_dir("chrome");
    let trace = dir.join("trace.json");
    sweep(&[
        "--backend",
        "process",
        "--workers",
        "2",
        "--threads",
        "1",
        "--trace",
        trace.to_str().unwrap(),
    ]);

    let parsed = parse_json(&trace);
    let events = match parsed.get("traceEvents") {
        Some(Value::Seq(events)) => events,
        other => panic!("no traceEvents array: {other:?}"),
    };

    // Track names come from "M" thread_name metadata; worker-imported tracks are prefixed
    // "worker N ". Both workers must have shipped spans home.
    let mut worker_tids: std::collections::BTreeMap<u64, String> =
        std::collections::BTreeMap::new();
    let mut track_names = Vec::new();
    for event in events {
        if event.get("ph").map(as_str) == Some("M") {
            let name = as_str(event.get("args").and_then(|a| a.get("name")).expect("track name"));
            track_names.push(name.to_string());
            if name.starts_with("worker ") {
                let tid = u64::from_value(event.get("tid").expect("tid")).expect("numeric tid");
                let worker = name.split_whitespace().take(2).collect::<Vec<_>>().join(" ");
                worker_tids.insert(tid, worker);
            }
        }
    }
    let distinct_workers: std::collections::BTreeSet<&String> = worker_tids.values().collect();
    assert!(
        distinct_workers.len() >= 2,
        "expected tracks from >= 2 workers, got tracks {track_names:?}"
    );

    // Phase spans ("X" complete events, cat "sweep") must appear on worker tracks from at
    // least two distinct workers — proof the dumps were imported, not just announced.
    let mut workers_with_spans: std::collections::BTreeSet<&String> =
        std::collections::BTreeSet::new();
    for event in events {
        if event.get("ph").map(as_str) == Some("X") {
            assert_eq!(event.get("cat").map(as_str), Some("sweep"));
            let metric = as_str(event.get("name").expect("span name"));
            assert!(
                local_obs::metric_by_name(metric).is_some(),
                "span {metric:?} is not a registered metric"
            );
            let tid = u64::from_value(event.get("tid").expect("tid")).expect("numeric tid");
            if let Some(worker) = worker_tids.get(&tid) {
                workers_with_spans.insert(worker);
            }
        }
    }
    assert!(
        workers_with_spans.len() >= 2,
        "expected phase spans from >= 2 workers, got {workers_with_spans:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_event_log_is_parseable_ndjson() {
    let dir = temp_dir("ndjson");
    let log = dir.join("events.ndjson");
    sweep(&["--threads", "2", "--trace-events", log.to_str().unwrap()]);

    let text = std::fs::read_to_string(&log).expect("event log exists");
    let mut types = std::collections::BTreeSet::new();
    for line in text.lines() {
        let value: Value =
            serde_json::from_str(line).unwrap_or_else(|e| panic!("bad NDJSON line {line:?}: {e}"));
        types.insert(as_str(value.get("type").expect("self-describing line")).to_string());
    }
    for expected in ["track", "span", "counter"] {
        assert!(types.contains(expected), "no {expected:?} lines in {types:?}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tracing_leaves_deterministic_outputs_byte_identical() {
    let dir = temp_dir("deterministic");
    let run = |tag: &str, traced: bool| {
        let csv = dir.join(format!("{tag}.csv"));
        let json = dir.join(format!("{tag}.json"));
        let trace = dir.join(format!("{tag}.trace.json"));
        let mut extra = vec![
            "--deterministic".to_string(),
            "--csv".to_string(),
            csv.to_str().unwrap().to_string(),
            "--out".to_string(),
            json.to_str().unwrap().to_string(),
        ];
        if traced {
            extra.extend(["--trace".to_string(), trace.to_str().unwrap().to_string()]);
        }
        sweep(&extra.iter().map(String::as_str).collect::<Vec<_>>());
        (std::fs::read(&csv).unwrap(), std::fs::read(&json).unwrap())
    };
    let (csv_plain, json_plain) = run("plain", false);
    let (csv_traced, json_traced) = run("traced", true);
    assert_eq!(csv_plain, csv_traced, "tracing changed the deterministic CSV bytes");
    assert_eq!(json_plain, json_traced, "tracing changed the deterministic report bytes");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dry_run_predictions_join_observed_cells_on_label() {
    let dir = temp_dir("join");
    let labels_of = |path: &std::path::Path, metric: &str| {
        let text = std::fs::read_to_string(path).expect("event log exists");
        let mut labels = std::collections::BTreeSet::new();
        for line in text.lines() {
            let value: Value = serde_json::from_str(line).expect("valid NDJSON");
            if value.get("metric").map(as_str) == Some(metric) {
                labels.insert(as_str(value.get("label").expect("label")).to_string());
            }
        }
        labels
    };

    let dry = dir.join("dry.ndjson");
    sweep(&["--dry-run", "--trace-events", dry.to_str().unwrap()]);
    let observed = dir.join("run.ndjson");
    sweep(&["--threads", "1", "--trace-events", observed.to_str().unwrap()]);

    let predicted = labels_of(&dry, "predicted-micros");
    let executed = labels_of(&observed, "cell-micros");
    assert!(!predicted.is_empty(), "dry-run recorded no predictions");
    assert_eq!(
        predicted, executed,
        "predicted-vs-observed join must cover exactly the executed cells"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

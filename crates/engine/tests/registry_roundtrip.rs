//! The registry contracts, end to end: every registered name (workloads and families,
//! builtin and parameterized) parses back to itself, tags are pairwise distinct, and the
//! identities derived from them (instance keys, cache keys) separate parameterized
//! families that the closed catalog used to collapse.

use local_engine::{
    default_workloads, parse_workload, render_listing, workload, Scenario, SweepCache, WorkloadSpec,
};
use local_graphs::{builtin_families, family, parse_family, FamilySpec};

fn sample_workloads() -> Vec<WorkloadSpec> {
    let mut pool = default_workloads();
    pool.extend(
        ["ruling-set-b3", "ruling-set-b7", "lambda2-coloring", "lambda8-coloring"].map(workload),
    );
    pool
}

fn sample_families() -> Vec<FamilySpec> {
    let mut pool = builtin_families();
    pool.extend(
        [
            "gnp-d2",
            "gnp-d4",
            "gnp-d16",
            "regular-4",
            "regular-8",
            "forest-2",
            "forest-5",
            "pa-2",
            "pa-4",
            "unit-disk-r50",
            "unit-disk-r200",
        ]
        .map(family),
    );
    pool
}

#[test]
fn every_registered_workload_name_parses_back_to_itself() {
    for spec in sample_workloads() {
        let back = parse_workload(spec.name())
            .unwrap_or_else(|| panic!("workload {} must parse", spec.name()));
        assert_eq!(back, spec);
        assert_eq!(back.name(), spec.name());
        assert_eq!(back.tag(), spec.tag());
        assert_eq!(back.cost_shape(), spec.cost_shape());
    }
}

#[test]
fn every_registered_family_name_parses_back_to_itself() {
    for spec in sample_families() {
        let back = parse_family(spec.name())
            .unwrap_or_else(|| panic!("family {} must parse", spec.name()));
        assert_eq!(back, spec);
        assert_eq!(back.name(), spec.name());
        assert_eq!(back.tag(), spec.tag());
    }
}

#[test]
fn workload_and_family_tags_are_pairwise_distinct() {
    let dedup_len = |mut tags: Vec<u64>| {
        let count = tags.len();
        tags.sort_unstable();
        tags.dedup();
        (tags.len(), count)
    };
    let (unique, total) = dedup_len(sample_workloads().iter().map(WorkloadSpec::tag).collect());
    assert_eq!(unique, total, "workload tags collide");
    let (unique, total) = dedup_len(sample_families().iter().map(FamilySpec::tag).collect());
    assert_eq!(unique, total, "family tags collide");
}

#[test]
fn parameterized_families_never_share_instance_streams_or_cache_keys() {
    let cell = |fam: &str| Scenario {
        problem: workload("mis"),
        family: family(fam),
        n: 128,
        replicate: 0,
    };
    let cache = SweepCache::with_code_version("unused", "registry-test");
    let names = ["gnp-d8", "gnp-d16", "regular-4", "regular-8", "forest-2", "forest-4"];
    for (i, a) in names.iter().enumerate() {
        for b in &names[i + 1..] {
            let (ca, cb) = (cell(a), cell(b));
            assert_ne!(
                ca.instance_key(5).seed,
                cb.instance_key(5).seed,
                "{a} and {b} draw from one instance stream"
            );
            assert_ne!(cache.key(&ca, 5), cache.key(&cb, 5), "{a} and {b} share a cache key");
        }
    }
}

#[test]
fn listing_is_nonempty_and_names_every_registry_entry() {
    let listing = render_listing();
    assert!(listing.contains("workloads"));
    assert!(listing.contains("families"));
    for spec in default_workloads() {
        // Parameterized patterns list their pattern, exact names list the name.
        let pattern_present = listing.contains(spec.name())
            || listing.contains(&spec.name().replace("-b2", "[-b<beta>]"));
        assert!(pattern_present, "listing is missing {}", spec.name());
    }
    for spec in builtin_families() {
        assert!(listing.contains(spec.name()), "listing is missing {}", spec.name());
    }
}

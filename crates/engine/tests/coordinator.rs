//! The coordinator's headline guarantees, exercised with an in-process
//! [`CoordinatorServer`] (so the obs counters are visible to the test) over real
//! `sweep --serve` daemons on localhost:
//!
//! * two clients submitting concurrently through one coordinator each get a report
//!   byte-identical to a single-threaded in-process sweep, and the per-client exact
//!   accounting reconciles (`cells == verified + rescued`);
//! * a daemon killed mid-job rescues exactly the unverified cells — never a verified
//!   one, never one short;
//! * the deficit-round-robin scheduler is fair: a client that submits while another
//!   client's job is in flight starts receiving results before the first client's job
//!   finishes (neither client's cells all queue behind the other's).
//!
//! Counter assertions use before/after deltas under one test-local lock, because the obs
//! counters are process-global and the test harness runs tests concurrently.

use local_engine::{
    run_grid, workload, CoordinatorBackend, CoordinatorConfig, CoordinatorServer, Report,
    ScenarioGrid, Sweep, SweepConfig,
};
use local_graphs::{family, Family};
use serde::Serialize;
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

static SERIAL: Mutex<()> = Mutex::new(());

fn assert_reports_identical(reference: &Report, candidate: &Report, label: &str) {
    assert_eq!(reference.cell_count, candidate.cell_count, "{label}: cell counts differ");
    for (a, b) in reference.cells.iter().zip(&candidate.cells) {
        assert_eq!(a.deterministic_view(), b.deterministic_view(), "{label}: cell diverged");
    }
    assert_eq!(
        reference.deterministic_view().to_csv(),
        candidate.deterministic_view().to_csv(),
        "{label}: CSV bytes diverged"
    );
    assert_eq!(
        reference.deterministic_view().to_json(),
        candidate.deterministic_view().to_json(),
        "{label}: JSON bytes diverged"
    );
}

/// A `sweep --serve` daemon on an OS-assigned localhost port, killed and reaped on drop.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(faults: Option<&str>) -> Daemon {
        let mut command = Command::new(env!("CARGO_BIN_EXE_sweep"));
        command
            .args(["--serve", "127.0.0.1:0", "--threads", "1"])
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        match faults {
            Some(script) => command.env("LOCAL_FAULTS", script),
            None => command.env_remove("LOCAL_FAULTS"),
        };
        let mut child = command.spawn().expect("daemon spawns");
        let stdout = child.stdout.take().expect("stdout was piped");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("daemon announces its address");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
            .to_string();
        Daemon { child, addr }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Binds an in-process coordinator over `fleet` with test-friendly (fast-failing) retry
/// settings and runs it on a detached thread; returns the address clients submit to.
fn start_coordinator(fleet: Vec<String>) -> String {
    let config = CoordinatorConfig {
        fleet,
        rescue_threads: 1,
        retry_base_ms: 5,
        retry_cap_ms: 50,
        max_connect_attempts: 2,
        ..CoordinatorConfig::default()
    };
    let server = CoordinatorServer::bind("127.0.0.1:0", config).expect("coordinator binds");
    let addr = server.local_addr().expect("coordinator has an address").to_string();
    thread::spawn(move || server.run());
    addr
}

fn counters() -> (u64, u64, u64) {
    (
        local_obs::counter_value(local_obs::metrics::COORD_CELLS_VERIFIED),
        local_obs::counter_value(local_obs::metrics::RESCUED_CELLS),
        local_obs::counter_value(local_obs::metrics::COORD_JOBS),
    )
}

#[test]
fn two_concurrent_clients_each_get_byte_identical_reports() {
    let _guard = SERIAL.lock().unwrap();
    local_obs::enable();
    // Two distinct grids so a cross-delivered cell could never pass the comparison.
    let grid_a = ScenarioGrid::new()
        .problems([workload("mis"), workload("luby-mis")])
        .families([family("sparse-gnp"), Family::Grid.into()])
        .sizes([36usize, 48])
        .replicates(2)
        .base_seed(9);
    let grid_b = ScenarioGrid::new()
        .problems([workload("ruling-set-b2")])
        .families([family("gnp-d16"), Family::BinaryTree.into()])
        .sizes([30usize, 42, 54])
        .replicates(2)
        .base_seed(11);
    let reference_a = run_grid(&grid_a, &SweepConfig::with_threads(1));
    let reference_b = run_grid(&grid_b, &SweepConfig::with_threads(1));
    let first = Daemon::spawn(None);
    let second = Daemon::spawn(None);
    let coordinator = start_coordinator(vec![first.addr.clone(), second.addr.clone()]);
    let (verified0, rescued0, jobs0) = counters();
    let submit = |grid: ScenarioGrid, name: &str| {
        let addr = coordinator.clone();
        let name = name.to_string();
        thread::spawn(move || {
            Sweep::over(&grid).backend(CoordinatorBackend::new(addr).client(name)).run()
        })
    };
    let candidate_a = submit(grid_a.clone(), "alpha");
    let candidate_b = submit(grid_b.clone(), "beta");
    let candidate_a = candidate_a.join().expect("client alpha finishes");
    let candidate_b = candidate_b.join().expect("client beta finishes");
    assert_reports_identical(&reference_a, &candidate_a, "client alpha");
    assert_reports_identical(&reference_b, &candidate_b, "client beta");
    let (verified1, rescued1, jobs1) = counters();
    let total = (grid_a.cell_count() + grid_b.cell_count()) as u64;
    assert_eq!(verified1 - verified0, total, "every cell must be fleet-verified");
    assert_eq!(rescued1 - rescued0, 0, "a healthy fleet needs no in-process rescue");
    assert_eq!(jobs1 - jobs0, 2, "one job per client");
}

#[test]
fn a_daemon_killed_mid_job_rescues_exactly_the_unverified_cells() {
    let _guard = SERIAL.lock().unwrap();
    local_obs::enable();
    // 12 cells over 12 distinct instances. The single-peer fleet dies right before its 6th
    // result line (process-cumulative), so exactly 5 cells come back verified; the
    // coordinator must rescue exactly the other 7 — not one more, not one less.
    let grid = ScenarioGrid::new()
        .problems([workload("mis")])
        .families([family("sparse-gnp")])
        .sizes([30usize, 36, 42, 48, 54, 60])
        .replicates(2)
        .base_seed(9);
    let reference = run_grid(&grid, &SweepConfig::with_threads(1));
    let doomed = Daemon::spawn(Some("kill@5"));
    let coordinator = start_coordinator(vec![doomed.addr.clone()]);
    let (verified0, rescued0, _) = counters();
    let candidate =
        Sweep::over(&grid).backend(CoordinatorBackend::new(coordinator).client("mourner")).run();
    assert_reports_identical(&reference, &candidate, "killed fleet");
    let (verified1, rescued1, _) = counters();
    assert_eq!(verified1 - verified0, 5, "the 5 cells served before the kill stand");
    assert_eq!(rescued1 - rescued0, 7, "exactly the 7 unverified cells are rescued");
}

/// A raw protocol client: submits `grid` as one job line and timestamps every result line
/// as it arrives, so the test can observe the *interleaving* of two clients' streams.
fn submit_raw(coordinator: &str, grid: &ScenarioGrid, name: &str) -> Vec<Instant> {
    struct Line(Value);
    impl Serialize for Line {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
    let mut stream = TcpStream::connect(coordinator).expect("client connects");
    stream.set_read_timeout(Some(Duration::from_secs(60))).expect("read timeout set");
    let request = Line(Value::Map(vec![
        ("grid".into(), grid.to_value()),
        ("client".into(), Value::Str(name.to_string())),
    ]));
    let text = serde_json::to_string(&request).expect("job line serializes");
    writeln!(stream, "{text}").and_then(|_| stream.flush()).expect("job line sends");
    let mut arrivals = Vec::new();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line).expect("result line arrives");
        assert!(n > 0, "stream ended before the sentinel for client {name}");
        let value = serde_json::from_str(line.trim()).expect("protocol line parses");
        if value.get("index").is_some() {
            arrivals.push(Instant::now());
        } else if value.get("done").is_some() {
            return arrivals;
        } else if let Some(error) = value.get("error") {
            panic!("coordinator refused client {name}: {error:?}");
        }
    }
}

#[test]
fn a_late_client_is_served_before_the_early_clients_job_finishes() {
    let _guard = SERIAL.lock().unwrap();
    // One slow daemon: every result line of the two 8-cell jobs takes 120 ms, so stripe
    // service times dominate scheduling noise. Client beta submits ~250 ms after alpha;
    // deficit round-robin must interleave the jobs rather than queue beta behind alpha.
    let delays: Vec<String> = (0..16).map(|k| format!("delay@{k}=120")).collect();
    let slow = Daemon::spawn(Some(&delays.join(" ")));
    let coordinator = start_coordinator(vec![slow.addr.clone()]);
    let grid = |base_seed: u64| {
        ScenarioGrid::new()
            .problems([workload("mis")])
            .families([family("sparse-gnp")])
            .sizes([30usize, 36, 42, 48])
            .replicates(2)
            .base_seed(base_seed)
    };
    let alpha = {
        let coordinator = coordinator.clone();
        thread::spawn(move || submit_raw(&coordinator, &grid(9), "alpha"))
    };
    thread::sleep(Duration::from_millis(250));
    let beta = {
        let coordinator = coordinator.clone();
        thread::spawn(move || submit_raw(&coordinator, &grid(11), "beta"))
    };
    let alpha = alpha.join().expect("client alpha finishes");
    let beta = beta.join().expect("client beta finishes");
    assert_eq!(alpha.len(), 8, "alpha receives all its cells");
    assert_eq!(beta.len(), 8, "beta receives all its cells");
    let (a_first, a_last) = (alpha[0], *alpha.last().unwrap());
    let (b_first, b_last) = (beta[0], *beta.last().unwrap());
    assert!(
        b_first < a_last,
        "beta's first cell must arrive before alpha's job finishes (fair interleaving)"
    );
    assert!(
        a_first < b_last,
        "alpha's first cell must arrive before beta's job finishes (fair interleaving)"
    );
}

#[test]
fn a_store_backed_coordinator_serves_repeat_submissions_without_the_fleet() {
    use local_engine::{BinaryStore, ResultStore};
    use std::sync::Arc;

    let _guard = SERIAL.lock().unwrap();
    local_obs::enable();
    let dir = std::env::temp_dir().join(format!("coordinator-store-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let grid = ScenarioGrid::new()
        .problems([workload("mis")])
        .families([family("sparse-gnp"), Family::Grid.into()])
        .sizes([30usize, 42])
        .replicates(2)
        .base_seed(13);
    let reference = run_grid(&grid, &SweepConfig::with_threads(1));
    let store = Arc::new(BinaryStore::open(&dir).expect("store opens"));

    let daemon = Daemon::spawn(None);
    let config = CoordinatorConfig {
        fleet: vec![daemon.addr.clone()],
        rescue_threads: 1,
        retry_base_ms: 5,
        retry_cap_ms: 50,
        max_connect_attempts: 2,
        store: Some(Arc::clone(&store) as Arc<dyn ResultStore>),
        ..CoordinatorConfig::default()
    };
    let server = CoordinatorServer::bind("127.0.0.1:0", config).expect("coordinator binds");
    let coordinator = server.local_addr().expect("coordinator has an address").to_string();
    thread::spawn(move || server.run());

    // First submission runs on the fleet; every fresh cell is written back to the store.
    let first = Sweep::over(&grid)
        .backend(CoordinatorBackend::new(coordinator.clone()).client("first"))
        .run();
    assert_reports_identical(&reference, &first, "first store-backed submission");
    assert_eq!(
        store.stats().records_appended,
        grid.cell_count() as u64,
        "every fleet-verified cell must be written back"
    );

    // Kill the whole fleet. A repeat submission must still be answered, entirely from
    // the store — no rescue, no daemon.
    drop(daemon);
    let (_, rescued0, _) = counters();
    let second =
        Sweep::over(&grid).backend(CoordinatorBackend::new(coordinator).client("second")).run();
    assert_reports_identical(&reference, &second, "store-served submission");
    let (_, rescued1, _) = counters();
    assert_eq!(rescued1 - rescued0, 0, "store hits must not touch the rescue path");
    assert_eq!(store.hits(), grid.cell_count() as u64, "the repeat job hits every cell");
    let _ = std::fs::remove_dir_all(&dir);
}

//! The engine's headline guarantee: sharding a sweep over worker threads never changes its
//! results. A parallel sweep (`threads = 8`) must produce byte-identical `CellResult`s to a
//! fully sequential one (`threads = 1`), wall-clock fields aside.

use local_engine::{run_grid, workload, ScenarioGrid, SweepConfig};
use local_graphs::{family, Family};

fn demo_grid() -> ScenarioGrid {
    ScenarioGrid::new()
        .problems([
            workload("mis"),
            workload("matching"),
            workload("ruling-set-b2"),
            workload("coloring"),
        ])
        .families([Family::SparseGnp.into(), Family::Grid.into(), family("gnp-d12")])
        .sizes([36usize, 60])
        .replicates(2)
        .base_seed(5)
}

#[test]
fn parallel_sweep_is_byte_identical_to_sequential() {
    let grid = demo_grid();
    let sequential = run_grid(&grid, &SweepConfig::with_threads(1));
    let parallel = run_grid(&grid, &SweepConfig::with_threads(8));

    assert_eq!(sequential.cell_count, parallel.cell_count);
    assert_eq!(sequential.distinct_instances, parallel.distinct_instances);
    for (a, b) in sequential.cells.iter().zip(&parallel.cells) {
        assert_eq!(
            a.deterministic_view(),
            b.deterministic_view(),
            "cell diverged between threads=1 and threads=8"
        );
    }
    for (a, b) in sequential.summaries.iter().zip(&parallel.summaries) {
        let mut a = a.clone();
        let mut b = b.clone();
        a.total_wall_micros = 0;
        b.total_wall_micros = 0;
        assert_eq!(a, b, "summary diverged between threads=1 and threads=8");
    }
}

#[test]
fn rerunning_the_same_grid_reproduces_the_same_report() {
    let grid = demo_grid();
    let first = run_grid(&grid, &SweepConfig::with_threads(4));
    let second = run_grid(&grid, &SweepConfig::with_threads(4));
    for (a, b) in first.cells.iter().zip(&second.cells) {
        assert_eq!(a.deterministic_view(), b.deterministic_view());
    }
}

#[test]
fn base_seed_changes_results_but_not_shape() {
    let grid_a = demo_grid().base_seed(5);
    let grid_b = demo_grid().base_seed(6);
    let a = run_grid(&grid_a, &SweepConfig::with_threads(4));
    let b = run_grid(&grid_b, &SweepConfig::with_threads(4));
    assert_eq!(a.cell_count, b.cell_count);
    // Seeds must differ cell-by-cell; at least some measured values should too.
    assert!(a.cells.iter().zip(&b.cells).all(|(x, y)| x.seed != y.seed));
    assert!(a.cells.iter().zip(&b.cells).any(|(x, y)| {
        x.uniform_rounds != y.uniform_rounds || x.uniform_messages != y.uniform_messages
    }));
}

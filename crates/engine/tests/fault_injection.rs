//! Deterministic fault injection against the process backend: every scripted failure mode
//! must degrade to a byte-identical report, and the rescue accounting must be *exact* —
//! a fault at result line K leaves exactly K verified cells standing and re-runs exactly
//! the rest.
//!
//! Counter assertions use before/after deltas under one test-local lock, because the obs
//! counters are process-global and the test harness runs tests concurrently.

use local_engine::backend::{FaultPlan, ProcessBackend};
use local_engine::{run_grid, workload, Report, ScenarioGrid, Sweep, SweepConfig};
use local_graphs::family;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

/// A small grid (8 cells) so exact per-line fault arithmetic stays readable.
fn small_grid() -> ScenarioGrid {
    ScenarioGrid::new()
        .problems([workload("mis"), workload("luby-mis")])
        .families([family("sparse-gnp"), family("grid")])
        .sizes([36usize, 48])
        .replicates(1)
        .base_seed(9)
}

fn worker_bin() -> String {
    env!("CARGO_BIN_EXE_sweep").to_string()
}

fn assert_reports_identical(reference: &Report, candidate: &Report, label: &str) {
    assert_eq!(reference.cell_count, candidate.cell_count, "{label}: cell counts differ");
    for (a, b) in reference.cells.iter().zip(&candidate.cells) {
        assert_eq!(a.deterministic_view(), b.deterministic_view(), "{label}: cell diverged");
    }
    assert_eq!(
        reference.deterministic_view().to_csv(),
        candidate.deterministic_view().to_csv(),
        "{label}: CSV bytes diverged"
    );
}

fn rescued() -> u64 {
    local_obs::counter_value(local_obs::metrics::RESCUED_CELLS)
}

/// One single-worker faulted sweep; returns the report and how many cells were rescued.
fn faulted_sweep(grid: &ScenarioGrid, script: &str) -> (Report, u64) {
    local_obs::enable();
    let before = rescued();
    let backend = ProcessBackend::with_command(1, vec![worker_bin()])
        .faults(FaultPlan::parse(script).expect("test script parses"));
    let report = Sweep::over(grid).backend(backend).run();
    (report, rescued() - before)
}

#[test]
fn a_killed_worker_leaves_exactly_the_verified_prefix() {
    let _guard = SERIAL.lock().unwrap();
    let grid = small_grid();
    let reference = run_grid(&grid, &SweepConfig::with_threads(1));
    // The worker exits(1) right before its 4th result line: 3 cells verified, 5 rescued.
    let (candidate, rescued) = faulted_sweep(&grid, "w0:kill@3");
    assert_reports_identical(&reference, &candidate, "killed worker");
    assert_eq!(rescued, grid.cell_count() as u64 - 3, "exactly the unverified cells re-run");
}

#[test]
fn mid_stream_corruption_rescues_exactly_the_unverified_remainder() {
    let _guard = SERIAL.lock().unwrap();
    let grid = small_grid();
    let reference = run_grid(&grid, &SweepConfig::with_threads(1));
    // Two verified lines, then one garbage line, then more valid lines the parent must
    // refuse to trust: exactly the 6 unverified cells are re-run, and the report is
    // byte-identical to the in-process reference.
    let (candidate, rescued) = faulted_sweep(&grid, "w0:garble@2");
    assert_reports_identical(&reference, &candidate, "garbled stream");
    assert_eq!(rescued, grid.cell_count() as u64 - 2, "exactly the unverified cells re-run");
}

#[test]
fn truncated_streams_keep_the_flushed_prefix() {
    let _guard = SERIAL.lock().unwrap();
    let grid = small_grid();
    let reference = run_grid(&grid, &SweepConfig::with_threads(1));
    // The worker flushes 5 lines and exits(0) without a sentinel: a clean truncation.
    let (candidate, rescued) = faulted_sweep(&grid, "w0:truncate@5");
    assert_reports_identical(&reference, &candidate, "truncated stream");
    assert_eq!(rescued, grid.cell_count() as u64 - 5, "exactly the unverified cells re-run");
}

#[test]
fn duplicated_result_lines_are_rejected_not_double_counted() {
    let _guard = SERIAL.lock().unwrap();
    let grid = small_grid();
    let reference = run_grid(&grid, &SweepConfig::with_threads(1));
    // Line 1 arrives twice; the duplicate is refused and the stream abandoned with two
    // cells verified (lines 0 and 1 — the duplicate follows the original).
    let (candidate, rescued) = faulted_sweep(&grid, "w0:dup@1");
    assert_reports_identical(&reference, &candidate, "duplicated line");
    assert_eq!(rescued, grid.cell_count() as u64 - 2, "exactly the unverified cells re-run");
}

#[test]
fn scripted_spawn_refusals_fail_the_stripe_parent_side() {
    let _guard = SERIAL.lock().unwrap();
    let grid = small_grid();
    let reference = run_grid(&grid, &SweepConfig::with_threads(1));
    local_obs::enable();
    let injected_before = local_obs::counter_value(local_obs::metrics::FAULTS_INJECTED);
    let (candidate, rescued) = faulted_sweep(&grid, "w0:refuse*1");
    assert_reports_identical(&reference, &candidate, "refused spawn");
    assert_eq!(rescued, grid.cell_count() as u64, "the whole stripe is rescued");
    assert_eq!(
        local_obs::counter_value(local_obs::metrics::FAULTS_INJECTED) - injected_before,
        1,
        "the refusal itself counts as an injected fault"
    );
}

#[test]
fn a_delay_fault_trips_the_liveness_deadline() {
    let _guard = SERIAL.lock().unwrap();
    let grid = small_grid();
    let reference = run_grid(&grid, &SweepConfig::with_threads(1));
    local_obs::enable();
    let before = rescued();
    // The worker stalls 5 seconds before its 2nd result line while the parent only
    // tolerates 300ms of silence: the stall is declared a death, one verified cell stands.
    let backend = ProcessBackend::with_command(1, vec![worker_bin()])
        .faults(FaultPlan::parse("w0:delay@1=5000").unwrap())
        .io_deadline_ms(300);
    let candidate = Sweep::over(&grid).backend(backend).run();
    assert_reports_identical(&reference, &candidate, "stalled worker");
    assert_eq!(rescued() - before, grid.cell_count() as u64 - 1);
}

#[test]
fn workers_that_never_read_stdin_hit_the_write_deadline_discipline() {
    let _guard = SERIAL.lock().unwrap();
    let grid = small_grid();
    let reference = run_grid(&grid, &SweepConfig::with_threads(1));
    local_obs::enable();
    let before = rescued();
    // A wedged worker: accepts the spawn, never reads its stdin, never writes a byte. The
    // shard ships from a writer thread behind the same liveness deadline as reads, so the
    // dispatcher is never stuck in write_all — the deadline fires, the worker is killed,
    // and everything is rescued.
    let wedged = vec!["/bin/sh".to_string(), "-c".to_string(), "sleep 300".to_string()];
    let backend = ProcessBackend::with_command(1, wedged).io_deadline_ms(300);
    let started = std::time::Instant::now();
    let candidate = Sweep::over(&grid).backend(backend).run();
    assert!(
        started.elapsed() < std::time::Duration::from_secs(60),
        "a wedged worker must be abandoned at the deadline, not waited out"
    );
    assert_reports_identical(&reference, &candidate, "wedged worker");
    assert_eq!(rescued() - before, grid.cell_count() as u64);
}

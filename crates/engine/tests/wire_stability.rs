//! Wire stability of the shard protocol (and the cache files built on the same serde):
//! serialize → deserialize → serialize is byte-identical for `Scenario`, `CellResult`, and
//! `CellShard`, so a result can cross a process boundary (or sit in the cache) and come
//! back exactly as it left.

use local_engine::{CellResult, CellShard, ProblemKind, Scenario};
use local_graphs::Family;
use proptest::prelude::*;
use serde::{Deserialize, Serialize};

/// serialize → deserialize → serialize, asserting the two wire strings are byte-identical
/// and the reconstructed value equals the original.
fn assert_stable<T>(value: &T)
where
    T: Serialize + Deserialize + PartialEq + std::fmt::Debug,
{
    let first = serde_json::to_string(value).expect("serializes");
    let reparsed = serde_json::from_str(&first).expect("own output parses");
    let back = T::from_value(&reparsed).expect("own output deserializes");
    assert_eq!(&back, value, "value changed across the wire");
    let second = serde_json::to_string(&back).expect("reserializes");
    assert_eq!(first, second, "wire bytes changed across a round trip");
}

#[test]
fn scenario_round_trips_for_every_problem_kind() {
    let mut problems = ProblemKind::ALL.to_vec();
    // Parameterised kinds beyond the defaults: the wire must carry the parameter.
    problems.push(ProblemKind::RulingSet(5));
    problems.push(ProblemKind::LambdaColoring(4));
    for problem in problems {
        for family in Family::ALL {
            assert_stable(&Scenario { problem, family, n: 97, replicate: 3 });
        }
    }
}

#[test]
fn cell_result_round_trips_with_every_field_populated() {
    assert_stable(&CellResult {
        problem: "ruling-set-b3".into(),
        family: "unit-disk".into(),
        requested_n: 100,
        n: 96,
        edges: 512,
        replicate: 7,
        seed: u64::MAX,
        uniform_rounds: 1234,
        uniform_messages: 99999,
        nonuniform_rounds: 617,
        nonuniform_messages: 88888,
        overhead_ratio: 2.000_648_3,
        subiterations: 9,
        solved: true,
        valid: false,
        wall_micros: 424_242,
        attempt_micros: 400_000,
        prune_micros: 20_000,
        instance_micros: 4_242,
    });
}

#[test]
fn shard_round_trips_with_mixed_cells() {
    let shard = CellShard::new(
        0xDEAD_BEEF,
        vec![
            Scenario { problem: ProblemKind::Mis, family: Family::SparseGnp, n: 64, replicate: 0 },
            Scenario {
                problem: ProblemKind::LambdaColoring(3),
                family: Family::UnitDisk,
                n: 128,
                replicate: 2,
            },
            Scenario {
                problem: ProblemKind::RulingSet(2),
                family: Family::Forest3,
                n: 32,
                replicate: 9,
            },
        ],
    );
    assert_stable(&shard);
}

fn arbitrary_scenario() -> impl Strategy<Value = Scenario> {
    // One index past ALL exercises each parameterised kind with a non-default parameter.
    (0usize..ProblemKind::ALL.len() + 2, 0usize..Family::ALL.len(), 1usize..100_000, 0u64..64)
        .prop_map(|(p, f, n, replicate)| {
            let problem = match p.checked_sub(ProblemKind::ALL.len()) {
                None => ProblemKind::ALL[p],
                Some(0) => ProblemKind::RulingSet(3 + replicate),
                Some(_) => ProblemKind::LambdaColoring(2 + replicate),
            };
            Scenario { problem, family: Family::ALL[f], n, replicate }
        })
}

fn arbitrary_result() -> impl Strategy<Value = CellResult> {
    (
        (0usize..ProblemKind::ALL.len(), 0usize..Family::ALL.len(), 1usize..100_000, 0u64..64),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<bool>(), any::<bool>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |((p, f, n, replicate), (seed, ur, um, nr, nm), (solved, valid, w, a, pr, i))| {
                CellResult {
                    problem: ProblemKind::ALL[p].name(),
                    family: Family::ALL[f].name().to_string(),
                    requested_n: n,
                    n,
                    edges: n / 2,
                    replicate,
                    seed,
                    uniform_rounds: ur,
                    uniform_messages: um,
                    nonuniform_rounds: nr,
                    nonuniform_messages: nm,
                    // A quotient of arbitrary u64s covers integral, fractional, huge, and tiny
                    // floats — the shapes the JSON number formatter has to reproduce exactly.
                    overhead_ratio: ur as f64 / nr.max(1) as f64,
                    subiterations: um % 97,
                    solved,
                    valid,
                    wall_micros: w,
                    attempt_micros: a,
                    prune_micros: pr,
                    instance_micros: i,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn scenario_wire_is_byte_stable(scenario in arbitrary_scenario()) {
        assert_stable(&scenario);
    }

    #[test]
    fn cell_result_wire_is_byte_stable(result in arbitrary_result()) {
        assert_stable(&result);
    }

    #[test]
    fn shard_wire_is_byte_stable(cells in proptest::collection::vec(arbitrary_scenario(), 0..12),
                                 base_seed in any::<u64>()) {
        assert_stable(&CellShard::new(base_seed, cells));
    }
}

//! Wire stability of the shard protocol (and the cache files built on the same serde):
//! serialize → deserialize → serialize is byte-identical for `Scenario`, `CellResult`, and
//! `CellShard`, so a result can cross a process boundary (or sit in the cache) and come
//! back exactly as it left — including scenarios built from *parameterized* workload and
//! family specs, which spell their parameters inside the stable name.

use local_engine::backend::{SpanDump, WireEvent, WireTrack, WorkerTelemetry};
use local_engine::{default_workloads, workload, CellResult, CellShard, Scenario, WorkloadSpec};
use local_graphs::{builtin_families, family, Family, FamilySpec};
use proptest::prelude::*;
use serde::{Deserialize, Serialize};

/// serialize → deserialize → serialize, asserting the two wire strings are byte-identical
/// and the reconstructed value equals the original.
fn assert_stable<T>(value: &T)
where
    T: Serialize + Deserialize + PartialEq + std::fmt::Debug,
{
    let first = serde_json::to_string(value).expect("serializes");
    let reparsed = serde_json::from_str(&first).expect("own output parses");
    let back = T::from_value(&reparsed).expect("own output deserializes");
    assert_eq!(&back, value, "value changed across the wire");
    let second = serde_json::to_string(&back).expect("reserializes");
    assert_eq!(first, second, "wire bytes changed across a round trip");
}

/// The workload pool the proptests draw from: every default plus parameterized kinds with
/// non-default parameters.
fn workload_pool() -> Vec<WorkloadSpec> {
    let mut pool = default_workloads();
    pool.push(workload("ruling-set-b5"));
    pool.push(workload("lambda4-coloring"));
    pool
}

/// The family pool: every builtin plus one of each parameterized generator shape.
fn family_pool() -> Vec<FamilySpec> {
    let mut pool = builtin_families();
    for name in
        ["gnp-d2", "gnp-d16", "regular-4", "regular-12", "forest-5", "pa-2", "unit-disk-r75"]
    {
        pool.push(family(name));
    }
    pool
}

#[test]
fn scenario_round_trips_for_every_workload_and_family() {
    for problem in workload_pool() {
        for family in family_pool() {
            assert_stable(&Scenario { problem: problem.clone(), family, n: 97, replicate: 3 });
        }
    }
}

#[test]
fn cell_result_round_trips_with_every_field_populated() {
    assert_stable(&CellResult {
        problem: "ruling-set-b3".into(),
        family: "unit-disk".into(),
        requested_n: 100,
        n: 96,
        edges: 512,
        replicate: 7,
        seed: u64::MAX,
        uniform_rounds: 1234,
        uniform_messages: 99999,
        nonuniform_rounds: 617,
        nonuniform_messages: 88888,
        overhead_ratio: 2.000_648_3,
        subiterations: 9,
        solved: true,
        valid: false,
        wall_micros: 424_242,
        attempt_micros: 400_000,
        prune_micros: 20_000,
        instance_micros: 4_242,
    });
}

#[test]
fn shard_round_trips_with_mixed_builtin_and_parameterized_cells() {
    let shard = CellShard::new(
        0xDEAD_BEEF,
        vec![
            Scenario {
                problem: workload("mis"),
                family: Family::SparseGnp.into(),
                n: 64,
                replicate: 0,
            },
            Scenario {
                problem: workload("lambda3-coloring"),
                family: family("gnp-d16"),
                n: 128,
                replicate: 2,
            },
            Scenario {
                problem: workload("ruling-set-b2"),
                family: family("forest-5"),
                n: 32,
                replicate: 9,
            },
        ],
    );
    assert_stable(&shard);
}

#[test]
fn telemetry_records_round_trip_with_every_field_populated() {
    assert_stable(&WorkerTelemetry {
        cells_done: u64::MAX,
        wall_micros: 123_456_789,
        counters: vec![("messages-sent".into(), 42), ("rounds".into(), 0)],
    });
    assert_stable(&SpanDump {
        tracks: vec![
            WireTrack {
                name: "thread-0".into(),
                events: vec![
                    WireEvent {
                        metric: "attempt".into(),
                        label: "mis;sparse-gnp".into(),
                        start_micros: 12,
                        dur_micros: 34,
                        value: 0,
                        is_span: true,
                    },
                    WireEvent {
                        metric: "active-nodes".into(),
                        label: String::new(),
                        start_micros: 56,
                        dur_micros: 0,
                        value: u64::MAX,
                        is_span: false,
                    },
                ],
            },
            WireTrack { name: "thread-1".into(), events: Vec::new() },
        ],
        counters: vec![("cells-done".into(), 7)],
    });
}

fn arbitrary_scenario() -> impl Strategy<Value = Scenario> {
    let problems = workload_pool();
    let families = family_pool();
    (0usize..problems.len(), 0usize..families.len(), 1usize..100_000, 0u64..64).prop_map(
        move |(p, f, n, replicate)| Scenario {
            problem: problems[p].clone(),
            family: families[f].clone(),
            n,
            replicate,
        },
    )
}

fn arbitrary_result() -> impl Strategy<Value = CellResult> {
    let problems = workload_pool();
    let families = family_pool();
    (
        (0usize..problems.len(), 0usize..families.len(), 1usize..100_000, 0u64..64),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<bool>(), any::<bool>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            move |((p, f, n, replicate), (seed, ur, um, nr, nm), (solved, valid, w, a, pr, i))| {
                CellResult {
                    problem: problems[p].name().to_string(),
                    family: families[f].name().to_string(),
                    requested_n: n,
                    n,
                    edges: n / 2,
                    replicate,
                    seed,
                    uniform_rounds: ur,
                    uniform_messages: um,
                    nonuniform_rounds: nr,
                    nonuniform_messages: nm,
                    // A quotient of arbitrary u64s covers integral, fractional, huge, and tiny
                    // floats — the shapes the JSON number formatter has to reproduce exactly.
                    overhead_ratio: ur as f64 / nr.max(1) as f64,
                    subiterations: um % 97,
                    solved,
                    valid,
                    wall_micros: w,
                    attempt_micros: a,
                    prune_micros: pr,
                    instance_micros: i,
                }
            },
        )
}

/// Registered metric names the telemetry proptests draw from (workers only ever put
/// registered names on the wire).
const METRIC_NAMES: [&str; 7] =
    ["cell", "instance-gen", "attempt", "prune", "verify", "messages-sent", "active-nodes"];

/// Label shapes that actually occur: none, phase labels, and full cell labels.
const LABEL_POOL: [&str; 4] = ["", "mis;sparse-gnp", "matching;tree", "mis/sparse-gnp/n128/r0"];

fn arbitrary_wire_event() -> impl Strategy<Value = WireEvent> {
    (
        (0usize..METRIC_NAMES.len(), 0usize..LABEL_POOL.len()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<bool>()),
    )
        .prop_map(|((m, l), (start, dur, value, is_span))| WireEvent {
            metric: METRIC_NAMES[m].to_string(),
            label: LABEL_POOL[l].to_string(),
            start_micros: start,
            dur_micros: dur,
            value,
            is_span,
        })
}

fn arbitrary_counters() -> impl Strategy<Value = Vec<(String, u64)>> {
    proptest::collection::vec((0usize..METRIC_NAMES.len(), any::<u64>()), 0..5).prop_map(
        |counters| counters.into_iter().map(|(m, v)| (METRIC_NAMES[m].to_string(), v)).collect(),
    )
}

fn arbitrary_span_dump() -> impl Strategy<Value = SpanDump> {
    (
        proptest::collection::vec(
            (0usize..4, proptest::collection::vec(arbitrary_wire_event(), 0..8)),
            0..4,
        ),
        arbitrary_counters(),
    )
        .prop_map(|(tracks, counters)| SpanDump {
            tracks: tracks
                .into_iter()
                .map(|(k, events)| WireTrack { name: format!("thread-{k}"), events })
                .collect(),
            counters,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn scenario_wire_is_byte_stable(scenario in arbitrary_scenario()) {
        assert_stable(&scenario);
    }

    #[test]
    fn cell_result_wire_is_byte_stable(result in arbitrary_result()) {
        assert_stable(&result);
    }

    #[test]
    fn shard_wire_is_byte_stable(cells in proptest::collection::vec(arbitrary_scenario(), 0..12),
                                 base_seed in any::<u64>()) {
        assert_stable(&CellShard::new(base_seed, cells));
    }

    #[test]
    fn worker_telemetry_wire_is_byte_stable(cells_done in any::<u64>(),
                                            wall_micros in any::<u64>(),
                                            counters in arbitrary_counters()) {
        assert_stable(&WorkerTelemetry { cells_done, wall_micros, counters });
    }

    #[test]
    fn span_dump_wire_is_byte_stable(dump in arbitrary_span_dump()) {
        assert_stable(&dump);
    }
}

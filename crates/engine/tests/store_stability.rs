//! Wire stability of the binary result codec backing `--store`: encode → decode →
//! re-encode is byte-identical for arbitrary results (the on-disk value bytes are a
//! stable format, not an implementation detail), the columnar decoder agrees with the
//! row decoder on every summary column, and any truncation or trailing garbage is
//! rejected as a miss rather than misread.

use local_engine::store::{decode_cell_columns, decode_cell_result, encode_cell_result};
use local_engine::{default_workloads, workload, CellColumns, CellResult, WorkloadSpec};
use local_graphs::{builtin_families, family, FamilySpec};
use proptest::prelude::*;

/// The workload pool the proptests draw from: every default plus parameterized kinds with
/// non-default parameters (their names carry the parameters onto the wire).
fn workload_pool() -> Vec<WorkloadSpec> {
    let mut pool = default_workloads();
    pool.push(workload("ruling-set-b5"));
    pool.push(workload("lambda4-coloring"));
    pool
}

/// The family pool: every builtin plus one of each parameterized generator shape.
fn family_pool() -> Vec<FamilySpec> {
    let mut pool = builtin_families();
    for name in
        ["gnp-d2", "gnp-d16", "regular-4", "regular-12", "forest-5", "pa-2", "unit-disk-r75"]
    {
        pool.push(family(name));
    }
    pool
}

fn arbitrary_result() -> impl Strategy<Value = CellResult> {
    let problems = workload_pool();
    let families = family_pool();
    (
        (0usize..problems.len(), 0usize..families.len(), 1usize..100_000, 0u64..64),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<bool>(), any::<bool>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            move |((p, f, n, replicate), (seed, ur, um, nr, nm), (solved, valid, w, a, pr, i))| {
                CellResult {
                    problem: problems[p].name().to_string(),
                    family: families[f].name().to_string(),
                    requested_n: n,
                    n,
                    edges: n / 2,
                    replicate,
                    seed,
                    uniform_rounds: ur,
                    uniform_messages: um,
                    nonuniform_rounds: nr,
                    nonuniform_messages: nm,
                    // A quotient of arbitrary u64s covers integral, fractional, huge, and
                    // tiny floats — every bit pattern must survive the to_bits round trip.
                    overhead_ratio: ur as f64 / nr.max(1) as f64,
                    subiterations: um % 97,
                    solved,
                    valid,
                    wall_micros: w,
                    attempt_micros: a,
                    prune_micros: pr,
                    instance_micros: i,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn binary_codec_round_trips_and_is_byte_stable(result in arbitrary_result()) {
        let encoded = encode_cell_result(&result);
        let decoded = decode_cell_result(&encoded).expect("own encoding decodes");
        prop_assert_eq!(&decoded, &result, "value changed across the codec");
        let reencoded = encode_cell_result(&decoded);
        prop_assert_eq!(&encoded, &reencoded, "encoded bytes changed across a round trip");
    }

    #[test]
    fn columnar_decoder_agrees_with_the_row_decoder(result in arbitrary_result()) {
        let encoded = encode_cell_result(&result);
        let columns = decode_cell_columns(&encoded).expect("own encoding decodes");
        prop_assert_eq!(columns, CellColumns::from(&result));
    }

    #[test]
    fn every_truncation_and_extension_reads_as_a_miss(result in arbitrary_result(),
                                                      cut_fraction in 0.0f64..1.0) {
        let encoded = encode_cell_result(&result);
        let cut = ((encoded.len() as f64) * cut_fraction) as usize;
        // cut < len always: a strict prefix must never decode.
        prop_assert_eq!(decode_cell_result(&encoded[..cut]), None);
        prop_assert_eq!(decode_cell_columns(&encoded[..cut]), None);
        let mut padded = encoded;
        padded.push(0);
        prop_assert_eq!(decode_cell_result(&padded), None, "trailing bytes must not decode");
        prop_assert_eq!(decode_cell_columns(&padded), None);
    }
}

//! The process backend's headline guarantees, exercised against the real `sweep --worker`
//! binary (Cargo builds it for integration tests and exposes the path as
//! `CARGO_BIN_EXE_sweep`):
//!
//! * a 2-worker process sweep is byte-identical to a single-threaded in-process sweep;
//! * worker failures of every flavour (dead on arrival, killed, garbage stdout, truncated
//!   stream) degrade to in-process re-execution with a byte-identical report;
//! * the cache, streaming mode, and cost calibration all compose with the process backend.

use local_engine::backend::ProcessBackend;
use local_engine::{
    run_grid, workload, CellResult, Report, ScenarioGrid, Sweep, SweepCache, SweepConfig,
};
use local_graphs::{family, Family};
use std::path::PathBuf;

fn worker_bin() -> String {
    env!("CARGO_BIN_EXE_sweep").to_string()
}

fn demo_grid() -> ScenarioGrid {
    ScenarioGrid::new()
        .problems([workload("mis"), workload("luby-mis"), workload("ruling-set-b2")])
        .families([Family::SparseGnp.into(), Family::Grid.into(), family("gnp-d16")])
        .sizes([36usize, 48])
        .replicates(2)
        .base_seed(9)
}

fn assert_reports_identical(reference: &Report, candidate: &Report, label: &str) {
    assert_eq!(reference.cell_count, candidate.cell_count, "{label}: cell counts differ");
    assert_eq!(
        reference.cells.len(),
        candidate.cells.len(),
        "{label}: collected cell vectors differ in length"
    );
    for (a, b) in reference.cells.iter().zip(&candidate.cells) {
        assert_eq!(a.deterministic_view(), b.deterministic_view(), "{label}: cell diverged");
    }
    let strip = |report: &Report| {
        report
            .summaries
            .iter()
            .map(|s| {
                let mut s = s.clone();
                s.total_wall_micros = 0;
                s
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(strip(reference), strip(candidate), "{label}: summaries diverged");
    assert_eq!(
        reference.deterministic_view().to_csv(),
        candidate.deterministic_view().to_csv(),
        "{label}: CSV bytes diverged"
    );
}

#[test]
fn two_worker_processes_match_one_in_process_thread_byte_for_byte() {
    let grid = demo_grid();
    let reference = run_grid(&grid, &SweepConfig::with_threads(1));
    let candidate =
        Sweep::over(&grid).backend(ProcessBackend::with_command(2, vec![worker_bin()])).run();
    assert_eq!(candidate.threads, 2, "the report records the worker-process count");
    assert_reports_identical(&reference, &candidate, "process backend");
}

#[test]
fn dead_on_arrival_workers_fall_back_in_process() {
    let grid = demo_grid();
    let reference = run_grid(&grid, &SweepConfig::with_threads(1));
    // `/bin/false` exits immediately without reading the shard or writing a byte.
    let candidate = Sweep::over(&grid)
        .backend(ProcessBackend::with_command(2, vec!["/bin/false".to_string()]))
        .run();
    assert_reports_identical(&reference, &candidate, "dead worker");
}

#[test]
fn killed_workers_fall_back_in_process() {
    let grid = demo_grid();
    let reference = run_grid(&grid, &SweepConfig::with_threads(1));
    let killer = vec!["/bin/sh".to_string(), "-c".to_string(), "kill -9 $$".to_string()];
    let candidate = Sweep::over(&grid).backend(ProcessBackend::with_command(2, killer)).run();
    assert_reports_identical(&reference, &candidate, "killed worker");
}

#[test]
fn garbage_on_stdout_falls_back_in_process() {
    let grid = demo_grid();
    let reference = run_grid(&grid, &SweepConfig::with_threads(1));
    // Consumes the shard politely, then speaks nonsense and exits 0: the cleanest liar.
    let script = "cat > /dev/null; echo 'definitely { not json'; exit 0".to_string();
    let liar = vec!["/bin/sh".to_string(), "-c".to_string(), script];
    let candidate = Sweep::over(&grid).backend(ProcessBackend::with_command(2, liar)).run();
    assert_reports_identical(&reference, &candidate, "garbage worker");
}

#[test]
fn truncated_streams_keep_verified_cells_and_rerun_the_rest() {
    let grid = demo_grid();
    let reference = run_grid(&grid, &SweepConfig::with_threads(1));
    // A real worker whose stream is cut after two lines: the two verified cells stand,
    // everything after the cut is re-executed in-process.
    let script = format!("'{}' --worker --threads 1 2>/dev/null | head -n 2", worker_bin());
    let truncated = vec!["/bin/sh".to_string(), "-c".to_string(), script];
    let candidate = Sweep::over(&grid).backend(ProcessBackend::with_command(2, truncated)).run();
    assert_reports_identical(&reference, &candidate, "truncated worker");
}

#[test]
fn under_emitting_workers_with_a_confident_sentinel_still_trigger_reruns() {
    let grid = demo_grid();
    let reference = run_grid(&grid, &SweepConfig::with_threads(1));
    // A real worker whose second result line is dropped: the sentinel still claims the full
    // count and the process exits 0, but completeness is judged by what was verified, so
    // the missing cell is re-executed rather than silently lost.
    let script = format!("'{}' --worker --threads 1 2>/dev/null | sed '2d'", worker_bin());
    let dropper = vec!["/bin/sh".to_string(), "-c".to_string(), script];
    let candidate = Sweep::over(&grid).backend(ProcessBackend::with_command(2, dropper)).run();
    assert_reports_identical(&reference, &candidate, "under-emitting worker");
}

#[test]
fn calibration_merges_per_worker_observations() {
    let grid = demo_grid();
    let (_, local_model) =
        Sweep::over(&grid).config(&SweepConfig::with_threads(1)).run_calibrated();
    let (_, merged_model) = Sweep::over(&grid)
        .backend(ProcessBackend::with_command(2, vec![worker_bin()]))
        .run_calibrated();
    let groups = |model: &local_engine::CostModel| {
        model
            .observations()
            .into_iter()
            .map(|(problem, family, _, _)| (problem, family))
            .collect::<Vec<_>>()
    };
    // Wall times differ across processes, but the merged calibration must cover exactly the
    // groups a local sweep observes — proof the workers' observation sums made it home.
    assert_eq!(groups(&merged_model), groups(&local_model));
    assert!(!merged_model.observations().is_empty());
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("backend-process-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn cache_composes_with_the_process_backend() {
    let dir = temp_dir("cache");
    let grid = demo_grid();
    let backend = || ProcessBackend::with_command(2, vec![worker_bin()]);
    let first = Sweep::over(&grid).backend(backend()).cache(SweepCache::new(&dir)).run();
    assert_eq!(first.cache_hits, 0, "a cold cache must not hit");

    // The re-sweep serves every worker-produced result from disk, byte-identically —
    // whether it re-runs in-process or over processes again.
    let resweep = run_grid(&grid, &SweepConfig::with_threads(2).with_cache(SweepCache::new(&dir)));
    assert_eq!(resweep.cache_hits, resweep.cell_count, "a re-sweep must be 100% cache hits");
    assert_eq!(first.to_csv_with(true), resweep.to_csv_with(true));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn streaming_composes_with_the_process_backend() {
    let dir = temp_dir("stream");
    let grid = demo_grid();
    let collected = run_grid(&grid, &SweepConfig::with_threads(1));
    let streamed = Sweep::over(&grid)
        .backend(ProcessBackend::with_command(2, vec![worker_bin()]))
        .cache(SweepCache::new(&dir))
        .streaming()
        .run();
    assert!(streamed.cells.is_empty(), "streaming mode must not hold cells in memory");
    assert_eq!(streamed.cell_count, collected.cell_count);
    for (s, c) in streamed.summaries.iter().zip(&collected.summaries) {
        let mut s = s.clone();
        s.total_wall_micros = c.total_wall_micros;
        assert_eq!(&s, c, "streamed summary diverges for {}/{}", c.problem, c.family);
    }
    // Every worker-produced cell is recoverable from the cache at its canonical position.
    let cache = SweepCache::new(&dir);
    let reloaded: Vec<CellResult> = grid
        .cells()
        .into_iter()
        .map(|cell| cache.load(&cell, grid.base_seed).expect("streamed cell must be cached"))
        .collect();
    for (a, b) in collected.cells.iter().zip(&reloaded) {
        assert_eq!(a.deterministic_view(), b.deterministic_view());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

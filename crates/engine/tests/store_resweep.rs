//! Incremental re-sweeps through the segmented binary store (`--store`): a second
//! identical sweep is 100 % store hits and byte-identical to the first; the store-backed
//! report is byte-identical (deterministic view) to the JSON cache's; a streamed re-sweep
//! summarizes through the columnar path without materializing a single `CellResult` row;
//! `sweep store import` migrates a JSON cache so the store re-serves its exact bytes; and
//! the process backend writes through the store like the in-process pool does.

use local_engine::backend::ProcessBackend;
use local_engine::{
    report_from_store, run_grid, workload, BinaryStore, ResultStore, ScenarioGrid, Sweep,
    SweepCache, SweepConfig,
};
use local_graphs::{family, Family};
use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("store-resweep-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The same grid `cache_resweep.rs` uses, so the two suites pin the same behavior to the
/// same workload mix: 2 problems × 2 families × 2 sizes × 2 seeds = 16 cells.
fn small_grid() -> ScenarioGrid {
    ScenarioGrid::new()
        .problems([workload("mis"), workload("luby-mis")])
        .families([Family::SparseGnp.into(), family("gnp-d10")])
        .sizes([36usize, 48])
        .replicates(2)
        .base_seed(5)
}

fn open_store(dir: &PathBuf) -> Arc<BinaryStore> {
    Arc::new(BinaryStore::open(dir).expect("store opens"))
}

#[test]
fn second_sweep_through_the_store_is_all_hits_and_byte_identical() {
    let dir = temp_dir("identical");
    let grid = small_grid();
    let store = open_store(&dir);
    let cfg = SweepConfig::with_threads(2).with_store(Arc::clone(&store) as Arc<dyn ResultStore>);

    let first = run_grid(&grid, &cfg);
    assert_eq!(first.cache_hits, 0, "a cold store must not hit");
    assert!(first.cells.iter().all(|c| c.valid && c.solved));
    assert_eq!(
        store.stats().records_appended,
        grid.cell_count() as u64,
        "every executed cell is appended"
    );

    let second = run_grid(&grid, &cfg);
    assert_eq!(second.cache_hits, second.cell_count, "a re-sweep must be 100% store hits");
    assert_eq!(second.distinct_instances, 0, "hits must not regenerate instances");
    // The merged report is byte-identical: stored cells carry their original measurements.
    assert_eq!(first.to_csv_with(true), second.to_csv_with(true));
    assert_eq!(first.summaries, second.summaries);
    assert_eq!(first.to_folded(), second.to_folded());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_and_json_cache_reports_are_byte_identical() {
    let cache_dir = temp_dir("vs-cache-json");
    let store_dir = temp_dir("vs-cache-bin");
    let grid = small_grid();
    let through_cache =
        run_grid(&grid, &SweepConfig::with_threads(2).with_cache(SweepCache::new(&cache_dir)));
    let through_store = run_grid(
        &grid,
        &SweepConfig::with_threads(2).with_store(open_store(&store_dir) as Arc<dyn ResultStore>),
    );
    // Two live runs differ only in wall clocks; under the deterministic view the two
    // persistence backends must be indistinguishable down to the output bytes.
    assert_eq!(
        through_cache.deterministic_view().to_json(),
        through_store.deterministic_view().to_json()
    );
    assert_eq!(
        through_cache.deterministic_view().to_csv_with(true),
        through_store.deterministic_view().to_csv_with(true)
    );
    let _ = std::fs::remove_dir_all(&cache_dir);
    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn streamed_columnar_resweep_materializes_no_rows() {
    let dir = temp_dir("columnar");
    let grid = small_grid();
    // Cold streaming run to populate the store.
    let first = run_grid(
        &grid,
        &SweepConfig::with_threads(2)
            .with_store(open_store(&dir) as Arc<dyn ResultStore>)
            .streaming(),
    );
    assert!(first.cells.is_empty(), "streaming mode must not hold cells in memory");

    // Streamed re-sweep on a fresh handle: every cell is served through the columnar
    // probe, so the handle must never build a single CellResult row.
    let reopened = open_store(&dir);
    let second = run_grid(
        &grid,
        &SweepConfig::with_threads(2)
            .with_store(Arc::clone(&reopened) as Arc<dyn ResultStore>)
            .streaming(),
    );
    assert_eq!(second.cache_hits, second.cell_count, "a re-sweep must be 100% store hits");
    assert_eq!(
        reopened.rows_materialized(),
        0,
        "the columnar re-sweep path must not materialize rows"
    );
    assert_eq!(first.summaries, second.summaries, "columnar folds must match the first run");

    // report_from_store folds the same stored columns in the same canonical order, so its
    // summaries are byte-identical to the streamed re-sweep's — again without rows.
    let offline = report_from_store(&grid, reopened.as_ref()).expect("every cell is stored");
    assert_eq!(offline.summaries, second.summaries);
    assert_eq!(offline.cache_hits, grid.cell_count());
    assert_eq!(reopened.rows_materialized(), 0, "report_from_store must stay columnar");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_import_migrates_a_json_cache_byte_identically() {
    let cache_dir = temp_dir("import-json");
    let store_dir = temp_dir("import-bin");
    let grid = small_grid();
    let seeded =
        run_grid(&grid, &SweepConfig::with_threads(2).with_cache(SweepCache::new(&cache_dir)));

    let import = |expect_imported: &str| {
        let output = Command::new(env!("CARGO_BIN_EXE_sweep"))
            .args([
                "store",
                "import",
                cache_dir.to_str().expect("utf-8 temp dir"),
                "--store",
                store_dir.to_str().expect("utf-8 temp dir"),
                "--base-seed",
                "5",
            ])
            .output()
            .expect("sweep store import runs");
        assert!(output.status.success(), "import failed: {output:?}");
        let stdout = String::from_utf8(output.stdout).expect("utf-8 output");
        assert!(stdout.contains(expect_imported), "unexpected import accounting: {stdout}");
    };
    import(&format!("store import: {} cells imported", grid.cell_count()));
    // A second import is a no-op: every entry is already present.
    import("store import: 0 cells imported");

    // A re-sweep through the migrated store serves the seed run's exact cells.
    let resweep = run_grid(
        &grid,
        &SweepConfig::with_threads(2).with_store(open_store(&store_dir) as Arc<dyn ResultStore>),
    );
    assert_eq!(resweep.cache_hits, resweep.cell_count, "migrated cells must all hit");
    assert_eq!(seeded.to_csv_with(true), resweep.to_csv_with(true));
    assert_eq!(seeded.summaries, resweep.summaries);
    let _ = std::fs::remove_dir_all(&cache_dir);
    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn the_process_backend_writes_through_the_store() {
    let dir = temp_dir("process");
    let grid = small_grid();
    let store = open_store(&dir);
    let first = Sweep::over(&grid)
        .backend(ProcessBackend::with_command(2, vec![env!("CARGO_BIN_EXE_sweep").to_string()]))
        .store(Arc::clone(&store) as Arc<dyn ResultStore>)
        .run();
    assert_eq!(first.cache_hits, 0, "a cold store must not hit");
    assert_eq!(store.stats().records_appended, grid.cell_count() as u64);

    // The in-process re-sweep is served entirely from what the worker processes wrote.
    let second = run_grid(
        &grid,
        &SweepConfig::with_threads(2).with_store(Arc::clone(&store) as Arc<dyn ResultStore>),
    );
    assert_eq!(second.cache_hits, second.cell_count);
    assert_eq!(first.to_csv_with(true), second.to_csv_with(true));
    let _ = std::fs::remove_dir_all(&dir);
}

//! The incremental sweep cache: re-running a grid executes only the cells whose inputs
//! changed.
//!
//! Every cell's [`CellResult`] is persisted as one JSON file keyed by the cell's *complete
//! identity*: the graph instance it runs on ([`local_graphs::InstanceKey`] — family, size,
//! derived generation seed), the scenario coordinates (problem, requested size, replicate),
//! the derived execution seed, and a **code-version tag**. Per-cell seeds are pure functions
//! of the cell identity (see [`crate::scenario`]), so a cached result is byte-identical to
//! what re-executing the cell would produce — re-sweeps simply skip to the report.
//!
//! Invalidation is by key, never by mutation:
//!
//! * changing the grid's `base_seed` changes every instance/cell seed → all keys change;
//! * changing a cell's axes (problem, family, size, replicate) changes its key only;
//! * bumping the code version (any change to algorithms, runtime, or report semantics —
//!   [`CODE_VERSION`] embeds the crate version plus a manually-bumped revision tag) retires
//!   the whole cache at once. Stale files are left on disk and simply never read again;
//!   delete the directory to reclaim space.
//!
//! The store is deliberately plain — one file per cell, written to a temp file and
//! renamed into place, no index — so concurrent workers can write distinct cells without
//! coordination and a writer killed mid-write can never leave a torn file behind (a torn
//! file would otherwise parse as a miss *forever*, silently re-executing its cell on every
//! sweep). At million-cell scale the one-file-per-cell layout hits filesystem-metadata
//! limits; `crate::store::BinaryStore` is the segmented replacement behind the same
//! [`crate::store::ResultStore`] trait.

use crate::report::CellResult;
use crate::scenario::Scenario;
use serde::{Deserialize, Serialize, Value};
use std::path::{Path, PathBuf};

/// The cache-retiring code-version tag: the crate version plus a revision counter bumped
/// whenever an algorithm/report change makes old results non-reproducible.
///
/// The same tag travels in every [`crate::backend::CellShard`] of the multi-process
/// protocol — a `sweep --worker` built from different code refuses the shard outright, for
/// the same reason a version bump retires this cache: results across a version boundary
/// are not comparable.
pub const CODE_VERSION: &str = concat!("local-engine-", env!("CARGO_PKG_VERSION"), "+r1");

/// A directory-backed store of [`CellResult`]s keyed by cell identity and code version.
#[derive(Debug, Clone)]
pub struct SweepCache {
    dir: PathBuf,
    code_version: String,
}

/// FNV-1a over a byte string; stable across platforms and runs.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl SweepCache {
    /// Opens (creating on first store) a cache rooted at `dir`, tagged with the crate's
    /// [`CODE_VERSION`].
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        SweepCache::with_code_version(dir, CODE_VERSION)
    }

    /// Like [`SweepCache::new`] with an explicit code-version tag (tests use this to prove
    /// a version bump misses; deployments can thread a git revision through it).
    pub fn with_code_version(dir: impl Into<PathBuf>, code_version: impl Into<String>) -> Self {
        SweepCache { dir: dir.into(), code_version: code_version.into() }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The key of one cell under one base seed: a hash of every input that determines the
    /// cell's result.
    pub fn key(&self, cell: &Scenario, base_seed: u64) -> u64 {
        let instance = cell.instance_key(base_seed);
        let identity = format!(
            "{}|{}|{}|{}|{}|{}|{}|{}",
            self.code_version,
            cell.problem.name(),
            instance.family.name(),
            instance.n,
            instance.seed,
            cell.n,
            cell.replicate,
            cell.cell_seed(base_seed),
        );
        fnv1a(identity.as_bytes())
    }

    fn path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("cell-{key:016x}.json"))
    }

    /// Loads the cached result of `cell`, if present and readable under the current code
    /// version. Any parse failure (truncated write, foreign file) is treated as a miss, and
    /// the stored cell label is checked against the requested cell so a 64-bit key
    /// collision can never serve another cell's result.
    pub fn load(&self, cell: &Scenario, base_seed: u64) -> Option<CellResult> {
        let text = std::fs::read_to_string(self.path(self.key(cell, base_seed))).ok()?;
        let value = serde_json::from_str(&text).ok()?;
        if value.get("code_version").and_then(Value::as_str) != Some(&self.code_version) {
            return None;
        }
        if value.get("label").and_then(Value::as_str) != Some(&cell.label()) {
            return None;
        }
        CellResult::from_value(value.get("cell")?).ok()
    }

    /// Persists `result` as the cached outcome of `cell`. Creates the cache directory on
    /// first use. Errors are returned (the scheduler downgrades them to warnings — the cache
    /// is an accelerator, not a correctness dependency).
    ///
    /// The write is atomic: the entry lands in a process-unique temp file first and is
    /// renamed onto its final name, so a writer killed mid-write leaves no torn file (which
    /// would parse as a permanent miss) and concurrent writers of the same cell can only
    /// race whole, identical entries.
    pub fn store(
        &self,
        cell: &Scenario,
        base_seed: u64,
        result: &CellResult,
    ) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        let envelope = Value::Map(vec![
            ("code_version".into(), Value::Str(self.code_version.clone())),
            ("label".into(), Value::Str(cell.label())),
            ("cell".into(), result.to_value()),
        ]);
        let text = serde_json::to_string_pretty(&Wrapped(envelope))
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        let path = self.path(self.key(cell, base_seed));
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, &path)
    }
}

/// Adapter: render a raw [`Value`] through the `serde_json` stub (which serializes
/// `Serialize` types, not `Value`s directly).
struct Wrapped(Value);

impl Serialize for Wrapped {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::workload;
    use local_graphs::Family;

    fn sample_cell() -> Scenario {
        Scenario { problem: workload("mis"), family: Family::SparseGnp.into(), n: 48, replicate: 0 }
    }

    fn sample_result() -> CellResult {
        CellResult {
            problem: "mis".into(),
            family: "sparse-gnp".into(),
            requested_n: 48,
            n: 48,
            edges: 90,
            replicate: 0,
            seed: 7,
            uniform_rounds: 100,
            uniform_messages: 1000,
            nonuniform_rounds: 50,
            nonuniform_messages: 600,
            overhead_ratio: 2.0,
            subiterations: 3,
            solved: true,
            valid: true,
            wall_micros: 1234,
            attempt_micros: 1000,
            prune_micros: 100,
            instance_micros: 10,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sweep-cache-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_then_load_round_trips() {
        let dir = temp_dir("roundtrip");
        let cache = SweepCache::new(&dir);
        let cell = sample_cell();
        assert!(cache.load(&cell, 1).is_none(), "fresh cache must miss");
        cache.store(&cell, 1, &sample_result()).unwrap();
        let loaded = cache.load(&cell, 1).expect("stored cell must hit");
        assert_eq!(loaded, sample_result());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_separate_cells_seeds_and_versions() {
        let cache = SweepCache::new("unused");
        let a = sample_cell();
        let b = Scenario { replicate: 1, ..a.clone() };
        let c = Scenario { problem: workload("luby-mis"), ..a.clone() };
        assert_ne!(cache.key(&a, 1), cache.key(&b, 1), "replicates must not collide");
        assert_ne!(cache.key(&a, 1), cache.key(&c, 1), "problems must not collide");
        assert_ne!(cache.key(&a, 1), cache.key(&a, 2), "base seeds must not collide");
        let bumped = SweepCache::with_code_version("unused", "vNEXT");
        assert_ne!(cache.key(&a, 1), bumped.key(&a, 1), "code versions must not collide");
    }

    #[test]
    fn code_version_bump_invalidates_stored_cells() {
        let dir = temp_dir("bump");
        let cache = SweepCache::with_code_version(&dir, "v1");
        let cell = sample_cell();
        cache.store(&cell, 3, &sample_result()).unwrap();
        assert!(cache.load(&cell, 3).is_some());
        let bumped = SweepCache::with_code_version(&dir, "v2");
        assert!(bumped.load(&cell, 3).is_none(), "version bump must miss");
        // The old version keeps hitting (side-by-side caches in one directory).
        assert!(cache.load(&cell, 3).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_collisions_cannot_serve_another_cells_result() {
        // Force a "collision" by copying one cell's file onto another cell's key: the label
        // check must turn the poisoned entry into a miss instead of serving wrong data.
        let dir = temp_dir("collision");
        let cache = SweepCache::new(&dir);
        let a = sample_cell();
        let b = Scenario { replicate: 1, ..a.clone() };
        cache.store(&a, 1, &sample_result()).unwrap();
        std::fs::copy(cache.path(cache.key(&a, 1)), cache.path(cache.key(&b, 1))).unwrap();
        assert!(cache.load(&b, 1).is_none(), "foreign label must miss");
        assert!(cache.load(&a, 1).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_files_degrade_to_misses() {
        let dir = temp_dir("corrupt");
        let cache = SweepCache::new(&dir);
        let cell = sample_cell();
        cache.store(&cell, 1, &sample_result()).unwrap();
        let path = cache.path(cache.key(&cell, 1));
        std::fs::write(&path, "{ not json").unwrap();
        assert!(cache.load(&cell, 1).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entries_miss_and_a_restore_repairs_them() {
        // A file torn at any prefix (the failure mode the temp+rename write prevents) must
        // read as a miss, and storing again must fully repair the entry.
        let dir = temp_dir("truncated");
        let cache = SweepCache::new(&dir);
        let cell = sample_cell();
        cache.store(&cell, 1, &sample_result()).unwrap();
        let path = cache.path(cache.key(&cell, 1));
        let full = std::fs::read_to_string(&path).unwrap();
        for cut in [0, 1, full.len() / 2, full.len() - 1] {
            std::fs::write(&path, &full[..cut]).unwrap();
            assert!(cache.load(&cell, 1).is_none(), "cut at {cut} must miss");
            cache.store(&cell, 1, &sample_result()).unwrap();
            assert_eq!(cache.load(&cell, 1), Some(sample_result()), "re-store must repair");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stores_leave_no_temp_files_behind() {
        let dir = temp_dir("no-temps");
        let cache = SweepCache::new(&dir);
        let cell = sample_cell();
        cache.store(&cell, 1, &sample_result()).unwrap();
        cache.store(&cell, 1, &sample_result()).unwrap();
        let leftovers: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|name| !name.ends_with(".json"))
            .collect();
        assert!(leftovers.is_empty(), "non-JSON leftovers: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! The live sweep progress HUD: a coordinator-side aggregator behind `sweep --progress`.
//!
//! A [`ProgressMeter`] is cloned into the sweep (which reports cell completions and the
//! CostModel's per-cell predictions) and into the process backend (whose workers report
//! heartbeat throughput), and renders a single overwriting stderr status line: cells
//! done/total, cache hits, throughput, per-worker counts, and an ETA weighted by the
//! predicted micros of the cells still outstanding — so one giant straggler cell shows up
//! as a long ETA even when most of the *count* is already done.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Shared progress aggregator; clones observe the same state.
#[derive(Clone)]
pub struct ProgressMeter {
    inner: Arc<Inner>,
}

struct Inner {
    started: Instant,
    /// Total grid cells (including cache hits).
    total: AtomicUsize,
    /// Cells served from the cache (counted as done from the start).
    cached: AtomicUsize,
    /// Cells executed so far.
    done: AtomicUsize,
    /// Predicted micros per *shard index* (the cost-ordered missed cells).
    predicted: Mutex<Vec<f64>>,
    /// Sum of `predicted` for completed shard cells.
    predicted_done: Mutex<f64>,
    /// Per-worker completed-cell counts, keyed by worker label.
    workers: Mutex<BTreeMap<String, u64>>,
    /// Live result-store status callback (segments/records/hit counters), appended at the
    /// end of the status line when a store is attached.
    store_status: Mutex<Option<Arc<dyn Fn() -> String + Send + Sync>>>,
    last_render: Mutex<Instant>,
}

impl Default for ProgressMeter {
    fn default() -> Self {
        ProgressMeter::new()
    }
}

impl std::fmt::Debug for ProgressMeter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressMeter").field("status", &self.status_line()).finish()
    }
}

impl ProgressMeter {
    /// A fresh meter (knows nothing until [`ProgressMeter::begin`]).
    pub fn new() -> Self {
        ProgressMeter {
            inner: Arc::new(Inner {
                started: Instant::now(),
                total: AtomicUsize::new(0),
                cached: AtomicUsize::new(0),
                done: AtomicUsize::new(0),
                predicted: Mutex::new(Vec::new()),
                predicted_done: Mutex::new(0.0),
                workers: Mutex::new(BTreeMap::new()),
                store_status: Mutex::new(None),
                last_render: Mutex::new(Instant::now() - Duration::from_secs(1)),
            }),
        }
    }

    /// Arms the meter after the cache probe: the grid size, how many cells the cache
    /// already served, and the CostModel's predicted micros for each cell of the shard
    /// (indexed by shard position, i.e. cost order).
    pub fn begin(&self, total_cells: usize, cache_hits: usize, predicted_micros: Vec<f64>) {
        self.inner.total.store(total_cells, Ordering::Relaxed);
        self.inner.cached.store(cache_hits, Ordering::Relaxed);
        *self.inner.predicted.lock().expect("predictions poisoned") = predicted_micros;
        self.render(true);
    }

    /// Marks shard cell `k` complete.
    pub fn cell_done(&self, k: usize) {
        self.inner.done.fetch_add(1, Ordering::Relaxed);
        {
            let predicted = self.inner.predicted.lock().expect("predictions poisoned");
            if let Some(&p) = predicted.get(k) {
                *self.inner.predicted_done.lock().expect("predicted done poisoned") += p;
            }
        }
        self.render(false);
    }

    /// Updates one worker's absolute completed-cell count (from a result line or a
    /// heartbeat record).
    pub fn worker_progress(&self, worker: &str, cells_done: u64) {
        let mut workers = self.inner.workers.lock().expect("workers poisoned");
        let entry = workers.entry(worker.to_string()).or_insert(0);
        *entry = (*entry).max(cells_done);
    }

    /// Attaches a result-store status callback; its output is appended verbatim to the
    /// end of every rendered status line (e.g. `store: 2 seg, 120 rec, 80 hit`).
    pub fn set_store_status(&self, status: Arc<dyn Fn() -> String + Send + Sync>) {
        *self.inner.store_status.lock().expect("store status poisoned") = Some(status);
    }

    /// Renders a final status line and moves to a fresh line.
    pub fn finish(&self) {
        self.render(true);
        eprintln!();
    }

    /// The current status line (also what gets printed). Public so tests can assert on
    /// the HUD without scraping stderr.
    pub fn status_line(&self) -> String {
        let total = self.inner.total.load(Ordering::Relaxed);
        let cached = self.inner.cached.load(Ordering::Relaxed);
        let done = self.inner.done.load(Ordering::Relaxed);
        let elapsed = self.inner.started.elapsed().as_secs_f64().max(1e-6);
        let mut line = format!("sweep: {}/{} cells", cached + done, total);
        if cached > 0 {
            line.push_str(&format!(" ({cached} cached)"));
        }
        line.push_str(&format!(" | {:.1} cells/s", done as f64 / elapsed));
        if let Some(eta) = self.eta_seconds() {
            line.push_str(&format!(" | eta {}", human_secs(eta)));
        }
        let workers = self.inner.workers.lock().expect("workers poisoned");
        if !workers.is_empty() {
            line.push_str(" |");
            for (worker, cells) in workers.iter() {
                line.push_str(&format!(" {worker}:{cells}"));
            }
        }
        drop(workers);
        let store_status = self.inner.store_status.lock().expect("store status poisoned");
        if let Some(status) = store_status.as_ref() {
            line.push_str(&format!(" | {}", status()));
        }
        line
    }

    /// Predicted seconds remaining: outstanding predicted micros over the observed
    /// predicted-micros throughput. `None` until at least one cell finished (no rate yet).
    pub fn eta_seconds(&self) -> Option<f64> {
        let done = self.inner.done.load(Ordering::Relaxed);
        if done == 0 {
            return None;
        }
        let predicted_total: f64 =
            self.inner.predicted.lock().expect("predictions poisoned").iter().sum();
        let predicted_done = *self.inner.predicted_done.lock().expect("predicted done poisoned");
        if predicted_done <= 0.0 {
            return None;
        }
        let elapsed = self.inner.started.elapsed().as_secs_f64();
        let rate = predicted_done / elapsed.max(1e-6); // predicted-micros retired per second
        Some(((predicted_total - predicted_done).max(0.0) / rate).max(0.0))
    }

    fn render(&self, force: bool) {
        {
            let mut last = self.inner.last_render.lock().expect("render clock poisoned");
            if !force && last.elapsed() < Duration::from_millis(100) {
                return;
            }
            *last = Instant::now();
        }
        let line = self.status_line();
        let mut err = std::io::stderr().lock();
        // \x1b[K clears the remainder of a longer previous line.
        let _ = write!(err, "\r{line}\x1b[K");
        let _ = err.flush();
    }
}

fn human_secs(secs: f64) -> String {
    if secs >= 90.0 {
        format!("{:.0}m{:02.0}s", (secs / 60.0).floor(), secs % 60.0)
    } else {
        format!("{secs:.1}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_line_tracks_done_cached_and_workers() {
        let meter = ProgressMeter::new();
        meter.begin(10, 3, vec![100.0; 7]);
        let line = meter.status_line();
        assert!(line.starts_with("sweep: 3/10 cells (3 cached)"), "{line}");
        assert_eq!(meter.eta_seconds(), None, "no rate before the first completion");
        meter.cell_done(0);
        meter.cell_done(1);
        meter.worker_progress("w0", 1);
        meter.worker_progress("w1", 1);
        meter.worker_progress("w0", 2); // absolute counts: max wins
        meter.worker_progress("w0", 1); // stale heartbeat must not regress
        let line = meter.status_line();
        assert!(line.starts_with("sweep: 5/10 cells (3 cached)"), "{line}");
        assert!(line.contains("w0:2"), "{line}");
        assert!(line.contains("w1:1"), "{line}");
        assert!(line.contains("eta"), "{line}");
    }

    #[test]
    fn eta_weighs_outstanding_predicted_micros() {
        let meter = ProgressMeter::new();
        // One cheap cell done, one predicted-10x cell outstanding: the ETA must be about
        // ten times the elapsed time, not equal to it (cell *counts* would say 1:1).
        meter.begin(2, 0, vec![100.0, 1000.0]);
        meter.cell_done(0);
        let eta = meter.eta_seconds().expect("one completion gives a rate");
        let elapsed = meter.inner.started.elapsed().as_secs_f64();
        let ratio = eta / elapsed.max(1e-9);
        assert!((9.0..11.0).contains(&ratio), "eta/elapsed = {ratio}");
    }

    #[test]
    fn store_status_is_appended_at_the_end_of_the_line() {
        let meter = ProgressMeter::new();
        meter.begin(4, 1, vec![100.0; 3]);
        meter.set_store_status(Arc::new(|| "store: 1 seg, 2 rec, 1 hit".to_string()));
        let line = meter.status_line();
        assert!(line.starts_with("sweep: 1/4 cells"), "{line}");
        assert!(line.ends_with(" | store: 1 seg, 2 rec, 1 hit"), "{line}");
    }

    #[test]
    fn human_secs_formats_minutes() {
        assert_eq!(human_secs(4.25), "4.2s");
        assert_eq!(human_secs(125.0), "2m05s");
    }
}

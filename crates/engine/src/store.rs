//! The result-store abstraction: one trait over both persistence backends — the legacy
//! one-JSON-file-per-cell [`SweepCache`] and the segmented binary [`BinaryStore`] built on
//! `local-store` — plus the columnar report path that summarizes a stored grid without
//! materializing a single [`CellResult`] row.
//!
//! Identity is shared with the JSON cache bit-for-bit: a record is keyed by the same
//! `code_version | problem | family | instance n | instance seed | cell n | replicate |
//! cell seed` string [`SweepCache::key`] hashes — except the binary store keeps the whole
//! string as the record key, so reads compare full identities and a hash collision can
//! never serve a foreign cell. Values are a fixed little-endian encoding of the result
//! (strings length-prefixed up front, then fifteen `u64` columns at fixed offsets, then a
//! flags byte), which is what lets [`decode_cell_columns`] pull the summary columns
//! straight off their offsets.

use crate::cache::{SweepCache, CODE_VERSION};
use crate::report::{CellColumns, CellResult, Report, SummaryAccumulator};
use crate::scenario::{Scenario, ScenarioGrid};
use local_obs as obs;
use local_store::{SegmentStore, StoreConfig, StoreStats};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Where sweeps read and write per-cell results.
///
/// Implementations are shared across scheduler worker threads behind an
/// `Arc<dyn ResultStore>`, hence `Send + Sync`; `Debug` keeps the configs that embed one
/// derivable.
pub trait ResultStore: Send + Sync + std::fmt::Debug {
    /// Loads the stored result of `cell`, if present under the current code version.
    fn load(&self, cell: &Scenario, base_seed: u64) -> Option<CellResult>;

    /// Loads only the summary columns of `cell` — the columnar fast path. The default
    /// delegates to [`ResultStore::load`]; the binary store overrides it to decode fixed
    /// offsets without building a [`CellResult`].
    fn load_columns(&self, cell: &Scenario, base_seed: u64) -> Option<CellColumns> {
        self.load(cell, base_seed).map(|result| CellColumns::from(&result))
    }

    /// Persists `result` as the outcome of `cell`.
    fn store(&self, cell: &Scenario, base_seed: u64, result: &CellResult) -> std::io::Result<()>;

    /// A short human-readable description for summary lines (`json-cache:DIR`, `store:DIR`).
    fn describe(&self) -> String;
}

impl ResultStore for SweepCache {
    fn load(&self, cell: &Scenario, base_seed: u64) -> Option<CellResult> {
        SweepCache::load(self, cell, base_seed)
    }

    fn store(&self, cell: &Scenario, base_seed: u64, result: &CellResult) -> std::io::Result<()> {
        SweepCache::store(self, cell, base_seed, result)
    }

    fn describe(&self) -> String {
        format!("json-cache:{}", self.dir().display())
    }
}

// ------------------------------------------------------------------ binary result codec ----

/// Version byte opening every encoded [`CellResult`] value. Bump on any layout change —
/// old records then decode as `None` (a miss), exactly like a code-version bump.
const RESULT_WIRE_VERSION: u8 = 1;

/// Number of fixed `u64` columns following the two strings.
const RESULT_COLUMNS: usize = 15;

/// Encodes a [`CellResult`] into the store's value bytes: version byte, two
/// `u16`-length-prefixed strings, [`RESULT_COLUMNS`] little-endian `u64`s at fixed
/// offsets (floats as IEEE-754 bits), one flags byte.
pub fn encode_cell_result(result: &CellResult) -> Vec<u8> {
    let problem = result.problem.as_bytes();
    let family = result.family.as_bytes();
    assert!(problem.len() <= u16::MAX as usize && family.len() <= u16::MAX as usize);
    let mut out =
        Vec::with_capacity(1 + 2 + problem.len() + 2 + family.len() + 8 * RESULT_COLUMNS + 1);
    out.push(RESULT_WIRE_VERSION);
    out.extend_from_slice(&(problem.len() as u16).to_le_bytes());
    out.extend_from_slice(problem);
    out.extend_from_slice(&(family.len() as u16).to_le_bytes());
    out.extend_from_slice(family);
    for column in [
        result.requested_n as u64,
        result.n as u64,
        result.edges as u64,
        result.replicate,
        result.seed,
        result.uniform_rounds,
        result.uniform_messages,
        result.nonuniform_rounds,
        result.nonuniform_messages,
        result.overhead_ratio.to_bits(),
        result.subiterations,
        result.wall_micros,
        result.attempt_micros,
        result.prune_micros,
        result.instance_micros,
    ] {
        out.extend_from_slice(&column.to_le_bytes());
    }
    out.push(u8::from(result.solved) | (u8::from(result.valid) << 1));
    out
}

fn read_u16(bytes: &[u8], at: usize) -> Option<u16> {
    Some(u16::from_le_bytes([*bytes.get(at)?, *bytes.get(at + 1)?]))
}

fn read_u64(bytes: &[u8], at: usize) -> Option<u64> {
    let chunk: &[u8; 8] = bytes.get(at..at + 8)?.try_into().ok()?;
    Some(u64::from_le_bytes(*chunk))
}

/// Byte offset of column `index` and the flags byte, given the two string lengths.
fn column_base(problem_len: usize, family_len: usize) -> usize {
    1 + 2 + problem_len + 2 + family_len
}

/// Decodes value bytes back into a full [`CellResult`]. Any structural mismatch — wrong
/// version, short buffer, trailing bytes, invalid UTF-8 — returns `None` (a miss).
pub fn decode_cell_result(bytes: &[u8]) -> Option<CellResult> {
    if *bytes.first()? != RESULT_WIRE_VERSION {
        return None;
    }
    let problem_len = read_u16(bytes, 1)? as usize;
    let problem = String::from_utf8(bytes.get(3..3 + problem_len)?.to_vec()).ok()?;
    let family_len = read_u16(bytes, 3 + problem_len)? as usize;
    let family_at = 3 + problem_len + 2;
    let family = String::from_utf8(bytes.get(family_at..family_at + family_len)?.to_vec()).ok()?;
    let base = column_base(problem_len, family_len);
    let column = |index: usize| read_u64(bytes, base + 8 * index);
    let flags = *bytes.get(base + 8 * RESULT_COLUMNS)?;
    if bytes.len() != base + 8 * RESULT_COLUMNS + 1 || flags & !0b11 != 0 {
        return None;
    }
    Some(CellResult {
        problem,
        family,
        requested_n: column(0)? as usize,
        n: column(1)? as usize,
        edges: column(2)? as usize,
        replicate: column(3)?,
        seed: column(4)?,
        uniform_rounds: column(5)?,
        uniform_messages: column(6)?,
        nonuniform_rounds: column(7)?,
        nonuniform_messages: column(8)?,
        overhead_ratio: f64::from_bits(column(9)?),
        subiterations: column(10)?,
        wall_micros: column(11)?,
        attempt_micros: column(12)?,
        prune_micros: column(13)?,
        instance_micros: column(14)?,
        solved: flags & 0b01 != 0,
        valid: flags & 0b10 != 0,
    })
}

/// Decodes only the summary columns, skipping over the strings without copying them —
/// no [`CellResult`] (and no heap allocation at all) is materialized.
pub fn decode_cell_columns(bytes: &[u8]) -> Option<CellColumns> {
    if *bytes.first()? != RESULT_WIRE_VERSION {
        return None;
    }
    let problem_len = read_u16(bytes, 1)? as usize;
    let family_len = read_u16(bytes, 3 + problem_len)? as usize;
    let base = column_base(problem_len, family_len);
    let column = |index: usize| read_u64(bytes, base + 8 * index);
    let flags = *bytes.get(base + 8 * RESULT_COLUMNS)?;
    if bytes.len() != base + 8 * RESULT_COLUMNS + 1 || flags & !0b11 != 0 {
        return None;
    }
    Some(CellColumns {
        uniform_rounds: column(5)?,
        uniform_messages: column(6)?,
        nonuniform_rounds: column(7)?,
        nonuniform_messages: column(8)?,
        overhead_ratio: f64::from_bits(column(9)?),
        wall_micros: column(11)?,
        solved: flags & 0b01 != 0,
        valid: flags & 0b10 != 0,
    })
}

// ------------------------------------------------------------------ the binary store -------

/// The segmented binary result store: [`CellResult`]s encoded into `local-store` records,
/// keyed by the full cell-identity string (shared with [`SweepCache::key`]'s preimage).
#[derive(Debug)]
pub struct BinaryStore {
    inner: SegmentStore,
    code_version: String,
    hits: AtomicU64,
    misses: AtomicU64,
    rows_materialized: AtomicU64,
}

impl BinaryStore {
    /// Opens (creating or recovering) the store at `dir` under the crate's
    /// [`CODE_VERSION`].
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<BinaryStore> {
        BinaryStore::with_code_version(dir, CODE_VERSION)
    }

    /// Like [`BinaryStore::open`] with an explicit code-version tag.
    pub fn with_code_version(
        dir: impl Into<PathBuf>,
        code_version: impl Into<String>,
    ) -> std::io::Result<BinaryStore> {
        let inner = SegmentStore::open_with(dir.into(), StoreConfig::default())?;
        let stats = inner.stats();
        obs::gauge_max(obs::metrics::STORE_SEGMENTS, stats.segments);
        obs::counter_add(obs::metrics::STORE_INDEX_REBUILD_MICROS, stats.index_rebuild_micros);
        Ok(BinaryStore {
            inner,
            code_version: code_version.into(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            rows_materialized: AtomicU64::new(0),
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        self.inner.dir()
    }

    /// On-disk shape and append counters (see [`StoreStats`]).
    pub fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    /// Lookups served from the store by this handle.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed on this handle.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Full [`CellResult`] rows this handle has materialized — the columnar report path
    /// asserts this stays at zero.
    pub fn rows_materialized(&self) -> u64 {
        self.rows_materialized.load(Ordering::Relaxed)
    }

    /// The record key of one cell: the same identity string [`SweepCache::key`] hashes,
    /// kept whole so reads compare every field.
    fn key(&self, cell: &Scenario, base_seed: u64) -> Vec<u8> {
        let instance = cell.instance_key(base_seed);
        format!(
            "{}|{}|{}|{}|{}|{}|{}|{}",
            self.code_version,
            cell.problem.name(),
            instance.family.name(),
            instance.n,
            instance.seed,
            cell.n,
            cell.replicate,
            cell.cell_seed(base_seed),
        )
        .into_bytes()
    }

    fn count_lookup(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
            obs::counter_add(obs::metrics::STORE_HITS, 1);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            obs::counter_add(obs::metrics::STORE_MISSES, 1);
        }
    }
}

impl ResultStore for BinaryStore {
    fn load(&self, cell: &Scenario, base_seed: u64) -> Option<CellResult> {
        let result =
            self.inner.get(&self.key(cell, base_seed)).and_then(|value| decode_cell_result(&value));
        self.count_lookup(result.is_some());
        if result.is_some() {
            self.rows_materialized.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    fn load_columns(&self, cell: &Scenario, base_seed: u64) -> Option<CellColumns> {
        let columns = self
            .inner
            .get(&self.key(cell, base_seed))
            .and_then(|value| decode_cell_columns(&value));
        self.count_lookup(columns.is_some());
        columns
    }

    fn store(&self, cell: &Scenario, base_seed: u64, result: &CellResult) -> std::io::Result<()> {
        let bytes = self.inner.append(&self.key(cell, base_seed), &encode_cell_result(result))?;
        obs::counter_add(obs::metrics::STORE_RECORDS, 1);
        obs::counter_add(obs::metrics::STORE_BYTES, bytes);
        obs::gauge_max(obs::metrics::STORE_SEGMENTS, self.inner.stats().segments);
        Ok(())
    }

    fn describe(&self) -> String {
        format!("store:{}", self.inner.dir().display())
    }
}

// ------------------------------------------------------------------ columnar reports -------

/// Builds a grid's full report straight from a store, through the columnar path: per-cell
/// summary columns are folded in canonical grid order without materializing any
/// [`CellResult`] rows, so memory is `O(groups)`, not `O(cells)`. Errors if any cell of
/// the grid is missing from the store.
///
/// The environment fields no sweep ran for are zero (`threads`, `total_wall_micros`,
/// `distinct_instances` — a 100 %-hit sweep generates no instances), and `cache_hits`
/// equals the cell count, exactly like a re-sweep served entirely from the store, so the
/// report is byte-identical to that re-sweep's under [`Report::deterministic_view`].
pub fn report_from_store(grid: &ScenarioGrid, store: &dyn ResultStore) -> Result<Report, String> {
    let cells = grid.cells();
    let mut accumulator = SummaryAccumulator::new();
    for cell in &cells {
        accumulator.register(cell.problem.name(), cell.family.name());
    }
    for (position, cell) in cells.iter().enumerate() {
        let columns = store
            .load_columns(cell, grid.base_seed)
            .ok_or_else(|| format!("cell {} is not in {}", cell.label(), store.describe()))?;
        accumulator.fold_columns_at(position, cell.problem.name(), cell.family.name(), &columns);
    }
    Ok(Report {
        threads: 0,
        base_seed: grid.base_seed,
        cell_count: cells.len(),
        distinct_instances: 0,
        cache_hits: cells.len(),
        total_wall_micros: 0,
        summaries: accumulator.finish(),
        cells: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::workload;
    use local_graphs::{Family, FamilySpec};

    fn sample_cell() -> Scenario {
        Scenario { problem: workload("mis"), family: Family::SparseGnp.into(), n: 48, replicate: 0 }
    }

    fn sample_result() -> CellResult {
        CellResult {
            problem: "mis".into(),
            family: "sparse-gnp".into(),
            requested_n: 48,
            n: 48,
            edges: 90,
            replicate: 0,
            seed: 7,
            uniform_rounds: 100,
            uniform_messages: 1000,
            nonuniform_rounds: 50,
            nonuniform_messages: 600,
            overhead_ratio: 2.0,
            subiterations: 3,
            solved: true,
            valid: true,
            wall_micros: 1234,
            attempt_micros: 1000,
            prune_micros: 100,
            instance_micros: 10,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("binary-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn result_codec_round_trips() {
        let result = sample_result();
        let encoded = encode_cell_result(&result);
        assert_eq!(decode_cell_result(&encoded), Some(result.clone()));
        assert_eq!(decode_cell_columns(&encoded), Some(CellColumns::from(&result)));
    }

    #[test]
    fn codec_rejects_truncation_trailing_bytes_and_wrong_version() {
        let encoded = encode_cell_result(&sample_result());
        for cut in 0..encoded.len() {
            assert_eq!(decode_cell_result(&encoded[..cut]), None, "cut at {cut}");
            assert_eq!(decode_cell_columns(&encoded[..cut]), None, "cut at {cut}");
        }
        let mut padded = encoded.clone();
        padded.push(0);
        assert_eq!(decode_cell_result(&padded), None);
        assert_eq!(decode_cell_columns(&padded), None);
        let mut versioned = encoded;
        versioned[0] = RESULT_WIRE_VERSION + 1;
        assert_eq!(decode_cell_result(&versioned), None);
        assert_eq!(decode_cell_columns(&versioned), None);
    }

    #[test]
    fn binary_store_round_trips_and_separates_code_versions() {
        let dir = temp_dir("roundtrip");
        let cell = sample_cell();
        {
            let store = BinaryStore::with_code_version(&dir, "v1").unwrap();
            assert!(ResultStore::load(&store, &cell, 1).is_none());
            ResultStore::store(&store, &cell, 1, &sample_result()).unwrap();
            assert_eq!(ResultStore::load(&store, &cell, 1), Some(sample_result()));
            assert!(ResultStore::load(&store, &cell, 2).is_none(), "base seeds must separate");
        }
        let bumped = BinaryStore::with_code_version(&dir, "v2").unwrap();
        assert!(ResultStore::load(&bumped, &cell, 1).is_none(), "version bump must miss");
        let same = BinaryStore::with_code_version(&dir, "v1").unwrap();
        assert_eq!(ResultStore::load(&same, &cell, 1), Some(sample_result()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn column_loads_count_hits_but_materialize_no_rows() {
        let dir = temp_dir("columns");
        let store = BinaryStore::open(&dir).unwrap();
        let cell = sample_cell();
        ResultStore::store(&store, &cell, 1, &sample_result()).unwrap();
        let columns = store.load_columns(&cell, 1).expect("stored cell must hit");
        assert_eq!(columns, CellColumns::from(&sample_result()));
        assert!(store.load_columns(&cell, 9).is_none());
        assert_eq!(store.hits(), 1);
        assert_eq!(store.misses(), 1);
        assert_eq!(store.rows_materialized(), 0, "columnar loads must not build rows");
        assert_eq!(ResultStore::load(&store, &cell, 1), Some(sample_result()));
        assert_eq!(store.rows_materialized(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn the_trait_serves_the_json_cache_too() {
        let dir = temp_dir("json-trait");
        let cache = SweepCache::new(&dir);
        let store: &dyn ResultStore = &cache;
        let cell = sample_cell();
        store.store(&cell, 1, &sample_result()).unwrap();
        assert_eq!(store.load(&cell, 1), Some(sample_result()));
        assert_eq!(store.load_columns(&cell, 1), Some(CellColumns::from(&sample_result())));
        assert!(store.describe().starts_with("json-cache:"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_from_store_errors_on_missing_cells() {
        let dir = temp_dir("missing");
        let store = BinaryStore::open(&dir).unwrap();
        let grid = ScenarioGrid::new()
            .problems([workload("mis")])
            .families([FamilySpec::from(Family::SparseGnp)])
            .sizes([48usize])
            .replicates(1);
        let err = report_from_store(&grid, &store).unwrap_err();
        assert!(err.contains("not in"), "unexpected error: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! The aggregation/report layer: per-cell results, grouped summaries, JSON, CSV, and
//! folded-stack (flamegraph) output — plus a streaming summarizer for sweeps too large to
//! hold every [`CellResult`] in memory.

use serde::{Deserialize, Serialize};

/// The measured outcome of one executed cell.
///
/// `Deserialize` is what lets the incremental sweep cache (`crate::cache`) round-trip
/// results through JSON files.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// Problem name (see `ProblemKind::name`).
    pub problem: String,
    /// Family name (see `local_graphs::Family::name`).
    pub family: String,
    /// Size the grid requested.
    pub requested_n: usize,
    /// Nodes of the generated instance (families may round the size).
    pub n: usize,
    /// Edges of the generated instance.
    pub edges: usize,
    /// Replicate index within the cell's `(problem, family, n)` group.
    pub replicate: u64,
    /// The cell's derived execution seed.
    pub seed: u64,
    /// Rounds of the transformed uniform algorithm.
    pub uniform_rounds: u64,
    /// Messages delivered by the uniform algorithm's black-box attempts.
    pub uniform_messages: u64,
    /// Rounds of the non-uniform baseline executed with correct guesses.
    pub nonuniform_rounds: u64,
    /// Messages delivered by the non-uniform baseline.
    pub nonuniform_messages: u64,
    /// `uniform_rounds / max(nonuniform_rounds, 1)` — the paper's constant-factor claim.
    pub overhead_ratio: f64,
    /// Sub-iterations (black-box attempts) the uniform driver executed, when applicable.
    pub subiterations: u64,
    /// `true` when the uniform driver terminated on its own (every node pruned).
    pub solved: bool,
    /// `true` when the produced outputs passed the problem's validator.
    pub valid: bool,
    /// Wall-clock execution time of the whole cell, in microseconds. Excluded from
    /// determinism comparisons (see [`CellResult::deterministic_view`]).
    pub wall_micros: u64,
    /// Wall-clock time the uniform driver spent inside black-box attempts, in microseconds
    /// (0 for problems without an alternation driver). Non-deterministic.
    pub attempt_micros: u64,
    /// Wall-clock time the uniform driver spent in pruning + configuration shrinking, in
    /// microseconds. Non-deterministic.
    pub prune_micros: u64,
    /// Wall-clock time spent generating the cell's graph instance, in microseconds (shared
    /// across the cells that reuse the instance). Non-deterministic.
    pub instance_micros: u64,
}

impl CellResult {
    /// A copy with every (non-deterministic) wall-time field zeroed, for byte-identical
    /// comparison between sequential and parallel sweeps.
    pub fn deterministic_view(&self) -> CellResult {
        CellResult {
            wall_micros: 0,
            attempt_micros: 0,
            prune_micros: 0,
            instance_micros: 0,
            ..self.clone()
        }
    }

    /// The CSV header matching [`CellResult::csv_row`]; `profile` appends the per-phase
    /// timing columns.
    pub fn csv_header(profile: bool) -> String {
        let mut out = String::from(
            "problem,family,requested_n,n,edges,replicate,seed,uniform_rounds,\
             uniform_messages,nonuniform_rounds,nonuniform_messages,overhead_ratio,\
             subiterations,solved,valid,wall_micros",
        );
        if profile {
            out.push_str(",attempt_micros,prune_micros,instance_micros");
        }
        out
    }

    /// One CSV row (no trailing newline); text fields are RFC-4180-quoted.
    pub fn csv_row(&self, profile: bool) -> String {
        let mut out = format!(
            "{},{},{},{},{},{},{},{},{},{},{},{:.6},{},{},{},{}",
            csv_escape(&self.problem),
            csv_escape(&self.family),
            self.requested_n,
            self.n,
            self.edges,
            self.replicate,
            self.seed,
            self.uniform_rounds,
            self.uniform_messages,
            self.nonuniform_rounds,
            self.nonuniform_messages,
            self.overhead_ratio,
            self.subiterations,
            self.solved,
            self.valid,
            self.wall_micros
        );
        if profile {
            out.push_str(&format!(
                ",{},{},{}",
                self.attempt_micros, self.prune_micros, self.instance_micros
            ));
        }
        out
    }
}

/// The per-cell numeric columns a summary consumes — everything a
/// [`SummaryAccumulator`] needs, without the strings or phase timings of a full
/// [`CellResult`]. The binary result store decodes these directly from fixed offsets in a
/// record, so columnar report scans never materialize `CellResult` rows at all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellColumns {
    /// Rounds of the transformed uniform algorithm.
    pub uniform_rounds: u64,
    /// Messages delivered by the uniform algorithm's black-box attempts.
    pub uniform_messages: u64,
    /// Rounds of the non-uniform baseline.
    pub nonuniform_rounds: u64,
    /// Messages delivered by the non-uniform baseline.
    pub nonuniform_messages: u64,
    /// `uniform_rounds / max(nonuniform_rounds, 1)`.
    pub overhead_ratio: f64,
    /// Wall-clock execution time of the cell, in microseconds.
    pub wall_micros: u64,
    /// Whether the uniform driver terminated on its own.
    pub solved: bool,
    /// Whether the outputs validated.
    pub valid: bool,
}

impl From<&CellResult> for CellColumns {
    fn from(cell: &CellResult) -> CellColumns {
        CellColumns {
            uniform_rounds: cell.uniform_rounds,
            uniform_messages: cell.uniform_messages,
            nonuniform_rounds: cell.nonuniform_rounds,
            nonuniform_messages: cell.nonuniform_messages,
            overhead_ratio: cell.overhead_ratio,
            wall_micros: cell.wall_micros,
            solved: cell.solved,
            valid: cell.valid,
        }
    }
}

/// The summary of one `(problem, family)` group of cells.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GroupSummary {
    /// Problem name.
    pub problem: String,
    /// Family name.
    pub family: String,
    /// Cells in the group.
    pub cells: usize,
    /// Cells whose outputs validated.
    pub valid_cells: usize,
    /// Cells whose uniform driver terminated on its own.
    pub solved_cells: usize,
    /// Mean uniform rounds.
    pub mean_uniform_rounds: f64,
    /// Median uniform rounds.
    pub p50_uniform_rounds: u64,
    /// 99th-percentile uniform rounds.
    pub p99_uniform_rounds: u64,
    /// Maximum uniform rounds.
    pub max_uniform_rounds: u64,
    /// Mean uniform-over-non-uniform round ratio.
    pub mean_overhead_ratio: f64,
    /// Maximum overhead ratio.
    pub max_overhead_ratio: f64,
    /// Total messages delivered by uniform executions in the group.
    pub total_uniform_messages: u64,
    /// Total messages delivered by the non-uniform baselines in the group.
    pub total_nonuniform_messages: u64,
    /// Mean per-cell *message* overhead ratio `uniform_messages / max(nonuniform_messages, 1)`
    /// — the message-complexity dimension of the uniform transformations, which the paper
    /// bounds only in rounds. Synthetic black boxes that simulate no messages report 0.
    pub mean_message_overhead_ratio: f64,
    /// Total wall time spent in the group, in microseconds.
    pub total_wall_micros: u64,
}

/// Quotes a CSV field per RFC 4180 when it contains a comma, quote, or line break; problem
/// and family names are free-form strings, so interpolating them raw would corrupt rows.
fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// `q`-th percentile (nearest-rank) of an already sorted slice — the reference
/// the histogram walk in [`percentile_hist`] is checked against.
#[cfg(test)]
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Streaming group statistics: everything a [`GroupSummary`] needs, kept per group while
/// cells are folded in one at a time and the full results are dropped (or never held — the
/// streaming scheduler writes them straight to the result store).
///
/// Rounds are kept as a value→count histogram rather than one word per cell, so memory is
/// `O(groups × distinct round values)` — effectively `O(columns)` for million-cell sweeps,
/// where round counts repeat heavily — while the exact nearest-rank percentiles are
/// unchanged.
#[derive(Debug, Default)]
struct GroupStats {
    cells: usize,
    valid_cells: usize,
    solved_cells: usize,
    rounds_hist: std::collections::BTreeMap<u64, u64>,
    rounds_sum: u64,
    overhead_sum: f64,
    overhead_max: f64,
    message_ratio_sum: f64,
    uniform_messages: u64,
    nonuniform_messages: u64,
    wall_micros: u64,
}

impl GroupStats {
    fn apply(&mut self, stat: CellStat) {
        self.cells += 1;
        self.valid_cells += usize::from(stat.valid);
        self.solved_cells += usize::from(stat.solved);
        *self.rounds_hist.entry(stat.rounds).or_default() += 1;
        self.rounds_sum += stat.rounds;
        self.overhead_sum += stat.overhead_ratio;
        self.overhead_max = self.overhead_max.max(stat.overhead_ratio);
        self.message_ratio_sum += stat.message_ratio;
        self.uniform_messages += stat.uniform_messages;
        self.nonuniform_messages += stat.nonuniform_messages;
        self.wall_micros += stat.wall_micros;
    }
}

/// `q`-th percentile (nearest-rank) over a value→count histogram holding `total` samples;
/// identical to [`percentile`] over the expanded sorted multiset.
fn percentile_hist(hist: &std::collections::BTreeMap<u64, u64>, total: u64, q: f64) -> u64 {
    if total == 0 {
        return 0;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cumulative = 0u64;
    for (&value, &count) in hist {
        cumulative += count;
        if cumulative >= rank {
            return value;
        }
    }
    hist.keys().next_back().copied().unwrap_or(0)
}

/// A cell waiting for its canonical position to come up (see
/// [`SummaryAccumulator::fold_columns_at`]); ordered by position only.
#[derive(Debug, Clone, Copy)]
struct Pending {
    position: usize,
    slot: usize,
    stat: CellStat,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.position == other.position
    }
}

impl Eq for Pending {}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.position.cmp(&other.position)
    }
}

/// Folds cells into per-`(problem, family)` [`GroupSummary`]s incrementally, in
/// first-appearance order of the groups. [`summarize`] is the one-shot wrapper; the
/// streaming scheduler feeds cells as they complete (after pre-registering the groups in
/// canonical order so completion order cannot reorder the report).
///
/// Cells are applied to the group statistics strictly in canonical-position order: an
/// advancing cursor applies in-order arrivals immediately, and out-of-order arrivals wait
/// in a min-heap keyed by position. Floating-point accumulation order — and therefore the
/// summary bytes — are identical no matter what order cells complete in, while memory
/// stays proportional to the reorder window instead of the whole sweep.
#[derive(Debug, Default)]
pub struct SummaryAccumulator {
    index: std::collections::HashMap<(String, String), usize>,
    groups: Vec<((String, String), GroupStats)>,
    /// Next canonical position to apply.
    cursor: usize,
    /// Cells folded so far (assigns sequential positions for plain [`SummaryAccumulator::fold`]).
    submitted: usize,
    /// Out-of-order arrivals, min-heap by canonical position.
    pending: std::collections::BinaryHeap<std::cmp::Reverse<Pending>>,
}

/// The per-cell scalars a summary needs — a fixed few words instead of a [`CellResult`]
/// with its strings.
#[derive(Debug, Clone, Copy)]
struct CellStat {
    rounds: u64,
    overhead_ratio: f64,
    message_ratio: f64,
    uniform_messages: u64,
    nonuniform_messages: u64,
    wall_micros: u64,
    valid: bool,
    solved: bool,
}

impl SummaryAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        SummaryAccumulator::default()
    }

    fn slot(&mut self, problem: &str, family: &str) -> usize {
        let key = (problem.to_string(), family.to_string());
        let groups = &mut self.groups;
        *self.index.entry(key.clone()).or_insert_with(|| {
            groups.push((key, GroupStats::default()));
            groups.len() - 1
        })
    }

    /// Pre-registers a group so its position in the final report is fixed regardless of the
    /// order cells later arrive in (the scheduler registers every cell's group in canonical
    /// order before executing anything).
    pub fn register(&mut self, problem: &str, family: &str) {
        let _ = self.slot(problem, family);
    }

    /// Folds one finished cell into its group, at the next sequential position.
    pub fn fold(&mut self, cell: &CellResult) {
        let position = self.submitted;
        self.fold_at(position, cell);
    }

    /// Folds one finished cell with an explicit canonical position (streaming schedulers
    /// pass the cell's grid index, so out-of-order completion cannot perturb the report).
    pub fn fold_at(&mut self, position: usize, cell: &CellResult) {
        self.fold_columns_at(position, &cell.problem, &cell.family, &CellColumns::from(cell));
    }

    /// Folds one cell from its numeric columns alone — the columnar path: store scans
    /// decode [`CellColumns`] straight off fixed record offsets and feed them here, so a
    /// full-grid report never materializes a [`CellResult`] row.
    pub fn fold_columns_at(
        &mut self,
        position: usize,
        problem: &str,
        family: &str,
        columns: &CellColumns,
    ) {
        let slot = self.slot(problem, family);
        let stat = CellStat {
            rounds: columns.uniform_rounds,
            overhead_ratio: columns.overhead_ratio,
            message_ratio: columns.uniform_messages as f64
                / columns.nonuniform_messages.max(1) as f64,
            uniform_messages: columns.uniform_messages,
            nonuniform_messages: columns.nonuniform_messages,
            wall_micros: columns.wall_micros,
            valid: columns.valid,
            solved: columns.solved,
        };
        self.submitted += 1;
        if position == self.cursor {
            self.groups[slot].1.apply(stat);
            self.cursor += 1;
            while let Some(&std::cmp::Reverse(next)) = self.pending.peek() {
                if next.position != self.cursor {
                    break;
                }
                self.pending.pop();
                self.groups[next.slot].1.apply(next.stat);
                self.cursor += 1;
            }
        } else {
            self.pending.push(std::cmp::Reverse(Pending { position, slot, stat }));
        }
    }

    /// Cells folded so far.
    pub fn folded(&self) -> usize {
        self.submitted
    }

    /// Finishes into the per-group summaries (groups that registered but received no cells
    /// are dropped — they summarize nothing). Any cells still waiting out of order are
    /// applied in position order first, tolerating position gaps.
    pub fn finish(mut self) -> Vec<GroupSummary> {
        while let Some(std::cmp::Reverse(next)) = self.pending.pop() {
            self.groups[next.slot].1.apply(next.stat);
        }
        self.groups
            .into_iter()
            .filter(|(_, stats)| stats.cells > 0)
            .map(|((problem, family), stats)| {
                let count = stats.cells.max(1);
                GroupSummary {
                    problem,
                    family,
                    cells: stats.cells,
                    valid_cells: stats.valid_cells,
                    solved_cells: stats.solved_cells,
                    mean_uniform_rounds: stats.rounds_sum as f64 / count as f64,
                    p50_uniform_rounds: percentile_hist(
                        &stats.rounds_hist,
                        stats.cells as u64,
                        0.50,
                    ),
                    p99_uniform_rounds: percentile_hist(
                        &stats.rounds_hist,
                        stats.cells as u64,
                        0.99,
                    ),
                    max_uniform_rounds: stats.rounds_hist.keys().next_back().copied().unwrap_or(0),
                    mean_overhead_ratio: stats.overhead_sum / count as f64,
                    max_overhead_ratio: stats.overhead_max,
                    total_uniform_messages: stats.uniform_messages,
                    total_nonuniform_messages: stats.nonuniform_messages,
                    mean_message_overhead_ratio: stats.message_ratio_sum / count as f64,
                    total_wall_micros: stats.wall_micros,
                }
            })
            .collect()
    }
}

/// Aggregates phase times into folded stacks (the `frames;joined;by;semicolons count`
/// format consumed by flamegraph tooling such as `flamegraph.pl` and inferno): one stack
/// per `(problem, family, phase)` with the summed microseconds as the count, plus
/// per-family `instance-gen` stacks counted once per distinct instance (instances are
/// shared across the problems that run on them). `other` is the per-cell wall time not
/// attributed to a profiled phase (validation, report assembly, scheduling). Consumes the
/// cells one at a time, so streamed sweeps can feed it straight from the cache.
pub fn folded_stacks<I: IntoIterator<Item = CellResult>>(cells: I) -> String {
    let mut stacks: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    let mut seen_instances: std::collections::BTreeSet<(String, usize, u64)> =
        std::collections::BTreeSet::new();
    for c in cells {
        *stacks.entry(format!("sweep;{};{};attempt", c.problem, c.family)).or_default() +=
            c.attempt_micros;
        *stacks.entry(format!("sweep;{};{};prune", c.problem, c.family)).or_default() +=
            c.prune_micros;
        let other = c.wall_micros.saturating_sub(c.attempt_micros).saturating_sub(c.prune_micros);
        *stacks.entry(format!("sweep;{};{};other", c.problem, c.family)).or_default() += other;
        if seen_instances.insert((c.family.clone(), c.requested_n, c.replicate)) {
            *stacks.entry(format!("sweep;instance-gen;{}", c.family)).or_default() +=
                c.instance_micros;
        }
    }
    let mut out = String::new();
    for (stack, micros) in stacks {
        if micros > 0 {
            out.push_str(&format!("{stack} {micros}\n"));
        }
    }
    out
}

/// Folds cells into per-`(problem, family)` summaries, in first-appearance order (which is
/// the grid's canonical order). Single pass over the cells, so sweeps with hundreds of
/// thousands of cells aggregate in linear time.
pub fn summarize(cells: &[CellResult]) -> Vec<GroupSummary> {
    let mut accumulator = SummaryAccumulator::new();
    for cell in cells {
        accumulator.fold(cell);
    }
    accumulator.finish()
}

/// The full outcome of a sweep.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// The backend's degree of parallelism (worker threads in-process, worker processes
    /// under the process backend).
    pub threads: usize,
    /// The grid's base seed.
    pub base_seed: u64,
    /// Number of executed cells.
    pub cell_count: usize,
    /// Number of distinct graph instances generated (shared across problems).
    pub distinct_instances: usize,
    /// Cells served from the incremental sweep cache instead of being executed.
    pub cache_hits: usize,
    /// End-to-end wall time of the sweep, in microseconds.
    pub total_wall_micros: u64,
    /// Per-group summaries.
    pub summaries: Vec<GroupSummary>,
    /// Every cell, in the grid's canonical order (empty when the sweep ran in streaming
    /// mode — the cells then live in the sweep cache only).
    pub cells: Vec<CellResult>,
}

impl Report {
    /// A copy with every execution-environment field zeroed — wall clocks in cells
    /// ([`CellResult::deterministic_view`]), summaries, and the sweep total, plus the
    /// backend's parallelism — so reports from different backends, machines, or
    /// parallelism levels compare byte-for-byte (the `sweep --deterministic` flag).
    pub fn deterministic_view(&self) -> Report {
        Report {
            threads: 0,
            base_seed: self.base_seed,
            cell_count: self.cell_count,
            distinct_instances: self.distinct_instances,
            cache_hits: self.cache_hits,
            total_wall_micros: 0,
            summaries: self
                .summaries
                .iter()
                .map(|s| GroupSummary { total_wall_micros: 0, ..s.clone() })
                .collect(),
            cells: self.cells.iter().map(CellResult::deterministic_view).collect(),
        }
    }

    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Serializes the cells as CSV (one row per cell, with a header).
    pub fn to_csv(&self) -> String {
        self.to_csv_with(false)
    }

    /// Serializes the cells as CSV; with `profile` set, appends the per-phase timing columns
    /// (`attempt_micros`, `prune_micros`, `instance_micros`) emitted by the `--profile` sweep
    /// flag. Text fields are RFC-4180-quoted when they contain separators or quotes.
    pub fn to_csv_with(&self, profile: bool) -> String {
        let mut out = CellResult::csv_header(profile);
        out.push('\n');
        for c in &self.cells {
            out.push_str(&c.csv_row(profile));
            out.push('\n');
        }
        out
    }

    /// Renders the sweep's phase times as folded stacks; see [`folded_stacks`].
    pub fn to_folded(&self) -> String {
        folded_stacks(self.cells.iter().cloned())
    }

    /// Renders the summaries as an aligned text table for terminals.
    pub fn render_summaries(&self) -> String {
        let mut out = format!(
            "{:<18} {:<18} {:>5} {:>6} {:>10} {:>8} {:>8} {:>8} {:>9} {:>9} {:>10}\n",
            "problem",
            "family",
            "cells",
            "valid",
            "mean-rnds",
            "p50",
            "p99",
            "max",
            "ratio",
            "msg-ratio",
            "wall-ms"
        );
        out.push_str(&"-".repeat(122));
        out.push('\n');
        for s in &self.summaries {
            out.push_str(&format!(
                "{:<18} {:<18} {:>5} {:>6} {:>10.1} {:>8} {:>8} {:>8} {:>9.2} {:>9.2} {:>10.1}\n",
                s.problem,
                s.family,
                s.cells,
                s.valid_cells,
                s.mean_uniform_rounds,
                s.p50_uniform_rounds,
                s.p99_uniform_rounds,
                s.max_uniform_rounds,
                s.mean_overhead_ratio,
                s.mean_message_overhead_ratio,
                s.total_wall_micros as f64 / 1000.0
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(problem: &str, family: &str, rounds: u64, ratio: f64, valid: bool) -> CellResult {
        CellResult {
            problem: problem.into(),
            family: family.into(),
            requested_n: 64,
            n: 64,
            edges: 100,
            replicate: 0,
            seed: 1,
            uniform_rounds: rounds,
            uniform_messages: 10 * rounds,
            nonuniform_rounds: rounds / 2 + 1,
            nonuniform_messages: rounds,
            overhead_ratio: ratio,
            subiterations: 3,
            solved: true,
            valid,
            wall_micros: 1234,
            attempt_micros: 900,
            prune_micros: 200,
            instance_micros: 50,
        }
    }

    #[test]
    fn summaries_group_and_aggregate() {
        let cells = vec![
            cell("mis", "grid", 10, 2.0, true),
            cell("mis", "grid", 30, 4.0, true),
            cell("mis", "path", 20, 3.0, false),
        ];
        let summaries = summarize(&cells);
        assert_eq!(summaries.len(), 2);
        let grid = &summaries[0];
        assert_eq!((grid.problem.as_str(), grid.family.as_str()), ("mis", "grid"));
        assert_eq!(grid.cells, 2);
        assert_eq!(grid.valid_cells, 2);
        assert!((grid.mean_uniform_rounds - 20.0).abs() < 1e-9);
        assert_eq!(grid.p50_uniform_rounds, 10);
        assert_eq!(grid.p99_uniform_rounds, 30);
        assert_eq!(grid.max_uniform_rounds, 30);
        assert!((grid.mean_overhead_ratio - 3.0).abs() < 1e-9);
        assert_eq!(summaries[1].valid_cells, 0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.50), 50);
        assert_eq!(percentile(&sorted, 0.99), 99);
        assert_eq!(percentile(&sorted, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let report = Report {
            threads: 4,
            base_seed: 0,
            cell_count: 1,
            distinct_instances: 1,
            cache_hits: 0,
            total_wall_micros: 99,
            summaries: Vec::new(),
            cells: vec![cell("mis", "grid", 10, 2.0, true)],
        };
        let csv = report.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("problem,family,"));
        assert!(lines[1].starts_with("mis,grid,64,64,"));
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let report = Report {
            threads: 2,
            base_seed: 7,
            cell_count: 1,
            distinct_instances: 1,
            cache_hits: 0,
            total_wall_micros: 5,
            summaries: summarize(&[cell("mis", "grid", 10, 2.0, true)]),
            cells: vec![cell("mis", "grid", 10, 2.0, true)],
        };
        let value = serde_json::from_str(&report.to_json()).expect("valid JSON");
        assert_eq!(value.get("threads").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(value.get("cells").and_then(|v| v.as_seq()).map(|s| s.len()), Some(1));
    }

    #[test]
    fn report_deterministic_view_zeroes_every_wall_clock_field() {
        let report = Report {
            threads: 2,
            base_seed: 0,
            cell_count: 1,
            distinct_instances: 1,
            cache_hits: 0,
            total_wall_micros: 99,
            summaries: summarize(&[cell("mis", "grid", 10, 2.0, true)]),
            cells: vec![cell("mis", "grid", 10, 2.0, true)],
        };
        let view = report.deterministic_view();
        assert_eq!(view.threads, 0, "parallelism is an environment fact, not a result");
        assert_eq!(view.total_wall_micros, 0);
        assert!(view.summaries.iter().all(|s| s.total_wall_micros == 0));
        assert!(view.cells.iter().all(|c| c.wall_micros == 0 && c.attempt_micros == 0));
        // Deterministic fields survive untouched.
        assert_eq!(view.cells[0].uniform_rounds, 10);
        assert_eq!(view.summaries[0].cells, 1);
    }

    #[test]
    fn deterministic_view_masks_all_wall_time_fields() {
        let a = cell("mis", "grid", 10, 2.0, true);
        let mut b = a.clone();
        b.wall_micros = 9999;
        b.attempt_micros = 1;
        b.prune_micros = 2;
        b.instance_micros = 3;
        assert_ne!(a, b);
        assert_eq!(a.deterministic_view(), b.deterministic_view());
    }

    #[test]
    fn csv_escapes_commas_quotes_and_newlines() {
        let report = Report {
            threads: 1,
            base_seed: 0,
            cell_count: 1,
            distinct_instances: 1,
            cache_hits: 0,
            total_wall_micros: 1,
            summaries: Vec::new(),
            cells: vec![cell("ruling-set, b=2", "weird \"family\"\nname", 5, 1.0, true)],
        };
        let csv = report.to_csv();
        let body = csv.split_once('\n').unwrap().1;
        assert!(body.starts_with("\"ruling-set, b=2\",\"weird \"\"family\"\"\nname\","));
        // The quoted newline must not introduce a spurious record: exactly header + 1 row
        // worth of unquoted line breaks.
        let records = csv.matches(",true,true,").count();
        assert_eq!(records, 1);
    }

    #[test]
    fn plain_fields_are_not_quoted() {
        assert_eq!(super::csv_escape("mis"), "mis");
        assert_eq!(super::csv_escape("a,b"), "\"a,b\"");
        assert_eq!(super::csv_escape("q\"t"), "\"q\"\"t\"");
    }

    #[test]
    fn histogram_percentiles_match_the_sorted_slice_reference() {
        let samples: Vec<Vec<u64>> = vec![
            vec![],
            vec![7],
            vec![3, 3, 3],
            (1..=100).collect(),
            vec![5, 1, 5, 2, 5, 9, 9, 1],
            (0..1000).map(|i| i % 17).collect(),
        ];
        for sample in samples {
            let mut sorted = sample.clone();
            sorted.sort_unstable();
            let mut hist = std::collections::BTreeMap::new();
            for &v in &sample {
                *hist.entry(v).or_insert(0u64) += 1;
            }
            for q in [0.0, 0.01, 0.25, 0.50, 0.75, 0.99, 1.0] {
                assert_eq!(
                    percentile_hist(&hist, sample.len() as u64, q),
                    percentile(&sorted, q),
                    "q={q} sample={sorted:?}"
                );
            }
        }
    }

    #[test]
    fn out_of_order_folds_match_in_order_folds_bytewise() {
        // Ratios chosen so f64 accumulation order matters if the cursor discipline breaks.
        let cells: Vec<CellResult> = (0..40)
            .map(|i| {
                cell(
                    "mis",
                    if i % 3 == 0 { "grid" } else { "path" },
                    (i * 13) % 29 + 1,
                    0.1 + (i as f64) * 0.317,
                    i % 5 != 0,
                )
            })
            .collect();
        let mut in_order = SummaryAccumulator::new();
        for c in &cells {
            in_order.register(&c.problem, &c.family);
        }
        for (i, c) in cells.iter().enumerate() {
            in_order.fold_at(i, c);
        }
        let mut scrambled = SummaryAccumulator::new();
        for c in &cells {
            scrambled.register(&c.problem, &c.family);
        }
        // A deterministic permutation with plenty of reordering (stride coprime to 40).
        for k in 0..cells.len() {
            let i = (k * 23) % cells.len();
            scrambled.fold_at(i, &cells[i]);
        }
        assert_eq!(scrambled.folded(), cells.len());
        let a = in_order.finish();
        let b = scrambled.finish();
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string_pretty(&a).unwrap(),
            serde_json::to_string_pretty(&b).unwrap()
        );
    }

    #[test]
    fn columnar_folds_match_row_folds_bytewise() {
        let cells: Vec<CellResult> = (0..24)
            .map(|i| cell("mis", "grid", (i * 7) % 13 + 1, 0.3 + i as f64 * 0.211, i % 4 != 0))
            .collect();
        let mut rows = SummaryAccumulator::new();
        let mut columns = SummaryAccumulator::new();
        for (i, c) in cells.iter().enumerate() {
            rows.fold_at(i, c);
            columns.fold_columns_at(i, &c.problem, &c.family, &CellColumns::from(c));
        }
        let a = rows.finish();
        let b = columns.finish();
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string_pretty(&a).unwrap(),
            serde_json::to_string_pretty(&b).unwrap()
        );
    }

    #[test]
    fn finish_tolerates_position_gaps() {
        // Streaming over a partial grid (some positions never folded) must still finish.
        let mut accumulator = SummaryAccumulator::new();
        accumulator.fold_at(3, &cell("mis", "grid", 10, 2.0, true));
        accumulator.fold_at(1, &cell("mis", "grid", 30, 4.0, true));
        let summaries = accumulator.finish();
        assert_eq!(summaries.len(), 1);
        assert_eq!(summaries[0].cells, 2);
        assert_eq!(summaries[0].max_uniform_rounds, 30);
    }

    #[test]
    fn profiled_csv_appends_phase_columns() {
        let report = Report {
            threads: 1,
            base_seed: 0,
            cell_count: 1,
            distinct_instances: 1,
            cache_hits: 0,
            total_wall_micros: 1,
            summaries: Vec::new(),
            cells: vec![cell("mis", "grid", 10, 2.0, true)],
        };
        let plain = report.to_csv();
        assert!(!plain.lines().next().unwrap().contains("attempt_micros"));
        let profiled = report.to_csv_with(true);
        let lines: Vec<&str> = profiled.lines().collect();
        assert!(lines[0].ends_with("attempt_micros,prune_micros,instance_micros"));
        assert!(lines[1].ends_with(",900,200,50"));
    }
}

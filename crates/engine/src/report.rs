//! The aggregation/report layer: per-cell results, grouped summaries, JSON and CSV output.

use serde::Serialize;

/// The measured outcome of one executed cell.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CellResult {
    /// Problem name (see `ProblemKind::name`).
    pub problem: String,
    /// Family name (see `local_graphs::Family::name`).
    pub family: String,
    /// Size the grid requested.
    pub requested_n: usize,
    /// Nodes of the generated instance (families may round the size).
    pub n: usize,
    /// Edges of the generated instance.
    pub edges: usize,
    /// Replicate index within the cell's `(problem, family, n)` group.
    pub replicate: u64,
    /// The cell's derived execution seed.
    pub seed: u64,
    /// Rounds of the transformed uniform algorithm.
    pub uniform_rounds: u64,
    /// Messages delivered by the uniform algorithm's black-box attempts.
    pub uniform_messages: u64,
    /// Rounds of the non-uniform baseline executed with correct guesses.
    pub nonuniform_rounds: u64,
    /// Messages delivered by the non-uniform baseline.
    pub nonuniform_messages: u64,
    /// `uniform_rounds / max(nonuniform_rounds, 1)` — the paper's constant-factor claim.
    pub overhead_ratio: f64,
    /// Sub-iterations (black-box attempts) the uniform driver executed, when applicable.
    pub subiterations: u64,
    /// `true` when the uniform driver terminated on its own (every node pruned).
    pub solved: bool,
    /// `true` when the produced outputs passed the problem's validator.
    pub valid: bool,
    /// Wall-clock execution time of the whole cell, in microseconds. Excluded from
    /// determinism comparisons (see [`CellResult::deterministic_view`]).
    pub wall_micros: u64,
    /// Wall-clock time the uniform driver spent inside black-box attempts, in microseconds
    /// (0 for problems without an alternation driver). Non-deterministic.
    pub attempt_micros: u64,
    /// Wall-clock time the uniform driver spent in pruning + configuration shrinking, in
    /// microseconds. Non-deterministic.
    pub prune_micros: u64,
    /// Wall-clock time spent generating the cell's graph instance, in microseconds (shared
    /// across the cells that reuse the instance). Non-deterministic.
    pub instance_micros: u64,
}

impl CellResult {
    /// A copy with every (non-deterministic) wall-time field zeroed, for byte-identical
    /// comparison between sequential and parallel sweeps.
    pub fn deterministic_view(&self) -> CellResult {
        CellResult {
            wall_micros: 0,
            attempt_micros: 0,
            prune_micros: 0,
            instance_micros: 0,
            ..self.clone()
        }
    }
}

/// The summary of one `(problem, family)` group of cells.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GroupSummary {
    /// Problem name.
    pub problem: String,
    /// Family name.
    pub family: String,
    /// Cells in the group.
    pub cells: usize,
    /// Cells whose outputs validated.
    pub valid_cells: usize,
    /// Cells whose uniform driver terminated on its own.
    pub solved_cells: usize,
    /// Mean uniform rounds.
    pub mean_uniform_rounds: f64,
    /// Median uniform rounds.
    pub p50_uniform_rounds: u64,
    /// 99th-percentile uniform rounds.
    pub p99_uniform_rounds: u64,
    /// Maximum uniform rounds.
    pub max_uniform_rounds: u64,
    /// Mean uniform-over-non-uniform round ratio.
    pub mean_overhead_ratio: f64,
    /// Maximum overhead ratio.
    pub max_overhead_ratio: f64,
    /// Total messages delivered by uniform executions in the group.
    pub total_uniform_messages: u64,
    /// Total wall time spent in the group, in microseconds.
    pub total_wall_micros: u64,
}

/// Quotes a CSV field per RFC 4180 when it contains a comma, quote, or line break; problem
/// and family names are free-form strings, so interpolating them raw would corrupt rows.
fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// `q`-th percentile (nearest-rank) of an already sorted slice.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Folds cells into per-`(problem, family)` summaries, in first-appearance order (which is
/// the grid's canonical order). Single pass over the cells, so sweeps with hundreds of
/// thousands of cells aggregate in linear time.
pub fn summarize(cells: &[CellResult]) -> Vec<GroupSummary> {
    let mut index: std::collections::HashMap<(String, String), usize> =
        std::collections::HashMap::new();
    let mut groups: Vec<((String, String), Vec<&CellResult>)> = Vec::new();
    for cell in cells {
        let key = (cell.problem.clone(), cell.family.clone());
        let slot = *index.entry(key.clone()).or_insert_with(|| {
            groups.push((key, Vec::new()));
            groups.len() - 1
        });
        groups[slot].1.push(cell);
    }
    groups
        .into_iter()
        .map(|((problem, family), group)| {
            let mut rounds: Vec<u64> = group.iter().map(|c| c.uniform_rounds).collect();
            rounds.sort_unstable();
            let count = group.len();
            GroupSummary {
                problem,
                family,
                cells: count,
                valid_cells: group.iter().filter(|c| c.valid).count(),
                solved_cells: group.iter().filter(|c| c.solved).count(),
                mean_uniform_rounds: rounds.iter().sum::<u64>() as f64 / count.max(1) as f64,
                p50_uniform_rounds: percentile(&rounds, 0.50),
                p99_uniform_rounds: percentile(&rounds, 0.99),
                max_uniform_rounds: rounds.last().copied().unwrap_or(0),
                mean_overhead_ratio: group.iter().map(|c| c.overhead_ratio).sum::<f64>()
                    / count.max(1) as f64,
                max_overhead_ratio: group.iter().map(|c| c.overhead_ratio).fold(0.0, f64::max),
                total_uniform_messages: group.iter().map(|c| c.uniform_messages).sum(),
                total_wall_micros: group.iter().map(|c| c.wall_micros).sum(),
            }
        })
        .collect()
}

/// The full outcome of a sweep.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// Worker threads the sweep ran with.
    pub threads: usize,
    /// The grid's base seed.
    pub base_seed: u64,
    /// Number of executed cells.
    pub cell_count: usize,
    /// Number of distinct graph instances generated (shared across problems).
    pub distinct_instances: usize,
    /// End-to-end wall time of the sweep, in microseconds.
    pub total_wall_micros: u64,
    /// Per-group summaries.
    pub summaries: Vec<GroupSummary>,
    /// Every cell, in the grid's canonical order.
    pub cells: Vec<CellResult>,
}

impl Report {
    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Serializes the cells as CSV (one row per cell, with a header).
    pub fn to_csv(&self) -> String {
        self.to_csv_with(false)
    }

    /// Serializes the cells as CSV; with `profile` set, appends the per-phase timing columns
    /// (`attempt_micros`, `prune_micros`, `instance_micros`) emitted by the `--profile` sweep
    /// flag. Text fields are RFC-4180-quoted when they contain separators or quotes.
    pub fn to_csv_with(&self, profile: bool) -> String {
        let mut out = String::from(
            "problem,family,requested_n,n,edges,replicate,seed,uniform_rounds,\
             uniform_messages,nonuniform_rounds,nonuniform_messages,overhead_ratio,\
             subiterations,solved,valid,wall_micros",
        );
        if profile {
            out.push_str(",attempt_micros,prune_micros,instance_micros");
        }
        out.push('\n');
        for c in &self.cells {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{:.6},{},{},{},{}",
                csv_escape(&c.problem),
                csv_escape(&c.family),
                c.requested_n,
                c.n,
                c.edges,
                c.replicate,
                c.seed,
                c.uniform_rounds,
                c.uniform_messages,
                c.nonuniform_rounds,
                c.nonuniform_messages,
                c.overhead_ratio,
                c.subiterations,
                c.solved,
                c.valid,
                c.wall_micros
            ));
            if profile {
                out.push_str(&format!(
                    ",{},{},{}",
                    c.attempt_micros, c.prune_micros, c.instance_micros
                ));
            }
            out.push('\n');
        }
        out
    }

    /// Renders the summaries as an aligned text table for terminals.
    pub fn render_summaries(&self) -> String {
        let mut out = format!(
            "{:<18} {:<18} {:>5} {:>6} {:>10} {:>8} {:>8} {:>8} {:>9} {:>10}\n",
            "problem",
            "family",
            "cells",
            "valid",
            "mean-rnds",
            "p50",
            "p99",
            "max",
            "ratio",
            "wall-ms"
        );
        out.push_str(&"-".repeat(112));
        out.push('\n');
        for s in &self.summaries {
            out.push_str(&format!(
                "{:<18} {:<18} {:>5} {:>6} {:>10.1} {:>8} {:>8} {:>8} {:>9.2} {:>10.1}\n",
                s.problem,
                s.family,
                s.cells,
                s.valid_cells,
                s.mean_uniform_rounds,
                s.p50_uniform_rounds,
                s.p99_uniform_rounds,
                s.max_uniform_rounds,
                s.mean_overhead_ratio,
                s.total_wall_micros as f64 / 1000.0
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(problem: &str, family: &str, rounds: u64, ratio: f64, valid: bool) -> CellResult {
        CellResult {
            problem: problem.into(),
            family: family.into(),
            requested_n: 64,
            n: 64,
            edges: 100,
            replicate: 0,
            seed: 1,
            uniform_rounds: rounds,
            uniform_messages: 10 * rounds,
            nonuniform_rounds: rounds / 2 + 1,
            nonuniform_messages: rounds,
            overhead_ratio: ratio,
            subiterations: 3,
            solved: true,
            valid,
            wall_micros: 1234,
            attempt_micros: 900,
            prune_micros: 200,
            instance_micros: 50,
        }
    }

    #[test]
    fn summaries_group_and_aggregate() {
        let cells = vec![
            cell("mis", "grid", 10, 2.0, true),
            cell("mis", "grid", 30, 4.0, true),
            cell("mis", "path", 20, 3.0, false),
        ];
        let summaries = summarize(&cells);
        assert_eq!(summaries.len(), 2);
        let grid = &summaries[0];
        assert_eq!((grid.problem.as_str(), grid.family.as_str()), ("mis", "grid"));
        assert_eq!(grid.cells, 2);
        assert_eq!(grid.valid_cells, 2);
        assert!((grid.mean_uniform_rounds - 20.0).abs() < 1e-9);
        assert_eq!(grid.p50_uniform_rounds, 10);
        assert_eq!(grid.p99_uniform_rounds, 30);
        assert_eq!(grid.max_uniform_rounds, 30);
        assert!((grid.mean_overhead_ratio - 3.0).abs() < 1e-9);
        assert_eq!(summaries[1].valid_cells, 0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.50), 50);
        assert_eq!(percentile(&sorted, 0.99), 99);
        assert_eq!(percentile(&sorted, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let report = Report {
            threads: 4,
            base_seed: 0,
            cell_count: 1,
            distinct_instances: 1,
            total_wall_micros: 99,
            summaries: Vec::new(),
            cells: vec![cell("mis", "grid", 10, 2.0, true)],
        };
        let csv = report.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("problem,family,"));
        assert!(lines[1].starts_with("mis,grid,64,64,"));
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let report = Report {
            threads: 2,
            base_seed: 7,
            cell_count: 1,
            distinct_instances: 1,
            total_wall_micros: 5,
            summaries: summarize(&[cell("mis", "grid", 10, 2.0, true)]),
            cells: vec![cell("mis", "grid", 10, 2.0, true)],
        };
        let value = serde_json::from_str(&report.to_json()).expect("valid JSON");
        assert_eq!(value.get("threads").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(value.get("cells").and_then(|v| v.as_seq()).map(|s| s.len()), Some(1));
    }

    #[test]
    fn deterministic_view_masks_all_wall_time_fields() {
        let a = cell("mis", "grid", 10, 2.0, true);
        let mut b = a.clone();
        b.wall_micros = 9999;
        b.attempt_micros = 1;
        b.prune_micros = 2;
        b.instance_micros = 3;
        assert_ne!(a, b);
        assert_eq!(a.deterministic_view(), b.deterministic_view());
    }

    #[test]
    fn csv_escapes_commas_quotes_and_newlines() {
        let report = Report {
            threads: 1,
            base_seed: 0,
            cell_count: 1,
            distinct_instances: 1,
            total_wall_micros: 1,
            summaries: Vec::new(),
            cells: vec![cell("ruling-set, b=2", "weird \"family\"\nname", 5, 1.0, true)],
        };
        let csv = report.to_csv();
        let body = csv.split_once('\n').unwrap().1;
        assert!(body.starts_with("\"ruling-set, b=2\",\"weird \"\"family\"\"\nname\","));
        // The quoted newline must not introduce a spurious record: exactly header + 1 row
        // worth of unquoted line breaks.
        let records = csv.matches(",true,true,").count();
        assert_eq!(records, 1);
    }

    #[test]
    fn plain_fields_are_not_quoted() {
        assert_eq!(super::csv_escape("mis"), "mis");
        assert_eq!(super::csv_escape("a,b"), "\"a,b\"");
        assert_eq!(super::csv_escape("q\"t"), "\"q\"\"t\"");
    }

    #[test]
    fn profiled_csv_appends_phase_columns() {
        let report = Report {
            threads: 1,
            base_seed: 0,
            cell_count: 1,
            distinct_instances: 1,
            total_wall_micros: 1,
            summaries: Vec::new(),
            cells: vec![cell("mis", "grid", 10, 2.0, true)],
        };
        let plain = report.to_csv();
        assert!(!plain.lines().next().unwrap().contains("attempt_micros"));
        let profiled = report.to_csv_with(true);
        let lines: Vec<&str> = profiled.lines().collect();
        assert!(lines[0].ends_with("attempt_micros,prune_micros,instance_micros"));
        assert!(lines[1].ends_with(",900,200,50"));
    }
}

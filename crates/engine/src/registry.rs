//! The workload registry: the single table mapping stable names to workload
//! constructors — and, re-exported from `local_graphs`, the family registry beside it.
//!
//! Everything that used to be spread over the `ProblemKind` enum goes through here: CLI
//! parsing ([`parse_workload`]), the `all` catalog ([`default_workloads`]), the
//! self-documenting `sweep --list` output ([`render_listing`]), and — via the specs the
//! registry hands out — names, seed tags, and cost shapes. Adding a workload is one
//! implementation module under [`crate::workloads`] plus one [`WorkloadEntry`] line in
//! [`WORKLOAD_ENTRIES`]; adding a graph family is the same two steps on
//! [`local_graphs::FAMILY_ENTRIES`].

use crate::workloads::{self, WorkloadSpec};
use local_graphs::FAMILY_ENTRIES;

/// One row of the workload registry: a name pattern, a one-line summary for CLI listings,
/// a parser from names to specs, and the representative specs `--problems all` expands to.
pub struct WorkloadEntry {
    /// The name or name pattern this entry parses (`mis`, `ruling-set-b<beta>`).
    pub pattern: &'static str,
    /// One-line description for `sweep --list`.
    pub summary: &'static str,
    /// Parses a concrete workload name into a spec (`None` when the name is not this
    /// entry's).
    pub parse: fn(&str) -> Option<WorkloadSpec>,
    /// The default parameterization this entry contributes to the `all` catalog.
    pub default: fn() -> WorkloadSpec,
}

fn default_mis() -> WorkloadSpec {
    WorkloadSpec::new(workloads::ColoringMis)
}

fn default_ps_mis() -> WorkloadSpec {
    WorkloadSpec::new(workloads::PsMis)
}

fn default_arboricity_mis() -> WorkloadSpec {
    WorkloadSpec::new(workloads::ArboricityMis)
}

fn default_cor1_mis() -> WorkloadSpec {
    WorkloadSpec::new(workloads::Corollary1Mis)
}

fn default_luby_mis() -> WorkloadSpec {
    WorkloadSpec::new(workloads::LubyMisWorkload)
}

fn default_matching() -> WorkloadSpec {
    WorkloadSpec::new(workloads::Matching)
}

fn default_log4_matching() -> WorkloadSpec {
    WorkloadSpec::new(workloads::Log4Matching)
}

fn default_ruling_set() -> WorkloadSpec {
    WorkloadSpec::new(workloads::RulingSet { beta: 2 })
}

fn default_coloring() -> WorkloadSpec {
    WorkloadSpec::new(workloads::LambdaColoring { lambda: 1 })
}

fn default_edge_coloring() -> WorkloadSpec {
    WorkloadSpec::new(workloads::EdgeColoring)
}

/// The workload registry, in report order (the historical `ProblemKind::ALL` order, which
/// `--problems all` and every pre-existing report preserve byte-for-byte).
pub static WORKLOAD_ENTRIES: &[WorkloadEntry] = &[
    WorkloadEntry {
        pattern: "mis",
        summary: "deterministic MIS via (Δ+1)-colouring + Theorem 1 (Table 1 row 1)",
        parse: workloads::parse_mis,
        default: default_mis,
    },
    WorkloadEntry {
        pattern: "ps-mis",
        summary: "deterministic MIS, synthetic 2^O(√log n) black box (row 2)",
        parse: workloads::parse_ps_mis,
        default: default_ps_mis,
    },
    WorkloadEntry {
        pattern: "arboricity-mis",
        summary: "deterministic MIS parameterised by arboricity (rows 3–4)",
        parse: workloads::parse_arboricity_mis,
        default: default_arboricity_mis,
    },
    WorkloadEntry {
        pattern: "cor1-mis",
        summary: "Corollary 1(i) fastest-of-the-breeds MIS combinator (Theorem 4)",
        parse: workloads::parse_cor1_mis,
        default: default_cor1_mis,
    },
    WorkloadEntry {
        pattern: "luby-mis",
        summary: "Luby's uniform randomized MIS, the already-uniform baseline (row 10)",
        parse: workloads::parse_luby_mis,
        default: default_luby_mis,
    },
    WorkloadEntry {
        pattern: "matching",
        summary: "deterministic maximal matching from edge colouring (row 8)",
        parse: workloads::parse_matching,
        default: default_matching,
    },
    WorkloadEntry {
        pattern: "log4-matching",
        summary: "maximal matching, synthetic O(log⁴ n) black box (row 8 time shape)",
        parse: workloads::parse_log4_matching,
        default: default_log4_matching,
    },
    WorkloadEntry {
        pattern: "ruling-set[-b<beta>]",
        summary: "Las Vegas (2, β)-ruling set of Theorem 2 (row 9; default β = 2)",
        parse: workloads::parse_ruling_set,
        default: default_ruling_set,
    },
    WorkloadEntry {
        pattern: "coloring | lambda<λ>-coloring",
        summary: "Theorem 5 uniform λ(Δ+1)-colouring (rows 1 and 5; default λ = 1)",
        parse: workloads::parse_lambda_coloring,
        default: default_coloring,
    },
    WorkloadEntry {
        pattern: "edge-coloring",
        summary: "O(Δ)-edge colouring via the line graph + Theorem 5 (rows 6–7)",
        parse: workloads::parse_edge_coloring,
        default: default_edge_coloring,
    },
];

/// Resolves a workload name through the registry.
pub fn parse_workload(name: &str) -> Option<WorkloadSpec> {
    WORKLOAD_ENTRIES.iter().find_map(|entry| (entry.parse)(name))
}

/// The default workload catalog (`--problems all`): one representative per entry, in
/// report order.
pub fn default_workloads() -> Vec<WorkloadSpec> {
    WORKLOAD_ENTRIES.iter().map(|entry| (entry.default)()).collect()
}

/// Resolves a workload name, panicking on unknown names — the concise constructor for
/// presets and tests (`workload("mis")`).
///
/// # Panics
///
/// Panics when the name is not registered.
pub fn workload(name: &str) -> WorkloadSpec {
    parse_workload(name).unwrap_or_else(|| panic!("unknown workload: {name:?}"))
}

/// Renders the full registry — every workload and family with its pattern and one-line
/// description — as the `sweep --list` output.
pub fn render_listing() -> String {
    let mut out = String::from("workloads (--problems):\n");
    for entry in WORKLOAD_ENTRIES {
        out.push_str(&format!("  {:<28} {}\n", entry.pattern, entry.summary));
    }
    out.push_str("\nfamilies (--families):\n");
    for family in local_graphs::builtin_families() {
        out.push_str(&format!("  {:<28} {}\n", family.name(), family.describe()));
    }
    for entry in FAMILY_ENTRIES.iter().filter(|e| e.pattern != "<builtin>") {
        out.push_str(&format!("  {:<28} {}\n", entry.pattern, entry.summary));
    }
    out.push('\n');
    out.push_str(&crate::backend::render_backend_listing());
    out.push_str(
        "\n`--problems all` / `--families all` expand to the fixed catalogs above \
         (parameterized\nnames are opt-in axes). Any listed pattern is accepted wherever a \
         name is, including\nin serialized scenarios, cache keys, and the worker protocol.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Non-default parameterizations exercised alongside the defaults in registry tests.
    fn parameterized_samples() -> Vec<WorkloadSpec> {
        ["ruling-set-b4", "lambda3-coloring"].iter().map(|name| workload(name)).collect()
    }

    #[test]
    fn every_registered_name_parses_back_to_itself() {
        let mut specs = default_workloads();
        specs.extend(parameterized_samples());
        for spec in specs {
            let reparsed =
                parse_workload(spec.name()).unwrap_or_else(|| panic!("{} must parse", spec.name()));
            assert_eq!(reparsed, spec, "{} did not round-trip", spec.name());
            assert_eq!(reparsed.name(), spec.name());
            assert_eq!(reparsed.tag(), spec.tag());
        }
    }

    #[test]
    fn default_catalog_preserves_the_historical_order_and_names() {
        let names: Vec<String> = default_workloads().iter().map(|w| w.name().to_string()).collect();
        assert_eq!(
            names,
            vec![
                "mis",
                "ps-mis",
                "arboricity-mis",
                "cor1-mis",
                "luby-mis",
                "matching",
                "log4-matching",
                "ruling-set-b2",
                "coloring",
                "edge-coloring"
            ]
        );
    }

    #[test]
    fn tags_are_distinct_across_the_registry() {
        let mut specs = default_workloads();
        specs.extend(parameterized_samples());
        let mut tags: Vec<u64> = specs.iter().map(WorkloadSpec::tag).collect();
        let count = tags.len();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), count, "workload tags must be pairwise distinct");
    }

    #[test]
    fn tags_reproduce_the_historical_problem_kind_integers() {
        // These exact integers are mixed into every pre-existing cell's execution seed;
        // changing one silently re-seeds (and re-executes) part of the old grid.
        let expected: &[(&str, u64)] = &[
            ("mis", 1),
            ("ps-mis", 2),
            ("arboricity-mis", 3),
            ("cor1-mis", 4),
            ("luby-mis", 5),
            ("matching", 6),
            ("log4-matching", 7),
            ("edge-coloring", 8),
            ("ruling-set-b2", 0x100 + 2),
            ("ruling-set-b5", 0x100 + 5),
            ("coloring", 0x1_0000 + 1),
            ("lambda4-coloring", 0x1_0000 + 4),
        ];
        for &(name, tag) in expected {
            assert_eq!(workload(name).tag(), tag, "{name}");
        }
    }

    #[test]
    fn shorthands_resolve_to_their_defaults() {
        assert_eq!(workload("ruling-set"), workload("ruling-set-b2"));
        assert_eq!(workload("ruling-set").name(), "ruling-set-b2");
        assert_eq!(workload("coloring").name(), "coloring");
        assert_eq!(workload("lambda1-coloring").name(), "coloring");
        assert!(parse_workload("nonsense").is_none());
        assert!(parse_workload("lambda-coloring").is_none());
    }

    #[test]
    fn listing_covers_every_entry_and_family_pattern() {
        let listing = render_listing();
        for entry in WORKLOAD_ENTRIES {
            assert!(listing.contains(entry.pattern), "listing is missing {}", entry.pattern);
        }
        for family in local_graphs::builtin_families() {
            assert!(listing.contains(family.name()), "listing is missing {}", family.name());
        }
        assert!(listing.contains("gnp-d<d>"));
        assert!(listing.contains("unit-disk-r<milli>"));
    }
}

//! A minimal work-stealing thread pool over indexed jobs.
//!
//! rayon is unavailable offline, so the scheduler brings its own parallelism: scoped worker
//! threads pull job indices from one shared atomic cursor (work *sharing* with self-balancing
//! pull — an idle worker immediately claims the next undone cell, so a straggler cell never
//! blocks the rest of the sweep). Results land in their input slot, which makes the output
//! order — and with deterministic jobs the output *content* — independent of thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `job(0..count)` across up to `threads` workers and returns the results in index
/// order. `threads <= 1` degrades to a plain sequential loop (no worker threads spawned).
///
/// # Panics
///
/// Propagates a panic from any job after all workers have stopped.
pub fn run_indexed<T, F>(count: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_with(count, threads, || (), |(), index| job(index))
}

/// Like [`run_indexed`], but each worker owns a private state built by `init` (called once per
/// worker, on the worker's own thread) and handed to every job the worker claims.
///
/// This is how the scheduler pools one reusable execution session per worker: consecutive
/// cells claimed by the same worker reuse its session's buffers. Jobs must not let the state
/// influence their *result* (only their speed), or thread-count independence is lost.
pub fn run_indexed_with<S, T, I, F>(count: usize, threads: usize, init: I, job: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    if threads <= 1 || count <= 1 {
        let mut state = init();
        return (0..count).map(|index| job(&mut state, index)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(count) {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= count {
                        break;
                    }
                    let result = job(&mut state, index);
                    *slots[index].lock().expect("result slot poisoned") = Some(result);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner().expect("result slot poisoned").expect("every job index was claimed")
        })
        .collect()
}

/// A sensible worker count for this machine.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The one authority on requested worker counts, shared by `SweepConfig::threads`, the
/// process backend's worker count, and the CLI's `--threads`/`--workers` flags: `0` means
/// "use the machine's available parallelism", anything else is taken literally. Callers
/// never interpret a raw count themselves, so the 0-is-auto convention cannot drift between
/// the scheduler, the backends, and the flags that feed them.
pub fn resolve_worker_count(requested: usize) -> usize {
    if requested == 0 {
        default_threads()
    } else {
        requested
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let out = run_indexed(100, 8, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let seq = run_indexed(37, 1, |i| (i, i % 7));
        let par = run_indexed(37, 6, |i| (i, i % 7));
        assert_eq!(seq, par);
    }

    #[test]
    fn zero_jobs_is_fine() {
        let out: Vec<u32> = run_indexed(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let out = run_indexed(3, 64, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn worker_state_is_reused_within_a_worker() {
        // Sequential path: a single state sees every job.
        let out = run_indexed_with(
            5,
            1,
            || 0u32,
            |calls, i| {
                *calls += 1;
                (*calls as usize, i)
            },
        );
        assert_eq!(out.iter().map(|&(c, _)| c).collect::<Vec<_>>(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn worker_state_does_not_change_results_across_thread_counts() {
        let seq = run_indexed_with(40, 1, || (), |(), i| i * 3);
        let par = run_indexed_with(40, 8, || (), |(), i| i * 3);
        assert_eq!(seq, par);
    }

    #[test]
    fn zero_workers_means_available_parallelism() {
        assert_eq!(resolve_worker_count(0), default_threads());
        assert_eq!(resolve_worker_count(1), 1);
        assert_eq!(resolve_worker_count(7), 7);
    }
}

//! The open workload model: the [`Workload`] trait, the name-keyed [`WorkloadSpec`]
//! handle, and one implementation module per problem of the catalog.
//!
//! Historically every problem was one arm of a closed `ProblemKind` enum, with its name,
//! parser, seed tag, cost shape, and a ~160-line execution dispatch spread across four
//! files. A workload now owns all five facets behind one trait, the scheduler calls
//! [`WorkloadSpec::run`] without knowing what it runs, and the registry
//! ([`crate::registry`]) is the single table new workloads are wired into.
//!
//! The stability contract mirrors the family side ([`local_graphs::GraphFamily`]):
//! `name()` is the wire/cache representation and must never change for an existing
//! workload; `tag()` is mixed into per-cell execution seeds and must be distinct from
//! every other registered workload (the builtin tags reproduce the historical
//! `ProblemKind::tag` integers exactly, so pre-existing sweeps keep their seeds).

mod coloring;
mod matching;
mod mis;
mod ruling_set;

pub use coloring::{EdgeColoring, LambdaColoring};
pub use matching::{Log4Matching, Matching};
pub use mis::{ArboricityMis, ColoringMis, Corollary1Mis, LubyMisWorkload, PsMis};
pub use ruling_set::RulingSet;

pub(crate) use coloring::{parse_edge_coloring, parse_lambda_coloring};
pub(crate) use matching::{parse_log4_matching, parse_matching};
pub(crate) use mis::{
    parse_arboricity_mis, parse_cor1_mis, parse_luby_mis, parse_mis, parse_ps_mis,
};
pub(crate) use ruling_set::parse_ruling_set;

use crate::scheduler::Instance;
use local_runtime::{Graph, Session};
use local_uniform::problem::Problem;
use std::sync::Arc;

/// What one workload execution measured; the scheduler packages this into a
/// [`crate::report::CellResult`] together with the cell's coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MeasuredRun {
    /// Rounds of the transformed uniform algorithm.
    pub uniform_rounds: u64,
    /// Messages delivered by the uniform algorithm's black-box attempts.
    pub uniform_messages: u64,
    /// Rounds of the non-uniform baseline executed with correct guesses.
    pub nonuniform_rounds: u64,
    /// Messages delivered by the non-uniform baseline.
    pub nonuniform_messages: u64,
    /// Sub-iterations (black-box attempts) the uniform driver executed, when applicable.
    pub subiterations: u64,
    /// Whether the uniform driver terminated on its own.
    pub solved: bool,
    /// Whether every produced output passed the problem's validator.
    pub valid: bool,
    /// Wall time the uniform driver spent inside black-box attempts, in microseconds.
    pub attempt_micros: u64,
    /// Wall time the uniform driver spent pruning, in microseconds.
    pub prune_micros: u64,
}

/// One experiment workload: a named, seeded execution of a uniform algorithm against its
/// non-uniform baseline on a shared instance.
pub trait Workload: Send + Sync {
    /// The stable canonical name (the wire/cache representation; what
    /// [`crate::registry::parse_workload`] accepts and reports print).
    fn name(&self) -> String;

    /// A small stable integer distinguishing workloads, mixed into per-cell execution
    /// seeds.
    fn tag(&self) -> u64;

    /// The static power-law cost shape `(weight, exponent)` of one cell of this workload
    /// (the [`crate::cost::CostModel`] prior). Only ever affects scheduling *order*.
    fn cost_shape(&self) -> (f64, f64);

    /// A one-line human description for CLI listings.
    fn describe(&self) -> String;

    /// Executes one cell on `instance` with the cell's derived execution `seed`, reusing
    /// the caller's `session` across attempts.
    fn run(&self, instance: &Instance, seed: u64, session: &mut Session) -> MeasuredRun;
}

/// A cheap clonable handle on a registered workload.
///
/// Identity (equality, ordering, hashing) is the workload's stable *name*, exactly like
/// [`local_graphs::FamilySpec`] on the family side; the implementation is shared behind an
/// `Arc`.
#[derive(Clone)]
pub struct WorkloadSpec {
    name: Arc<str>,
    workload: Arc<dyn Workload>,
}

impl WorkloadSpec {
    /// Wraps a [`Workload`] implementation, capturing its canonical name.
    pub fn new(workload: impl Workload + 'static) -> Self {
        WorkloadSpec { name: workload.name().into(), workload: Arc::new(workload) }
    }

    /// The workload's stable canonical name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The workload's stable seed tag (see [`Workload::tag`]).
    pub fn tag(&self) -> u64 {
        self.workload.tag()
    }

    /// The workload's static cost shape (see [`Workload::cost_shape`]).
    pub fn cost_shape(&self) -> (f64, f64) {
        self.workload.cost_shape()
    }

    /// One-line description for CLI listings.
    pub fn describe(&self) -> String {
        self.workload.describe()
    }

    /// Executes one cell (see [`Workload::run`]).
    pub fn run(&self, instance: &Instance, seed: u64, session: &mut Session) -> MeasuredRun {
        self.workload.run(instance, seed, session)
    }
}

impl PartialEq for WorkloadSpec {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
    }
}

impl Eq for WorkloadSpec {}

impl PartialOrd for WorkloadSpec {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WorkloadSpec {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.name.cmp(&other.name)
    }
}

impl std::hash::Hash for WorkloadSpec {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.name.hash(state);
    }
}

impl std::fmt::Debug for WorkloadSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WorkloadSpec({})", self.name)
    }
}

impl std::fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Unit inputs for an `n`-node graph (every catalog problem takes `()` per node).
pub(crate) fn units(n: usize) -> Vec<()> {
    vec![(); n]
}

/// Shared shape of the transformed workloads: run the boxed non-uniform baseline at
/// correct guesses and the uniform solver, validate both against `problem`, and package
/// the measurements.
pub(crate) fn run_transformed<P: Problem<Input = ()>>(
    problem: &P,
    graph: &Graph,
    baseline: local_runtime::DynAlgorithm<(), P::Output>,
    seed: u64,
    session: &mut Session,
    uniform: impl Fn(&Graph, u64, &mut Session) -> local_uniform::UniformRun<P::Output>,
) -> MeasuredRun {
    let nu = baseline.execute(graph, &units(graph.node_count()), None, seed);
    let uni = uniform(graph, seed, session);
    let valid = problem.validate(graph, &units(graph.node_count()), &nu.outputs).is_ok()
        && problem.validate(graph, &units(graph.node_count()), &uni.outputs).is_ok();
    MeasuredRun {
        uniform_rounds: uni.rounds,
        uniform_messages: uni.messages,
        nonuniform_rounds: nu.rounds,
        nonuniform_messages: nu.messages,
        subiterations: uni.subiterations,
        solved: uni.solved,
        valid,
        attempt_micros: uni.attempt_micros,
        prune_micros: uni.prune_micros,
    }
}

//! The colouring workloads: Theorem 5's λ(Δ+1)-colouring and the line-graph edge
//! colouring built on it.

use super::{units, MeasuredRun, Workload, WorkloadSpec};
use crate::scheduler::Instance;
use local_algos::checkers;
use local_algos::edge_coloring::LineGraphEdgeColoring;
use local_runtime::{GraphAlgorithm, Session};
use local_uniform::catalog;
use std::collections::HashMap;

/// `coloring` / `lambda<λ>-coloring` — the Theorem 5 uniform `λ(Δ+1)`-colouring (`λ = 1`
/// is Table 1 row 1's colouring output; larger `λ` is row 5).
pub struct LambdaColoring {
    /// The palette multiplier λ.
    pub lambda: u64,
}

impl Workload for LambdaColoring {
    fn name(&self) -> String {
        if self.lambda == 1 {
            "coloring".into()
        } else {
            format!("lambda{}-coloring", self.lambda)
        }
    }

    fn tag(&self) -> u64 {
        0x1_0000 + self.lambda
    }

    fn cost_shape(&self) -> (f64, f64) {
        // Theorem 5 runs a full per-layer SLC alternation.
        (4.0, 1.3)
    }

    fn describe(&self) -> String {
        format!(
            "Theorem 5 uniform {}(Δ+1)-colouring (Table 1 row {})",
            self.lambda,
            if self.lambda == 1 { 1 } else { 5 }
        )
    }

    fn run(&self, instance: &Instance, seed: u64, session: &mut Session) -> MeasuredRun {
        let graph = &instance.graph;
        let params = &instance.params;
        let baseline = catalog::lambda_coloring_box(self.lambda);
        let nu = (baseline.build)(params.max_degree, params.max_id).execute(
            graph,
            &units(graph.node_count()),
            None,
            seed,
        );
        let transformer = catalog::uniform_lambda_coloring(self.lambda);
        let uni = transformer.solve_in(graph, seed, session);
        let nu_valid = checkers::check_coloring_with_palette(
            graph,
            &nu.outputs,
            (baseline.palette)(params.max_degree),
        )
        .is_ok();
        let uni_valid = checkers::check_coloring(graph, &uni.colors).is_ok()
            && (checkers::palette_size(&uni.colors) as u64)
                <= transformer.palette_bound(params.max_degree);
        MeasuredRun {
            uniform_rounds: uni.rounds,
            uniform_messages: uni.messages,
            nonuniform_rounds: nu.rounds,
            nonuniform_messages: nu.messages,
            subiterations: 0,
            solved: uni.solved,
            valid: nu_valid && uni_valid,
            attempt_micros: uni.attempt_micros,
            prune_micros: uni.prune_micros,
        }
    }
}

/// `edge-coloring` — `O(Δ)`-edge colouring via the line graph + Theorem 5 (Table 1
/// rows 6–7): a vertex colouring of `L(G)` is an edge colouring of `G`, plus one round to
/// exchange the chosen colours over the edges.
pub struct EdgeColoring;

impl Workload for EdgeColoring {
    fn name(&self) -> String {
        "edge-coloring".into()
    }

    fn tag(&self) -> u64 {
        8
    }

    fn cost_shape(&self) -> (f64, f64) {
        // The line graph squares the edge count before Theorem 5 even starts.
        (8.0, 1.45)
    }

    fn describe(&self) -> String {
        "O(Δ)-edge colouring via the line graph + Theorem 5 (Table 1 rows 6–7)".into()
    }

    fn run(&self, instance: &Instance, seed: u64, session: &mut Session) -> MeasuredRun {
        let graph = &instance.graph;
        let params = &instance.params;
        let baseline =
            LineGraphEdgeColoring { delta_guess: params.max_degree, id_bound_guess: params.max_id };
        let nu = baseline.execute(graph, &units(graph.node_count()), None, seed);
        let nu_valid = checkers::check_edge_coloring(graph, &nu.outputs).is_ok();

        let (lg, edges) = graph.line_graph();
        let transformer = catalog::uniform_lambda_coloring(1);
        let uni = transformer.solve_in(&lg, seed, session);
        let mut edge_color = HashMap::new();
        for (i, &(u, v)) in edges.iter().enumerate() {
            edge_color.insert((u.min(v), u.max(v)), uni.colors[i]);
        }
        let port_colors: Vec<Vec<u64>> = (0..graph.node_count())
            .map(|v| {
                graph.neighbors(v).iter().map(|&w| edge_color[&(v.min(w), v.max(w))]).collect()
            })
            .collect();
        let uni_valid = checkers::check_edge_coloring(graph, &port_colors).is_ok();

        MeasuredRun {
            uniform_rounds: uni.rounds + 1,
            uniform_messages: uni.messages,
            nonuniform_rounds: nu.rounds,
            nonuniform_messages: nu.messages,
            subiterations: 0,
            solved: uni.solved,
            valid: nu_valid && uni_valid,
            attempt_micros: uni.attempt_micros,
            prune_micros: uni.prune_micros,
        }
    }
}

pub(crate) fn parse_lambda_coloring(name: &str) -> Option<WorkloadSpec> {
    if name == "coloring" {
        return Some(WorkloadSpec::new(LambdaColoring { lambda: 1 }));
    }
    let lambda: u64 = name.strip_prefix("lambda")?.strip_suffix("-coloring")?.parse().ok()?;
    Some(WorkloadSpec::new(LambdaColoring { lambda }))
}

pub(crate) fn parse_edge_coloring(name: &str) -> Option<WorkloadSpec> {
    (name == "edge-coloring").then(|| WorkloadSpec::new(EdgeColoring))
}

//! The maximal-matching workloads (Table 1 row 8 and its synthetic time-shape variant).

use super::{run_transformed, units, MeasuredRun, Workload, WorkloadSpec};
use crate::scheduler::Instance;
use local_runtime::Session;
use local_uniform::catalog;
use local_uniform::problem::MatchingProblem;

/// `matching` — deterministic maximal matching from edge colouring (Table 1 row 8).
pub struct Matching;

impl Workload for Matching {
    fn name(&self) -> String {
        "matching".into()
    }

    fn tag(&self) -> u64 {
        6
    }

    fn cost_shape(&self) -> (f64, f64) {
        (2.5, 1.3)
    }

    fn describe(&self) -> String {
        "deterministic maximal matching from edge colouring (Table 1 row 8)".into()
    }

    fn run(&self, instance: &Instance, seed: u64, session: &mut Session) -> MeasuredRun {
        let params = &instance.params;
        let baseline = catalog::matching_black_box();
        run_transformed(
            &MatchingProblem,
            &instance.graph,
            (baseline.build)(&[params.max_degree, params.max_id]),
            seed,
            session,
            |g, s, session| {
                catalog::uniform_matching().solve_in(g, &units(g.node_count()), s, session)
            },
        )
    }
}

/// `log4-matching` — maximal matching with the synthetic `O(log⁴ n)` time shape.
pub struct Log4Matching;

impl Workload for Log4Matching {
    fn name(&self) -> String {
        "log4-matching".into()
    }

    fn tag(&self) -> u64 {
        7
    }

    fn cost_shape(&self) -> (f64, f64) {
        // The synthetic black box charges rounds without simulating messages.
        (0.5, 1.15)
    }

    fn describe(&self) -> String {
        "maximal matching, synthetic O(log⁴ n) black box (Table 1 row 8 time shape)".into()
    }

    fn run(&self, instance: &Instance, seed: u64, session: &mut Session) -> MeasuredRun {
        let baseline = catalog::synthetic_log4_matching_black_box();
        run_transformed(
            &MatchingProblem,
            &instance.graph,
            (baseline.build)(&[instance.params.n]),
            seed,
            session,
            |g, s, session| {
                catalog::uniform_log4_matching().solve_in(g, &units(g.node_count()), s, session)
            },
        )
    }
}

pub(crate) fn parse_matching(name: &str) -> Option<WorkloadSpec> {
    (name == "matching").then(|| WorkloadSpec::new(Matching))
}

pub(crate) fn parse_log4_matching(name: &str) -> Option<WorkloadSpec> {
    (name == "log4-matching").then(|| WorkloadSpec::new(Log4Matching))
}

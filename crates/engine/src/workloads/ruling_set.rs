//! The ruling-set workload: the Las Vegas (2, β)-ruling set of Theorem 2 (Table 1 row 9).

use super::{units, MeasuredRun, Workload, WorkloadSpec};
use crate::scheduler::Instance;
use local_runtime::Session;
use local_uniform::catalog;
use local_uniform::problem::{Problem, RulingSetProblem};

/// `ruling-set-b<beta>` — the Las Vegas (2, β)-ruling set of Theorem 2; `ruling-set` is
/// the β = 2 shorthand.
pub struct RulingSet {
    /// The domination radius β.
    pub beta: u64,
}

impl Workload for RulingSet {
    fn name(&self) -> String {
        format!("ruling-set-b{}", self.beta)
    }

    fn tag(&self) -> u64 {
        0x100 + self.beta
    }

    fn cost_shape(&self) -> (f64, f64) {
        (1.5, 1.25)
    }

    fn describe(&self) -> String {
        format!("Las Vegas (2, {})-ruling set of Theorem 2 (Table 1 row 9)", self.beta)
    }

    fn run(&self, instance: &Instance, seed: u64, session: &mut Session) -> MeasuredRun {
        let graph = &instance.graph;
        let baseline = catalog::ruling_set_black_box();
        let nu = (baseline.build)(&[instance.params.n]).execute(
            graph,
            &units(graph.node_count()),
            None,
            seed,
        );
        let uni = catalog::uniform_ruling_set(self.beta as usize).solve_in(
            graph,
            &units(graph.node_count()),
            seed,
            session,
        );
        // The Monte-Carlo baseline is allowed to fail; the Las Vegas claim is on the
        // uniform output only.
        let valid = RulingSetProblem::two(self.beta as usize)
            .validate(graph, &units(graph.node_count()), &uni.outputs)
            .is_ok();
        MeasuredRun {
            uniform_rounds: uni.rounds,
            uniform_messages: uni.messages,
            nonuniform_rounds: nu.rounds,
            nonuniform_messages: nu.messages,
            subiterations: uni.subiterations,
            solved: uni.solved,
            valid,
            attempt_micros: uni.attempt_micros,
            prune_micros: uni.prune_micros,
        }
    }
}

pub(crate) fn parse_ruling_set(name: &str) -> Option<WorkloadSpec> {
    if name == "ruling-set" {
        return Some(WorkloadSpec::new(RulingSet { beta: 2 }));
    }
    let beta: u64 = name.strip_prefix("ruling-set-b")?.parse().ok()?;
    Some(WorkloadSpec::new(RulingSet { beta }))
}

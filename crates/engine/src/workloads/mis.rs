//! The MIS workloads: the Table 1 rows whose output is an independent-set indicator.

use super::{run_transformed, units, MeasuredRun, Workload, WorkloadSpec};
use crate::scheduler::Instance;
use local_algos::mis::LubyMis;
use local_runtime::{GraphAlgorithm, Session};
use local_uniform::catalog;
use local_uniform::problem::{MisProblem, Problem};

/// `mis` — deterministic MIS via (Δ+1)-colouring, transformed by Theorem 1 (Table 1
/// row 1).
pub struct ColoringMis;

impl Workload for ColoringMis {
    fn name(&self) -> String {
        "mis".into()
    }

    fn tag(&self) -> u64 {
        1
    }

    fn cost_shape(&self) -> (f64, f64) {
        (2.0, 1.3)
    }

    fn describe(&self) -> String {
        "deterministic MIS via (Δ+1)-colouring + Theorem 1 (Table 1 row 1)".into()
    }

    fn run(&self, instance: &Instance, seed: u64, session: &mut Session) -> MeasuredRun {
        let params = &instance.params;
        let baseline = catalog::coloring_mis_black_box();
        run_transformed(
            &MisProblem,
            &instance.graph,
            (baseline.build)(&[params.max_degree, params.max_id]),
            seed,
            session,
            |g, s, session| {
                catalog::uniform_coloring_mis().solve_in(g, &units(g.node_count()), s, session)
            },
        )
    }
}

/// `ps-mis` — deterministic MIS with the synthetic `2^{O(√log n)}` bound (Table 1 row 2).
pub struct PsMis;

impl Workload for PsMis {
    fn name(&self) -> String {
        "ps-mis".into()
    }

    fn tag(&self) -> u64 {
        2
    }

    fn cost_shape(&self) -> (f64, f64) {
        // The synthetic black box charges rounds without simulating messages.
        (0.5, 1.15)
    }

    fn describe(&self) -> String {
        "deterministic MIS, synthetic 2^O(√log n) black box (Table 1 row 2)".into()
    }

    fn run(&self, instance: &Instance, seed: u64, session: &mut Session) -> MeasuredRun {
        let baseline = catalog::panconesi_srinivasan_mis_black_box();
        run_transformed(
            &MisProblem,
            &instance.graph,
            (baseline.build)(&[instance.params.n]),
            seed,
            session,
            |g, s, session| {
                catalog::uniform_ps_mis().solve_in(g, &units(g.node_count()), s, session)
            },
        )
    }
}

/// `arboricity-mis` — deterministic MIS parameterised by arboricity (Table 1 rows 3–4).
pub struct ArboricityMis;

impl Workload for ArboricityMis {
    fn name(&self) -> String {
        "arboricity-mis".into()
    }

    fn tag(&self) -> u64 {
        3
    }

    fn cost_shape(&self) -> (f64, f64) {
        (2.0, 1.3)
    }

    fn describe(&self) -> String {
        "deterministic MIS parameterised by arboricity (Table 1 rows 3–4)".into()
    }

    fn run(&self, instance: &Instance, seed: u64, session: &mut Session) -> MeasuredRun {
        let params = &instance.params;
        let baseline = catalog::arboricity_mis_black_box();
        let guesses = [params.degeneracy.max(1), params.n, params.max_id];
        run_transformed(
            &MisProblem,
            &instance.graph,
            (baseline.build)(&guesses),
            seed,
            session,
            |g, s, session| {
                catalog::uniform_arboricity_mis().solve_in(g, &units(g.node_count()), s, session)
            },
        )
    }
}

/// `cor1-mis` — the Corollary 1(i) "fastest of the breeds" MIS combinator (Theorem 4).
pub struct Corollary1Mis;

impl Workload for Corollary1Mis {
    fn name(&self) -> String {
        "cor1-mis".into()
    }

    fn tag(&self) -> u64 {
        4
    }

    fn cost_shape(&self) -> (f64, f64) {
        (2.5, 1.3)
    }

    fn describe(&self) -> String {
        "Corollary 1(i) fastest-of-the-breeds MIS combinator (Theorem 4)".into()
    }

    fn run(&self, instance: &Instance, seed: u64, session: &mut Session) -> MeasuredRun {
        // Baseline: the Δ-based black box (the combinator's claim is to match the best
        // component, which this box's correct-guess run approximates from above).
        let params = &instance.params;
        let baseline = catalog::coloring_mis_black_box();
        run_transformed(
            &MisProblem,
            &instance.graph,
            (baseline.build)(&[params.max_degree, params.max_id]),
            seed,
            session,
            |g, s, session| {
                catalog::corollary1_mis().solve_in(g, &units(g.node_count()), s, session)
            },
        )
    }
}

/// `luby-mis` — Luby's uniform randomized MIS, the already-uniform baseline of Table 1's
/// last row (ratio 1 by definition).
pub struct LubyMisWorkload;

impl Workload for LubyMisWorkload {
    fn name(&self) -> String {
        "luby-mis".into()
    }

    fn tag(&self) -> u64 {
        5
    }

    fn cost_shape(&self) -> (f64, f64) {
        // Already uniform: executes once, no alternation cascade.
        (0.4, 1.1)
    }

    fn describe(&self) -> String {
        "Luby's uniform randomized MIS — the already-uniform baseline (Table 1 row 10)".into()
    }

    fn run(&self, instance: &Instance, seed: u64, _session: &mut Session) -> MeasuredRun {
        let graph = &instance.graph;
        let run = LubyMis.execute(graph, &units(graph.node_count()), None, seed);
        let valid = MisProblem.validate(graph, &units(graph.node_count()), &run.outputs).is_ok();
        MeasuredRun {
            uniform_rounds: run.rounds,
            uniform_messages: run.messages,
            nonuniform_rounds: run.rounds,
            nonuniform_messages: run.messages,
            subiterations: 0,
            solved: run.completed,
            valid,
            attempt_micros: 0,
            prune_micros: 0,
        }
    }
}

pub(crate) fn parse_mis(name: &str) -> Option<WorkloadSpec> {
    (name == "mis").then(|| WorkloadSpec::new(ColoringMis))
}

pub(crate) fn parse_ps_mis(name: &str) -> Option<WorkloadSpec> {
    (name == "ps-mis").then(|| WorkloadSpec::new(PsMis))
}

pub(crate) fn parse_arboricity_mis(name: &str) -> Option<WorkloadSpec> {
    (name == "arboricity-mis").then(|| WorkloadSpec::new(ArboricityMis))
}

pub(crate) fn parse_cor1_mis(name: &str) -> Option<WorkloadSpec> {
    (name == "cor1-mis").then(|| WorkloadSpec::new(Corollary1Mis))
}

pub(crate) fn parse_luby_mis(name: &str) -> Option<WorkloadSpec> {
    (name == "luby-mis").then(|| WorkloadSpec::new(LubyMisWorkload))
}

//! # local-engine — a parallel batched experiment engine for LOCAL-model sweeps
//!
//! The seed reproduction executes one algorithm on one graph at a time; this crate makes
//! *grids* of experiments — every (problem × graph family × size × seed) cell of an
//! evaluation like the paper's Table 1 — a first-class, parallel, reproducible operation.
//!
//! Layers:
//!
//! * [`scenario`] — the experiment model: [`ProblemKind`] (the catalog rows), [`Scenario`]
//!   (one cell), and the [`ScenarioGrid`] cross-product builder.
//! * [`scheduler`] — the [`Sweep`] builder: cache probe, cost-model LPT ordering, streaming
//!   aggregation, and canonical report order, around an abstract execution backend. Per-cell
//!   seeding is deterministic (built on [`local_runtime::mix_seed`]), so a sweep is
//!   byte-identical across thread counts, worker processes, and backends (wall-clock fields
//!   aside).
//! * [`backend`] — *how cells become results*: the [`ExecBackend`] trait, the
//!   [`InProcessBackend`] work-stealing pool ([`pool`]) with its instance cache keyed by
//!   [`local_graphs::InstanceKey`], and the [`ProcessBackend`] that fans serialized
//!   [`CellShard`]s out to `sweep --worker` subprocesses and merges their result streams
//!   (re-running in-process whatever a failed worker leaves behind).
//! * [`report`] — aggregation: per-cell [`CellResult`]s folded into per-group
//!   [`GroupSummary`]s (mean/p50/p99 rounds, uniform-over-non-uniform overhead ratios),
//!   serialized to JSON or CSV.
//! * `sweep` (in `src/bin`) — the CLI driver:
//!   `sweep --problems mis,matching --families sparse-gnp,tree --sizes 100..10000
//!   --seeds 32 --backend process --workers 8 --out results.json`.
//!
//! ## Example
//!
//! ```
//! use local_engine::{run_grid, ProblemKind, ScenarioGrid, SweepConfig};
//! use local_graphs::Family;
//!
//! let grid = ScenarioGrid::new()
//!     .problems([ProblemKind::Mis])
//!     .families([Family::SparseGnp])
//!     .sizes([48usize, 96])
//!     .replicates(2);
//! let report = run_grid(&grid, &SweepConfig::with_threads(2));
//! assert_eq!(report.cell_count, 4);
//! assert!(report.cells.iter().all(|cell| cell.valid));
//! println!("{}", report.render_summaries());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod cache;
pub mod cost;
pub mod pool;
pub mod report;
pub mod scenario;
pub mod scheduler;

pub use backend::{CellShard, ExecBackend, InProcessBackend, ProcessBackend};
pub use cache::{SweepCache, CODE_VERSION};
pub use cost::CostModel;
pub use report::{folded_stacks, summarize, CellResult, GroupSummary, Report, SummaryAccumulator};
pub use scenario::{parse_sizes, ProblemKind, Scenario, ScenarioGrid};
pub use scheduler::{run_cell, run_cell_in, run_grid, Instance, Sweep, SweepConfig};

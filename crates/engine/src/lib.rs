//! # local-engine — a parallel batched experiment engine for LOCAL-model sweeps
//!
//! The seed reproduction executes one algorithm on one graph at a time; this crate makes
//! *grids* of experiments — every (problem × graph family × size × seed) cell of an
//! evaluation like the paper's Table 1 — a first-class, parallel, reproducible operation.
//!
//! Layers:
//!
//! * [`workloads`] — the open workload model: the [`Workload`] trait (name, seed tag, cost
//!   shape, execution) with one implementation per catalog problem, handled through the
//!   name-keyed [`WorkloadSpec`].
//! * [`registry`] — the single table mapping stable names to workload constructors
//!   (parse, the `all` catalog, the self-documenting `sweep --list` output); the family
//!   side lives in [`local_graphs::FAMILY_ENTRIES`].
//! * [`scenario`] — the experiment model: [`Scenario`] (one cell pairing a workload spec
//!   with a family spec) and the [`ScenarioGrid`] cross-product builder.
//! * [`scheduler`] — the [`Sweep`] builder: cache probe, cost-model LPT ordering, streaming
//!   aggregation, and canonical report order, around an abstract execution backend. Per-cell
//!   seeding is deterministic (built on [`local_runtime::mix_seed`]), so a sweep is
//!   byte-identical across thread counts, worker processes, and backends (wall-clock fields
//!   aside).
//! * [`backend`] — *how cells become results*: the [`ExecBackend`] trait, the
//!   [`InProcessBackend`] work-stealing pool ([`pool`]) with its instance cache keyed by
//!   [`local_graphs::InstanceKey`], and the [`ProcessBackend`] that fans serialized
//!   [`CellShard`]s out to `sweep --worker` subprocesses and merges their result streams
//!   (re-running in-process whatever a failed worker leaves behind).
//! * [`store`] — persistence behind the [`ResultStore`] trait: the JSON-file
//!   [`SweepCache`] and the [`BinaryStore`] (the `local-store` append-only segmented
//!   store) both serve and absorb cells for every backend; the binary store also answers
//!   columnar probes so streamed summaries fold without materializing rows.
//! * [`report`] — aggregation: per-cell [`CellResult`]s folded into per-group
//!   [`GroupSummary`]s (mean/p50/p99 rounds, uniform-over-non-uniform overhead ratios),
//!   serialized to JSON or CSV.
//! * `sweep` (in `src/bin`) — the CLI driver:
//!   `sweep --problems mis,matching --families sparse-gnp,tree --sizes 100..10000
//!   --seeds 32 --backend process --workers 8 --out results.json`.
//!
//! ## Example
//!
//! ```
//! use local_engine::{run_grid, workload, ScenarioGrid, SweepConfig};
//! use local_graphs::{family, Family};
//!
//! let grid = ScenarioGrid::new()
//!     .problems([workload("mis")])
//!     .families([Family::SparseGnp.into(), family("gnp-d16")])
//!     .sizes([48usize])
//!     .replicates(2);
//! let report = run_grid(&grid, &SweepConfig::with_threads(2));
//! assert_eq!(report.cell_count, 4);
//! assert!(report.cells.iter().all(|cell| cell.valid));
//! println!("{}", report.render_summaries());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod cache;
pub mod cost;
pub mod pool;
pub mod progress;
pub mod registry;
pub mod report;
pub mod scenario;
pub mod scheduler;
pub mod store;
pub mod workloads;

pub use backend::{
    CellShard, CoordinatorBackend, CoordinatorConfig, CoordinatorServer, ExecBackend,
    FaultInjector, FaultPlan, InProcessBackend, NetworkBackend, ProcessBackend,
};
pub use cache::{SweepCache, CODE_VERSION};
pub use cost::CostModel;
pub use progress::ProgressMeter;
pub use registry::{
    default_workloads, parse_workload, render_listing, workload, WorkloadEntry, WORKLOAD_ENTRIES,
};
pub use report::{
    folded_stacks, summarize, CellColumns, CellResult, GroupSummary, Report, SummaryAccumulator,
};
pub use scenario::{parse_sizes, Scenario, ScenarioGrid};
pub use scheduler::{run_cell, run_cell_in, run_grid, Instance, Sweep, SweepConfig};
pub use store::{report_from_store, BinaryStore, ResultStore};
pub use workloads::{MeasuredRun, Workload, WorkloadSpec};

//! The sweep CLI: run a scenario grid in parallel and write a structured report.
//!
//! ```text
//! sweep --problems mis,matching --families sparse-gnp,tree --sizes 100..10000 \
//!       --seeds 32 --threads 8 --out results.json [--csv results.csv] [--base-seed 0]
//! ```
//!
//! * `--problems`  comma list of catalog problems (`mis`, `ps-mis`, `arboricity-mis`,
//!   `cor1-mis`, `luby-mis`, `matching`, `log4-matching`, `ruling-set[-bB]`, `coloring`,
//!   `lambdaL-coloring`, `edge-coloring`), or `all`.
//! * `--families`  comma list of graph families (canonical names or aliases like
//!   `sparse-gnp`, `tree`), or `all`.
//! * `--sizes`     comma list (`200,400`) or doubling ladder (`100..10000`).
//! * `--seeds`     replicates per cell (default 2).
//! * `--threads`   worker threads (default: available parallelism; must be ≥ 1).
//! * `--out`       write the JSON report here; `--csv` additionally writes per-cell CSV.
//! * `--profile`   emit per-phase timings (attempt / pruning / instance generation) as extra
//!   CSV columns and a printed summary; the JSON report always carries them per cell.

use local_engine::{parse_sizes, run_grid, ProblemKind, ScenarioGrid, SweepConfig};
use local_graphs::Family;
use std::process::ExitCode;

struct Args {
    problems: Vec<ProblemKind>,
    families: Vec<Family>,
    sizes: Vec<usize>,
    seeds: u64,
    threads: usize,
    base_seed: u64,
    out: Option<String>,
    csv: Option<String>,
    profile: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        problems: vec![ProblemKind::Mis],
        families: vec![Family::SparseGnp],
        sizes: vec![64, 128],
        seeds: 2,
        threads: local_engine::pool::default_threads(),
        base_seed: 0,
        out: None,
        csv: None,
        profile: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("missing value for {flag}"));
        match flag.as_str() {
            "--problems" => {
                let v = value("--problems")?;
                args.problems = if v == "all" {
                    ProblemKind::ALL.to_vec()
                } else {
                    v.split(',')
                        .map(|p| {
                            ProblemKind::parse(p.trim())
                                .ok_or_else(|| format!("unknown problem: {p:?}"))
                        })
                        .collect::<Result<_, _>>()?
                };
            }
            "--families" => {
                let v = value("--families")?;
                args.families = if v == "all" {
                    Family::ALL.to_vec()
                } else {
                    v.split(',')
                        .map(|f| {
                            Family::from_name(f.trim())
                                .ok_or_else(|| format!("unknown family: {f:?}"))
                        })
                        .collect::<Result<_, _>>()?
                };
            }
            "--sizes" => args.sizes = parse_sizes(&value("--sizes")?)?,
            "--seeds" => {
                args.seeds = value("--seeds")?.parse().map_err(|e| format!("bad --seeds: {e}"))?
            }
            "--threads" => {
                args.threads =
                    value("--threads")?.parse().map_err(|e| format!("bad --threads: {e}"))?;
                if args.threads == 0 {
                    return Err(
                        "--threads must be at least 1 (a sweep cannot run with zero workers)"
                            .to_string(),
                    );
                }
            }
            "--base-seed" => {
                args.base_seed =
                    value("--base-seed")?.parse().map_err(|e| format!("bad --base-seed: {e}"))?
            }
            "--out" => args.out = Some(value("--out")?),
            "--csv" => args.csv = Some(value("--csv")?),
            "--profile" => args.profile = true,
            "--help" | "-h" => {
                println!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other} (try --help)")),
        }
    }
    Ok(args)
}

const HELP: &str = "\
sweep — parallel batched experiment engine for uniform LOCAL algorithms

USAGE:
  sweep [--problems LIST|all] [--families LIST|all] [--sizes 200,400 | 100..10000]
        [--seeds N] [--threads N] [--base-seed S] [--out report.json] [--csv cells.csv]
        [--profile]

  --profile  emit per-phase wall-time columns (attempt / pruning / instance generation) in
             the CSV output and print a phase-time summary.

EXAMPLE:
  sweep --problems mis,matching --families sparse-gnp,tree --sizes 100..1600 \\
        --seeds 32 --threads 8 --out results.json";

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("sweep: {message}");
            return ExitCode::FAILURE;
        }
    };

    let grid = ScenarioGrid::new()
        .problems(args.problems)
        .families(args.families)
        .sizes(args.sizes)
        .replicates(args.seeds)
        .base_seed(args.base_seed);
    eprintln!(
        "sweep: {} cells ({} problems × {} families × {} sizes × {} seeds), {} threads",
        grid.cell_count(),
        grid.problems.len(),
        grid.families.len(),
        grid.sizes.len(),
        grid.replicates,
        args.threads
    );

    let report = run_grid(&grid, &SweepConfig::with_threads(args.threads));

    println!("{}", report.render_summaries());
    if args.profile {
        let attempt: u64 = report.cells.iter().map(|c| c.attempt_micros).sum();
        let prune: u64 = report.cells.iter().map(|c| c.prune_micros).sum();
        // Instance generation is shared across the cells of one instance (identified within a
        // sweep by family × size × replicate); count each distinct instance exactly once.
        let instance_gen: u64 = report
            .cells
            .iter()
            .map(|c| ((&c.family, c.requested_n, c.replicate), c.instance_micros))
            .collect::<std::collections::BTreeMap<_, _>>()
            .values()
            .sum();
        println!(
            "phases: attempt {:.1} ms, pruning {:.1} ms, instance-gen {:.1} ms",
            attempt as f64 / 1000.0,
            prune as f64 / 1000.0,
            instance_gen as f64 / 1000.0
        );
    }
    let invalid = report.cells.iter().filter(|c| !c.valid).count();
    println!(
        "{} cells, {} distinct instances, {:.1} ms wall, {} invalid",
        report.cell_count,
        report.distinct_instances,
        report.total_wall_micros as f64 / 1000.0,
        invalid
    );

    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("sweep: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote JSON report to {path}");
    }
    if let Some(path) = &args.csv {
        if let Err(e) = std::fs::write(path, report.to_csv_with(args.profile)) {
            eprintln!("sweep: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote per-cell CSV to {path}");
    }
    if invalid > 0 {
        eprintln!("sweep: {invalid} cells failed validation");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

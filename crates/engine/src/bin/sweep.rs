//! The sweep CLI: run a scenario grid in parallel and write a structured report.
//!
//! ```text
//! sweep --problems mis,matching --families sparse-gnp,tree --sizes 100..10000 \
//!       --seeds 32 --threads 8 --out results.json [--csv results.csv] [--base-seed 0]
//! ```
//!
//! * `--problems`  comma list of catalog problems (`mis`, `ps-mis`, `arboricity-mis`,
//!   `cor1-mis`, `luby-mis`, `matching`, `log4-matching`, `ruling-set[-bB]`, `coloring`,
//!   `lambdaL-coloring`, `edge-coloring`), or `all`.
//! * `--families`  comma list of graph families (canonical names or aliases like
//!   `sparse-gnp`, `tree`), or `all`.
//! * `--sizes`     comma list (`200,400`) or doubling ladder (`100..10000`).
//! * `--seeds`     replicates per cell (default 2).
//! * `--threads`   worker threads (default: available parallelism; must be ≥ 1).
//! * `--out`       write the JSON report here; `--csv` additionally writes per-cell CSV.
//! * `--profile`   emit per-phase timings (attempt / pruning / instance generation) as extra
//!   CSV columns and a printed summary; the JSON report always carries them per cell.
//! * `--folded F`  write the sweep's phase times as folded stacks (flamegraph format) to `F`.
//! * `--cache-dir D`  incremental result cache location (default `target/sweep-cache`); a
//!   re-sweep executes only cells whose inputs changed. `--no-cache` disables it.
//! * `--stream`    stream cells to the cache instead of holding them in memory (large
//!   grids); per-cell CSV is then produced by reading the cache back. Requires the cache.

use local_engine::{parse_sizes, run_grid, ProblemKind, ScenarioGrid, SweepCache, SweepConfig};
use local_graphs::Family;
use std::process::ExitCode;

struct Args {
    problems: Vec<ProblemKind>,
    families: Vec<Family>,
    sizes: Vec<usize>,
    seeds: u64,
    threads: usize,
    base_seed: u64,
    out: Option<String>,
    csv: Option<String>,
    profile: bool,
    folded: Option<String>,
    cache_dir: Option<String>,
    stream: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        problems: vec![ProblemKind::Mis],
        families: vec![Family::SparseGnp],
        sizes: vec![64, 128],
        seeds: 2,
        threads: local_engine::pool::default_threads(),
        base_seed: 0,
        out: None,
        csv: None,
        profile: false,
        folded: None,
        cache_dir: Some("target/sweep-cache".to_string()),
        stream: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("missing value for {flag}"));
        match flag.as_str() {
            "--problems" => {
                let v = value("--problems")?;
                args.problems = if v == "all" {
                    ProblemKind::ALL.to_vec()
                } else {
                    v.split(',')
                        .map(|p| {
                            ProblemKind::parse(p.trim())
                                .ok_or_else(|| format!("unknown problem: {p:?}"))
                        })
                        .collect::<Result<_, _>>()?
                };
            }
            "--families" => {
                let v = value("--families")?;
                args.families = if v == "all" {
                    Family::ALL.to_vec()
                } else {
                    v.split(',')
                        .map(|f| {
                            Family::from_name(f.trim())
                                .ok_or_else(|| format!("unknown family: {f:?}"))
                        })
                        .collect::<Result<_, _>>()?
                };
            }
            "--sizes" => args.sizes = parse_sizes(&value("--sizes")?)?,
            "--seeds" => {
                args.seeds = value("--seeds")?.parse().map_err(|e| format!("bad --seeds: {e}"))?
            }
            "--threads" => {
                args.threads =
                    value("--threads")?.parse().map_err(|e| format!("bad --threads: {e}"))?;
                if args.threads == 0 {
                    return Err(
                        "--threads must be at least 1 (a sweep cannot run with zero workers)"
                            .to_string(),
                    );
                }
            }
            "--base-seed" => {
                args.base_seed =
                    value("--base-seed")?.parse().map_err(|e| format!("bad --base-seed: {e}"))?
            }
            "--out" => args.out = Some(value("--out")?),
            "--csv" => args.csv = Some(value("--csv")?),
            "--profile" => args.profile = true,
            "--folded" => args.folded = Some(value("--folded")?),
            "--cache-dir" => args.cache_dir = Some(value("--cache-dir")?),
            "--no-cache" => args.cache_dir = None,
            "--stream" => args.stream = true,
            "--help" | "-h" => {
                println!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other} (try --help)")),
        }
    }
    if args.stream && args.cache_dir.is_none() {
        return Err("--stream needs the cache (drop --no-cache): streamed cells live in the \
                    cache, not in memory"
            .to_string());
    }
    Ok(args)
}

const HELP: &str = "\
sweep — parallel batched experiment engine for uniform LOCAL algorithms

USAGE:
  sweep [--problems LIST|all] [--families LIST|all] [--sizes 200,400 | 100..10000]
        [--seeds N] [--threads N] [--base-seed S] [--out report.json] [--csv cells.csv]
        [--profile] [--folded stacks.folded] [--cache-dir DIR | --no-cache] [--stream]

  --profile    emit per-phase wall-time columns (attempt / pruning / instance generation)
               in the CSV output and print a phase-time summary.
  --folded F   write phase times as folded stacks (flamegraph.pl / inferno format) to F.
  --cache-dir  incremental result cache (default target/sweep-cache): a re-sweep executes
               only changed cells and serves the rest from disk, byte-identically.
  --no-cache   disable the cache.
  --stream     fold cells into summaries as they complete and keep them only in the cache
               (flat memory for very large grids). Requires the cache.

EXAMPLE:
  sweep --problems mis,matching --families sparse-gnp,tree --sizes 100..1600 \\
        --seeds 32 --threads 8 --out results.json";

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("sweep: {message}");
            return ExitCode::FAILURE;
        }
    };

    let grid = ScenarioGrid::new()
        .problems(args.problems)
        .families(args.families)
        .sizes(args.sizes)
        .replicates(args.seeds)
        .base_seed(args.base_seed);
    eprintln!(
        "sweep: {} cells ({} problems × {} families × {} sizes × {} seeds), {} threads",
        grid.cell_count(),
        grid.problems.len(),
        grid.families.len(),
        grid.sizes.len(),
        grid.replicates,
        args.threads
    );

    let cache = args.cache_dir.as_ref().map(SweepCache::new);
    let mut cfg = SweepConfig::with_threads(args.threads);
    cfg.cache = cache.clone();
    cfg.stream = args.stream;
    let report = run_grid(&grid, &cfg);

    println!("{}", report.render_summaries());
    if args.profile {
        // In streaming mode the report holds no cells; read them back from the cache one at
        // a time (they were just written) so the phase summary is printed either way.
        let mut attempt = 0u64;
        let mut prune = 0u64;
        // Instance generation is shared across the cells of one instance (identified within a
        // sweep by family × size × replicate); count each distinct instance exactly once.
        let mut instances = std::collections::BTreeMap::new();
        let mut fold = |c: &local_engine::CellResult| {
            attempt += c.attempt_micros;
            prune += c.prune_micros;
            instances.insert((c.family.clone(), c.requested_n, c.replicate), c.instance_micros);
        };
        if args.stream {
            for cell in grid.cells() {
                if let Some(c) = cache.as_ref().and_then(|cache| cache.load(&cell, grid.base_seed))
                {
                    fold(&c);
                }
            }
        } else {
            report.cells.iter().for_each(&mut fold);
        }
        let instance_gen: u64 = instances.values().sum();
        println!(
            "phases: attempt {:.1} ms, pruning {:.1} ms, instance-gen {:.1} ms",
            attempt as f64 / 1000.0,
            prune as f64 / 1000.0,
            instance_gen as f64 / 1000.0
        );
    }
    let invalid = report.cells.iter().filter(|c| !c.valid).count();
    println!(
        "{} cells ({} from cache), {} distinct instances, {:.1} ms wall, {} invalid",
        report.cell_count,
        report.cache_hits,
        report.distinct_instances,
        report.total_wall_micros as f64 / 1000.0,
        invalid
    );

    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("sweep: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote JSON report to {path}");
    }
    if let Some(path) = &args.csv {
        let csv = if args.stream {
            // Streamed cells live in the cache only: rebuild the rows in canonical order.
            match streamed_csv(&grid, cache.as_ref().expect("--stream implies cache"), args.profile)
            {
                Ok(csv) => csv,
                Err(message) => {
                    eprintln!("sweep: {message}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            report.to_csv_with(args.profile)
        };
        if let Err(e) = std::fs::write(path, csv) {
            eprintln!("sweep: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote per-cell CSV to {path}");
    }
    if let Some(path) = &args.folded {
        let folded = if args.stream {
            match streamed_folded(&grid, cache.as_ref().expect("--stream implies cache")) {
                Ok(folded) => folded,
                Err(message) => {
                    eprintln!("sweep: {message}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            report.to_folded()
        };
        if let Err(e) = std::fs::write(path, folded) {
            eprintln!("sweep: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote folded phase stacks to {path}");
    }
    if invalid > 0 {
        eprintln!("sweep: {invalid} cells failed validation");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Reads every cell of `grid` back from the cache (a streamed sweep just wrote them) and
/// renders CSV rows in canonical order, never holding more than one cell.
fn streamed_csv(grid: &ScenarioGrid, cache: &SweepCache, profile: bool) -> Result<String, String> {
    let mut out = local_engine::CellResult::csv_header(profile);
    out.push('\n');
    for cell in grid.cells() {
        let result = cache
            .load(&cell, grid.base_seed)
            .ok_or_else(|| format!("cache is missing streamed cell {}", cell.label()))?;
        out.push_str(&result.csv_row(profile));
        out.push('\n');
    }
    Ok(out)
}

/// Folded stacks for a streamed sweep, reading cells back from the cache one at a time.
fn streamed_folded(grid: &ScenarioGrid, cache: &SweepCache) -> Result<String, String> {
    let mut missing = None;
    let folded = local_engine::report::folded_stacks(grid.cells().into_iter().filter_map(|cell| {
        let loaded = cache.load(&cell, grid.base_seed);
        if loaded.is_none() && missing.is_none() {
            missing = Some(cell.label());
        }
        loaded
    }));
    match missing {
        Some(label) => Err(format!("cache is missing streamed cell {label}")),
        None => Ok(folded),
    }
}

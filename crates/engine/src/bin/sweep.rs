//! The sweep CLI: run a scenario grid over a pluggable execution backend and write a
//! structured report.
//!
//! ```text
//! sweep --problems mis,matching --families sparse-gnp,tree --sizes 100..10000 \
//!       --seeds 32 --backend process --workers 8 --out results.json [--csv results.csv]
//! ```
//!
//! * `--problems`  comma list of registered workloads (`mis`, `matching`,
//!   `ruling-set[-bB]`, `lambdaL-coloring`, …), or `all`. `sweep --list` prints the full
//!   registry.
//! * `--families`  comma list of graph families — canonical names, aliases like
//!   `sparse-gnp`/`tree`, or *parameterized* generators (`gnp-d16`, `regular-8`,
//!   `forest-5`, `pa-2`, `unit-disk-r75`) — or `all` (the builtin catalog).
//! * `--list`      print every registered workload and family (name, parameters, one-line
//!   description) straight from the registry, then exit.
//! * `--sizes`     comma list (`200,400`) or doubling ladder (`100..10000`).
//! * `--seeds`     replicates per cell (default 2).
//! * `--backend`   execution backend: `in-process` (default; the work-stealing thread pool),
//!   `process` (spawn `sweep --worker` subprocesses over the serialized shard protocol), or
//!   `network` (stripe over persistent `sweep --serve` TCP daemons named by `--connect`).
//! * `--threads`   worker threads (0 = available parallelism). Under `--backend process`
//!   this is each worker process's thread count (default 1).
//! * `--workers`   worker processes for `--backend process` (0 = available parallelism).
//! * `--connect`   comma list of daemon addresses for `--backend network`.
//! * `--io-deadline-ms`  liveness deadline for worker I/O; heartbeats shrink the window.
//! * `--faults`    deterministic fault-injection script (also read from `LOCAL_FAULTS`).
//! * `--out`       write the JSON report here; `--csv` additionally writes per-cell CSV.
//! * `--dry-run`   print the cost model's predicted per-cell micros and the LPT execution
//!   order (calibrated from the cache when one is attached) without running anything.
//! * `--deterministic`  zero every wall-clock field in the outputs, so reports produced by
//!   different backends or parallelism levels compare byte-for-byte.
//! * `--profile`   emit per-phase timings (attempt / pruning / instance generation) as extra
//!   CSV columns and a printed summary; the JSON report always carries them per cell.
//! * `--folded F`  write the sweep's phase times as folded stacks (flamegraph format) to `F`.
//! * `--cache-dir D`  incremental result cache location (default `target/sweep-cache`); a
//!   re-sweep executes only cells whose inputs changed. `--no-cache` disables it.
//! * `--store D`   segmented binary result store replacing the JSON cache at scale: CRC-
//!   checked append-only segment files instead of one JSON file per cell, behind the same
//!   incremental-re-sweep semantics. `sweep store import CACHE_DIR --store D` migrates a
//!   cache; `sweep store bench` measures both on a synthetic grid.
//! * `--stream`    stream cells to the result store instead of holding them in memory
//!   (large grids); per-cell CSV is then produced by reading the store back. Requires a
//!   cache or store.
//! * `--trace F`   enable the observability layer and write a Chrome trace-event JSON of
//!   the sweep (phase spans, counters, one track per thread/worker) to `F` — loadable in
//!   Perfetto or `chrome://tracing`.
//! * `--trace-events F`  append the same events as an NDJSON log to `F`.
//! * `--progress`  live stderr status line: cells done/total, cache hits, per-worker
//!   throughput, and an ETA from the cost model's predictions for the outstanding cells.
//!
//! There is also a hidden `--worker` mode — the receiving end of the process backend's
//! shard protocol (shard JSON on stdin, newline-delimited results + sentinel on stdout) —
//! a `--serve ADDR` mode, the same protocol as a persistent TCP daemon for `--backend
//! network`, and a `--coordinate ADDR` mode that schedules many clients' submissions
//! (`--submit`) fairly over a `--connect` daemon fleet; see `local_engine::backend` for
//! the framing and `local_engine::backend::coordinator` for the job protocol.

use local_engine::backend::{
    coordinate_forever, serve_forever, worker_serve, CoordinatorBackend, CoordinatorConfig,
    FaultInjector, FaultPlan, InProcessBackend, NetworkBackend, ProcessBackend,
};
use local_engine::{
    default_workloads, parse_sizes, parse_workload, render_listing, BinaryStore, CellResult,
    CostModel, ProgressMeter, ResultStore, Scenario, ScenarioGrid, Sweep, SweepCache, WorkloadSpec,
    CODE_VERSION,
};
use local_graphs::{builtin_families, parse_family, FamilySpec};
use serde::{Deserialize, Value};
use std::io::Read;
use std::process::ExitCode;
use std::sync::Arc;

#[derive(Clone, PartialEq)]
enum BackendKind {
    InProcess,
    Process,
    Network,
    Coordinator,
}

struct Args {
    problems: Vec<WorkloadSpec>,
    families: Vec<FamilySpec>,
    sizes: Vec<usize>,
    seeds: u64,
    backend: BackendKind,
    threads: Option<usize>,
    workers: usize,
    connect: Vec<String>,
    submit: Option<String>,
    client: Option<String>,
    io_deadline_ms: Option<u64>,
    faults: Option<FaultPlan>,
    base_seed: u64,
    out: Option<String>,
    csv: Option<String>,
    dry_run: bool,
    deterministic: bool,
    profile: bool,
    folded: Option<String>,
    cache_dir: Option<String>,
    /// `--cache-dir` was given explicitly (as opposed to the default location), which
    /// conflicts with `--store`.
    cache_dir_explicit: bool,
    store_dir: Option<String>,
    stream: bool,
    trace: Option<String>,
    trace_events: Option<String>,
    progress: bool,
}

/// Parses a worker/thread count. The semantics live in
/// [`local_engine::pool::resolve_worker_count`] — `0` means "use the machine's available
/// parallelism" — so the flags, `SweepConfig`, and both backends cannot drift apart; here
/// we only reject text that is not a count at all.
fn parse_count(flag: &str, text: &str) -> Result<usize, String> {
    text.parse().map_err(|e| format!("bad {flag}: {e} (0 means available parallelism)"))
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        problems: vec![local_engine::workload("mis")],
        families: vec![local_graphs::Family::SparseGnp.into()],
        sizes: vec![64, 128],
        seeds: 2,
        backend: BackendKind::InProcess,
        threads: None,
        workers: 0,
        connect: Vec::new(),
        submit: None,
        client: None,
        io_deadline_ms: None,
        faults: None,
        base_seed: 0,
        out: None,
        csv: None,
        dry_run: false,
        deterministic: false,
        profile: false,
        folded: None,
        cache_dir: Some("target/sweep-cache".to_string()),
        cache_dir_explicit: false,
        store_dir: None,
        stream: false,
        trace: None,
        trace_events: None,
        progress: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("missing value for {flag}"));
        match flag.as_str() {
            "--problems" => {
                let v = value("--problems")?;
                args.problems = if v == "all" {
                    default_workloads()
                } else {
                    v.split(',')
                        .map(|p| {
                            parse_workload(p.trim())
                                .ok_or_else(|| format!("unknown problem: {p:?} (see sweep --list)"))
                        })
                        .collect::<Result<_, _>>()?
                };
            }
            "--families" => {
                let v = value("--families")?;
                args.families = if v == "all" {
                    builtin_families()
                } else {
                    v.split(',')
                        .map(|f| {
                            parse_family(f.trim())
                                .ok_or_else(|| format!("unknown family: {f:?} (see sweep --list)"))
                        })
                        .collect::<Result<_, _>>()?
                };
            }
            "--sizes" => args.sizes = parse_sizes(&value("--sizes")?)?,
            "--seeds" => {
                args.seeds = value("--seeds")?.parse().map_err(|e| format!("bad --seeds: {e}"))?
            }
            "--backend" => {
                args.backend = match value("--backend")?.as_str() {
                    "in-process" => BackendKind::InProcess,
                    "process" => BackendKind::Process,
                    "network" => BackendKind::Network,
                    "coordinator" => BackendKind::Coordinator,
                    other => {
                        return Err(format!(
                            "unknown backend: {other:?} (expected in-process, process, \
                             network, or coordinator — sweep --list enumerates them)"
                        ))
                    }
                };
            }
            "--threads" => args.threads = Some(parse_count("--threads", &value("--threads")?)?),
            "--workers" => args.workers = parse_count("--workers", &value("--workers")?)?,
            "--connect" => {
                args.connect =
                    value("--connect")?.split(',').map(|a| a.trim().to_string()).collect();
            }
            "--submit" => {
                args.submit = Some(value("--submit")?);
                args.backend = BackendKind::Coordinator;
            }
            "--client" => args.client = Some(value("--client")?),
            "--io-deadline-ms" => {
                args.io_deadline_ms = Some(
                    value("--io-deadline-ms")?
                        .parse()
                        .map_err(|e| format!("bad --io-deadline-ms: {e}"))?,
                );
            }
            "--faults" => {
                args.faults = Some(
                    FaultPlan::parse(&value("--faults")?)
                        .map_err(|e| format!("bad --faults: {e}"))?,
                );
            }
            "--base-seed" => {
                args.base_seed =
                    value("--base-seed")?.parse().map_err(|e| format!("bad --base-seed: {e}"))?
            }
            "--out" => args.out = Some(value("--out")?),
            "--csv" => args.csv = Some(value("--csv")?),
            "--list" => {
                print!("{}", render_listing());
                std::process::exit(0);
            }
            "--dry-run" => args.dry_run = true,
            "--deterministic" => args.deterministic = true,
            "--profile" => args.profile = true,
            "--folded" => args.folded = Some(value("--folded")?),
            "--cache-dir" => {
                args.cache_dir = Some(value("--cache-dir")?);
                args.cache_dir_explicit = true;
            }
            "--no-cache" => args.cache_dir = None,
            "--store" => args.store_dir = Some(value("--store")?),
            "--stream" => args.stream = true,
            "--trace" => args.trace = Some(value("--trace")?),
            "--trace-events" => args.trace_events = Some(value("--trace-events")?),
            "--progress" => args.progress = true,
            "--help" | "-h" => {
                println!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other} (try --help)")),
        }
    }
    if args.store_dir.is_some() && args.cache_dir_explicit {
        return Err("--store and --cache-dir are two locations for the same results: pick \
                    one (the binary store supersedes the JSON cache; `sweep store import` \
                    migrates an existing cache)"
            .to_string());
    }
    if args.stream && args.cache_dir.is_none() && args.store_dir.is_none() {
        return Err("--stream needs a result store (drop --no-cache or add --store DIR): \
                    streamed cells live on disk, not in memory"
            .to_string());
    }
    if args.backend == BackendKind::Network && args.connect.is_empty() {
        return Err("--backend network needs --connect host:port[,host:port…] (start daemons \
                    with sweep --serve ADDR)"
            .to_string());
    }
    if args.backend == BackendKind::Coordinator && args.submit.is_none() {
        return Err("--backend coordinator needs --submit host:port (start one with sweep \
                    --coordinate ADDR --connect …)"
            .to_string());
    }
    Ok(args)
}

const HELP: &str = "\
sweep — parallel batched experiment engine for uniform LOCAL algorithms

USAGE:
  sweep [--problems LIST|all] [--families LIST|all] [--sizes 200,400 | 100..10000]
        [--seeds N] [--backend in-process|process|network|coordinator] [--threads N]
        [--workers N] [--connect HOST:PORT,…] [--submit HOST:PORT] [--client NAME]
        [--io-deadline-ms MS] [--faults SCRIPT]
        [--base-seed S] [--out report.json] [--csv cells.csv] [--list] [--dry-run]
        [--deterministic] [--profile] [--folded stacks.folded]
        [--cache-dir DIR | --no-cache | --store DIR] [--stream]
        [--trace trace.json] [--trace-events events.ndjson] [--progress]
  sweep --serve ADDR [--threads N] [--max-concurrent-shards N]
                                            run a persistent worker daemon
  sweep --coordinate ADDR --connect HOST:PORT,… [--threads N] [--io-deadline-ms MS]
        [--stripes-per-peer N] [--faults SCRIPT] [--store DIR]
                                            run a multi-client coordinator over a fleet
  sweep store import CACHE_DIR --store DIR [--base-seed S]
                                            migrate a JSON cache into the binary store
  sweep store bench [--cells N] [--dir DIR] [--json PATH]
                                            benchmark the store against the JSON cache

  --list       print every registered workload, family, and execution backend (with the
               flags that configure it) straight from the registries, then exit.

  --backend    in-process (default): the work-stealing thread pool. process: fan the sweep
               out to worker subprocesses over the serialized shard protocol; a failed
               worker's cells are re-run in-process, never lost. network: stripe the sweep
               over persistent `sweep --serve ADDR` daemons (--connect) with reconnect
               backoff, heartbeat liveness, re-dispatch to healthy peers, and the same
               in-process rescue of last resort — byte-identical reports either way.
  --threads    worker threads; 0 = available parallelism. Under --backend process, each
               worker process's thread count (default 1); under --backend network, the
               in-process rescue path's thread count (default 0).
  --workers    worker processes for --backend process; 0 = available parallelism.
  --connect    comma list of daemon addresses for --backend network (one stripe per peer).
  --submit     submit the sweep to a `sweep --coordinate` service at HOST:PORT (implies
               --backend coordinator); verified results stream back cell by cell and the
               report is byte-identical (--deterministic) to an in-process run.
  --client     name this client in coordinator submissions, for the coordinator's
               per-client fairness and accounting (default: anonymous, by source address).
  --serve      bind ADDR (host:port; port 0 picks one), print `listening on <addr>`, and
               serve shard requests forever; --threads caps each shard's parallelism.
  --max-concurrent-shards
               how many plain shard requests a daemon serves concurrently (default 0 =
               thread budget / per-shard threads). Fault-scripted and telemetry requests
               still run exclusively, keeping their ordering deterministic.
  --coordinate bind ADDR, print `listening on <addr>`, and schedule job submissions from
               any number of clients over the --connect fleet: deficit-round-robin fair by
               predicted cost between clients, LPT within a job, dead peers' stripes
               re-queued to survivors and rescued in-process as the last resort.
  --stripes-per-peer
               stripes each job is decomposed into per fleet peer (default 4): finer
               stripes interleave clients more fairly, coarser amortize dispatch overhead.
  --io-deadline-ms
               liveness deadline for worker I/O (default 600000): a stream silent this
               long is declared dead and its cells rescued. When heartbeats flow the
               effective window shrinks to a few heartbeat intervals.
  --faults     deterministic fault-injection script (also read from LOCAL_FAULTS), e.g.
               \"w0:kill@5 w1:refuse*2\"; clauses scoped w<i>: apply to worker/peer i.
               kill@K / truncate@K / garble@K / dup@K / delay@K=MS act on a worker's K-th
               result line; refuse*N fails its first N connects. Injected faults surface
               on the `resilience:` line.
  --dry-run    print the cost model's predicted per-cell micros and the LPT execution order
               (calibrated from cached observations when available) without running cells.
  --deterministic
               zero every wall-clock field in reports/CSV, so outputs from different
               backends and parallelism levels compare byte-for-byte.
  --profile    emit per-phase wall-time columns (attempt / pruning / instance generation)
               in the CSV output and print a phase-time summary.
  --folded F   write phase times as folded stacks (flamegraph.pl / inferno format) to F.
  --cache-dir  incremental result cache (default target/sweep-cache): a re-sweep executes
               only changed cells and serves the rest from disk, byte-identically.
  --no-cache   disable the cache.
  --store      segmented binary result store in DIR, replacing the JSON cache for
               million-cell sweeps: append-only CRC-checked segment files with an index
               rebuilt by one sequential scan on open, torn tails truncated on recovery.
               Same identity keys and incremental semantics as the cache, byte-identical
               reports. On a coordinator, a shared store serves repeat submissions and
               accumulates every client's fresh results. Conflicts with --cache-dir.
  --stream     fold cells into summaries as they complete and keep them only in the
               result store (flat memory for very large grids). With --store the re-sweep
               summary path is fully columnar: no CellResult rows are materialized for
               stored cells (the summary line prints `rows materialized 0`).
  --trace F    enable observability and write a Chrome trace-event JSON (phase spans,
               counters, one track per thread/worker) to F; open it in Perfetto or
               chrome://tracing. Under --backend process, workers stream their spans home.
  --trace-events F
               append the recorded events to F as an NDJSON log (one JSON object per line).
  --progress   live stderr status line: cells done/total, cache hits, per-worker
               throughput, and an ETA from cost-model predictions of outstanding cells.

EXAMPLE:
  sweep --problems mis,matching --families sparse-gnp,tree --sizes 100..1600 \\
        --seeds 32 --backend process --workers 8 --out results.json";

/// The hidden `--worker` mode: serve one shard over the stdin/stdout protocol and exit.
/// Any error lands on stderr with a nonzero exit, which the parent treats as a shard
/// failure and absorbs in-process. Stream faults scripted into this process's
/// `LOCAL_FAULTS` (the parent forwards per-worker clauses) are executed here.
fn worker_main(threads: usize, telemetry_ms: Option<u64>) -> ExitCode {
    let mut input = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut input) {
        eprintln!("sweep --worker: cannot read shard from stdin: {e}");
        return ExitCode::FAILURE;
    }
    let faults = FaultInjector::from_env_lossy();
    let mut stdout = std::io::stdout();
    match worker_serve(&input, threads, telemetry_ms, &faults, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("sweep --worker: {message}");
            ExitCode::FAILURE
        }
    }
}

/// The `--serve` mode: a persistent worker daemon on a TCP address, the receiving end of
/// `--backend network`. Runs until killed.
fn serve_main(addr: &str, threads: usize, max_concurrent: usize) -> ExitCode {
    match serve_forever(addr, threads, max_concurrent) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("sweep --serve: {message}");
            ExitCode::FAILURE
        }
    }
}

/// The `--coordinate` mode: a multi-client scheduling service over a `--connect` daemon
/// fleet. Runs until killed.
fn coordinate_main(raw: &[String], addr: &str) -> ExitCode {
    let get = |flag: &str| raw.iter().position(|a| a == flag).and_then(|i| raw.get(i + 1));
    let mut config = CoordinatorConfig {
        fleet: get("--connect")
            .map(|v| v.split(',').map(|a| a.trim().to_string()).collect())
            .unwrap_or_default(),
        ..CoordinatorConfig::default()
    };
    if let Some(n) = get("--threads").and_then(|v| v.parse().ok()) {
        config.rescue_threads = n;
    }
    if let Some(ms) = get("--io-deadline-ms").and_then(|v| v.parse().ok()) {
        config.io_deadline_ms = ms;
    }
    if let Some(n) = get("--stripes-per-peer").and_then(|v| v.parse::<usize>().ok()) {
        config.stripes_per_peer = n.max(1);
    }
    config.faults = match get("--faults") {
        Some(script) => match FaultPlan::parse(script) {
            Ok(plan) => plan,
            Err(e) => {
                eprintln!("sweep --coordinate: bad --faults: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => FaultPlan::from_env_lossy(),
    };
    if let Some(dir) = get("--store") {
        match BinaryStore::open(dir) {
            Ok(store) => config.store = Some(Arc::new(store)),
            Err(e) => {
                eprintln!("sweep --coordinate: cannot open --store {dir}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    // The coordinator always arms observability: per-client accounting gauges are part of
    // its contract, not an opt-in.
    local_obs::enable();
    local_obs::set_track_name("coordinator");
    if config.fleet.is_empty() {
        eprintln!(
            "sweep --coordinate: empty fleet (no --connect); every job will be rescued \
             in-process"
        );
    }
    match coordinate_forever(addr, config) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("sweep --coordinate: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Why one JSON cache entry was not imported into the binary store.
enum ImportSkip {
    /// The entry's code version is not this binary's [`CODE_VERSION`]; its result is not
    /// reproducible by this code and must not be served.
    Version,
    /// The entry's recorded execution seed disagrees with the seed its cell derives under
    /// the requested base seed — it belongs to a different `--base-seed`.
    Seed,
    /// Not a parseable cache entry at all (torn file, foreign JSON, unknown label).
    Unreadable,
    /// The store already holds this cell (an earlier import or sweep wrote it).
    Present,
}

/// Imports one JSON cache entry into the store. `Err` is fatal (the store write failed);
/// `Ok(Err(skip))` records why the entry was passed over.
fn import_entry(
    store: &BinaryStore,
    path: &std::path::Path,
    base_seed: u64,
) -> Result<Result<(), ImportSkip>, String> {
    let unreadable = |_| ImportSkip::Unreadable;
    let parse = || -> Result<(Scenario, CellResult), ImportSkip> {
        let text = std::fs::read_to_string(path).map_err(|_| ImportSkip::Unreadable)?;
        let value = serde_json::from_str(&text).map_err(unreadable)?;
        if value.get("code_version").and_then(Value::as_str) != Some(CODE_VERSION) {
            return Err(ImportSkip::Version);
        }
        let label = value.get("label").and_then(Value::as_str).ok_or(ImportSkip::Unreadable)?;
        // A label spells the full cell identity: `problem/family/nSIZE/rREPLICATE`.
        let parts: Vec<&str> = label.split('/').collect();
        let [problem, family, n, replicate] = parts[..] else {
            return Err(ImportSkip::Unreadable);
        };
        let cell = Scenario {
            problem: parse_workload(problem).ok_or(ImportSkip::Unreadable)?,
            family: parse_family(family).ok_or(ImportSkip::Unreadable)?,
            n: n.strip_prefix('n').and_then(|v| v.parse().ok()).ok_or(ImportSkip::Unreadable)?,
            replicate: replicate
                .strip_prefix('r')
                .and_then(|v| v.parse().ok())
                .ok_or(ImportSkip::Unreadable)?,
        };
        let result = value
            .get("cell")
            .and_then(|cell| CellResult::from_value(cell).ok())
            .ok_or(ImportSkip::Unreadable)?;
        Ok((cell, result))
    };
    let (cell, result) = match parse() {
        Ok(parsed) => parsed,
        Err(skip) => return Ok(Err(skip)),
    };
    if cell.cell_seed(base_seed) != result.seed {
        return Ok(Err(ImportSkip::Seed));
    }
    if store.load_columns(&cell, base_seed).is_some() {
        return Ok(Err(ImportSkip::Present));
    }
    ResultStore::store(store, &cell, base_seed, &result)
        .map_err(|e| format!("cannot store {}: {e}", cell.label()))?;
    Ok(Ok(()))
}

/// `sweep store import CACHE_DIR --store DIR [--base-seed S]`: converts a legacy JSON
/// cache into the segmented binary store, entry by entry, verifying each entry's code
/// version and derived seed so a foreign or stale entry can never be served later.
fn store_import(cache_dir: &str, store_dir: &str, base_seed: u64) -> Result<(), String> {
    let store =
        BinaryStore::open(store_dir).map_err(|e| format!("cannot open store {store_dir}: {e}"))?;
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(cache_dir)
        .map_err(|e| format!("cannot read cache {cache_dir}: {e}"))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|path| path.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    let (mut imported, mut version, mut seed, mut unreadable, mut present) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    for path in &paths {
        match import_entry(&store, path, base_seed)? {
            Ok(()) => imported += 1,
            Err(ImportSkip::Version) => version += 1,
            Err(ImportSkip::Seed) => seed += 1,
            Err(ImportSkip::Unreadable) => unreadable += 1,
            Err(ImportSkip::Present) => present += 1,
        }
    }
    let stats = store.stats();
    println!(
        "store import: {imported} cells imported into {} ({} segments, {} bytes appended); \
         skipped {version} foreign-version, {seed} seed-mismatched (base seed {base_seed}), \
         {unreadable} unreadable, {present} already present",
        store.dir().display(),
        stats.segments,
        stats.bytes_appended
    );
    Ok(())
}

/// A deterministic synthetic result for `sweep store bench` — realistic field shapes
/// without running any algorithm.
fn synthetic_result(cell: &Scenario, seed: u64) -> CellResult {
    let r = cell.replicate;
    let uniform_rounds = 40 + r % 17;
    let nonuniform_rounds = 20 + r % 7;
    CellResult {
        problem: cell.problem.name().to_string(),
        family: cell.family.name().to_string(),
        requested_n: cell.n,
        n: cell.n,
        edges: cell.n * 3,
        replicate: r,
        seed,
        uniform_rounds,
        uniform_messages: uniform_rounds * cell.n as u64,
        nonuniform_rounds,
        nonuniform_messages: nonuniform_rounds * cell.n as u64,
        overhead_ratio: uniform_rounds as f64 / nonuniform_rounds.max(1) as f64,
        subiterations: 3,
        solved: true,
        valid: true,
        wall_micros: 100 + r % 900,
        attempt_micros: 80 + r % 700,
        prune_micros: 10 + r % 90,
        instance_micros: 5,
    }
}

/// `sweep store bench [--cells N] [--dir DIR] [--json PATH]`: measures binary-store
/// append / reopen / columnar-scan / row-scan throughput against the JSON cache on the
/// same synthetic grid, and optionally writes the numbers as a JSON benchmark artifact.
fn store_bench(cells: usize, dir: &str, json: Option<&str>) -> Result<(), String> {
    use std::time::Instant;
    let base = std::path::PathBuf::from(dir);
    let store_dir = base.join("bench-store");
    let cache_dir = base.join("bench-cache");
    let _ = std::fs::remove_dir_all(&store_dir);
    let _ = std::fs::remove_dir_all(&cache_dir);
    // One synthetic grid: replicate is the only varying axis, so cell identities (and
    // store keys) are unique while staying cheap to generate at 10^5+ scale.
    let scenarios: Vec<Scenario> = (0..cells)
        .map(|r| Scenario {
            problem: parse_workload("mis").expect("mis is registered"),
            family: parse_family("sparse-gnp").expect("sparse-gnp is registered"),
            n: 64,
            replicate: r as u64,
        })
        .collect();
    let results: Vec<CellResult> =
        scenarios.iter().map(|cell| synthetic_result(cell, cell.cell_seed(0))).collect();

    let timed = |label: &str, f: &mut dyn FnMut() -> Result<(), String>| -> Result<f64, String> {
        let started = Instant::now();
        f()?;
        let secs = started.elapsed().as_secs_f64().max(1e-9);
        println!(
            "store bench: {label:<22} {:>10.3} s  ({:>12.0} cells/s)",
            secs,
            cells as f64 / secs
        );
        Ok(secs)
    };

    let cache = SweepCache::new(&cache_dir);
    let json_write = timed("json-cache write", &mut || {
        for (cell, result) in scenarios.iter().zip(&results) {
            cache.store(cell, 0, result).map_err(|e| format!("cache write failed: {e}"))?;
        }
        Ok(())
    })?;
    let json_read = timed("json-cache row scan", &mut || {
        for cell in &scenarios {
            cache.load(cell, 0).ok_or("cache read missed a written cell")?;
        }
        Ok(())
    })?;

    let store =
        BinaryStore::open(&store_dir).map_err(|e| format!("cannot open bench store: {e}"))?;
    let bin_append = timed("store append", &mut || {
        for (cell, result) in scenarios.iter().zip(&results) {
            ResultStore::store(&store, cell, 0, result)
                .map_err(|e| format!("store append failed: {e}"))?;
        }
        Ok(())
    })?;
    let segments = store.stats().segments;
    drop(store);
    let mut reopened = None;
    let bin_open = timed("store reopen (index)", &mut || {
        reopened = Some(
            BinaryStore::open(&store_dir).map_err(|e| format!("cannot reopen bench store: {e}"))?,
        );
        Ok(())
    })?;
    let store = reopened.expect("reopen populated the store");
    let bin_columns = timed("store columnar scan", &mut || {
        for cell in &scenarios {
            store.load_columns(cell, 0).ok_or("columnar scan missed a written cell")?;
        }
        Ok(())
    })?;
    let bin_rows = timed("store row scan", &mut || {
        for cell in &scenarios {
            ResultStore::load(&store, cell, 0).ok_or("row scan missed a written cell")?;
        }
        Ok(())
    })?;

    // The headline ratio: one write-everything-then-summarize pass, JSON cache over
    // binary store (columnar readback) — >1 means the store is faster end to end.
    let ratio = (json_write + json_read) / (bin_append + bin_open + bin_columns);
    println!(
        "store bench: {cells} cells in {segments} segments; index rebuild {} us; \
         json-cache/store wall ratio {ratio:.2}x",
        store.stats().index_rebuild_micros
    );
    if let Some(path) = json {
        let artifact = format!(
            "{{\n  \"cells\": {cells},\n  \"segments\": {segments},\n  \
             \"store_append_cells_per_s\": {:.0},\n  \"store_reopen_s\": {bin_open:.6},\n  \
             \"store_columnar_scan_cells_per_s\": {:.0},\n  \
             \"store_row_scan_cells_per_s\": {:.0},\n  \
             \"json_cache_write_cells_per_s\": {:.0},\n  \
             \"json_cache_row_scan_cells_per_s\": {:.0},\n  \
             \"json_cache_over_store_wall_ratio\": {ratio:.3}\n}}\n",
            cells as f64 / bin_append,
            cells as f64 / bin_columns,
            cells as f64 / bin_rows,
            cells as f64 / json_write,
            cells as f64 / json_read,
        );
        std::fs::write(path, artifact).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote benchmark JSON to {path}");
    }
    let _ = std::fs::remove_dir_all(&store_dir);
    let _ = std::fs::remove_dir_all(&cache_dir);
    Ok(())
}

/// The `sweep store …` subcommand family: `import` migrates a JSON cache into the binary
/// store, `bench` measures the store against the JSON cache on a synthetic grid.
fn store_main(raw: &[String]) -> ExitCode {
    let get = |flag: &str| raw.iter().position(|a| a == flag).and_then(|i| raw.get(i + 1));
    let outcome = match raw.first().map(String::as_str) {
        Some("import") => {
            let Some(cache_dir) = raw.get(1).filter(|a| !a.starts_with("--")) else {
                eprintln!(
                    "sweep store import: missing cache directory (usage: sweep store import \
                     CACHE_DIR --store DIR [--base-seed S])"
                );
                return ExitCode::FAILURE;
            };
            let Some(store_dir) = get("--store") else {
                eprintln!("sweep store import: missing --store DIR");
                return ExitCode::FAILURE;
            };
            let base_seed = match get("--base-seed").map(|v| v.parse::<u64>()) {
                Some(Ok(seed)) => seed,
                Some(Err(e)) => {
                    eprintln!("sweep store import: bad --base-seed: {e}");
                    return ExitCode::FAILURE;
                }
                None => 0,
            };
            store_import(cache_dir, store_dir, base_seed)
        }
        Some("bench") => {
            let cells = match get("--cells").map(|v| v.parse::<usize>()) {
                Some(Ok(cells)) => cells.max(1),
                Some(Err(e)) => {
                    eprintln!("sweep store bench: bad --cells: {e}");
                    return ExitCode::FAILURE;
                }
                None => 10_000,
            };
            let dir = get("--dir").map(String::as_str).unwrap_or("target/store-bench");
            store_bench(cells, dir, get("--json").map(String::as_str))
        }
        _ => {
            eprintln!(
                "sweep store: expected a subcommand — import CACHE_DIR --store DIR \
                 [--base-seed S], or bench [--cells N] [--dir DIR] [--json PATH]"
            );
            return ExitCode::FAILURE;
        }
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("sweep store: {message}");
            ExitCode::FAILURE
        }
    }
}

/// `--dry-run`: predict, order, print — execute nothing. The printed plan mirrors a real
/// sweep exactly: stored cells are served from disk (and calibrate the model), so only the
/// *missed* cells appear in the LPT execution order.
fn dry_run(grid: &ScenarioGrid, store: Option<&dyn ResultStore>) -> ExitCode {
    let cells = grid.cells();
    let mut model = CostModel::new();
    let mut missed = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        match store.and_then(|store| store.load(cell, grid.base_seed)) {
            Some(hit) => model.observe(&hit),
            None => missed.push(i),
        }
    }
    let cached = cells.len() - missed.len();
    let order = model.order_slowest_first(&cells, missed);
    println!(
        "dry-run: {} cells, {} served from cache (they calibrate the cost model), {} to \
         execute in LPT (slowest-first) order [{}]:",
        cells.len(),
        cached,
        order.len(),
        local_simd::dispatch_report()
    );
    println!("{:>5} {:>16}  cell", "rank", "predicted-us");
    let mut total = 0.0;
    for (rank, &i) in order.iter().enumerate() {
        let predicted = model.predict(&cells[i]);
        total += predicted;
        if local_obs::is_enabled() {
            // The predictions flow through the same metric registry as the observed
            // timings, so a dry-run trace joins against a real sweep's trace on
            // (metric, cell label) for predicted-vs-observed analysis.
            local_obs::record(
                local_obs::metrics::PREDICTED_MICROS,
                local_obs::label(&cells[i].label()),
                predicted as u64,
            );
        }
        println!("{:>5} {:>16.0}  {}", rank + 1, predicted, cells[i].label());
    }
    println!("total predicted work: {total:.0} us-equivalents (nothing was executed)");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    // The worker, serve, and coordinate modes are not regular flags: they must not drag
    // the full sweep arg surface into the protocol, so they are dispatched before normal
    // parsing. A worker honours only `--threads N` and `--telemetry MS` (the parent's
    // heartbeat request); a daemon honours `--serve ADDR`, `--threads N`, and
    // `--max-concurrent-shards N` (telemetry is per-request); a coordinator honours
    // `--coordinate ADDR`, `--connect`, `--threads`, `--io-deadline-ms`,
    // `--stripes-per-peer`, and `--faults`.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("store") {
        return store_main(&raw[1..]);
    }
    if raw.iter().any(|a| a == "--worker") {
        let threads = raw
            .iter()
            .position(|a| a == "--threads")
            .and_then(|i| raw.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(1);
        let telemetry_ms = raw
            .iter()
            .position(|a| a == "--telemetry")
            .and_then(|i| raw.get(i + 1))
            .and_then(|v| v.parse().ok());
        return worker_main(threads, telemetry_ms);
    }
    if let Some(i) = raw.iter().position(|a| a == "--serve") {
        let Some(addr) = raw.get(i + 1).filter(|a| !a.starts_with("--")) else {
            eprintln!("sweep --serve: missing bind address (try --serve 127.0.0.1:0)");
            return ExitCode::FAILURE;
        };
        let threads = raw
            .iter()
            .position(|a| a == "--threads")
            .and_then(|j| raw.get(j + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let max_concurrent = raw
            .iter()
            .position(|a| a == "--max-concurrent-shards")
            .and_then(|j| raw.get(j + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        return serve_main(addr, threads, max_concurrent);
    }
    if let Some(i) = raw.iter().position(|a| a == "--coordinate") {
        let Some(addr) = raw.get(i + 1).filter(|a| !a.starts_with("--")) else {
            eprintln!("sweep --coordinate: missing bind address (try --coordinate 127.0.0.1:0)");
            return ExitCode::FAILURE;
        };
        return coordinate_main(&raw, addr);
    }

    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("sweep: {message}");
            return ExitCode::FAILURE;
        }
    };

    // Tracing flags arm the global recorder before anything runs; it stays a no-op
    // otherwise, so the deterministic outputs of an untraced sweep are untouched. The
    // resilience machinery (network backend, fault injection) also arms it: every retry,
    // re-dispatch, rescue, and injected fault must land on an observable counter.
    let fault_plan = match &args.faults {
        Some(plan) => plan.clone(),
        None => FaultPlan::from_env_lossy(),
    };
    if args.trace.is_some()
        || args.trace_events.is_some()
        || args.backend == BackendKind::Network
        || args.backend == BackendKind::Coordinator
        || !fault_plan.is_empty()
    {
        local_obs::enable();
        local_obs::set_track_name("coordinator");
    }

    let grid = ScenarioGrid::new()
        .problems(args.problems)
        .families(args.families)
        .sizes(args.sizes)
        .replicates(args.seeds)
        .base_seed(args.base_seed);
    // One result store behind the trait: the segmented binary store when --store is
    // given, the legacy one-file-per-cell JSON cache otherwise. The concrete binary
    // handle is kept alongside for its stats counters (summary line, --progress HUD).
    let binary: Option<Arc<BinaryStore>> = match &args.store_dir {
        Some(dir) => match BinaryStore::open(dir) {
            Ok(store) => Some(Arc::new(store)),
            Err(e) => {
                eprintln!("sweep: cannot open --store {dir}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let store: Option<Arc<dyn ResultStore>> = match &binary {
        Some(binary) => Some(Arc::clone(binary) as Arc<dyn ResultStore>),
        None => args
            .cache_dir
            .as_ref()
            .map(|dir| Arc::new(SweepCache::new(dir)) as Arc<dyn ResultStore>),
    };

    if args.dry_run {
        let code = dry_run(&grid, store.as_deref());
        if let Err(message) = write_trace_outputs(&args.trace, &args.trace_events) {
            eprintln!("sweep: {message}");
            return ExitCode::FAILURE;
        }
        return code;
    }

    let backend_label = match args.backend {
        BackendKind::InProcess => format!(
            "{} threads in-process",
            local_engine::pool::resolve_worker_count(args.threads.unwrap_or(0))
        ),
        BackendKind::Process => format!(
            "{} worker processes × {} threads",
            local_engine::pool::resolve_worker_count(args.workers),
            local_engine::pool::resolve_worker_count(args.threads.unwrap_or(1))
        ),
        BackendKind::Network => {
            format!("{} network peers ({})", args.connect.len(), args.connect.join(", "))
        }
        BackendKind::Coordinator => format!(
            "coordinator at {} (client {})",
            args.submit.as_deref().unwrap_or("?"),
            args.client.as_deref().unwrap_or("anonymous")
        ),
    };
    eprintln!(
        "sweep: {} cells ({} problems × {} families × {} sizes × {} seeds), {}, {}",
        grid.cell_count(),
        grid.problems.len(),
        grid.families.len(),
        grid.sizes.len(),
        grid.replicates,
        backend_label,
        local_simd::dispatch_report()
    );

    let meter = args.progress.then(ProgressMeter::new);
    if let (Some(meter), Some(binary)) = (&meter, &binary) {
        let handle = Arc::clone(binary);
        meter.set_store_status(Arc::new(move || {
            let stats = handle.stats();
            format!(
                "store: {} seg, {} rec, {} hit",
                stats.segments,
                stats.records_indexed + stats.records_appended,
                handle.hits()
            )
        }));
    }
    let mut sweep = Sweep::over(&grid);
    sweep = match args.backend {
        BackendKind::InProcess => sweep.backend(InProcessBackend::new(args.threads.unwrap_or(0))),
        BackendKind::Process => {
            let mut backend = ProcessBackend::new(args.workers)
                .worker_threads(args.threads.unwrap_or(1))
                .faults(fault_plan.clone());
            if let Some(ms) = args.io_deadline_ms {
                backend = backend.io_deadline_ms(ms);
            }
            if let Some(meter) = &meter {
                backend = backend.progress(meter.clone());
            }
            sweep.backend(backend)
        }
        BackendKind::Network => {
            let mut backend = NetworkBackend::new(args.connect.clone())
                .rescue_threads(args.threads.unwrap_or(0))
                .faults(fault_plan.clone());
            if let Some(ms) = args.io_deadline_ms {
                backend = backend.io_deadline_ms(ms);
            }
            if let Some(meter) = &meter {
                backend = backend.progress(meter.clone());
            }
            sweep.backend(backend)
        }
        BackendKind::Coordinator => {
            let mut backend =
                CoordinatorBackend::new(args.submit.clone().expect("--submit checked at parse"))
                    .rescue_threads(args.threads.unwrap_or(0))
                    .faults(fault_plan.clone());
            if let Some(name) = &args.client {
                backend = backend.client(name.clone());
            }
            if let Some(ms) = args.io_deadline_ms {
                backend = backend.io_deadline_ms(ms);
            }
            if let Some(meter) = &meter {
                backend = backend.progress(meter.clone());
            }
            sweep.backend(backend)
        }
    };
    if let Some(meter) = &meter {
        sweep = sweep.progress(meter.clone());
    }
    if let Some(store) = store.clone() {
        sweep = sweep.store(store);
    }
    if args.stream {
        sweep = sweep.streaming();
    }
    let report = sweep.run();
    let report = if args.deterministic { report.deterministic_view() } else { report };

    println!("{}", report.render_summaries());
    if args.profile {
        // In streaming mode the report holds no cells; read them back from the cache one at
        // a time (they were just written) so the phase summary is printed either way.
        let mut attempt = 0u64;
        let mut prune = 0u64;
        // Instance generation is shared across the cells of one instance (identified within a
        // sweep by family × size × replicate); count each distinct instance exactly once.
        let mut instances = std::collections::BTreeMap::new();
        let mut fold = |c: &local_engine::CellResult| {
            attempt += c.attempt_micros;
            prune += c.prune_micros;
            instances.insert((c.family.clone(), c.requested_n, c.replicate), c.instance_micros);
        };
        if args.stream {
            for cell in grid.cells() {
                if let Some(c) = store.as_ref().and_then(|store| store.load(&cell, grid.base_seed))
                {
                    fold(&c);
                }
            }
        } else {
            report.cells.iter().for_each(&mut fold);
        }
        let instance_gen: u64 = instances.values().sum();
        println!(
            "phases: attempt {:.1} ms, pruning {:.1} ms, instance-gen {:.1} ms",
            attempt as f64 / 1000.0,
            prune as f64 / 1000.0,
            instance_gen as f64 / 1000.0
        );
    }
    let invalid = report.cells.iter().filter(|c| !c.valid).count();
    println!(
        "{} cells ({} from cache), {} distinct instances, {:.1} ms wall, {} invalid",
        report.cell_count,
        report.cache_hits,
        report.distinct_instances,
        report.total_wall_micros as f64 / 1000.0,
        invalid
    );
    if let Some(binary) = &binary {
        // The store's on-disk shape and this run's traffic. A fully-columnar streamed
        // re-sweep prints `rows materialized 0` — soak scripts assert on it.
        let stats = binary.stats();
        println!(
            "store: {} segments, {} records ({} appended, {} bytes written), index rebuild \
             {} us, {} hits, {} misses, rows materialized {}",
            stats.segments,
            stats.records_indexed + stats.records_appended,
            stats.records_appended,
            stats.bytes_appended,
            stats.index_rebuild_micros,
            binary.hits(),
            binary.misses(),
            binary.rows_materialized()
        );
    }
    if args.backend == BackendKind::Network
        || args.backend == BackendKind::Coordinator
        || !fault_plan.is_empty()
    {
        // The resilience counters: how the sweep degraded and recovered. Printed whenever
        // the machinery that can increment them was in play, so soak scripts can assert on
        // the line's presence and values.
        println!(
            "resilience: connects {}, retries {}, redispatched {}, rescued {}, \
             faults-injected {}",
            local_obs::counter_value(local_obs::metrics::NET_CONNECTS),
            local_obs::counter_value(local_obs::metrics::NET_RETRIES),
            local_obs::counter_value(local_obs::metrics::REDISPATCHED_CELLS),
            local_obs::counter_value(local_obs::metrics::RESCUED_CELLS),
            local_obs::counter_value(local_obs::metrics::FAULTS_INJECTED),
        );
    }
    let peak_kb = local_obs::sample_peak_rss_kb();
    if peak_kb > 0 {
        let arena = local_obs::counter_value(local_obs::metrics::ARENA_ARCS);
        if arena > 0 {
            println!(
                "peak RSS {:.1} MiB, arena high-water {arena} live message arcs",
                peak_kb as f64 / 1024.0
            );
        } else {
            println!("peak RSS {:.1} MiB", peak_kb as f64 / 1024.0);
        }
    }

    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("sweep: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote JSON report to {path}");
    }
    if let Some(path) = &args.csv {
        let csv = if args.stream {
            // Streamed cells live in the result store only: rebuild the rows in canonical
            // order.
            match streamed_csv(
                &grid,
                store.as_deref().expect("--stream implies a store"),
                args.profile,
                args.deterministic,
            ) {
                Ok(csv) => csv,
                Err(message) => {
                    eprintln!("sweep: {message}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            report.to_csv_with(args.profile)
        };
        if let Err(e) = std::fs::write(path, csv) {
            eprintln!("sweep: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote per-cell CSV to {path}");
    }
    if let Some(path) = &args.folded {
        // With the recorder armed, folded stacks come from the actual recorded spans
        // (per-phase, per-label, including worker-imported tracks) rather than being
        // reconstructed from per-cell timing fields.
        let folded = if local_obs::is_enabled() {
            local_obs::snapshot().to_folded()
        } else if args.stream {
            match streamed_folded(&grid, store.as_deref().expect("--stream implies a store")) {
                Ok(folded) => folded,
                Err(message) => {
                    eprintln!("sweep: {message}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            report.to_folded()
        };
        if let Err(e) = std::fs::write(path, folded) {
            eprintln!("sweep: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote folded phase stacks to {path}");
    }
    if let Err(message) = write_trace_outputs(&args.trace, &args.trace_events) {
        eprintln!("sweep: {message}");
        return ExitCode::FAILURE;
    }
    if invalid > 0 {
        eprintln!("sweep: {invalid} cells failed validation");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Writes the `--trace` / `--trace-events` outputs from one snapshot of the global
/// recorder. A no-op when the recorder was never armed.
fn write_trace_outputs(
    trace: &Option<String>,
    trace_events: &Option<String>,
) -> Result<(), String> {
    if !local_obs::is_enabled() {
        return Ok(());
    }
    let snapshot = local_obs::snapshot();
    if let Some(path) = trace {
        std::fs::write(path, snapshot.to_chrome_trace())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote Chrome trace (Perfetto-loadable) to {path}");
    }
    if let Some(path) = trace_events {
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot open {path}: {e}"))?;
        file.write_all(snapshot.to_ndjson().as_bytes())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("appended {} trace events as NDJSON to {path}", snapshot.event_count());
    }
    Ok(())
}

/// Reads every cell of `grid` back from the result store (a streamed sweep just wrote
/// them) and renders CSV rows in canonical order, never holding more than one cell.
fn streamed_csv(
    grid: &ScenarioGrid,
    store: &dyn ResultStore,
    profile: bool,
    deterministic: bool,
) -> Result<String, String> {
    let mut out = local_engine::CellResult::csv_header(profile);
    out.push('\n');
    for cell in grid.cells() {
        let mut result = store.load(&cell, grid.base_seed).ok_or_else(|| {
            format!("{} is missing streamed cell {}", store.describe(), cell.label())
        })?;
        if deterministic {
            result = result.deterministic_view();
        }
        out.push_str(&result.csv_row(profile));
        out.push('\n');
    }
    Ok(out)
}

/// Folded stacks for a streamed sweep, reading cells back from the store one at a time.
fn streamed_folded(grid: &ScenarioGrid, store: &dyn ResultStore) -> Result<String, String> {
    let mut missing = None;
    let folded = local_engine::report::folded_stacks(grid.cells().into_iter().filter_map(|cell| {
        let loaded = store.load(&cell, grid.base_seed);
        if loaded.is_none() && missing.is_none() {
            missing = Some(cell.label());
        }
        loaded
    }));
    match missing {
        Some(label) => Err(format!("{} is missing streamed cell {label}", store.describe())),
        None => Ok(folded),
    }
}

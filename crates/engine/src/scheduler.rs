//! The sharded scheduler: turns a [`ScenarioGrid`] into a [`Report`], in parallel.
//!
//! Execution happens in two parallel phases over the engine's work-stealing pool
//! ([`crate::pool`]):
//!
//! 1. **Instance generation.** The distinct [`InstanceKey`]s of the grid are realized once
//!    each and shared (an `Arc` per instance) across every algorithm that runs on them — a
//!    grid of 10 problems × 1 family × 1 size × 32 seeds generates 32 graphs, not 320.
//! 2. **Cell execution.** Every cell runs the transformed uniform algorithm *and* the
//!    non-uniform baseline at correct guesses, validates both, and produces a [`CellResult`].
//!
//! Determinism: a cell's seed is a pure function of its identity ([`Scenario::cell_seed`],
//! built on [`local_runtime::mix_seed`]) and results are collected by cell index, so a sweep
//! with `threads = 64` produces byte-identical results to `threads = 1` (wall-clock fields
//! aside).

use crate::cache::SweepCache;
use crate::cost::CostModel;
use crate::pool;
use crate::report::{CellResult, Report, SummaryAccumulator};
use crate::scenario::{ProblemKind, Scenario, ScenarioGrid};
use local_algos::checkers;
use local_algos::edge_coloring::LineGraphEdgeColoring;
use local_algos::mis::LubyMis;
use local_graphs::{GraphParams, InstanceKey};
use local_runtime::{Graph, GraphAlgorithm, Session};
use local_uniform::catalog;
use local_uniform::problem::{MatchingProblem, MisProblem, Problem, RulingSetProblem};
use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Execution settings of one sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepConfig {
    /// Worker threads (1 = fully sequential, no worker threads spawned). 0 means "use the
    /// machine's available parallelism".
    pub threads: usize,
    /// The incremental result cache: cells whose key is already present are served from
    /// disk, freshly executed cells are written back. `None` disables caching entirely.
    pub cache: Option<SweepCache>,
    /// Stream results instead of accumulating them: every executed cell goes straight to
    /// the cache and is folded into the summaries, and [`Report::cells`] stays empty — the
    /// sweep's memory footprint no longer grows with the grid. Requires `cache`.
    pub stream: bool,
}

impl SweepConfig {
    /// A configuration with the given thread count (no cache, no streaming); 0 means "use
    /// the machine's available parallelism", as documented on [`SweepConfig::threads`].
    pub fn with_threads(threads: usize) -> Self {
        SweepConfig { threads, cache: None, stream: false }
    }

    /// Attaches an incremental sweep cache.
    pub fn with_cache(mut self, cache: SweepCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Enables streaming mode (cells go to the cache, not the report).
    pub fn streaming(mut self) -> Self {
        self.stream = true;
        self
    }

    fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            pool::default_threads()
        } else {
            self.threads
        }
    }
}

/// A generated graph instance, shared across the cells that run on it.
#[derive(Debug)]
pub struct Instance {
    /// The key that generated this instance.
    pub key: InstanceKey,
    /// The graph.
    pub graph: Graph,
    /// Ground-truth global parameters (the correct guesses for non-uniform baselines).
    pub params: GraphParams,
    /// Wall-clock time it took to generate the instance, in microseconds (the "instance
    /// generation" phase of the `--profile` report).
    pub gen_micros: u64,
}

impl Instance {
    /// Realizes the instance a key names.
    pub fn generate(key: InstanceKey) -> Self {
        let started = Instant::now();
        let (graph, params) = key.realize();
        Instance { key, graph, params, gen_micros: started.elapsed().as_micros() as u64 }
    }
}

/// Runs every cell of `grid` and folds the outcomes into a [`Report`].
///
/// The pipeline is cache- and cost-aware:
///
/// 1. **Cache probe.** With a [`SweepCache`] attached, every cell's key is looked up first;
///    hits are served from disk (byte-identical to re-execution — seeds are pure functions
///    of cell identity) and also *calibrate the cost model* with their observed wall times.
/// 2. **Instance generation.** Only the distinct instances that a missed cell actually
///    needs are realized, in parallel.
/// 3. **Cost-ordered execution.** Missed cells run slowest-first under the [`CostModel`]
///    (LPT scheduling minimizes makespan over the work-stealing pool); results are
///    scattered back to canonical positions, so the report order — and with deterministic
///    cells the report *content* — is independent of both thread count and cost order.
/// 4. **Write-back / streaming.** Executed cells are stored to the cache. In streaming mode
///    they are folded into the summaries as they complete and dropped — the report carries
///    no per-cell vector and memory stays flat no matter how large the grid is.
pub fn run_grid(grid: &ScenarioGrid, cfg: &SweepConfig) -> Report {
    let started = Instant::now();
    let threads = cfg.effective_threads();
    let cells = grid.cells();

    // Phase 1: probe the incremental cache and calibrate the cost model with the hits.
    let mut cached: Vec<Option<CellResult>> = match &cfg.cache {
        Some(cache) => cells.iter().map(|cell| cache.load(cell, grid.base_seed)).collect(),
        None => vec![None; cells.len()],
    };
    let cache_hits = cached.iter().filter(|c| c.is_some()).count();
    let mut model = CostModel::new();
    for hit in cached.iter().flatten() {
        model.observe(hit);
    }

    // Phase 2: generate each distinct instance a *missed* cell needs, once, in parallel.
    let missed: Vec<usize> = (0..cells.len()).filter(|&i| cached[i].is_none()).collect();
    let keys: Vec<InstanceKey> = missed
        .iter()
        .map(|&i| cells[i].instance_key(grid.base_seed))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let instances =
        pool::run_indexed(keys.len(), threads, |i| Arc::new(Instance::generate(keys[i])));
    let instance_cache: HashMap<InstanceKey, Arc<Instance>> =
        keys.iter().copied().zip(instances).collect();

    // Phase 3: execute the missed cells slowest-first, work-stealing over the same pool.
    // Every worker owns one reusable execution session, so consecutive cells claimed by the
    // same worker (often over the same cached instance) reuse its buffers instead of
    // reallocating the runtime.
    let order = model.order_slowest_first(&cells, missed);
    let run_one = |session: &mut Session, k: usize| {
        let cell = &cells[order[k]];
        let instance = &instance_cache[&cell.instance_key(grid.base_seed)];
        let result = run_cell_in(cell, instance, grid.base_seed, session);
        if let Some(cache) = &cfg.cache {
            if let Err(e) = cache.store(cell, grid.base_seed, &result) {
                eprintln!("sweep cache: cannot store {}: {e}", cell.label());
            }
        }
        result
    };

    if cfg.stream {
        // Streaming: pre-register every group in canonical order (completion order must not
        // reorder the report), fold cells as they finish, and drop them.
        let mut accumulator = SummaryAccumulator::new();
        for cell in &cells {
            accumulator.register(&cell.problem.name(), cell.family.name());
        }
        for (i, hit) in cached.iter().enumerate() {
            if let Some(hit) = hit {
                accumulator.fold_at(i, hit);
            }
        }
        let accumulator = Mutex::new(accumulator);
        pool::run_indexed_with(order.len(), threads, Session::new, |session, k| {
            let result = run_one(session, k);
            // Folded under the cell's canonical grid index, so completion order cannot
            // perturb the summary bytes.
            accumulator.lock().expect("summary accumulator poisoned").fold_at(order[k], &result);
        });
        return Report {
            threads,
            base_seed: grid.base_seed,
            cell_count: cells.len(),
            distinct_instances: keys.len(),
            cache_hits,
            total_wall_micros: started.elapsed().as_micros() as u64,
            summaries: accumulator.into_inner().expect("summary accumulator poisoned").finish(),
            cells: Vec::new(),
        };
    }

    // Collecting mode: scatter executed cells back to their canonical positions.
    let executed = pool::run_indexed_with(order.len(), threads, Session::new, run_one);
    for (&i, result) in order.iter().zip(executed) {
        cached[i] = Some(result);
    }
    let results: Vec<CellResult> =
        cached.into_iter().map(|c| c.expect("every cell is cached or executed")).collect();

    Report {
        threads,
        base_seed: grid.base_seed,
        cell_count: results.len(),
        distinct_instances: keys.len(),
        cache_hits,
        total_wall_micros: started.elapsed().as_micros() as u64,
        summaries: crate::report::summarize(&results),
        cells: results,
    }
}

/// What one cell execution measured, before packaging into a [`CellResult`].
struct Measured {
    uniform_rounds: u64,
    uniform_messages: u64,
    nonuniform_rounds: u64,
    nonuniform_messages: u64,
    subiterations: u64,
    solved: bool,
    valid: bool,
    attempt_micros: u64,
    prune_micros: u64,
}

fn units(n: usize) -> Vec<()> {
    vec![(); n]
}

/// Executes one cell with a throwaway execution session; see [`run_cell_in`].
pub fn run_cell(cell: &Scenario, instance: &Instance, base_seed: u64) -> CellResult {
    run_cell_in(cell, instance, base_seed, &mut Session::new())
}

/// Executes one cell: the uniform algorithm and the non-uniform baseline with correct
/// guesses, both validated against the problem's ground-truth checker. The caller's
/// [`Session`] is reused across every attempt of the uniform driver (and across cells, when
/// the scheduler hands one session per worker).
pub fn run_cell_in(
    cell: &Scenario,
    instance: &Instance,
    base_seed: u64,
    session: &mut Session,
) -> CellResult {
    let started = Instant::now();
    let seed = cell.cell_seed(base_seed);
    let graph = &instance.graph;
    let params = &instance.params;
    let measured = match cell.problem {
        ProblemKind::Mis => {
            let baseline = catalog::coloring_mis_black_box();
            run_mis_cell(
                graph,
                (baseline.build)(&[params.max_degree, params.max_id]),
                seed,
                session,
                |g, s, session| {
                    catalog::uniform_coloring_mis().solve_in(g, &units(g.node_count()), s, session)
                },
            )
        }
        ProblemKind::PsMis => {
            let baseline = catalog::panconesi_srinivasan_mis_black_box();
            run_mis_cell(graph, (baseline.build)(&[params.n]), seed, session, |g, s, session| {
                catalog::uniform_ps_mis().solve_in(g, &units(g.node_count()), s, session)
            })
        }
        ProblemKind::ArboricityMis => {
            let baseline = catalog::arboricity_mis_black_box();
            let guesses = [params.degeneracy.max(1), params.n, params.max_id];
            run_mis_cell(graph, (baseline.build)(&guesses), seed, session, |g, s, session| {
                catalog::uniform_arboricity_mis().solve_in(g, &units(g.node_count()), s, session)
            })
        }
        ProblemKind::Corollary1Mis => {
            // Baseline: the Δ-based black box (the combinator's claim is to match the best
            // component, which this box's correct-guess run approximates from above).
            let baseline = catalog::coloring_mis_black_box();
            run_mis_cell(
                graph,
                (baseline.build)(&[params.max_degree, params.max_id]),
                seed,
                session,
                |g, s, session| {
                    catalog::corollary1_mis().solve_in(g, &units(g.node_count()), s, session)
                },
            )
        }
        ProblemKind::LubyMis => {
            // Already uniform: the baseline is the algorithm itself (ratio 1 by definition).
            let run = LubyMis.execute(graph, &units(graph.node_count()), None, seed);
            let valid =
                MisProblem.validate(graph, &units(graph.node_count()), &run.outputs).is_ok();
            Measured {
                uniform_rounds: run.rounds,
                uniform_messages: run.messages,
                nonuniform_rounds: run.rounds,
                nonuniform_messages: run.messages,
                subiterations: 0,
                solved: run.completed,
                valid,
                attempt_micros: 0,
                prune_micros: 0,
            }
        }
        ProblemKind::Matching => {
            let baseline = catalog::matching_black_box();
            run_matching_cell(
                graph,
                (baseline.build)(&[params.max_degree, params.max_id]),
                seed,
                session,
                |g, s, session| {
                    catalog::uniform_matching().solve_in(g, &units(g.node_count()), s, session)
                },
            )
        }
        ProblemKind::Log4Matching => {
            let baseline = catalog::synthetic_log4_matching_black_box();
            run_matching_cell(
                graph,
                (baseline.build)(&[params.n]),
                seed,
                session,
                |g, s, session| {
                    catalog::uniform_log4_matching().solve_in(g, &units(g.node_count()), s, session)
                },
            )
        }
        ProblemKind::RulingSet(beta) => {
            let baseline = catalog::ruling_set_black_box();
            let nu = (baseline.build)(&[params.n]).execute(
                graph,
                &units(graph.node_count()),
                None,
                seed,
            );
            let uni = catalog::uniform_ruling_set(beta as usize).solve_in(
                graph,
                &units(graph.node_count()),
                seed,
                session,
            );
            // The Monte-Carlo baseline is allowed to fail; the Las Vegas claim is on the
            // uniform output only.
            let valid = RulingSetProblem::two(beta as usize)
                .validate(graph, &units(graph.node_count()), &uni.outputs)
                .is_ok();
            Measured {
                uniform_rounds: uni.rounds,
                uniform_messages: uni.messages,
                nonuniform_rounds: nu.rounds,
                nonuniform_messages: nu.messages,
                subiterations: uni.subiterations,
                solved: uni.solved,
                valid,
                attempt_micros: uni.attempt_micros,
                prune_micros: uni.prune_micros,
            }
        }
        ProblemKind::LambdaColoring(lambda) => {
            let baseline = catalog::lambda_coloring_box(lambda);
            let nu = (baseline.build)(params.max_degree, params.max_id).execute(
                graph,
                &units(graph.node_count()),
                None,
                seed,
            );
            let transformer = catalog::uniform_lambda_coloring(lambda);
            let uni = transformer.solve_in(graph, seed, session);
            let nu_valid = checkers::check_coloring_with_palette(
                graph,
                &nu.outputs,
                (baseline.palette)(params.max_degree),
            )
            .is_ok();
            let uni_valid = checkers::check_coloring(graph, &uni.colors).is_ok()
                && (checkers::palette_size(&uni.colors) as u64)
                    <= transformer.palette_bound(params.max_degree);
            Measured {
                uniform_rounds: uni.rounds,
                uniform_messages: uni.messages,
                nonuniform_rounds: nu.rounds,
                nonuniform_messages: nu.messages,
                subiterations: 0,
                solved: uni.solved,
                valid: nu_valid && uni_valid,
                attempt_micros: uni.attempt_micros,
                prune_micros: uni.prune_micros,
            }
        }
        ProblemKind::EdgeColoring => run_edge_coloring_cell(graph, params, seed, session),
    };

    CellResult {
        problem: cell.problem.name(),
        family: cell.family.name().to_string(),
        requested_n: cell.n,
        n: graph.node_count(),
        edges: graph.edge_count(),
        replicate: cell.replicate,
        seed,
        uniform_rounds: measured.uniform_rounds,
        uniform_messages: measured.uniform_messages,
        nonuniform_rounds: measured.nonuniform_rounds,
        nonuniform_messages: measured.nonuniform_messages,
        overhead_ratio: measured.uniform_rounds as f64 / measured.nonuniform_rounds.max(1) as f64,
        subiterations: measured.subiterations,
        solved: measured.solved,
        valid: measured.valid,
        wall_micros: started.elapsed().as_micros() as u64,
        attempt_micros: measured.attempt_micros,
        prune_micros: measured.prune_micros,
        instance_micros: instance.gen_micros,
    }
}

/// Shared shape of the transformed cells: run the boxed non-uniform baseline at correct
/// guesses and the uniform solver, validate both against `problem`, and package the
/// measurements.
fn run_transformed_cell<P: Problem<Input = ()>>(
    problem: &P,
    graph: &Graph,
    baseline: local_runtime::DynAlgorithm<(), P::Output>,
    seed: u64,
    session: &mut Session,
    uniform: impl Fn(&Graph, u64, &mut Session) -> local_uniform::UniformRun<P::Output>,
) -> Measured {
    let nu = baseline.execute(graph, &units(graph.node_count()), None, seed);
    let uni = uniform(graph, seed, session);
    let valid = problem.validate(graph, &units(graph.node_count()), &nu.outputs).is_ok()
        && problem.validate(graph, &units(graph.node_count()), &uni.outputs).is_ok();
    Measured {
        uniform_rounds: uni.rounds,
        uniform_messages: uni.messages,
        nonuniform_rounds: nu.rounds,
        nonuniform_messages: nu.messages,
        subiterations: uni.subiterations,
        solved: uni.solved,
        valid,
        attempt_micros: uni.attempt_micros,
        prune_micros: uni.prune_micros,
    }
}

/// [`run_transformed_cell`] specialised to the MIS validator.
fn run_mis_cell(
    graph: &Graph,
    baseline: local_runtime::DynAlgorithm<(), bool>,
    seed: u64,
    session: &mut Session,
    uniform: impl Fn(&Graph, u64, &mut Session) -> local_uniform::UniformRun<bool>,
) -> Measured {
    run_transformed_cell(&MisProblem, graph, baseline, seed, session, uniform)
}

/// [`run_transformed_cell`] specialised to the maximal-matching validator.
fn run_matching_cell(
    graph: &Graph,
    baseline: local_runtime::DynAlgorithm<(), Option<local_runtime::NodeId>>,
    seed: u64,
    session: &mut Session,
    uniform: impl Fn(
        &Graph,
        u64,
        &mut Session,
    ) -> local_uniform::UniformRun<Option<local_runtime::NodeId>>,
) -> Measured {
    run_transformed_cell(&MatchingProblem, graph, baseline, seed, session, uniform)
}

/// Edge colouring: the non-uniform line-graph baseline versus Theorem 5 on the line graph
/// (a vertex colouring of `L(G)` is an edge colouring of `G`; +1 round to exchange the
/// chosen colours over the edges).
fn run_edge_coloring_cell(
    graph: &Graph,
    params: &GraphParams,
    seed: u64,
    session: &mut Session,
) -> Measured {
    let baseline =
        LineGraphEdgeColoring { delta_guess: params.max_degree, id_bound_guess: params.max_id };
    let nu = baseline.execute(graph, &units(graph.node_count()), None, seed);
    let nu_valid = checkers::check_edge_coloring(graph, &nu.outputs).is_ok();

    let (lg, edges) = graph.line_graph();
    let transformer = catalog::uniform_lambda_coloring(1);
    let uni = transformer.solve_in(&lg, seed, session);
    let mut edge_color = HashMap::new();
    for (i, &(u, v)) in edges.iter().enumerate() {
        edge_color.insert((u.min(v), u.max(v)), uni.colors[i]);
    }
    let port_colors: Vec<Vec<u64>> = (0..graph.node_count())
        .map(|v| graph.neighbors(v).iter().map(|&w| edge_color[&(v.min(w), v.max(w))]).collect())
        .collect();
    let uni_valid = checkers::check_edge_coloring(graph, &port_colors).is_ok();

    Measured {
        uniform_rounds: uni.rounds + 1,
        uniform_messages: uni.messages,
        nonuniform_rounds: nu.rounds,
        nonuniform_messages: nu.messages,
        subiterations: 0,
        solved: uni.solved,
        valid: nu_valid && uni_valid,
        attempt_micros: uni.attempt_micros,
        prune_micros: uni.prune_micros,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_graphs::Family;

    #[test]
    fn every_problem_kind_runs_one_valid_cell() {
        for problem in ProblemKind::ALL {
            let family = match problem {
                ProblemKind::ArboricityMis => Family::Forest3,
                ProblemKind::PsMis => Family::DenseGnp,
                ProblemKind::EdgeColoring => Family::Regular6,
                ProblemKind::RulingSet(_) => Family::UnitDisk,
                _ => Family::SparseGnp,
            };
            let cell = Scenario { problem, family, n: 48, replicate: 0 };
            let instance = Instance::generate(cell.instance_key(1));
            let result = run_cell(&cell, &instance, 1);
            assert!(result.valid, "{} produced an invalid cell", cell.label());
            assert!(result.solved, "{} did not solve", cell.label());
            assert!(result.uniform_rounds > 0 || problem == ProblemKind::LubyMis);
        }
    }

    #[test]
    fn grid_run_counts_cells_and_instances() {
        let grid = ScenarioGrid::new()
            .problems([ProblemKind::Mis, ProblemKind::Matching])
            .families([Family::Grid])
            .sizes([36usize, 64])
            .replicates(2);
        let report = run_grid(&grid, &SweepConfig::with_threads(2));
        assert_eq!(report.cell_count, 8);
        // Two problems share each (family, n, replicate) instance.
        assert_eq!(report.distinct_instances, 4);
        assert_eq!(report.summaries.len(), 2);
        assert!(report.cells.iter().all(|c| c.valid && c.solved));
    }

    #[test]
    fn instance_cache_shares_graphs_across_problems() {
        let a =
            Scenario { problem: ProblemKind::Mis, family: Family::SparseGnp, n: 50, replicate: 1 };
        let b = Scenario { problem: ProblemKind::RulingSet(2), ..a };
        let ia = Instance::generate(a.instance_key(3));
        let ib = Instance::generate(b.instance_key(3));
        assert_eq!(ia.graph, ib.graph);
    }
}

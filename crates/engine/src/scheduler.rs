//! The scheduler: turns a [`ScenarioGrid`] into a [`Report`] by driving an abstract
//! execution backend.
//!
//! The [`Sweep`] builder owns everything *around* execution — the cache probe, cost-model
//! calibration and LPT ordering, streaming aggregation, canonical report order — and hands
//! the actual running of cells to an [`ExecBackend`] as one cost-ordered [`CellShard`]:
//! [`InProcessBackend`] shards it over this process's work-stealing pool
//! ([`crate::pool`]), [`crate::backend::ProcessBackend`] fans stripes out to `sweep
//! --worker` subprocesses. Because those concerns compose *outside* the backend, the cache,
//! streaming mode, and cost ordering work identically no matter what executes the cells.
//!
//! Determinism: a cell's seed is a pure function of its identity ([`Scenario::cell_seed`],
//! built on [`local_runtime::mix_seed`]) and backends emit results keyed by shard index, so
//! a sweep with `threads = 64` — or two worker processes — produces byte-identical results
//! to `threads = 1` (wall-clock fields aside).

use crate::backend::{CellShard, ExecBackend, InProcessBackend};
use crate::cache::SweepCache;
use crate::cost::CostModel;
use crate::progress::ProgressMeter;
use crate::report::{CellResult, Report, SummaryAccumulator};
use crate::scenario::{Scenario, ScenarioGrid};
use crate::store::ResultStore;
use local_graphs::{GraphParams, InstanceKey};
use local_obs::metrics as obs_metrics;
use local_runtime::{Graph, Session};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Execution settings of one sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepConfig {
    /// Worker threads (1 = fully sequential, no worker threads spawned). 0 means "use the
    /// machine's available parallelism".
    pub threads: usize,
    /// The incremental result store: cells whose key is already present are served from
    /// disk, freshly executed cells are written back. Either persistence backend fits —
    /// the legacy JSON [`SweepCache`] or the segmented [`crate::store::BinaryStore`].
    /// `None` disables result persistence entirely.
    pub store: Option<Arc<dyn ResultStore>>,
    /// Stream results instead of accumulating them: every executed cell goes straight to
    /// the store and is folded into the summaries, and [`Report::cells`] stays empty — the
    /// sweep's memory footprint no longer grows with the grid. Requires `store`.
    pub stream: bool,
}

impl SweepConfig {
    /// A configuration with the given thread count (no store, no streaming); 0 means "use
    /// the machine's available parallelism", as documented on [`SweepConfig::threads`].
    pub fn with_threads(threads: usize) -> Self {
        SweepConfig { threads, store: None, stream: false }
    }

    /// Attaches the legacy JSON sweep cache as the result store.
    pub fn with_cache(self, cache: SweepCache) -> Self {
        self.with_store(Arc::new(cache))
    }

    /// Attaches a result store.
    pub fn with_store(mut self, store: Arc<dyn ResultStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Enables streaming mode (cells go to the store, not the report).
    pub fn streaming(mut self) -> Self {
        self.stream = true;
        self
    }
}

/// A generated graph instance, shared across the cells that run on it.
#[derive(Debug)]
pub struct Instance {
    /// The key that generated this instance.
    pub key: InstanceKey,
    /// The graph.
    pub graph: Graph,
    /// Ground-truth global parameters (the correct guesses for non-uniform baselines).
    pub params: GraphParams,
    /// Wall-clock time it took to generate the instance, in microseconds (the "instance
    /// generation" phase of the `--profile` report).
    pub gen_micros: u64,
}

impl Instance {
    /// Realizes the instance a key names.
    pub fn generate(key: InstanceKey) -> Self {
        // `span` disarms itself and `label` returns NONE when obs is disabled.
        let _span = local_obs::span(obs_metrics::INSTANCE_GEN, local_obs::label(key.family.name()));
        let started = Instant::now();
        let (graph, params) = key.realize();
        Instance { key, graph, params, gen_micros: started.elapsed().as_micros() as u64 }
    }
}

/// A configured sweep: the grid, the execution backend, and everything that composes
/// around it (cache, streaming, cost ordering).
///
/// This is the engine's primary entry point; [`run_grid`] is a thin wrapper over it. The
/// builder separates *what to run* (the grid) from *how cells execute* (the backend) from
/// *what happens around execution* (cache probe, LPT ordering, streaming aggregation), so
/// every combination composes:
///
/// ```
/// use local_engine::{backend::InProcessBackend, workload, ScenarioGrid, Sweep};
/// use local_graphs::Family;
///
/// let grid = ScenarioGrid::new()
///     .problems([workload("mis")])
///     .families([Family::SparseGnp])
///     .sizes([48usize])
///     .replicates(2);
/// let report = Sweep::over(&grid).backend(InProcessBackend::new(2)).run();
/// assert_eq!(report.cell_count, 2);
/// ```
pub struct Sweep<'a> {
    grid: &'a ScenarioGrid,
    backend: Box<dyn ExecBackend + 'a>,
    store: Option<Arc<dyn ResultStore>>,
    stream: bool,
    progress: Option<ProgressMeter>,
}

impl<'a> Sweep<'a> {
    /// A sweep over `grid` with the default backend (in-process, available parallelism),
    /// no store, and no streaming.
    pub fn over(grid: &'a ScenarioGrid) -> Self {
        Sweep {
            grid,
            backend: Box::new(InProcessBackend::new(0)),
            store: None,
            stream: false,
            progress: None,
        }
    }

    /// Sets the execution backend.
    pub fn backend(mut self, backend: impl ExecBackend + 'a) -> Self {
        self.backend = Box::new(backend);
        self
    }

    /// Attaches the legacy JSON sweep cache as the incremental result store; see
    /// [`Sweep::store`].
    pub fn cache(self, cache: SweepCache) -> Self {
        self.store(Arc::new(cache))
    }

    /// Attaches an incremental result store: hits are served from disk (and calibrate the
    /// cost model), fresh results are written back — no matter which backend executed them.
    pub fn store(mut self, store: Arc<dyn ResultStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Enables streaming mode: executed cells go straight to the store and fold into the
    /// summaries at their canonical position; [`Report::cells`] stays empty and memory
    /// stays flat no matter how large the grid is. Requires a store.
    pub fn streaming(mut self) -> Self {
        self.stream = true;
        self
    }

    /// Attaches a live progress meter: the sweep reports the grid size, cache hits, and
    /// CostModel predictions to it at start, then each completed cell as it lands.
    pub fn progress(mut self, meter: ProgressMeter) -> Self {
        self.progress = Some(meter);
        self
    }

    /// Applies a [`SweepConfig`]: an [`InProcessBackend`] with its thread count, plus its
    /// store and streaming settings.
    pub fn config(mut self, cfg: &SweepConfig) -> Self {
        self.backend = Box::new(InProcessBackend::new(cfg.threads));
        self.store = cfg.store.clone();
        self.stream = cfg.stream;
        self
    }

    /// Runs the sweep. See [`Sweep::run_calibrated`] for the full pipeline description.
    pub fn run(self) -> Report {
        self.run_calibrated().0
    }

    /// Runs the sweep and also returns the merged, fully calibrated [`CostModel`].
    ///
    /// The pipeline is store- and cost-aware, and backend-agnostic:
    ///
    /// 1. **Store probe.** With a store attached, every cell's key is looked up first; hits
    ///    are served from disk (byte-identical to re-execution — seeds are pure functions
    ///    of cell identity) and *calibrate the cost model* with their observed wall times.
    ///    In streaming mode the probe is **columnar**: hits fold their summary columns
    ///    straight into the accumulator, and no hit ever materializes a [`CellResult`] row.
    /// 2. **Cost-ordered sharding.** Missed cells are ordered slowest-first under the
    ///    [`CostModel`] (LPT scheduling minimizes makespan for any pulling executor) and
    ///    packaged into one [`CellShard`] for the backend.
    /// 3. **Backend execution.** The backend emits each result with its shard index; the
    ///    sweep scatters them to canonical positions (collecting mode) or folds them into
    ///    pre-registered summaries (streaming mode), so neither completion order nor the
    ///    choice of backend can perturb the report. Freshly executed cells are written back
    ///    to the store as they arrive.
    /// 4. **Calibration merge.** Observations flow home from every worker — thread or
    ///    subprocess — and are merged into the model, which a caller can carry into its
    ///    next sweep (and which the store persists implicitly via stored wall times).
    pub fn run_calibrated(self) -> (Report, CostModel) {
        // Streaming stores cells nowhere but the store; without one they would be silently
        // lost, so refuse loudly up front (the CLI rejects the combination at parse time).
        assert!(
            !self.stream || self.store.is_some(),
            "streaming mode requires a result store: streamed cells live there, not in memory"
        );
        let started = Instant::now();
        let grid = self.grid;
        let cells = grid.cells();

        // Streaming pre-registers every group in canonical order before anything folds, so
        // completion order cannot reorder the report.
        let mut streaming = if self.stream {
            let mut accumulator = SummaryAccumulator::new();
            for cell in &cells {
                accumulator.register(cell.problem.name(), cell.family.name());
            }
            Some(accumulator)
        } else {
            None
        };

        // Phase 1: probe the incremental store and calibrate the cost model with the hits.
        // Streaming probes columns only — hits fold and are dropped, never materialized as
        // rows; collecting mode keeps the full rows for the report.
        let mut cached: Vec<Option<CellResult>> = vec![None; cells.len()];
        let mut hit = vec![false; cells.len()];
        let mut model = CostModel::new();
        if let Some(store) = &self.store {
            for (i, cell) in cells.iter().enumerate() {
                match &mut streaming {
                    Some(accumulator) => {
                        if let Some(columns) = store.load_columns(cell, grid.base_seed) {
                            model.observe_scenario(cell, columns.wall_micros);
                            accumulator.fold_columns_at(
                                i,
                                cell.problem.name(),
                                cell.family.name(),
                                &columns,
                            );
                            hit[i] = true;
                        }
                    }
                    None => {
                        if let Some(result) = store.load(cell, grid.base_seed) {
                            model.observe(&result);
                            cached[i] = Some(result);
                            hit[i] = true;
                        }
                    }
                }
            }
        }
        let cache_hits = hit.iter().filter(|&&h| h).count();

        // Phase 2: order the missed cells slowest-first and package them as one shard.
        // `distinct_instances` counts the keys the backend will have to realize; keys are
        // pure functions of cell identity, so no instance is generated here.
        let missed: Vec<usize> = (0..cells.len()).filter(|&i| !hit[i]).collect();
        let distinct_instances = missed
            .iter()
            .map(|&i| cells[i].instance_key(grid.base_seed))
            .collect::<BTreeSet<InstanceKey>>()
            .len();
        let order = model.order_slowest_first(&cells, missed);
        let shard =
            CellShard::new(grid.base_seed, order.iter().map(|&i| cells[i].clone()).collect());
        if local_obs::is_enabled() {
            local_obs::counter_add(obs_metrics::CACHE_HITS, cache_hits as u64);
        }
        if let Some(meter) = &self.progress {
            let predicted: Vec<f64> = order.iter().map(|&i| model.predict(&cells[i])).collect();
            meter.begin(cells.len(), cache_hits, predicted);
        }
        let progress = self.progress.clone();
        let tick = |k: usize| {
            if let Some(meter) = &progress {
                meter.cell_done(k);
            }
        };

        // Phase 3: hand the shard to the backend; write fresh results to the store and
        // land them at their canonical position as they are emitted.
        let persist = |k: usize, result: &CellResult| {
            if let Some(store) = &self.store {
                let cell = &cells[order[k]];
                if let Err(e) = store.store(cell, grid.base_seed, result) {
                    eprintln!("result store: cannot store {}: {e}", cell.label());
                }
            }
        };

        if let Some(accumulator) = streaming {
            // Streaming: hits already folded columnar during the probe; fold fresh cells as
            // they finish, and drop them.
            let folded = std::sync::atomic::AtomicUsize::new(0);
            let accumulator = Mutex::new(accumulator);
            self.backend.run_shard(&shard, &|k, result| {
                persist(k, &result);
                // Folded under the cell's canonical grid index, so completion order cannot
                // perturb the summary bytes.
                accumulator
                    .lock()
                    .expect("summary accumulator poisoned")
                    .fold_at(order[k], &result);
                folded.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                tick(k);
            });
            if let Some(meter) = &self.progress {
                meter.finish();
            }
            let folded = folded.into_inner();
            assert_eq!(folded, order.len(), "backend did not emit every cell of the shard");
            model.merge(&self.backend.calibration());
            let report = Report {
                threads: self.backend.parallelism(),
                base_seed: grid.base_seed,
                cell_count: cells.len(),
                distinct_instances,
                cache_hits,
                total_wall_micros: started.elapsed().as_micros() as u64,
                summaries: accumulator.into_inner().expect("summary accumulator poisoned").finish(),
                cells: Vec::new(),
            };
            return (report, model);
        }

        // Collecting mode: scatter emitted cells back to their canonical positions.
        let slots: Vec<Mutex<Option<CellResult>>> =
            order.iter().map(|_| Mutex::new(None)).collect();
        self.backend.run_shard(&shard, &|k, result| {
            persist(k, &result);
            *slots[k].lock().expect("result slot poisoned") = Some(result);
            tick(k);
        });
        if let Some(meter) = &self.progress {
            meter.finish();
        }
        model.merge(&self.backend.calibration());
        for (&i, slot) in order.iter().zip(slots) {
            cached[i] = slot.into_inner().expect("result slot poisoned");
        }
        let results: Vec<CellResult> = cached
            .into_iter()
            .map(|c| c.expect("backend did not emit every cell of the shard"))
            .collect();

        let report = Report {
            threads: self.backend.parallelism(),
            base_seed: grid.base_seed,
            cell_count: results.len(),
            distinct_instances,
            cache_hits,
            total_wall_micros: started.elapsed().as_micros() as u64,
            summaries: crate::report::summarize(&results),
            cells: results,
        };
        (report, model)
    }
}

/// Runs every cell of `grid` in-process and folds the outcomes into a [`Report`] — a thin
/// wrapper over [`Sweep`] kept as the stable entry point; see [`Sweep::run_calibrated`]
/// for the pipeline.
pub fn run_grid(grid: &ScenarioGrid, cfg: &SweepConfig) -> Report {
    Sweep::over(grid).config(cfg).run()
}

/// Executes one cell with a throwaway execution session; see [`run_cell_in`].
pub fn run_cell(cell: &Scenario, instance: &Instance, base_seed: u64) -> CellResult {
    run_cell_in(cell, instance, base_seed, &mut Session::new())
}

/// Executes one cell: the cell's workload runs the uniform algorithm and the non-uniform
/// baseline with correct guesses, both validated against the problem's ground-truth
/// checker (see [`crate::workloads::Workload::run`] — the dispatch that used to be a
/// closed match over every problem kind). The caller's [`Session`] is reused across every
/// attempt of the uniform driver (and across cells, when the scheduler hands one session
/// per worker).
pub fn run_cell_in(
    cell: &Scenario,
    instance: &Instance,
    base_seed: u64,
    session: &mut Session,
) -> CellResult {
    let started = Instant::now();
    let obs_on = local_obs::is_enabled();
    let obs_start = if obs_on { local_obs::now_micros() } else { 0 };
    let seed = cell.cell_seed(base_seed);
    let measured = cell.problem.run(instance, seed, session);
    let graph = &instance.graph;
    let result = CellResult {
        problem: cell.problem.name().to_string(),
        family: cell.family.name().to_string(),
        requested_n: cell.n,
        n: graph.node_count(),
        edges: graph.edge_count(),
        replicate: cell.replicate,
        seed,
        uniform_rounds: measured.uniform_rounds,
        uniform_messages: measured.uniform_messages,
        nonuniform_rounds: measured.nonuniform_rounds,
        nonuniform_messages: measured.nonuniform_messages,
        overhead_ratio: measured.uniform_rounds as f64 / measured.nonuniform_rounds.max(1) as f64,
        subiterations: measured.subiterations,
        solved: measured.solved,
        valid: measured.valid,
        wall_micros: started.elapsed().as_micros() as u64,
        attempt_micros: measured.attempt_micros,
        prune_micros: measured.prune_micros,
        instance_micros: instance.gen_micros,
    };
    if obs_on {
        // One whole-cell span plus its phases, rebuilt from the measured micros: attempt
        // and prune were timed inside the workload, verify is the remaining wall time.
        // Labels intern per distinct (problem, family) / cell, not per event.
        let phase = local_obs::label(&format!("{};{}", result.problem, result.family));
        let cell_label = local_obs::label(&cell.label());
        let attempt = result.attempt_micros;
        let prune = result.prune_micros;
        let verify = result.wall_micros.saturating_sub(attempt + prune);
        local_obs::complete(obs_metrics::CELL, cell_label, obs_start, result.wall_micros);
        local_obs::complete(obs_metrics::ATTEMPT, phase, obs_start, attempt);
        local_obs::complete(obs_metrics::PRUNE, phase, obs_start + attempt, prune);
        local_obs::complete(obs_metrics::VERIFY, phase, obs_start + attempt + prune, verify);
        // The observed-side record of the predicted-vs-observed join (label = cell label,
        // same registry as `predicted-micros` from `--dry-run`).
        local_obs::record(obs_metrics::CELL_MICROS, cell_label, result.wall_micros);
        local_obs::counter_add(obs_metrics::CELLS_DONE, 1);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{default_workloads, workload};
    use local_graphs::{family, Family, FamilySpec};

    #[test]
    fn every_default_workload_runs_one_valid_cell() {
        for problem in default_workloads() {
            let family: FamilySpec = match problem.name() {
                "arboricity-mis" => Family::Forest3.into(),
                "ps-mis" => Family::DenseGnp.into(),
                "edge-coloring" => Family::Regular6.into(),
                "ruling-set-b2" => Family::UnitDisk.into(),
                _ => Family::SparseGnp.into(),
            };
            let cell = Scenario { problem, family, n: 48, replicate: 0 };
            let instance = Instance::generate(cell.instance_key(1));
            let result = run_cell(&cell, &instance, 1);
            assert!(result.valid, "{} produced an invalid cell", cell.label());
            assert!(result.solved, "{} did not solve", cell.label());
            assert!(result.uniform_rounds > 0 || cell.problem.name() == "luby-mis");
        }
    }

    #[test]
    fn parameterized_families_run_valid_cells() {
        for family_name in ["gnp-d16", "regular-4", "forest-2", "pa-2"] {
            let cell = Scenario {
                problem: workload("mis"),
                family: family(family_name),
                n: 48,
                replicate: 0,
            };
            let instance = Instance::generate(cell.instance_key(1));
            let result = run_cell(&cell, &instance, 1);
            assert!(result.valid, "{} produced an invalid cell", cell.label());
            assert!(result.solved, "{} did not solve", cell.label());
            assert_eq!(result.family, family_name);
        }
    }

    #[test]
    fn grid_run_counts_cells_and_instances() {
        let grid = ScenarioGrid::new()
            .problems([workload("mis"), workload("matching")])
            .families([Family::Grid])
            .sizes([36usize, 64])
            .replicates(2);
        let report = run_grid(&grid, &SweepConfig::with_threads(2));
        assert_eq!(report.cell_count, 8);
        // Two problems share each (family, n, replicate) instance.
        assert_eq!(report.distinct_instances, 4);
        assert_eq!(report.summaries.len(), 2);
        assert!(report.cells.iter().all(|c| c.valid && c.solved));
    }

    #[test]
    fn instance_cache_shares_graphs_across_problems() {
        let a = Scenario {
            problem: workload("mis"),
            family: Family::SparseGnp.into(),
            n: 50,
            replicate: 1,
        };
        let b = Scenario { problem: workload("ruling-set-b2"), ..a.clone() };
        let ia = Instance::generate(a.instance_key(3));
        let ib = Instance::generate(b.instance_key(3));
        assert_eq!(ia.graph, ib.graph);
    }
}

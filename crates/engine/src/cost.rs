//! The cost model behind work-aware scheduling: predict how expensive each cell is and run
//! the slowest cells first.
//!
//! The pool's workers pull jobs off a shared cursor, so the *order* of the work queue decides
//! the makespan: launching a multi-second cell last leaves every other worker idle while it
//! finishes alone (the classical LPT — longest processing time first — argument gives a
//! 4/3-optimal makespan for slowest-first versus unbounded degradation for an adversarial
//! order). Predictions come from two sources:
//!
//! 1. a **static shape** per problem — a power law `w · n^e` whose weight/exponent encode
//!    how the uniform transformer's attempt cascade scales (line-graph blow-ups, alternation
//!    depth, message simulation), with a family factor for denser-than-sparse instances;
//! 2. **observed wall-times fed back** from earlier cells — cached results of a previous
//!    sweep (or earlier cells of this one) calibrate each `(problem, family)` group by the
//!    ratio of observed to predicted micros, so the second sweep of a grid orders with real
//!    measurements rather than the prior.
//!
//! Predictions only ever decide *order*, never results: a wildly wrong model costs wall
//! clock, not correctness.

use crate::registry::parse_workload;
use crate::report::CellResult;
use crate::scenario::Scenario;
use crate::workloads::WorkloadSpec;
use local_graphs::{parse_family, FamilySpec};
use std::collections::HashMap;

/// Predicts per-cell work and orders work queues slowest-first.
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    /// Per `(problem, family)`: summed observed and predicted micros of calibration cells.
    observed: HashMap<(String, String), (f64, f64)>,
}

impl CostModel {
    /// A fresh, uncalibrated model (static shapes only).
    pub fn new() -> Self {
        CostModel::default()
    }

    /// The static (uncalibrated) cost estimate of one cell, in arbitrary micro-ish units:
    /// the workload's power-law shape ([`crate::workloads::Workload::cost_shape`]) scaled
    /// by the family's density factor ([`local_graphs::GraphFamily::cost_factor`]) — both
    /// owned by the specs themselves, so a newly registered workload or family brings its
    /// own prior with it.
    pub fn base_cost(problem: &WorkloadSpec, family: &FamilySpec, n: usize) -> f64 {
        let (weight, exponent) = problem.cost_shape();
        weight * (n.max(2) as f64).powf(exponent) * family.cost_factor()
    }

    /// Feeds one observed cell back into the model (typically a cache hit from a previous
    /// sweep, or a finished cell of this one).
    pub fn observe(&mut self, cell: &CellResult) {
        let (Some(family), Some(problem)) =
            (parse_family(&cell.family), parse_workload(&cell.problem))
        else {
            return;
        };
        let predicted = CostModel::base_cost(&problem, &family, cell.requested_n);
        // Key by the *canonical* names so observations match predictions even when the
        // observed result spells a family by an alias.
        self.observe_group(
            problem.name(),
            family.name(),
            cell.wall_micros.max(1) as f64,
            predicted,
        );
    }

    /// Feeds one observed cell back by its scenario and wall time alone — the columnar
    /// twin of [`CostModel::observe`] for store scans that never materialize a
    /// [`CellResult`]. The scenario carries canonical specs already, so this is numerically
    /// identical to `observe` on the result the scenario produced.
    pub fn observe_scenario(&mut self, cell: &Scenario, wall_micros: u64) {
        let predicted = CostModel::base_cost(&cell.problem, &cell.family, cell.n);
        self.observe_group(
            cell.problem.name(),
            cell.family.name(),
            wall_micros.max(1) as f64,
            predicted,
        );
    }

    /// Feeds one pre-summed calibration group back into the model. This is the merge
    /// primitive of distributed calibration: a worker process sums its own observations per
    /// `(problem, family)` and ships the sums home, where [`CostModel::merge`] folds them in
    /// as if every cell had been observed locally.
    pub fn observe_group(&mut self, problem: &str, family: &str, observed: f64, predicted: f64) {
        let slot =
            self.observed.entry((problem.to_string(), family.to_string())).or_insert((0.0, 0.0));
        slot.0 += observed;
        slot.1 += predicted;
    }

    /// Merges another model's calibration into this one. Observation sums are additive, so
    /// merging per-worker models is exactly equivalent to observing every worker's cells in
    /// one model — the property that lets a multi-process sweep calibrate centrally from
    /// per-worker observations.
    pub fn merge(&mut self, other: &CostModel) {
        for ((problem, family), &(observed, predicted)) in &other.observed {
            self.observe_group(problem, family, observed, predicted);
        }
    }

    /// A deterministic snapshot of the calibration state: per `(problem, family)`, the
    /// summed observed and predicted micros, sorted by key (this is what a worker ships
    /// home over the shard protocol).
    pub fn observations(&self) -> Vec<(String, String, f64, f64)> {
        let mut out: Vec<_> = self
            .observed
            .iter()
            .map(|((p, f), &(observed, predicted))| (p.clone(), f.clone(), observed, predicted))
            .collect();
        out.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        out
    }

    /// The model's current prediction for `cell`: the static shape, rescaled by the
    /// observed-over-predicted ratio of its `(problem, family)` group when calibration data
    /// exists (clamped so one outlier cannot invert the ordering wholesale).
    pub fn predict(&self, cell: &Scenario) -> f64 {
        let base = CostModel::base_cost(&cell.problem, &cell.family, cell.n);
        let key = (cell.problem.name().to_string(), cell.family.name().to_string());
        match self.observed.get(&key) {
            Some(&(observed, predicted)) if predicted > 0.0 => {
                base * (observed / predicted).clamp(0.05, 50.0)
            }
            _ => base,
        }
    }

    /// Orders `indices` (into `cells`) slowest-first under the model, with index order as
    /// the deterministic tie-break. The returned permutation is what the scheduler feeds the
    /// pool; results are still scattered back to canonical positions.
    pub fn order_slowest_first(&self, cells: &[Scenario], mut indices: Vec<usize>) -> Vec<usize> {
        indices.sort_by(|&a, &b| {
            self.predict(&cells[b])
                .partial_cmp(&self.predict(&cells[a]))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        indices
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::workload;
    use local_graphs::{family, Family};

    fn cell(problem: &str, family_name: &str, n: usize) -> Scenario {
        Scenario {
            problem: workload(problem),
            family: parse_family(family_name).expect("test family parses"),
            n,
            replicate: 0,
        }
    }

    #[test]
    fn bigger_cells_cost_more() {
        let spec = workload("mis");
        let fam = Family::SparseGnp.into();
        let small = CostModel::base_cost(&spec, &fam, 100);
        let large = CostModel::base_cost(&spec, &fam, 1000);
        assert!(large > 10.0 * small, "power law must dominate: {small} vs {large}");
    }

    #[test]
    fn parameterized_families_scale_the_density_factor() {
        let spec = workload("mis");
        let sparse = CostModel::base_cost(&spec, &family("gnp-d4"), 256);
        let dense = CostModel::base_cost(&spec, &family("gnp-d32"), 256);
        assert!(dense > 4.0 * sparse, "denser parameterizations must predict more work");
    }

    #[test]
    fn slowest_first_puts_big_expensive_cells_up_front() {
        let cells = vec![
            cell("luby-mis", "gnp-avg8", 64),
            cell("edge-coloring", "gnp-sqrt-n", 512),
            cell("mis", "gnp-avg8", 256),
        ];
        let order = CostModel::new().order_slowest_first(&cells, vec![0, 1, 2]);
        assert_eq!(order[0], 1, "the line-graph colouring at n=512 is the straggler");
        assert_eq!(order[2], 0, "the small uniform baseline goes last");
    }

    #[test]
    fn ordering_is_deterministic_under_ties() {
        let cells = vec![
            cell("mis", "gnp-avg8", 128),
            cell("mis", "gnp-avg8", 128),
            cell("mis", "gnp-avg8", 128),
        ];
        let order = CostModel::new().order_slowest_first(&cells, vec![0, 1, 2]);
        assert_eq!(order, vec![0, 1, 2], "ties break by canonical index");
    }

    fn sample(scenario: &Scenario, factor: f64) -> CellResult {
        CellResult {
            problem: scenario.problem.name().to_string(),
            family: scenario.family.name().to_string(),
            requested_n: scenario.n,
            n: scenario.n,
            edges: 0,
            replicate: 0,
            seed: 0,
            uniform_rounds: 1,
            uniform_messages: 0,
            nonuniform_rounds: 1,
            nonuniform_messages: 0,
            overhead_ratio: 1.0,
            subiterations: 0,
            solved: true,
            valid: true,
            wall_micros: (CostModel::base_cost(&scenario.problem, &scenario.family, scenario.n)
                * factor) as u64,
            attempt_micros: 0,
            prune_micros: 0,
            instance_micros: 0,
        }
    }

    #[test]
    fn observations_recalibrate_predictions() {
        let mut model = CostModel::new();
        let scenario = cell("mis", "gnp-avg8", 128);
        let before = model.predict(&scenario);
        // Observe the group running 10x slower than the static shape claims.
        model.observe(&sample(&scenario, 10.0));
        let after = model.predict(&scenario);
        assert!(
            (after / before - 10.0).abs() < 0.5,
            "calibration must track the observed ratio: {before} -> {after}"
        );
    }

    #[test]
    fn observations_calibrate_parameterized_groups_independently() {
        let mut model = CostModel::new();
        let d16 = cell("mis", "gnp-d16", 128);
        let d4 = cell("mis", "gnp-d4", 128);
        let before = model.predict(&d4);
        model.observe(&sample(&d16, 8.0));
        // Only the observed parameterization recalibrates.
        assert!(
            (model.predict(&d16) / CostModel::base_cost(&d16.problem, &d16.family, 128) - 8.0)
                .abs()
                < 0.5
        );
        assert_eq!(model.predict(&d4), before);
    }

    #[test]
    fn observe_scenario_is_numerically_identical_to_observe() {
        let scenario = cell("mis", "gnp-avg8", 128);
        let result = sample(&scenario, 4.0);
        let mut by_result = CostModel::new();
        by_result.observe(&result);
        let mut by_scenario = CostModel::new();
        by_scenario.observe_scenario(&scenario, result.wall_micros);
        assert_eq!(by_result.observations(), by_scenario.observations());
        assert_eq!(by_result.predict(&scenario), by_scenario.predict(&scenario));
    }

    #[test]
    fn merging_worker_models_equals_observing_locally() {
        // Two "workers" each observe one group; the merged model must predict exactly like
        // a single model that observed both groups itself.
        let mis = cell("mis", "gnp-avg8", 128);
        let matching = cell("matching", "grid", 96);

        let mut worker_a = CostModel::new();
        worker_a.observe(&sample(&mis, 3.0));
        let mut worker_b = CostModel::new();
        worker_b.observe(&sample(&matching, 0.5));

        let mut merged = CostModel::new();
        merged.merge(&worker_a);
        merged.merge(&worker_b);

        let mut local = CostModel::new();
        local.observe(&sample(&mis, 3.0));
        local.observe(&sample(&matching, 0.5));

        assert_eq!(merged.predict(&mis), local.predict(&mis));
        assert_eq!(merged.predict(&matching), local.predict(&matching));
        assert_eq!(merged.observations(), local.observations());
    }

    #[test]
    fn observation_snapshots_round_trip_through_observe_group() {
        let mut model = CostModel::new();
        model.observe_group("mis", "grid", 1000.0, 500.0);
        model.observe_group("mis", "grid", 200.0, 100.0);
        let mut rebuilt = CostModel::new();
        for (problem, family, observed, predicted) in model.observations() {
            rebuilt.observe_group(&problem, &family, observed, predicted);
        }
        assert_eq!(model.observations(), vec![("mis".into(), "grid".into(), 1200.0, 600.0)]);
        assert_eq!(rebuilt.observations(), model.observations());
    }
}

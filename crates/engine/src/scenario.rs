//! The scenario model: what one experiment cell is, and how grids of cells are built.
//!
//! A [`Scenario`] is one point of an experiment design: a workload (resolved through
//! [`crate::registry`]), a graph family ([`local_graphs::FamilySpec`]), a target size, and
//! a replicate index. A [`ScenarioGrid`] is the cross product of the four axes, the unit
//! of work the scheduler executes. Cells are enumerated in a fixed deterministic order and
//! carry their own seeds (derived with [`local_runtime::mix_seed`] from the workload's and
//! family's stable tags), so a grid means the same set of executions regardless of how it
//! is later sharded over threads — or which registry entry the specs came from.

use crate::registry::parse_workload;
use crate::workloads::WorkloadSpec;
use local_graphs::{parse_family, FamilySpec, InstanceKey};
use local_runtime::mix_seed;
use serde::{Deserialize, Serialize, Value};

/// Salt separating graph-generation seeds from execution seeds.
const GRAPH_SEED_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// One experiment cell: `(workload, family, n, replicate)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Scenario {
    /// The workload to run.
    pub problem: WorkloadSpec,
    /// The graph family the instance is drawn from.
    pub family: FamilySpec,
    /// Requested instance size.
    pub n: usize,
    /// Replicate index (`0..replicates`); distinct replicates get distinct instances.
    pub replicate: u64,
}

impl Scenario {
    /// The key of the graph instance this cell runs on. Cells that differ only in the
    /// workload share the key — and therefore, under the scheduler's cache, the instance.
    ///
    /// The family's stable [`FamilySpec::tag`] is mixed into the generation seed, so
    /// distinct families — including distinct *parameterizations* of one generator —
    /// always draw distinct instances. (This used to rank families by their position in
    /// the closed catalog, which silently mapped any family outside it to rank 0.)
    pub fn instance_key(&self, base_seed: u64) -> InstanceKey {
        let shape = mix_seed(self.family.tag(), ((self.n as u64) << 20) ^ self.replicate);
        InstanceKey::new(self.family.clone(), self.n, mix_seed(base_seed ^ GRAPH_SEED_SALT, shape))
    }

    /// The execution seed of this cell: a deterministic function of the cell's identity
    /// (never of scheduling order), so parallel and sequential sweeps agree byte-for-byte.
    pub fn cell_seed(&self, base_seed: u64) -> u64 {
        mix_seed(self.instance_key(base_seed).seed, self.problem.tag())
    }

    /// A short human-readable label.
    pub fn label(&self) -> String {
        format!("{}/{}/n{}/r{}", self.problem.name(), self.family.name(), self.n, self.replicate)
    }
}

// The wire representation of a cell (the shard protocol and the cache index) spells the
// workload and family by their stable names, so the wire is readable, survives registry
// reordering, and stays byte-identical to the representation the closed enums produced.
impl Serialize for Scenario {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("problem".into(), Value::Str(self.problem.name().to_string())),
            ("family".into(), Value::Str(self.family.name().to_string())),
            ("n".into(), Value::U64(self.n as u64)),
            ("replicate".into(), Value::U64(self.replicate)),
        ])
    }
}

impl Deserialize for Scenario {
    fn from_value(value: &Value) -> Result<Self, String> {
        let field =
            |key: &str| value.get(key).ok_or_else(|| format!("scenario is missing field {key:?}"));
        let name = |key: &str| -> Result<String, String> {
            let v = field(key)?;
            v.as_str().map(str::to_string).ok_or_else(|| format!("expected {key} name, got {v:?}"))
        };
        let problem_name = name("problem")?;
        let family_name = name("family")?;
        Ok(Scenario {
            problem: parse_workload(&problem_name)
                .ok_or_else(|| format!("unknown problem: {problem_name:?}"))?,
            family: parse_family(&family_name)
                .ok_or_else(|| format!("unknown family: {family_name:?}"))?,
            n: usize::from_value(field("n")?)?,
            replicate: u64::from_value(field("replicate")?)?,
        })
    }
}

/// A cross-product experiment design.
#[derive(Debug, Clone)]
pub struct ScenarioGrid {
    /// Workloads to run (axis 1).
    pub problems: Vec<WorkloadSpec>,
    /// Graph families (axis 2).
    pub families: Vec<FamilySpec>,
    /// Instance sizes (axis 3).
    pub sizes: Vec<usize>,
    /// Number of replicates per `(problem, family, size)` (axis 4).
    pub replicates: u64,
    /// Base seed every instance/cell seed is derived from.
    pub base_seed: u64,
}

impl Default for ScenarioGrid {
    fn default() -> Self {
        ScenarioGrid {
            problems: vec![crate::registry::workload("mis")],
            families: vec![local_graphs::Family::SparseGnp.into()],
            sizes: vec![128],
            replicates: 1,
            base_seed: 0,
        }
    }
}

impl ScenarioGrid {
    /// The default single-cell-per-axis grid (MIS on sparse G(n,p) at n = 128, one
    /// replicate), meant to be overridden axis-by-axis with the builder methods below.
    pub fn new() -> Self {
        ScenarioGrid::default()
    }

    /// Sets the problem axis (anything convertible to a [`WorkloadSpec`]).
    pub fn problems<I>(mut self, problems: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<WorkloadSpec>,
    {
        self.problems = problems.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the family axis (anything convertible to a [`FamilySpec`], including the
    /// builtin [`local_graphs::Family`] variants).
    pub fn families<I>(mut self, families: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<FamilySpec>,
    {
        self.families = families.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the size axis.
    pub fn sizes(mut self, sizes: impl Into<Vec<usize>>) -> Self {
        self.sizes = sizes.into();
        self
    }

    /// Sets the size axis to a doubling ladder `lo, 2·lo, 4·lo, …` up to (and including the
    /// first value ≥) `hi`.
    pub fn size_ladder(mut self, lo: usize, hi: usize) -> Self {
        self.sizes = expand_ladder(lo, hi);
        self
    }

    /// Sets the number of replicates (seeds) per cell.
    pub fn replicates(mut self, replicates: u64) -> Self {
        self.replicates = replicates.max(1);
        self
    }

    /// Sets the base seed.
    pub fn base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Number of cells in the grid.
    pub fn cell_count(&self) -> usize {
        self.problems.len() * self.families.len() * self.sizes.len() * self.replicates as usize
    }

    /// Enumerates every cell in the grid's canonical order
    /// (problem-major, then family, size, replicate).
    pub fn cells(&self) -> Vec<Scenario> {
        let mut out = Vec::with_capacity(self.cell_count());
        for problem in &self.problems {
            for family in &self.families {
                for &n in &self.sizes {
                    for replicate in 0..self.replicates {
                        out.push(Scenario {
                            problem: problem.clone(),
                            family: family.clone(),
                            n,
                            replicate,
                        });
                    }
                }
            }
        }
        out
    }
}

// The wire representation of a grid (the coordinator's job protocol) spells workloads and
// families by stable name, exactly like [`Scenario`]'s: a submitted grid means the same
// cells — in the same canonical order — on whichever build re-expands it.
impl Serialize for ScenarioGrid {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            (
                "problems".into(),
                Value::Seq(
                    self.problems.iter().map(|p| Value::Str(p.name().to_string())).collect(),
                ),
            ),
            (
                "families".into(),
                Value::Seq(
                    self.families.iter().map(|f| Value::Str(f.name().to_string())).collect(),
                ),
            ),
            (
                "sizes".into(),
                Value::Seq(self.sizes.iter().map(|&n| Value::U64(n as u64)).collect()),
            ),
            ("replicates".into(), Value::U64(self.replicates)),
            ("base_seed".into(), Value::U64(self.base_seed)),
        ])
    }
}

impl Deserialize for ScenarioGrid {
    fn from_value(value: &Value) -> Result<Self, String> {
        let field =
            |key: &str| value.get(key).ok_or_else(|| format!("grid is missing field {key:?}"));
        let names = |key: &str| -> Result<Vec<String>, String> {
            let seq =
                field(key)?.as_seq().ok_or_else(|| format!("expected a list of {key} names"))?;
            seq.iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("expected a {key} name, got {v:?}"))
                })
                .collect()
        };
        let problems = names("problems")?
            .iter()
            .map(|name| parse_workload(name).ok_or_else(|| format!("unknown problem: {name:?}")))
            .collect::<Result<Vec<_>, _>>()?;
        let families = names("families")?
            .iter()
            .map(|name| parse_family(name).ok_or_else(|| format!("unknown family: {name:?}")))
            .collect::<Result<Vec<_>, _>>()?;
        if problems.is_empty() || families.is_empty() {
            return Err("grid with an empty problem or family axis".into());
        }
        Ok(ScenarioGrid {
            problems,
            families,
            sizes: Vec::<usize>::from_value(field("sizes")?)?,
            replicates: u64::from_value(field("replicates")?)?.max(1),
            base_seed: u64::from_value(field("base_seed")?)?,
        })
    }
}

fn expand_ladder(lo: usize, hi: usize) -> Vec<usize> {
    // Honour the requested start exactly (generators themselves round tiny sizes up);
    // only guard against a zero start, which could never double.
    let lo = lo.max(1);
    let hi = hi.max(lo);
    let mut sizes = Vec::new();
    let mut n = lo;
    loop {
        sizes.push(n);
        if n >= hi {
            break;
        }
        n = n.saturating_mul(2).min(hi.max(n + 1));
    }
    sizes
}

/// Parses a size axis: either a comma list (`200,400`) or a doubling ladder (`100..10000`).
pub fn parse_sizes(text: &str) -> Result<Vec<usize>, String> {
    if let Some((lo, hi)) = text.split_once("..") {
        let lo: usize = lo.trim().parse().map_err(|_| format!("bad ladder start: {lo:?}"))?;
        let hi: usize = hi.trim().parse().map_err(|_| format!("bad ladder end: {hi:?}"))?;
        if hi < lo {
            return Err(format!("ladder end {hi} below start {lo}"));
        }
        return Ok(expand_ladder(lo, hi));
    }
    let sizes: Result<Vec<usize>, _> = text.split(',').map(|s| s.trim().parse::<usize>()).collect();
    let sizes = sizes.map_err(|_| format!("bad size list: {text:?}"))?;
    if sizes.is_empty() {
        return Err("empty size list".into());
    }
    Ok(sizes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::workload;
    use local_graphs::{family, Family};

    #[test]
    fn grid_cross_product_has_expected_shape() {
        let grid = ScenarioGrid::new()
            .problems([workload("mis"), workload("matching")])
            .families([Family::SparseGnp, Family::Grid, Family::Path])
            .sizes([64usize, 128])
            .replicates(4);
        assert_eq!(grid.cell_count(), 2 * 3 * 2 * 4);
        let cells = grid.cells();
        assert_eq!(cells.len(), grid.cell_count());
        // Canonical order: first cell is the first coordinate of every axis.
        assert_eq!(cells[0].problem, workload("mis"));
        assert_eq!(cells[0].family, Family::SparseGnp.into());
        assert_eq!(cells[0].n, 64);
        assert_eq!(cells[0].replicate, 0);
    }

    #[test]
    fn grids_mix_builtin_and_parameterized_families() {
        let grid = ScenarioGrid::new()
            .problems([workload("luby-mis")])
            .families([Family::Grid.into(), family("gnp-d16"), family("regular-4")])
            .sizes([48usize]);
        let cells = grid.cells();
        assert_eq!(cells.len(), 3);
        assert_eq!(cells[1].family.name(), "gnp-d16");
        assert_eq!(cells[2].family.name(), "regular-4");
    }

    #[test]
    fn same_instance_across_problems_distinct_across_replicates() {
        let a =
            Scenario { problem: workload("mis"), family: Family::Grid.into(), n: 64, replicate: 0 };
        let b = Scenario { problem: workload("matching"), ..a.clone() };
        let c = Scenario { problem: workload("mis"), replicate: 1, ..a.clone() };
        assert_eq!(a.instance_key(7), b.instance_key(7));
        assert_ne!(a.instance_key(7), c.instance_key(7));
        // Execution seeds differ per problem even on the shared instance.
        assert_ne!(a.cell_seed(7), b.cell_seed(7));
    }

    #[test]
    fn distinct_parameterized_families_draw_distinct_instances() {
        // The historical bug: families outside the closed catalog all ranked 0, so two
        // different parameterizations would have drawn identically-seeded instances. The
        // family tag in the seed mix makes every parameterization its own instance stream.
        let cell = |family_name: &str| Scenario {
            problem: workload("mis"),
            family: family(family_name),
            n: 96,
            replicate: 0,
        };
        let pairs = [("gnp-d8", "gnp-d16"), ("regular-4", "regular-8"), ("forest-2", "forest-4")];
        for (a, b) in pairs {
            let (ka, kb) = (cell(a).instance_key(7), cell(b).instance_key(7));
            assert_ne!(ka, kb, "{a} vs {b} must be distinct keys");
            assert_ne!(ka.seed, kb.seed, "{a} vs {b} must draw from distinct seed streams");
        }
        // And a parameterized family never shadows a builtin's stream either.
        assert_ne!(
            cell("gnp-d8").instance_key(7).seed,
            Scenario { family: Family::SparseGnp.into(), ..cell("gnp-d8") }.instance_key(7).seed
        );
    }

    #[test]
    fn ladder_doubles_and_caps() {
        assert_eq!(parse_sizes("100..1000").unwrap(), vec![100, 200, 400, 800, 1000]);
        assert_eq!(parse_sizes("200,400").unwrap(), vec![200, 400]);
        assert_eq!(parse_sizes("64").unwrap(), vec![64]);
        // A small ladder start is honoured, not silently rewritten.
        assert_eq!(parse_sizes("2..8").unwrap(), vec![2, 4, 8]);
        assert!(parse_sizes("..").is_err());
        assert!(parse_sizes("a,b").is_err());
    }

    #[test]
    fn grids_round_trip_the_wire_with_cells_in_canonical_order() {
        let grid = ScenarioGrid::new()
            .problems([workload("mis"), workload("luby-mis")])
            .families([Family::Grid.into(), family("gnp-d16")])
            .sizes([48usize, 64])
            .replicates(2)
            .base_seed(9);
        let wire = serde_json::to_string(&grid).unwrap();
        let back = ScenarioGrid::from_value(&serde_json::from_str(&wire).unwrap()).unwrap();
        assert_eq!(back.cell_count(), grid.cell_count());
        assert_eq!(back.cells(), grid.cells());
        assert_eq!(back.base_seed, grid.base_seed);
    }

    #[test]
    fn malformed_grids_are_rejected() {
        for bad in [
            r#"{"problems":["mis"],"families":[],"sizes":[48],"replicates":1,"base_seed":0}"#,
            r#"{"problems":["no-such"],"families":["grid"],"sizes":[48],"replicates":1,"base_seed":0}"#,
            r#"{"families":["grid"],"sizes":[48],"replicates":1,"base_seed":0}"#,
        ] {
            let value = serde_json::from_str(bad).unwrap();
            assert!(ScenarioGrid::from_value(&value).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn cell_seeds_do_not_depend_on_grid_order() {
        let cell = Scenario {
            problem: workload("ruling-set-b2"),
            family: Family::UnitDisk.into(),
            n: 96,
            replicate: 3,
        };
        // The seed is a pure function of the cell + base seed.
        assert_eq!(cell.cell_seed(11), cell.cell_seed(11));
        assert_ne!(cell.cell_seed(11), cell.cell_seed(12));
    }
}

//! The scenario model: what one experiment cell is, and how grids of cells are built.
//!
//! A [`Scenario`] is one point of an experiment design: a problem (drawn from the uniform
//! catalog of `local_uniform::catalog`), a graph family, a target size, and a replicate
//! index. A [`ScenarioGrid`] is the cross product of the four axes, the unit of work the
//! scheduler executes. Cells are enumerated in a fixed deterministic order and carry their
//! own seeds (derived with [`local_runtime::mix_seed`]), so a grid means the same set of
//! executions regardless of how it is later sharded over threads.

use local_graphs::{Family, InstanceKey};
use local_runtime::mix_seed;
use serde::{Deserialize, Serialize, Value};

/// Salt separating graph-generation seeds from execution seeds.
const GRAPH_SEED_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// One problem of the experiment catalog (the rows of the paper's Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProblemKind {
    /// Deterministic MIS via (Δ+1)-colouring, transformed by Theorem 1.
    Mis,
    /// Deterministic MIS with the synthetic `2^{O(√log n)}` bound (Table 1 row 2).
    PsMis,
    /// Deterministic MIS parameterised by arboricity (Table 1 rows 3–4).
    ArboricityMis,
    /// The Corollary 1(i) "fastest of the breeds" MIS combinator (Theorem 4).
    Corollary1Mis,
    /// Luby's uniform randomized MIS — the already-uniform baseline of Table 1's last row.
    LubyMis,
    /// Deterministic maximal matching from edge colouring (Table 1 row 8).
    Matching,
    /// Maximal matching with the synthetic `O(log⁴ n)` time shape.
    Log4Matching,
    /// The Las Vegas (2, β)-ruling set of Theorem 2 (Table 1 row 9).
    RulingSet(u64),
    /// The Theorem 5 uniform `λ(Δ+1)`-colouring (`λ = 1` is Table 1 row 1's colouring
    /// output; larger `λ` is row 5).
    LambdaColoring(u64),
    /// `O(Δ)`-edge colouring via the line graph + Theorem 5 (Table 1 rows 6–7).
    EdgeColoring,
}

impl ProblemKind {
    /// A representative list of every kind (with default parameters), in report order.
    pub const ALL: [ProblemKind; 10] = [
        ProblemKind::Mis,
        ProblemKind::PsMis,
        ProblemKind::ArboricityMis,
        ProblemKind::Corollary1Mis,
        ProblemKind::LubyMis,
        ProblemKind::Matching,
        ProblemKind::Log4Matching,
        ProblemKind::RulingSet(2),
        ProblemKind::LambdaColoring(1),
        ProblemKind::EdgeColoring,
    ];

    /// The stable name used in reports and accepted by [`ProblemKind::parse`].
    pub fn name(&self) -> String {
        match self {
            ProblemKind::Mis => "mis".into(),
            ProblemKind::PsMis => "ps-mis".into(),
            ProblemKind::ArboricityMis => "arboricity-mis".into(),
            ProblemKind::Corollary1Mis => "cor1-mis".into(),
            ProblemKind::LubyMis => "luby-mis".into(),
            ProblemKind::Matching => "matching".into(),
            ProblemKind::Log4Matching => "log4-matching".into(),
            ProblemKind::RulingSet(beta) => format!("ruling-set-b{beta}"),
            ProblemKind::LambdaColoring(1) => "coloring".into(),
            ProblemKind::LambdaColoring(lambda) => format!("lambda{lambda}-coloring"),
            ProblemKind::EdgeColoring => "edge-coloring".into(),
        }
    }

    /// Parses a kind from its [`ProblemKind::name`] (plus the shorthands `ruling-set` for
    /// β = 2 and `coloring` for λ = 1).
    pub fn parse(text: &str) -> Option<ProblemKind> {
        match text {
            "mis" => Some(ProblemKind::Mis),
            "ps-mis" => Some(ProblemKind::PsMis),
            "arboricity-mis" => Some(ProblemKind::ArboricityMis),
            "cor1-mis" => Some(ProblemKind::Corollary1Mis),
            "luby-mis" => Some(ProblemKind::LubyMis),
            "matching" => Some(ProblemKind::Matching),
            "log4-matching" => Some(ProblemKind::Log4Matching),
            "ruling-set" => Some(ProblemKind::RulingSet(2)),
            "coloring" => Some(ProblemKind::LambdaColoring(1)),
            "edge-coloring" => Some(ProblemKind::EdgeColoring),
            _ => {
                if let Some(beta) = text.strip_prefix("ruling-set-b") {
                    return beta.parse().ok().map(ProblemKind::RulingSet);
                }
                text.strip_prefix("lambda")
                    .and_then(|rest| rest.strip_suffix("-coloring"))
                    .and_then(|lambda| lambda.parse().ok())
                    .map(ProblemKind::LambdaColoring)
            }
        }
    }

    /// A small stable integer distinguishing kinds, mixed into per-cell seeds.
    pub fn tag(&self) -> u64 {
        match self {
            ProblemKind::Mis => 1,
            ProblemKind::PsMis => 2,
            ProblemKind::ArboricityMis => 3,
            ProblemKind::Corollary1Mis => 4,
            ProblemKind::LubyMis => 5,
            ProblemKind::Matching => 6,
            ProblemKind::Log4Matching => 7,
            ProblemKind::EdgeColoring => 8,
            ProblemKind::RulingSet(beta) => 0x100 + beta,
            ProblemKind::LambdaColoring(lambda) => 0x1_0000 + lambda,
        }
    }
}

impl Serialize for ProblemKind {
    fn to_value(&self) -> Value {
        Value::Str(self.name())
    }
}

impl Deserialize for ProblemKind {
    fn from_value(value: &Value) -> Result<Self, String> {
        let name = value.as_str().ok_or_else(|| format!("expected problem name, got {value:?}"))?;
        ProblemKind::parse(name).ok_or_else(|| format!("unknown problem: {name:?}"))
    }
}

/// One experiment cell: `(problem, family, n, replicate)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scenario {
    /// The problem to solve.
    pub problem: ProblemKind,
    /// The graph family the instance is drawn from.
    pub family: Family,
    /// Requested instance size.
    pub n: usize,
    /// Replicate index (`0..replicates`); distinct replicates get distinct instances.
    pub replicate: u64,
}

impl Scenario {
    /// The key of the graph instance this cell runs on. Cells that differ only in the
    /// problem share the key — and therefore, under the scheduler's cache, the instance.
    pub fn instance_key(&self, base_seed: u64) -> InstanceKey {
        let family_rank = Family::ALL.iter().position(|f| f == &self.family).unwrap_or(0) as u64;
        let shape = mix_seed(family_rank, ((self.n as u64) << 20) ^ self.replicate);
        InstanceKey::new(self.family, self.n, mix_seed(base_seed ^ GRAPH_SEED_SALT, shape))
    }

    /// The execution seed of this cell: a deterministic function of the cell's identity
    /// (never of scheduling order), so parallel and sequential sweeps agree byte-for-byte.
    pub fn cell_seed(&self, base_seed: u64) -> u64 {
        mix_seed(self.instance_key(base_seed).seed, self.problem.tag())
    }

    /// A short human-readable label.
    pub fn label(&self) -> String {
        format!("{}/{}/n{}/r{}", self.problem.name(), self.family.name(), self.n, self.replicate)
    }
}

// The wire representation of a cell (the shard protocol and any future cache index) spells
// the problem and family by their stable names, so the wire is readable and survives enum
// reordering. Hand-written because the vendored serde derive cannot express data-carrying
// enums like `ProblemKind::RulingSet(u64)`.
impl Serialize for Scenario {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("problem".into(), self.problem.to_value()),
            ("family".into(), Value::Str(self.family.name().to_string())),
            ("n".into(), Value::U64(self.n as u64)),
            ("replicate".into(), Value::U64(self.replicate)),
        ])
    }
}

impl Deserialize for Scenario {
    fn from_value(value: &Value) -> Result<Self, String> {
        let field =
            |key: &str| value.get(key).ok_or_else(|| format!("scenario is missing field {key:?}"));
        let family = field("family")?;
        let family_name =
            family.as_str().ok_or_else(|| format!("expected family name, got {family:?}"))?;
        Ok(Scenario {
            problem: ProblemKind::from_value(field("problem")?)?,
            family: Family::from_name(family_name)
                .ok_or_else(|| format!("unknown family: {family_name:?}"))?,
            n: usize::from_value(field("n")?)?,
            replicate: u64::from_value(field("replicate")?)?,
        })
    }
}

/// A cross-product experiment design.
#[derive(Debug, Clone)]
pub struct ScenarioGrid {
    /// Problems to run (axis 1).
    pub problems: Vec<ProblemKind>,
    /// Graph families (axis 2).
    pub families: Vec<Family>,
    /// Instance sizes (axis 3).
    pub sizes: Vec<usize>,
    /// Number of replicates per `(problem, family, size)` (axis 4).
    pub replicates: u64,
    /// Base seed every instance/cell seed is derived from.
    pub base_seed: u64,
}

impl Default for ScenarioGrid {
    fn default() -> Self {
        ScenarioGrid {
            problems: vec![ProblemKind::Mis],
            families: vec![Family::SparseGnp],
            sizes: vec![128],
            replicates: 1,
            base_seed: 0,
        }
    }
}

impl ScenarioGrid {
    /// The default single-cell-per-axis grid (MIS on sparse G(n,p) at n = 128, one
    /// replicate), meant to be overridden axis-by-axis with the builder methods below.
    pub fn new() -> Self {
        ScenarioGrid::default()
    }

    /// Sets the problem axis.
    pub fn problems(mut self, problems: impl Into<Vec<ProblemKind>>) -> Self {
        self.problems = problems.into();
        self
    }

    /// Sets the family axis.
    pub fn families(mut self, families: impl Into<Vec<Family>>) -> Self {
        self.families = families.into();
        self
    }

    /// Sets the size axis.
    pub fn sizes(mut self, sizes: impl Into<Vec<usize>>) -> Self {
        self.sizes = sizes.into();
        self
    }

    /// Sets the size axis to a doubling ladder `lo, 2·lo, 4·lo, …` up to (and including the
    /// first value ≥) `hi`.
    pub fn size_ladder(mut self, lo: usize, hi: usize) -> Self {
        self.sizes = expand_ladder(lo, hi);
        self
    }

    /// Sets the number of replicates (seeds) per cell.
    pub fn replicates(mut self, replicates: u64) -> Self {
        self.replicates = replicates.max(1);
        self
    }

    /// Sets the base seed.
    pub fn base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Number of cells in the grid.
    pub fn cell_count(&self) -> usize {
        self.problems.len() * self.families.len() * self.sizes.len() * self.replicates as usize
    }

    /// Enumerates every cell in the grid's canonical order
    /// (problem-major, then family, size, replicate).
    pub fn cells(&self) -> Vec<Scenario> {
        let mut out = Vec::with_capacity(self.cell_count());
        for &problem in &self.problems {
            for &family in &self.families {
                for &n in &self.sizes {
                    for replicate in 0..self.replicates {
                        out.push(Scenario { problem, family, n, replicate });
                    }
                }
            }
        }
        out
    }
}

fn expand_ladder(lo: usize, hi: usize) -> Vec<usize> {
    // Honour the requested start exactly (generators themselves round tiny sizes up);
    // only guard against a zero start, which could never double.
    let lo = lo.max(1);
    let hi = hi.max(lo);
    let mut sizes = Vec::new();
    let mut n = lo;
    loop {
        sizes.push(n);
        if n >= hi {
            break;
        }
        n = n.saturating_mul(2).min(hi.max(n + 1));
    }
    sizes
}

/// Parses a size axis: either a comma list (`200,400`) or a doubling ladder (`100..10000`).
pub fn parse_sizes(text: &str) -> Result<Vec<usize>, String> {
    if let Some((lo, hi)) = text.split_once("..") {
        let lo: usize = lo.trim().parse().map_err(|_| format!("bad ladder start: {lo:?}"))?;
        let hi: usize = hi.trim().parse().map_err(|_| format!("bad ladder end: {hi:?}"))?;
        if hi < lo {
            return Err(format!("ladder end {hi} below start {lo}"));
        }
        return Ok(expand_ladder(lo, hi));
    }
    let sizes: Result<Vec<usize>, _> = text.split(',').map(|s| s.trim().parse::<usize>()).collect();
    let sizes = sizes.map_err(|_| format!("bad size list: {text:?}"))?;
    if sizes.is_empty() {
        return Err("empty size list".into());
    }
    Ok(sizes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parse() {
        for kind in ProblemKind::ALL {
            assert_eq!(ProblemKind::parse(&kind.name()), Some(kind), "{}", kind.name());
        }
        assert_eq!(ProblemKind::parse("ruling-set"), Some(ProblemKind::RulingSet(2)));
        assert_eq!(ProblemKind::parse("lambda4-coloring"), Some(ProblemKind::LambdaColoring(4)));
        assert_eq!(ProblemKind::parse("nonsense"), None);
    }

    #[test]
    fn tags_are_distinct() {
        let mut tags: Vec<u64> = ProblemKind::ALL.iter().map(ProblemKind::tag).collect();
        tags.push(ProblemKind::RulingSet(3).tag());
        tags.push(ProblemKind::LambdaColoring(4).tag());
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), ProblemKind::ALL.len() + 2);
    }

    #[test]
    fn grid_cross_product_has_expected_shape() {
        let grid = ScenarioGrid::new()
            .problems([ProblemKind::Mis, ProblemKind::Matching])
            .families([Family::SparseGnp, Family::Grid, Family::Path])
            .sizes([64usize, 128])
            .replicates(4);
        assert_eq!(grid.cell_count(), 2 * 3 * 2 * 4);
        let cells = grid.cells();
        assert_eq!(cells.len(), grid.cell_count());
        // Canonical order: first cell is the first coordinate of every axis.
        assert_eq!(cells[0].problem, ProblemKind::Mis);
        assert_eq!(cells[0].family, Family::SparseGnp);
        assert_eq!(cells[0].n, 64);
        assert_eq!(cells[0].replicate, 0);
    }

    #[test]
    fn same_instance_across_problems_distinct_across_replicates() {
        let a = Scenario { problem: ProblemKind::Mis, family: Family::Grid, n: 64, replicate: 0 };
        let b =
            Scenario { problem: ProblemKind::Matching, family: Family::Grid, n: 64, replicate: 0 };
        let c = Scenario { problem: ProblemKind::Mis, family: Family::Grid, n: 64, replicate: 1 };
        assert_eq!(a.instance_key(7), b.instance_key(7));
        assert_ne!(a.instance_key(7), c.instance_key(7));
        // Execution seeds differ per problem even on the shared instance.
        assert_ne!(a.cell_seed(7), b.cell_seed(7));
    }

    #[test]
    fn ladder_doubles_and_caps() {
        assert_eq!(parse_sizes("100..1000").unwrap(), vec![100, 200, 400, 800, 1000]);
        assert_eq!(parse_sizes("200,400").unwrap(), vec![200, 400]);
        assert_eq!(parse_sizes("64").unwrap(), vec![64]);
        // A small ladder start is honoured, not silently rewritten.
        assert_eq!(parse_sizes("2..8").unwrap(), vec![2, 4, 8]);
        assert!(parse_sizes("..").is_err());
        assert!(parse_sizes("a,b").is_err());
    }

    #[test]
    fn cell_seeds_do_not_depend_on_grid_order() {
        let cell = Scenario {
            problem: ProblemKind::RulingSet(2),
            family: Family::UnitDisk,
            n: 96,
            replicate: 3,
        };
        // The seed is a pure function of the cell + base seed.
        assert_eq!(cell.cell_seed(11), cell.cell_seed(11));
        assert_ne!(cell.cell_seed(11), cell.cell_seed(12));
    }
}

//! The network backend: shard dispatch to persistent `sweep --serve` TCP daemons.
//!
//! # Wire protocol
//!
//! The transport reuses the multi-process stream protocol verbatim ([`super::process`],
//! verified by [`super::stream`]) with one framing addition: instead of a shard on stdin,
//! the coordinator writes one JSON *request line* per shard over the socket —
//! `{"shard": <CellShard>, "telemetry": <ms>?}` — and the daemon answers with exactly the
//! stdout stream a `--worker` child would produce (result lines, optional heartbeats and a
//! span dump, the observation-carrying sentinel). Connections are persistent: a daemon
//! serves any number of requests per connection and any number of connections over its
//! lifetime, version-checking every shard against its own build. A daemon that cannot
//! serve a request answers a single `{"error": …}` line and drops the connection.
//!
//! # Robustness discipline
//!
//! Every connect carries a deadline, every read and write a liveness window
//! ([`super::liveness_window`] — heartbeats shrink it from the configured I/O deadline to a
//! few heartbeat intervals). Failed connects retry with capped exponential backoff and
//! deterministic jitter ([`super::backoff_ms`]). When a peer dies mid-stripe, its verified
//! cells stand, the missing remainder is re-dispatched to a healthy peer
//! ([`local_obs::metrics::REDISPATCHED_CELLS`]), and whatever no peer can serve falls back
//! to the shared in-process rescue ([`super::rescue_missing`]) — so a dead, flapping, or
//! garbage-spewing daemon degrades wall clock, never the report. Connection state is
//! observable: [`local_obs::metrics::NET_CONNECTS`]/[`local_obs::metrics::NET_RETRIES`]
//! count attempts, [`local_obs::metrics::WORKER_STATE`] gauges the peak number of
//! simultaneously connected peers, and every transition lands as a timestamped
//! `worker-state` record labelled with the peer.
//!
//! Fault injection mirrors the process backend: `refuse*N` clauses fail the first N
//! connect attempts coordinator-side; everything else in a `w<i>:` scope is scripted into
//! daemon `i`'s own `LOCAL_FAULTS` environment when it is launched (daemons are separate
//! processes — the coordinator cannot forward faults it did not start the daemon with).

use super::faults::FaultInjector;
use super::process::{observations_from_value, serve_shard};
use super::stream::{LineOutcome, StripeStream};
use super::telemetry::WorkerTelemetry;
use super::{backoff_ms, liveness_window, CellShard, EmitFn, ExecBackend, FaultPlan};
use crate::cost::CostModel;
use crate::progress::ProgressMeter;
use local_coord::ConcurrencyGate;
use serde::{Deserialize, Serialize, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Executes shards by striping them over persistent `sweep --serve` TCP daemons.
#[derive(Debug)]
pub struct NetworkBackend {
    peers: Vec<String>,
    rescue_threads: usize,
    observed: Mutex<CostModel>,
    progress: Option<ProgressMeter>,
    heartbeat_ms: u64,
    io_deadline_ms: u64,
    connect_timeout_ms: u64,
    retry_base_ms: u64,
    retry_cap_ms: u64,
    max_connect_attempts: u32,
    faults: FaultPlan,
    /// Scripted connect refusals already consumed, per peer (process-lifetime semantics:
    /// `refuse*2` refuses two attempts total, not two per stripe).
    refused: Vec<AtomicU64>,
    /// Currently connected peers, for the connection-state gauge.
    connected: AtomicU64,
    /// Per-peer connection state, so the shared gauge only moves on real transitions (a
    /// refused connect to one peer must not decrement another peer's connection).
    peer_up: Vec<AtomicBool>,
    /// Client name forwarded with every request (coordinators use it for per-client
    /// accounting; plain daemons ignore the key).
    client_label: Option<String>,
}

impl NetworkBackend {
    /// A backend over the given daemon addresses (`host:port`, one stripe per peer).
    pub fn new(peers: Vec<String>) -> Self {
        let refused = peers.iter().map(|_| AtomicU64::new(0)).collect();
        let peer_up = peers.iter().map(|_| AtomicBool::new(false)).collect();
        NetworkBackend {
            refused,
            peer_up,
            peers,
            rescue_threads: 0,
            observed: Mutex::new(CostModel::new()),
            progress: None,
            heartbeat_ms: 500,
            io_deadline_ms: 600_000,
            connect_timeout_ms: 5_000,
            retry_base_ms: 100,
            retry_cap_ms: 5_000,
            max_connect_attempts: 5,
            faults: FaultPlan::from_env_lossy(),
            connected: AtomicU64::new(0),
            client_label: None,
        }
    }

    /// Names this backend's owner in every request it ships. A coordinator peer books the
    /// request's cells under this client; plain daemons ignore the key.
    pub fn client(mut self, name: impl Into<String>) -> Self {
        self.client_label = Some(name.into());
        self
    }

    /// Sets how many threads the in-process rescue path uses when no peer can serve a cell
    /// (`0` = available parallelism, the default — rescue is the degraded mode, so it takes
    /// the whole machine).
    pub fn rescue_threads(mut self, threads: usize) -> Self {
        self.rescue_threads = threads;
        self
    }

    /// Attaches a live progress meter; daemons are then asked for heartbeats.
    pub fn progress(mut self, meter: ProgressMeter) -> Self {
        self.progress = Some(meter);
        self
    }

    /// Sets the daemon heartbeat interval (default 500ms; only used when telemetry is on).
    pub fn heartbeat_ms(mut self, ms: u64) -> Self {
        self.heartbeat_ms = ms.max(1);
        self
    }

    /// Sets the I/O liveness deadline in milliseconds (default 600000). When heartbeats
    /// flow, the effective read window shrinks to a few heartbeat intervals.
    pub fn io_deadline_ms(mut self, ms: u64) -> Self {
        self.io_deadline_ms = ms.max(1);
        self
    }

    /// Sets the per-attempt connect timeout in milliseconds (default 5000).
    pub fn connect_timeout_ms(mut self, ms: u64) -> Self {
        self.connect_timeout_ms = ms.max(1);
        self
    }

    /// Sets the reconnect policy: capped exponential backoff starting at `base_ms`, capped
    /// at `cap_ms`, giving up on a peer after `attempts` failed connects (defaults
    /// 100/5000/5). Jitter is deterministic per (peer, attempt).
    pub fn retry(mut self, base_ms: u64, cap_ms: u64, attempts: u32) -> Self {
        self.retry_base_ms = base_ms.max(1);
        self.retry_cap_ms = cap_ms.max(base_ms.max(1));
        self.max_connect_attempts = attempts.max(1);
        self
    }

    /// Sets the deterministic fault-injection plan (default: the `LOCAL_FAULTS`
    /// environment script). Only coordinator-side clauses apply here — `refuse*N` scoped to
    /// peer `i` fails that peer's first N connect attempts; stream faults belong in the
    /// daemon's own environment.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    fn telemetry_interval(&self) -> Option<u64> {
        (self.progress.is_some() || local_obs::is_enabled()).then_some(self.heartbeat_ms)
    }

    /// Records a connection-state transition for `peer` (1 = connected, 0 = down) and keeps
    /// the peak-concurrent-connections gauge current. The shared count moves only on this
    /// peer's *own* transitions: a failed connect to a peer that was never up (a scripted
    /// refusal, say) must not eat another peer's live connection from the gauge.
    fn record_state(&self, peer: usize, connected: bool) {
        let was = self.peer_up[peer].swap(connected, Ordering::Relaxed);
        if connected {
            local_obs::counter_add(local_obs::metrics::NET_CONNECTS, 1);
        }
        let now = match (was, connected) {
            (false, true) => self.connected.fetch_add(1, Ordering::Relaxed) + 1,
            (true, false) => self.connected.fetch_sub(1, Ordering::Relaxed).saturating_sub(1),
            _ => self.connected.load(Ordering::Relaxed),
        };
        local_obs::gauge_max(local_obs::metrics::WORKER_STATE, now);
        let label = local_obs::label(&format!("peer {peer} {}", self.peers[peer]));
        local_obs::record(local_obs::metrics::WORKER_STATE, label, connected as u64);
    }

    /// Connects to `peer` with the retry policy; scripted refusals consume attempts like
    /// real connection errors (and count like them — backoff, retry counter, state record).
    fn connect(&self, peer: usize) -> Result<TcpStream, String> {
        let addr = &self.peers[peer];
        let scripted = self.faults.refuse_connects(peer);
        let timeout = Duration::from_millis(self.connect_timeout_ms);
        let mut last_err = String::new();
        for attempt in 1..=self.max_connect_attempts {
            // Refusals are process-lifetime: `refuse*2` refuses two attempts total across
            // every stripe and re-dispatch, then lets connects through.
            let refused = self.refused[peer]
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                    (n < scripted).then_some(n + 1)
                })
                .is_ok();
            if refused {
                local_obs::counter_add(local_obs::metrics::FAULTS_INJECTED, 1);
                eprintln!("[fault] refusing connect attempt {attempt} to peer {peer} ({addr})");
                last_err = "fault-injected connect refusal".to_string();
            } else {
                match try_connect(addr, timeout) {
                    Ok(stream) => {
                        self.record_state(peer, true);
                        return Ok(stream);
                    }
                    Err(e) => last_err = e,
                }
            }
            local_obs::counter_add(local_obs::metrics::NET_RETRIES, 1);
            self.record_state(peer, false);
            if attempt < self.max_connect_attempts {
                std::thread::sleep(Duration::from_millis(backoff_ms(
                    peer,
                    attempt,
                    self.retry_base_ms,
                    self.retry_cap_ms,
                )));
            }
        }
        Err(format!(
            "cannot connect to {addr} after {} attempts: {last_err}",
            self.max_connect_attempts
        ))
    }

    /// Dispatches one stripe to one peer over a fresh connection. Returns the stripe
    /// indices still missing plus the failure reason when the stream cannot be trusted to
    /// completion. (`pub(super)` so the coordinator can drive single-stripe dispatches with
    /// its own scheduling policy while reusing this connect/verify/rescue machinery.)
    pub(super) fn run_stripe(
        &self,
        peer: usize,
        stripe: &CellShard,
        parent_indices: &[usize],
        emit: &EmitFn,
    ) -> Result<(), (Vec<usize>, String)> {
        let all = || (0..stripe.cells.len()).collect::<Vec<usize>>();
        let stream = match self.connect(peer) {
            Ok(stream) => stream,
            Err(reason) => return Err((all(), reason)),
        };
        let telemetry = self.telemetry_interval();
        let window = liveness_window(Duration::from_millis(self.io_deadline_ms), telemetry);
        let configured = stream
            .set_nodelay(true)
            .and_then(|_| stream.set_read_timeout(Some(window)))
            .and_then(|_| stream.set_write_timeout(Some(window)));
        if let Err(e) = configured {
            self.record_state(peer, false);
            return Err((all(), format!("cannot configure socket: {e}")));
        }

        // Span timestamps in the daemon's dump are relative to the daemon's own request
        // epoch; rebase them onto our timeline at the moment we sent the request.
        let connect_offset = local_obs::now_micros();
        let mut request = vec![("shard".to_string(), stripe.to_value())];
        if let Some(ms) = telemetry {
            request.push(("telemetry".to_string(), Value::U64(ms)));
        }
        if let Some(name) = &self.client_label {
            request.push(("client".to_string(), Value::Str(name.clone())));
        }
        let request =
            serde_json::to_string(&Line(Value::Map(request))).expect("request serializes");
        let mut writer = &stream;
        if let Err(e) = writeln!(writer, "{request}").and_then(|_| writer.flush()) {
            self.record_state(peer, false);
            return Err((all(), format!("cannot ship the stripe to {}: {e}", self.peers[peer])));
        }

        let mut reader = BufReader::new(&stream);
        let mut verifier = StripeStream::new(stripe, format!("peer {peer}"), connect_offset);
        let mut failure = None;
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => {
                    failure = Some("connection closed before the sentinel".to_string());
                    break;
                }
                Ok(_) => {
                    let mut accept = |index: usize, result| emit(parent_indices[index], result);
                    let text = line.trim_end_matches(['\n', '\r']);
                    match verifier.consume(text, self.progress.as_ref(), &mut accept) {
                        Ok(LineOutcome::Progress) => {}
                        Ok(LineOutcome::Finished) => break,
                        Err(reason) => {
                            failure = Some(reason);
                            break;
                        }
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    failure = Some(format!(
                        "liveness deadline exceeded ({}ms without a line — dead peer?)",
                        window.as_millis()
                    ));
                    break;
                }
                Err(e) => {
                    failure = Some(format!("stream read error: {e}"));
                    break;
                }
            }
        }
        if failure.is_none() {
            failure = verifier.verify_completion().err();
        }
        self.record_state(peer, false);

        match failure {
            None => {
                if let Some(observations) =
                    verifier.sentinel_observations().map(observations_from_value)
                {
                    let mut observed = self.observed.lock().expect("cost observations poisoned");
                    for (problem, family, obs, pred) in observations.unwrap_or_default() {
                        observed.observe_group(&problem, &family, obs, pred);
                    }
                }
                Ok(())
            }
            Some(reason) => {
                self.observed
                    .lock()
                    .expect("cost observations poisoned")
                    .merge(&verifier.line_observed);
                Err((verifier.missing(), reason))
            }
        }
    }
}

impl ExecBackend for NetworkBackend {
    fn name(&self) -> &'static str {
        "network"
    }

    fn parallelism(&self) -> usize {
        self.peers.len()
    }

    fn run_shard(&self, shard: &CellShard, emit: &EmitFn) {
        if shard.cells.is_empty() || self.peers.is_empty() {
            if !shard.cells.is_empty() {
                // No peers at all: everything is "irreducible remainder".
                let all: Vec<usize> = (0..shard.cells.len()).collect();
                super::rescue_missing(shard, &all, self.rescue_threads, &self.observed, emit);
            }
            return;
        }
        let stripes = shard.stripe(self.peers.len());
        let healthy: Vec<AtomicBool> = self.peers.iter().map(|_| AtomicBool::new(true)).collect();
        let failures: Mutex<Vec<(usize, Vec<usize>)>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for (peer, (stripe, parent_indices)) in stripes.iter().enumerate() {
                let healthy = &healthy;
                let failures = &failures;
                scope.spawn(move || {
                    if let Err((missing, reason)) =
                        self.run_stripe(peer, stripe, parent_indices, emit)
                    {
                        healthy[peer].store(false, Ordering::Relaxed);
                        eprintln!(
                            "sweep network backend: peer {peer} ({}) failed ({reason}); \
                             re-dispatching {} cells",
                            self.peers[peer],
                            missing.len()
                        );
                        failures.lock().expect("failure list poisoned").push((peer, missing));
                    }
                });
            }
        });

        // Degraded phase: walk each failed stripe's remainder through the healthy peers;
        // whatever none of them can serve is rescued in-process. Sequential on purpose —
        // this is the slow path, and determinism of the *report* never depended on it.
        for (stripe_index, mut remaining) in failures.into_inner().expect("failure list poisoned") {
            let (stripe, parent_indices) = &stripes[stripe_index];
            while !remaining.is_empty() {
                let Some(peer) =
                    (0..self.peers.len()).find(|&p| healthy[p].load(Ordering::Relaxed))
                else {
                    break;
                };
                let sub = CellShard {
                    base_seed: stripe.base_seed,
                    code_version: stripe.code_version.clone(),
                    cells: remaining.iter().map(|&i| stripe.cells[i].clone()).collect(),
                };
                let sub_parents: Vec<usize> =
                    remaining.iter().map(|&i| parent_indices[i]).collect();
                // Count a cell as re-dispatched only once it actually lands on the retry
                // peer: counting up front would book the same cell once per failed attempt
                // and double-book cells that end up rescued in-process instead.
                let attempted = remaining.len() as u64;
                match self.run_stripe(peer, &sub, &sub_parents, emit) {
                    Ok(()) => {
                        local_obs::counter_add(local_obs::metrics::REDISPATCHED_CELLS, attempted);
                        remaining.clear();
                    }
                    Err((still_missing, reason)) => {
                        local_obs::counter_add(
                            local_obs::metrics::REDISPATCHED_CELLS,
                            attempted - still_missing.len() as u64,
                        );
                        healthy[peer].store(false, Ordering::Relaxed);
                        eprintln!(
                            "sweep network backend: re-dispatch to peer {peer} ({}) failed \
                             ({reason})",
                            self.peers[peer]
                        );
                        remaining = still_missing.iter().map(|&k| remaining[k]).collect();
                    }
                }
            }
            if !remaining.is_empty() {
                eprintln!(
                    "sweep network backend: no healthy peers left; re-running {} cells \
                     in-process",
                    remaining.len()
                );
                let remaining = remaining;
                super::rescue_missing(
                    stripe,
                    &remaining,
                    self.rescue_threads,
                    &self.observed,
                    &|k, result| emit(parent_indices[remaining[k]], result),
                );
            }
        }
    }

    fn calibration(&self) -> CostModel {
        let mut out = CostModel::new();
        out.merge(&self.observed.lock().expect("cost observations poisoned"));
        out
    }
}

/// One resolve-and-connect attempt with a deadline, trying every resolved address once.
fn try_connect(addr: &str, timeout: Duration) -> Result<TcpStream, String> {
    let resolved = addr.to_socket_addrs().map_err(|e| format!("cannot resolve {addr}: {e}"))?;
    let mut last = format!("{addr} resolves to no addresses");
    for candidate in resolved {
        match TcpStream::connect_timeout(&candidate, timeout) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = e.to_string(),
        }
    }
    Err(last)
}

/// Adapter rendering a raw [`Value`] through the serde stub.
struct Line(Value);

impl Serialize for Line {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

/// Runs the `sweep --serve` daemon loop: binds `addr`, announces `listening on <addr>` on
/// stdout (so scripts binding port 0 can learn the port), and serves shard requests
/// forever — any number of connections, any number of requests per connection. Up to
/// `max_concurrent` plain shard requests execute concurrently (`0` = auto: the machine's
/// thread budget divided by the per-shard thread count); requests that need a
/// deterministic process-wide view — an armed fault script (its result-line counter is
/// process-cumulative) or a telemetry request (which resets the obs epoch) — run
/// exclusively, so fault indices and counter attribution keep one deterministic emission
/// order. Stream faults scripted in the daemon's own `LOCAL_FAULTS` apply to its result
/// stream; `kill`/`truncate` clauses terminate the daemon process, exactly like the real
/// failures they simulate. Only returns on bind failure.
pub fn serve_forever(addr: &str, threads: usize, max_concurrent: usize) -> Result<(), String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| format!("cannot read bound address: {e}"))?;
    println!("listening on {local}");
    let _ = std::io::stdout().flush();
    let faults = Arc::new(FaultInjector::from_env_lossy());
    if faults.is_armed() {
        eprintln!("sweep serve: fault injection armed");
    }
    let capacity = if max_concurrent > 0 {
        max_concurrent
    } else {
        let budget = crate::pool::resolve_worker_count(0);
        let per_shard = crate::pool::resolve_worker_count(threads);
        (budget / per_shard.max(1)).max(1)
    };
    let gate = Arc::new(ConcurrencyGate::new(capacity));
    for conn in listener.incoming() {
        match conn {
            Ok(stream) => {
                let faults = Arc::clone(&faults);
                let gate = Arc::clone(&gate);
                std::thread::spawn(move || serve_connection(stream, threads, &faults, &gate));
            }
            Err(e) => eprintln!("sweep serve: accept failed: {e}"),
        }
    }
    Ok(())
}

/// Serves one client connection: request lines in, result streams out, until the client
/// hangs up or a request cannot be served (one `{"error": …}` line, then hang up — the
/// coordinator treats it like any other failed stream and rescues).
fn serve_connection(
    stream: TcpStream,
    threads: usize,
    faults: &FaultInjector,
    gate: &ConcurrencyGate,
) {
    let client =
        stream.peer_addr().map(|a| a.to_string()).unwrap_or_else(|_| "unknown peer".to_string());
    let _ = stream.set_nodelay(true);
    let mut reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(e) => {
            eprintln!("sweep serve [{client}]: cannot clone socket: {e}");
            return;
        }
    };
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {
                if let Err(e) = serve_request(line.trim(), threads, faults, gate, &mut writer) {
                    eprintln!("sweep serve [{client}]: {e}");
                    let reply = Line(Value::Map(vec![("error".into(), Value::Str(e))]));
                    let text = serde_json::to_string(&reply).expect("error line serializes");
                    let _ = writeln!(writer, "{text}");
                    let _ = writer.flush();
                    return;
                }
            }
            Err(e) => {
                eprintln!("sweep serve [{client}]: read failed: {e}");
                return;
            }
        }
    }
}

/// Parses and executes one shard request against this daemon's build, inside the daemon's
/// concurrency gate: plain requests share up to the gate's capacity, while fault-scripted
/// or telemetry requests hold the gate alone (the fault counter and the obs epoch are
/// process-wide). While queued behind the gate, a telemetry request heartbeats its client
/// so the client's shrunken liveness window does not declare this daemon dead.
fn serve_request(
    request: &str,
    threads: usize,
    faults: &FaultInjector,
    gate: &ConcurrencyGate,
    out: &mut (impl Write + Send),
) -> Result<(), String> {
    let value = serde_json::from_str(request).map_err(|e| format!("unreadable request: {e}"))?;
    let shard = CellShard::from_value(
        value.get("shard").ok_or_else(|| "request without a shard".to_string())?,
    )
    .map_err(|e| format!("malformed shard: {e}"))?;
    let telemetry = value.get("telemetry").and_then(Value::as_u64);
    let keepalive = |out: &mut dyn Write| {
        if telemetry.is_none() {
            return;
        }
        let beat = WorkerTelemetry { cells_done: 0, wall_micros: 0, counters: Vec::new() };
        let line = Line(Value::Map(vec![("telemetry".into(), beat.to_value())]));
        let text = serde_json::to_string(&line).expect("heartbeat serializes");
        let _ = writeln!(out, "{text}");
        let _ = out.flush();
    };
    let _slot = if faults.is_armed() || telemetry.is_some() {
        gate.acquire_exclusive(|| keepalive(out))
    } else {
        gate.acquire(|| keepalive(out))
    };
    if telemetry.is_some() {
        // Per-request span/counter epoch: a long-lived daemon must not replay its whole
        // history into every span dump. (The fault injector's cumulative result-line
        // counter lives outside the obs layer and is unaffected.)
        local_obs::reset();
    }
    serve_shard(&shard, threads, telemetry, faults, out)
}

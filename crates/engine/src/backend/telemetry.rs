//! Telemetry record kinds of the worker wire protocol.
//!
//! These ride the same NDJSON stdout stream as result lines, distinguished by their top-level
//! key — `{"telemetry": …}` (periodic heartbeats), `{"spans": …}` (one final span dump) —
//! and are strictly *additive*: a worker only emits them when the parent asked for them with
//! `--telemetry <ms>`, old workers never see the flag, and old parents never send it, so
//! mixed-version fleets keep exchanging exactly the pre-existing record bytes.

use local_obs::EventRecord;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// How long a worker's stream may stay silent before the coordinator declares it dead.
///
/// Without telemetry the only safe bound is the configured I/O deadline: a silent worker
/// may legitimately be deep in one enormous cell. With heartbeats flowing every
/// `heartbeat_ms`, silence is evidence — a healthy worker beats even mid-cell — so the
/// window shrinks to a generous multiple of the heartbeat interval (floored at two seconds
/// to ride out scheduler hiccups on loaded CI machines), never exceeding the configured
/// deadline.
pub fn liveness_window(io_deadline: Duration, heartbeat_ms: Option<u64>) -> Duration {
    match heartbeat_ms {
        Some(ms) => io_deadline.min(Duration::from_millis((ms.saturating_mul(20)).max(2_000))),
        None => io_deadline,
    }
}

/// A periodic worker heartbeat: progress and counter totals so far. Counts are absolute
/// (not deltas), so a lost or reordered heartbeat costs nothing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerTelemetry {
    /// Cells of the stripe completed so far.
    pub cells_done: u64,
    /// Microseconds since the worker started serving.
    pub wall_micros: u64,
    /// Current counter totals, by registered metric name.
    pub counters: Vec<(String, u64)>,
}

/// One event of a worker's span dump (the owned-string form of [`local_obs::Event`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireEvent {
    /// Registered metric name.
    pub metric: String,
    /// Label text ("" for none).
    pub label: String,
    /// Microseconds since the worker's epoch (the coordinator rebases on import).
    pub start_micros: u64,
    /// Span duration in microseconds (0 for values).
    pub dur_micros: u64,
    /// Attached value.
    pub value: u64,
    /// Span vs. timestamped value.
    pub is_span: bool,
}

/// One worker thread's event stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireTrack {
    /// Thread-track name inside the worker ("thread-0", ...).
    pub name: String,
    /// Events in recording order.
    pub events: Vec<WireEvent>,
}

/// The final span dump a telemetry-enabled worker emits right before its sentinel:
/// everything its collector recorded, plus the final counter totals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanDump {
    /// Per-thread tracks.
    pub tracks: Vec<WireTrack>,
    /// Final counter totals, by registered metric name.
    pub counters: Vec<(String, u64)>,
}

impl SpanDump {
    /// Packages the current process's collector contents for the wire.
    pub fn from_snapshot(snapshot: &local_obs::Snapshot) -> Self {
        SpanDump {
            tracks: snapshot
                .tracks
                .iter()
                .map(|t| WireTrack {
                    name: t.name.clone(),
                    events: t
                        .events
                        .iter()
                        .map(|e| WireEvent {
                            metric: e.metric.clone(),
                            label: e.label.clone(),
                            start_micros: e.start_micros,
                            dur_micros: e.dur_micros,
                            value: e.value,
                            is_span: e.is_span,
                        })
                        .collect(),
                })
                .collect(),
            counters: snapshot.counters.clone(),
        }
    }

    /// Merges this dump into the coordinator's collector: each track lands as
    /// `"{worker_label} {track}"` with timestamps shifted by `offset_micros` (the
    /// coordinator-side spawn time), counters fold into the matching local counters
    /// (unknown names from a newer worker are skipped). No-op when obs is disabled.
    pub fn import(&self, worker_label: &str, offset_micros: u64) {
        for track in &self.tracks {
            local_obs::import_track(
                format!("{worker_label} {}", track.name),
                track
                    .events
                    .iter()
                    .map(|e| EventRecord {
                        metric: e.metric.clone(),
                        label: e.label.clone(),
                        start_micros: e.start_micros,
                        dur_micros: e.dur_micros,
                        value: e.value,
                        is_span: e.is_span,
                    })
                    .collect(),
                offset_micros,
            );
        }
        for (name, value) in &self.counters {
            local_obs::merge_counter_by_name(name, *value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn liveness_window_shrinks_with_heartbeats_but_never_grows() {
        let deadline = Duration::from_secs(600);
        assert_eq!(liveness_window(deadline, None), deadline);
        assert_eq!(liveness_window(deadline, Some(500)), Duration::from_secs(10));
        assert_eq!(liveness_window(deadline, Some(10)), Duration::from_secs(2), "floored");
        let tight = Duration::from_millis(750);
        assert_eq!(liveness_window(tight, Some(500)), tight, "never exceeds the deadline");
    }

    #[test]
    fn span_dump_round_trips_a_snapshot_shape() {
        let dump = SpanDump {
            tracks: vec![WireTrack {
                name: "thread-0".into(),
                events: vec![WireEvent {
                    metric: "attempt".into(),
                    label: "mis;sparse-gnp".into(),
                    start_micros: 12,
                    dur_micros: 34,
                    value: 0,
                    is_span: true,
                }],
            }],
            counters: vec![("messages-sent".into(), 99)],
        };
        let wire = serde_json::to_string(&dump).unwrap();
        let back = SpanDump::from_value(&serde_json::from_str(&wire).unwrap()).unwrap();
        assert_eq!(back, dump);
    }
}

//! The multi-process backend and its serialized cell-shard protocol.
//!
//! # Wire protocol
//!
//! The parent splits the scheduler's shard into instance-grouped stripes (one per worker;
//! graph instances round-robined in LPT order, so cells sharing an instance co-locate and
//! no instance is generated twice across the fleet) and, per worker, spawns
//! `sweep --worker --threads T`:
//!
//! * **stdin** — one JSON document: the worker's [`CellShard`] (base seed, code-version
//!   tag, and `Scenario` coordinates). The worker reads it whole before executing
//!   anything, then refuses it unless the code version matches its own build. The parent
//!   writes it from a dedicated thread, behind the same liveness deadline as reads — a
//!   wedged worker that never reads its stdin is detected and rescued, not waited on
//!   forever.
//! * **stdout** — newline-delimited JSON, one `{"index": i, "cell": {…}}` line per finished
//!   cell (in completion order — the index maps back to the stripe), terminated by a
//!   sentinel `{"done": n, "observations": […]}` line carrying the worker's cost-model
//!   observation sums. When the parent requested telemetry (`--telemetry <ms>`), the
//!   stream additionally carries `{"telemetry": …}` heartbeat records (progress + counter
//!   totals, see [`super::telemetry::WorkerTelemetry`]) and one final `{"spans": …}` dump
//!   of the worker's span buffers ([`super::telemetry::SpanDump`]) right before the
//!   sentinel — both strictly additive, so mixed-version fleets exchange exactly the
//!   pre-existing record bytes. Heartbeats double as liveness: a stream that stays silent
//!   past the [`super::liveness_window`] is declared dead.
//! * **stderr** — captured line by line, re-emitted on the parent's stderr prefixed with
//!   the worker id (`[worker 3] …`); the last few lines ride along in the failure reason
//!   when a worker dies, so the rescue-path log says *why*.
//!
//! # Failure semantics
//!
//! Every result line is verified against the cell it claims to be (problem, family, size,
//! replicate, *and* the derived execution seed) before it is accepted (see
//! [`super::stream`]). A worker that exits nonzero, truncates its stream, repeats an
//! index, stalls past the liveness deadline, or emits anything unparseable is abandoned on
//! the spot: its already-verified cells stand, and the parent re-executes the rest through
//! the shared [`super::rescue_missing`] path — so a killed, wedged, or garbage-spewing
//! worker degrades wall clock, never the report. Worker children are killed and reaped on
//! drop, so no failure path (including a panicking emit) leaks a zombie.
//!
//! # Fault injection
//!
//! The backend honours a [`FaultPlan`] (builder knob, defaulting to the `LOCAL_FAULTS`
//! environment script): clauses scoped `w<i>:` are forwarded — unscoped — into worker
//! `i`'s environment, where [`worker_serve`] executes them against its own result stream;
//! `refuse` clauses fail the spawn parent-side. Children of an unfaulted worker get
//! `LOCAL_FAULTS` scrubbed from their environment, so a scripted coordinator can never
//! leak its own script into the fleet.

use super::faults::{FaultInjector, FaultPlan, LineFault};
use super::stream::{LineOutcome, StripeStream};
use super::telemetry::SpanDump;
use super::{liveness_window, CellShard, EmitFn, ExecBackend, InProcessBackend};
use crate::cost::CostModel;
use crate::pool;
use crate::progress::ProgressMeter;
use serde::{Deserialize, Serialize, Value};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, ExitStatus, Stdio};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How many trailing worker-stderr lines ride along in a failure reason.
const STDERR_TAIL: usize = 8;

/// Default read/write liveness deadline: generous enough for the largest single cells when
/// no heartbeats flow (telemetry shrinks the effective window via
/// [`super::liveness_window`]).
const DEFAULT_IO_DEADLINE_MS: u64 = 600_000;

/// A worker child that is *always* killed and reaped: explicitly via [`ReapGuard::wait`]
/// on the normal path, or by `Drop` when the dispatching thread unwinds (a panicking emit,
/// an early error return). Without this, an abandoned child outlives the backend as a
/// zombie once it exits.
struct ReapGuard {
    child: Option<Child>,
}

impl ReapGuard {
    fn new(child: Child) -> Self {
        ReapGuard { child: Some(child) }
    }

    /// Best-effort kill; the process is reaped by [`ReapGuard::wait`] or `Drop`.
    fn kill(&mut self) {
        if let Some(child) = &mut self.child {
            let _ = child.kill();
        }
    }

    /// Waits for (and thereby reaps) the child; afterwards `Drop` is a no-op.
    fn wait(&mut self) -> std::io::Result<ExitStatus> {
        match &mut self.child {
            Some(child) => {
                let status = child.wait();
                self.child = None;
                status
            }
            None => Err(std::io::Error::other("child already reaped")),
        }
    }
}

impl Drop for ReapGuard {
    fn drop(&mut self) {
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Executes shards by fanning stripes out to `sweep --worker` subprocesses.
#[derive(Debug)]
pub struct ProcessBackend {
    workers: usize,
    worker_threads: usize,
    command: Vec<String>,
    observed: Mutex<CostModel>,
    progress: Option<ProgressMeter>,
    heartbeat_ms: u64,
    io_deadline_ms: u64,
    faults: FaultPlan,
}

impl ProcessBackend {
    /// A backend that spawns `workers` subprocesses (`0` = available parallelism), each
    /// re-invoking the current executable in `--worker` mode with one thread. The current
    /// executable is the right command when the caller *is* the `sweep` binary; library
    /// embedders and tests point elsewhere with [`ProcessBackend::with_command`].
    pub fn new(workers: usize) -> Self {
        let command =
            std::env::current_exe().map(|exe| vec![exe.display().to_string()]).unwrap_or_default();
        ProcessBackend::with_command(workers, command)
    }

    /// Like [`ProcessBackend::new`] with an explicit worker command line (program + leading
    /// arguments; `--worker --threads T` is appended at spawn time).
    pub fn with_command(workers: usize, command: impl Into<Vec<String>>) -> Self {
        ProcessBackend {
            workers: pool::resolve_worker_count(workers),
            worker_threads: 1,
            command: command.into(),
            observed: Mutex::new(CostModel::new()),
            progress: None,
            heartbeat_ms: 500,
            io_deadline_ms: DEFAULT_IO_DEADLINE_MS,
            faults: FaultPlan::from_env_lossy(),
        }
    }

    /// Sets how many threads each worker process runs its stripe with (`0` = the worker
    /// machine's available parallelism; default 1 — process-level parallelism usually wants
    /// single-threaded workers).
    pub fn worker_threads(mut self, threads: usize) -> Self {
        self.worker_threads = threads;
        self
    }

    /// Attaches a live progress meter: workers are asked for heartbeats, and both result
    /// lines and heartbeat records update the per-worker throughput display.
    pub fn progress(mut self, meter: ProgressMeter) -> Self {
        self.progress = Some(meter);
        self
    }

    /// Sets the worker heartbeat interval (default 500ms; only used when telemetry is on).
    pub fn heartbeat_ms(mut self, ms: u64) -> Self {
        self.heartbeat_ms = ms.max(1);
        self
    }

    /// Sets the I/O liveness deadline in milliseconds (default 600000): a worker whose
    /// stream stays silent this long — including one that never reads its stdin — is
    /// declared dead and its missing cells are rescued. When heartbeats flow, the
    /// effective window shrinks to a few heartbeat intervals ([`super::liveness_window`]).
    pub fn io_deadline_ms(mut self, ms: u64) -> Self {
        self.io_deadline_ms = ms.max(1);
        self
    }

    /// Sets the deterministic fault-injection plan (default: the `LOCAL_FAULTS`
    /// environment script). Clauses scoped to worker `i` are forwarded into that worker's
    /// environment; `refuse` clauses fail the spawn parent-side.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Whether to ask workers for telemetry, and at what interval: yes when a progress
    /// meter is attached or the coordinator's own obs layer is recording.
    fn telemetry_interval(&self) -> Option<u64> {
        (self.progress.is_some() || local_obs::is_enabled()).then_some(self.heartbeat_ms)
    }

    /// Dispatches one stripe to one worker subprocess. Returns the indices (into the
    /// stripe) of the cells that still need a result, plus a description of what went wrong
    /// when the stream could not be fully trusted.
    fn run_stripe(
        &self,
        worker: usize,
        stripe: &CellShard,
        parent_indices: &[usize],
        emit: &EmitFn,
    ) -> Result<(), (Vec<usize>, String)> {
        let all = || (0..stripe.cells.len()).collect::<Vec<usize>>();
        if self.command.is_empty() {
            return Err((all(), "no worker command (current_exe unavailable)".into()));
        }
        let refusals = self.faults.refuse_connects(worker);
        if refusals > 0 {
            // The process backend has no reconnect loop, so any scripted refusal fails the
            // whole stripe (the network backend retries through its backoff instead).
            local_obs::counter_add(local_obs::metrics::FAULTS_INJECTED, 1);
            return Err((all(), format!("fault-injected spawn refusal (refuse*{refusals})")));
        }
        let mut command = Command::new(&self.command[0]);
        command
            .args(&self.command[1..])
            .arg("--worker")
            .args(["--threads", &self.worker_threads.to_string()])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        let telemetry = self.telemetry_interval();
        if let Some(ms) = telemetry {
            command.args(["--telemetry", &ms.to_string()]);
        }
        // Fault clauses scoped to this worker travel in its environment; everyone else
        // gets the variable scrubbed so a scripted parent cannot leak faults downstream.
        let worker_faults = self.faults.for_worker(worker);
        if worker_faults.is_empty() {
            command.env_remove("LOCAL_FAULTS");
        } else {
            command.env("LOCAL_FAULTS", worker_faults.render());
        }
        // Worker span timestamps are relative to the worker's own start; record the spawn
        // time so the final span dump can be rebased onto the coordinator's timeline.
        let spawn_offset = local_obs::now_micros();
        let mut child = match command.spawn() {
            Ok(child) => child,
            Err(e) => return Err((all(), format!("cannot spawn worker: {e}"))),
        };

        // Take the pipes before the child moves behind the reap guard.
        let child_stdin = child.stdin.take();
        let child_stdout = child.stdout.take().expect("stdout was piped");
        let child_stderr = child.stderr.take();
        let mut child = ReapGuard::new(child);

        // Drain stderr on a dedicated thread: re-emit each line prefixed with the worker
        // id, and keep a short tail for the failure reason. The thread ends at pipe EOF.
        let stderr_tail = Arc::new(Mutex::new(VecDeque::<String>::new()));
        let stderr_thread = child_stderr.map(|stderr| {
            let tail = Arc::clone(&stderr_tail);
            std::thread::spawn(move || {
                for line in BufReader::new(stderr).lines().map_while(Result::ok) {
                    eprintln!("[worker {worker}] {line}");
                    let mut tail = tail.lock().expect("stderr tail poisoned");
                    if tail.len() == STDERR_TAIL {
                        tail.pop_front();
                    }
                    tail.push_back(line);
                }
            })
        });
        let worker_label = format!("worker {worker}");

        // Ship the stripe from a dedicated writer thread: a worker that never reads its
        // stdin can no longer wedge the dispatcher on `write_all` — the read loop's
        // liveness deadline fires instead, the child is killed, and the broken pipe
        // unblocks this thread for the join below.
        let shipped = serde_json::to_string(stripe).expect("shard serializes");
        let writer_thread = std::thread::spawn(move || -> Result<(), String> {
            match child_stdin {
                Some(mut stdin) => stdin.write_all(shipped.as_bytes()).map_err(|e| e.to_string()),
                None => Err("stdin was not piped".into()),
            }
        });

        // Read the stream on a dedicated thread too, so the verification loop can enforce
        // the liveness deadline with `recv_timeout` (pipes have no native read timeout).
        let (line_tx, line_rx) = mpsc::channel::<std::io::Result<String>>();
        let reader_thread = std::thread::spawn(move || {
            for line in BufReader::new(child_stdout).lines() {
                if line_tx.send(line).is_err() {
                    break;
                }
            }
        });

        let deadline = liveness_window(Duration::from_millis(self.io_deadline_ms), telemetry);
        let mut stream = StripeStream::new(stripe, worker_label, spawn_offset);
        let mut failure = None;
        loop {
            match line_rx.recv_timeout(deadline) {
                Ok(Ok(line)) => {
                    let mut accept = |index: usize, result| emit(parent_indices[index], result);
                    match stream.consume(&line, self.progress.as_ref(), &mut accept) {
                        Ok(LineOutcome::Progress) => {}
                        Ok(LineOutcome::Finished) => break,
                        Err(reason) => {
                            failure = Some(reason);
                            break;
                        }
                    }
                }
                Ok(Err(e)) => {
                    failure = Some(format!("stream read error: {e}"));
                    break;
                }
                Err(RecvTimeoutError::Disconnected) => {
                    failure = Some("stream truncated before the sentinel".into());
                    break;
                }
                Err(RecvTimeoutError::Timeout) => {
                    failure = Some(format!(
                        "liveness deadline exceeded ({}ms without a line — wedged worker?)",
                        deadline.as_millis()
                    ));
                    break;
                }
            }
        }
        if failure.is_none() {
            failure = stream.verify_completion().err();
        }

        if failure.is_some() {
            // Stop trusting the worker entirely: kill it so a blocked writer cannot stall
            // the wait below, then re-run whatever is missing.
            child.kill();
        }
        let status = child.wait();
        drop(line_rx);
        if failure.is_none() {
            // The worker finished cleanly, so its pipes have hit EOF; join the tails.
            let _ = reader_thread.join();
            let write_result = writer_thread.join().unwrap_or(Err("writer thread panicked".into()));
            if let Some(thread) = stderr_thread {
                let _ = thread.join();
            }
            if let Err(e) = write_result {
                failure = Some(format!("cannot ship the stripe over stdin: {e}"));
            }
        } else {
            // A killed worker may have forked grandchildren (e.g. `sh -c` wrappers) that
            // inherited the pipe write ends and outlive the kill; joining would wait them
            // out. Detach instead — the threads end at true EOF, and every byte that
            // matters was already refused above.
            drop(reader_thread);
            drop(writer_thread);
            drop(stderr_thread);
        }
        if failure.is_none() {
            match status {
                Ok(status) if status.success() => {}
                Ok(status) => failure = Some(format!("worker exited with {status}")),
                Err(e) => failure = Some(format!("cannot wait for worker: {e}")),
            }
        }

        match failure {
            None => {
                // Fully trusted stream: merge the worker's observation sums home.
                if let Some(observations) =
                    stream.sentinel_observations().map(observations_from_value)
                {
                    let mut observed = self.observed.lock().expect("cost observations poisoned");
                    for (problem, family, obs, pred) in observations.unwrap_or_default() {
                        observed.observe_group(&problem, &family, obs, pred);
                    }
                }
                Ok(())
            }
            Some(mut reason) => {
                // The sentinel's sums are gone with the worker, but the verified cells
                // stand in the report — so their line-observed calibration stands too (the
                // fallback separately observes whatever it re-runs).
                self.observed
                    .lock()
                    .expect("cost observations poisoned")
                    .merge(&stream.line_observed);
                let tail = stderr_tail.lock().expect("stderr tail poisoned");
                if !tail.is_empty() {
                    reason.push_str("; last stderr: ");
                    reason.push_str(&tail.iter().cloned().collect::<Vec<_>>().join(" | "));
                }
                Err((stream.missing(), reason))
            }
        }
    }
}

impl ExecBackend for ProcessBackend {
    fn name(&self) -> &'static str {
        "process"
    }

    fn parallelism(&self) -> usize {
        self.workers
    }

    fn run_shard(&self, shard: &CellShard, emit: &EmitFn) {
        if shard.cells.is_empty() {
            return;
        }
        let stripes = shard.stripe(self.workers);
        std::thread::scope(|scope| {
            for (worker, (stripe, parent_indices)) in stripes.iter().enumerate() {
                scope.spawn(move || {
                    if let Err((missing, reason)) =
                        self.run_stripe(worker, stripe, parent_indices, emit)
                    {
                        eprintln!(
                            "sweep process backend: worker failed ({reason}); re-running {} \
                             cells in-process",
                            missing.len()
                        );
                        super::rescue_missing(
                            stripe,
                            &missing,
                            self.worker_threads,
                            &self.observed,
                            &|k, result| emit(parent_indices[missing[k]], result),
                        );
                    }
                });
            }
        });
    }

    fn calibration(&self) -> CostModel {
        let mut out = CostModel::new();
        out.merge(&self.observed.lock().expect("cost observations poisoned"));
        out
    }
}

/// Serves one worker invocation: parse the shard on `input`, execute it with an
/// [`InProcessBackend`], and stream result lines plus the observation-carrying sentinel to
/// `out`. This *is* `sweep --worker`; it lives here so both sides of the protocol share one
/// module (the `--serve` TCP daemon reuses the same serving core through
/// [`super::network`]). Errors (bad shard, version skew) are returned for the binary to
/// print and turn into a nonzero exit, which the parent detects as a shard failure.
///
/// `telemetry_ms` is the parent's `--telemetry` request: `Some(interval)` turns the obs
/// layer on for the stripe and adds heartbeat records every `interval` milliseconds plus a
/// final span dump before the sentinel; `None` (old parents, plain invocations) produces
/// exactly the pre-telemetry stream.
///
/// `faults` executes the process's scripted stream faults; note that `kill` and `truncate`
/// clauses terminate the *calling process* when they fire.
pub fn worker_serve(
    input: &str,
    threads: usize,
    telemetry_ms: Option<u64>,
    faults: &FaultInjector,
    out: &mut (impl Write + Send),
) -> Result<(), String> {
    let shard = CellShard::from_value(
        &serde_json::from_str(input).map_err(|e| format!("unreadable shard: {e}"))?,
    )
    .map_err(|e| format!("malformed shard: {e}"))?;
    serve_shard(&shard, threads, telemetry_ms, faults, out)
}

/// The serving core shared by `sweep --worker` (stdin/stdout) and the `sweep --serve` TCP
/// daemon: version-checks `shard`, executes it, streams results/telemetry/sentinel to
/// `out`, and applies the process's fault injector to every result line.
pub(super) fn serve_shard(
    shard: &CellShard,
    threads: usize,
    telemetry_ms: Option<u64>,
    faults: &FaultInjector,
    out: &mut (impl Write + Send),
) -> Result<(), String> {
    if shard.code_version != crate::cache::CODE_VERSION {
        return Err(format!(
            "code-version skew: shard was built by {:?}, this worker is {:?}",
            shard.code_version,
            crate::cache::CODE_VERSION
        ));
    }
    if telemetry_ms.is_some() {
        local_obs::enable();
    }
    let started = std::time::Instant::now();
    let backend = InProcessBackend::new(threads);
    let sink = Mutex::new(&mut *out);
    let cells_done = std::sync::atomic::AtomicU64::new(0);
    let heartbeat = || {
        let record = super::WorkerTelemetry {
            cells_done: cells_done.load(std::sync::atomic::Ordering::Relaxed),
            wall_micros: started.elapsed().as_micros() as u64,
            counters: local_obs::counter_totals(),
        };
        let line = Raw(Value::Map(vec![("telemetry".into(), record.to_value())]));
        let text = serde_json::to_string(&line).expect("telemetry line serializes");
        // Best-effort: a heartbeat the parent never reads must not fail the stripe.
        let mut sink = sink.lock().expect("worker stdout poisoned");
        let _ = writeln!(sink, "{text}");
        let _ = sink.flush();
    };
    let mut write_error = None;
    {
        let write_error = Mutex::new(&mut write_error);
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            if let Some(interval_ms) = telemetry_ms {
                let stop = &stop;
                let heartbeat = &heartbeat;
                scope.spawn(move || {
                    // Sleep in short slices so the beater notices `stop` promptly even
                    // under long heartbeat intervals.
                    let slice = std::time::Duration::from_millis(interval_ms.clamp(1, 50));
                    let mut elapsed_ms = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        std::thread::sleep(slice);
                        elapsed_ms += slice.as_millis() as u64;
                        if elapsed_ms >= interval_ms {
                            elapsed_ms = 0;
                            heartbeat();
                        }
                    }
                });
            }
            backend.run_shard(shard, &|index, result| {
                let line = Raw(Value::Map(vec![
                    ("index".into(), Value::U64(index as u64)),
                    ("cell".into(), result.to_value()),
                ]));
                let text = serde_json::to_string(&line).expect("result line serializes");
                cells_done.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let mut sink = sink.lock().expect("worker stdout poisoned");
                // The scripted faults fire under the sink lock, so "result line k" follows
                // emission order deterministically.
                match faults.on_result_line() {
                    LineFault::Kill => {
                        let _ = sink.flush();
                        std::process::exit(1);
                    }
                    LineFault::Truncate => {
                        // A clean stream that simply ends: flush what was verified so far
                        // and exit zero without a sentinel.
                        let _ = sink.flush();
                        std::process::exit(0);
                    }
                    LineFault::Garble => {
                        let _ = writeln!(sink, "{}", FaultInjector::garbage_line(index as u64));
                    }
                    LineFault::Duplicate => {
                        let _ = writeln!(sink, "{text}");
                    }
                    LineFault::Delay(ms) => {
                        std::thread::sleep(std::time::Duration::from_millis(ms));
                    }
                    LineFault::None => {}
                }
                if let Err(e) = writeln!(sink, "{text}") {
                    write_error.lock().expect("error slot poisoned").get_or_insert(e.to_string());
                }
            });
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
    }
    if let Some(e) = write_error {
        return Err(format!("cannot write results: {e}"));
    }
    if telemetry_ms.is_some() {
        // One guaranteed final heartbeat (fast stripes may outrun the interval), then the
        // span dump — both before the sentinel, which stays the stream terminator.
        heartbeat();
        let dump = SpanDump::from_snapshot(&local_obs::snapshot());
        let line = Raw(Value::Map(vec![("spans".into(), dump.to_value())]));
        let text = serde_json::to_string(&line).expect("span dump serializes");
        let mut sink = sink.lock().expect("worker stdout poisoned");
        writeln!(sink, "{text}").map_err(|e| format!("cannot write span dump: {e}"))?;
    }
    let sentinel = Raw(Value::Map(vec![
        ("done".into(), Value::U64(shard.cells.len() as u64)),
        ("observations".into(), observations_to_value(&backend.calibration().observations())),
    ]));
    let text = serde_json::to_string(&sentinel).expect("sentinel serializes");
    let mut sink = sink.lock().expect("worker stdout poisoned");
    writeln!(sink, "{text}").map_err(|e| format!("cannot write sentinel: {e}"))?;
    sink.flush().map_err(|e| format!("cannot flush results: {e}"))
}

/// Renders calibration observation sums for the sentinel line.
pub(super) fn observations_to_value(observations: &[(String, String, f64, f64)]) -> Value {
    Value::Seq(
        observations
            .iter()
            .map(|(problem, family, observed, predicted)| {
                Value::Seq(vec![
                    Value::Str(problem.clone()),
                    Value::Str(family.clone()),
                    Value::F64(*observed),
                    Value::F64(*predicted),
                ])
            })
            .collect(),
    )
}

/// Parses the sentinel's observation sums; shape errors discard the calibration only (the
/// results themselves were verified line by line).
pub(super) fn observations_from_value(
    value: &Value,
) -> Result<Vec<(String, String, f64, f64)>, String> {
    value
        .as_seq()
        .ok_or_else(|| "observations are not a sequence".to_string())?
        .iter()
        .map(|entry| match entry.as_seq() {
            Some([problem, family, observed, predicted]) => Ok((
                String::from_value(problem)?,
                String::from_value(family)?,
                f64::from_value(observed)?,
                f64::from_value(predicted)?,
            )),
            _ => Err("observation entry is not a 4-tuple".to_string()),
        })
        .collect()
}

/// Adapter rendering a raw [`Value`] through the serde stub (which serializes `Serialize`
/// types, not `Value`s directly).
struct Raw(Value);

impl Serialize for Raw {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::super::stream::accept_result;
    use super::*;
    use crate::registry::workload;
    use crate::scenario::Scenario;
    use local_graphs::Family;

    fn no_faults() -> FaultInjector {
        FaultInjector::default()
    }

    fn small_shard() -> CellShard {
        CellShard::new(
            3,
            vec![
                Scenario {
                    problem: workload("luby-mis"),
                    family: Family::SparseGnp.into(),
                    n: 32,
                    replicate: 0,
                },
                Scenario {
                    problem: workload("luby-mis"),
                    family: Family::SparseGnp.into(),
                    n: 32,
                    replicate: 1,
                },
            ],
        )
    }

    #[test]
    fn worker_serve_round_trips_through_the_stream_format() {
        let shard = small_shard();
        let mut out = Vec::new();
        worker_serve(&serde_json::to_string(&shard).unwrap(), 1, None, &no_faults(), &mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), shard.cells.len() + 1, "cells + sentinel");

        let mut emitted = vec![false; shard.cells.len()];
        for line in &lines[..shard.cells.len()] {
            let value = serde_json::from_str(line).unwrap();
            let (index, result) = accept_result(&shard, &value, &emitted).unwrap();
            emitted[index] = true;
            assert_eq!(result.seed, shard.cells[index].cell_seed(shard.base_seed));
        }
        let sentinel = serde_json::from_str(lines.last().unwrap()).unwrap();
        assert_eq!(sentinel.get("done").and_then(Value::as_u64), Some(2));
        let observations = observations_from_value(sentinel.get("observations").unwrap()).unwrap();
        assert!(observations
            .iter()
            .any(|(p, f, _, _)| p == "luby-mis" && f == Family::SparseGnp.name()));
    }

    #[test]
    fn worker_serve_rejects_code_version_skew() {
        let mut shard = small_shard();
        shard.code_version = "some-stale-build".into();
        let mut out = Vec::new();
        let err =
            worker_serve(&serde_json::to_string(&shard).unwrap(), 1, None, &no_faults(), &mut out)
                .unwrap_err();
        assert!(err.contains("code-version skew"), "{err}");
        assert!(out.is_empty(), "a refused shard must produce no results");
    }

    #[test]
    fn accept_result_rejects_foreign_and_duplicate_cells() {
        let shard = small_shard();
        let mut out = Vec::new();
        worker_serve(&serde_json::to_string(&shard).unwrap(), 1, None, &no_faults(), &mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        let first = serde_json::from_str(text.lines().next().unwrap()).unwrap();

        let fresh = vec![false; shard.cells.len()];
        let (index, _) = accept_result(&shard, &first, &fresh).unwrap();
        let mut seen = fresh.clone();
        seen[index] = true;
        assert!(accept_result(&shard, &first, &seen).unwrap_err().contains("twice"));

        // The same line against a shard with a different base seed: the derived execution
        // seed no longer matches, so the result is refused.
        let mut reseeded = shard.clone();
        reseeded.base_seed = 4;
        assert!(accept_result(&reseeded, &first, &fresh).unwrap_err().contains("does not match"));
    }

    #[test]
    fn garble_faults_insert_garbage_midstream_but_keep_valid_lines() {
        let shard = small_shard();
        let injector = FaultInjector::new(&FaultPlan::parse("garble@1").unwrap());
        let mut out = Vec::new();
        worker_serve(&serde_json::to_string(&shard).unwrap(), 1, None, &injector, &mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), shard.cells.len() + 2, "cells + one garbage line + sentinel");
        assert!(serde_json::from_str(lines[0]).is_ok(), "first result is clean");
        assert!(serde_json::from_str(lines[1]).is_err(), "garbage where scripted");
        assert!(serde_json::from_str(lines[2]).is_ok(), "valid lines continue after");
    }

    #[test]
    fn duplicate_faults_repeat_the_scripted_line() {
        let shard = small_shard();
        let injector = FaultInjector::new(&FaultPlan::parse("dup@0").unwrap());
        let mut out = Vec::new();
        worker_serve(&serde_json::to_string(&shard).unwrap(), 1, None, &injector, &mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), shard.cells.len() + 2, "cells + one duplicate + sentinel");
        assert_eq!(lines[0], lines[1], "the scripted line is emitted twice");
    }

    #[test]
    fn observation_wire_format_round_trips() {
        let observations = vec![
            ("mis".to_string(), "grid".to_string(), 1234.5, 678.0),
            ("coloring".to_string(), "path".to_string(), 9.0, 4.5),
        ];
        let value = observations_to_value(&observations);
        assert_eq!(observations_from_value(&value).unwrap(), observations);
    }
}
